#![warn(missing_docs)]

//! # dls — Divisible-Load Scheduling on Large-Scale Platforms
//!
//! A production-quality Rust reproduction of *“A Realistic
//! Network/Application Model for Scheduling Divisible Loads on Large-Scale
//! Platforms”* (Marchal, Yang, Casanova, Robert — IPDPS 2005).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`platform`] — the Grid platform model of §2: clusters behind local
//!   links, routers, backbone links with per-connection bandwidth and
//!   connection caps, fixed routing, plus the random generator used by the
//!   paper's evaluation and the classical divisible-load-theory cluster
//!   equivalence reduction.
//! * [`core`] — the paper's contribution: the steady-state multi-application
//!   scheduling problem (Eq. 7), the SUM and MAXMIN objectives, the
//!   heuristics `G`, `LPR`, `LPRG`, `LPRR`, the LP upper bound, an exact
//!   branch-and-bound solver, and periodic schedule reconstruction (§3.2).
//! * [`lp`] — from-scratch linear programming: model builder, two-phase
//!   dense simplex, revised simplex for large instances, branch-and-bound
//!   MILP.
//! * [`rational`] — exact fractions for schedule reconstruction.
//! * [`npc`] — the §4 NP-completeness reduction from
//!   MAXIMUM-INDEPENDENT-SET, with exact solvers to verify it.
//! * [`sim`] — an event-driven simulator that executes periodic schedules
//!   under the §2 bandwidth-sharing model and measures achieved throughput,
//!   plus the live-mutation core ([`sim::LiveSim`]) for online workloads.
//! * [`scenario`] — the online workload & platform-dynamics engine
//!   (§1 (iii)): job arrivals, churn, capacity drift, and live
//!   rescheduling policies over the warm-started LP pipeline.
//! * [`experiments`] — the §6 evaluation harness (parallel sweeps,
//!   statistics, CSV/ASCII figures) plus the online scenario sweep.
//! * [`service`] — the long-running multi-tenant scheduler daemon:
//!   concurrent tenant sessions over a newline-delimited JSON wire
//!   protocol, sharded across a worker pool, with snapshot-based
//!   checkpoint/restore (`dls-cli serve`).
//!
//! ## Quickstart
//!
//! ```
//! use dls::prelude::*;
//!
//! // A three-cluster platform in a triangle of backbone links.
//! let mut b = PlatformBuilder::new();
//! let c0 = b.add_cluster(100.0, 50.0);
//! let c1 = b.add_cluster(200.0, 80.0);
//! let c2 = b.add_cluster(50.0, 30.0);
//! b.connect_clusters(c0, c1, 10.0, 4);
//! b.connect_clusters(c1, c2, 20.0, 2);
//! b.connect_clusters(c0, c2, 5.0, 8);
//! let platform = b.build().unwrap();
//!
//! // One divisible application per cluster, equal payoffs, MAXMIN fairness.
//! let problem = ProblemInstance::uniform(platform, Objective::MaxMin);
//!
//! // Solve with the LPRG heuristic and validate the allocation.
//! let allocation = Lprg::default().solve(&problem).unwrap();
//! assert!(allocation.validate(&problem).is_ok());
//! assert!(allocation.objective_value(&problem) > 0.0);
//! ```

pub use dls_core as core;
pub use dls_experiments as experiments;
pub use dls_lp as lp;
pub use dls_npc as npc;
pub use dls_platform as platform;
pub use dls_rational as rational;
pub use dls_scenario as scenario;
pub use dls_service as service;
pub use dls_sim as sim;
#[doc(hidden)]
pub use serde_json;

/// Most-used items in one import.
pub mod prelude {
    pub use dls_core::schedule::{PeriodicSchedule, ScheduleBuilder};
    pub use dls_core::{
        heuristics::{Greedy, Heuristic, Lpr, Lprg, Lprr, UpperBound},
        Allocation, Objective, ProblemInstance,
    };
    pub use dls_platform::{
        ClusterId, Platform, PlatformBuilder, PlatformConfig, PlatformGenerator,
    };
    pub use dls_scenario::{
        run_scenario, PeriodicResolve, ReschedulePolicy, Resolver, Scenario, ScenarioConfig,
        ScenarioReport, StaleScale, ThresholdTriggered,
    };
    pub use dls_sim::{LiveConfig, LiveSim, SimConfig, Simulator};
}
