//! `dls-cli` — command-line front end for the divisible-load scheduler.
//!
//! ```text
//! dls-cli generate  --clusters 10 --connectivity 0.4 --seed 1 > platform.json
//! dls-cli dot       --platform platform.json > platform.dot
//! dls-cli solve     --platform platform.json --heuristic lprg --objective maxmin
//! dls-cli schedule  --platform platform.json --heuristic g --denominator 1000
//! dls-cli simulate  --platform platform.json --heuristic lprg --periods 10
//! dls-cli bottleneck --platform platform.json
//! dls-cli scenario  --catalog drift --clusters 8 --policy periodic --format json
//! dls-cli scenario  --platform platform.json --trace trace.json --policy stale
//! ```
//!
//! Platforms travel as JSON (see `Platform::to_json`); `--platform -` reads
//! stdin. Payoffs default to uniform; `--payoffs 1,2,0.5` pins them,
//! `--spread 0.5 --payoff-seed 7` samples them.

use dls::core::heuristics::{Greedy, Heuristic, Lpr, Lprg, Lprr, UpperBound};
use dls::core::schedule::ScheduleBuilder;
use dls::core::{bottleneck, Objective, ProblemInstance};
use dls::experiments::PolicyKind;
use dls::platform::{to_dot, Platform, PlatformConfig, PlatformGenerator};
use dls::scenario::{build_catalog_entry, run_scenario, JobSpec, Scenario, ScenarioConfig};
use dls::service::{
    install_signal_handlers, Client, Op, RespBody, Server, ServiceConfig, TenantSpec,
};
use dls::sim::{SimConfig, Simulator};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage("missing command");
    };
    let opts = parse_flags(&args[1..]);
    match command.as_str() {
        "generate" => cmd_generate(&opts),
        "dot" => cmd_dot(&opts),
        "solve" => cmd_solve(&opts),
        "schedule" => cmd_schedule(&opts),
        "simulate" => cmd_simulate(&opts),
        "scenario" => cmd_scenario(&opts),
        "bottleneck" => cmd_bottleneck(&opts),
        "serve" => cmd_serve(&opts),
        "submit" => cmd_submit(&opts),
        "query" => cmd_query(&opts),
        "ctl" => cmd_ctl(&opts),
        "--help" | "-h" | "help" => usage(""),
        other => usage(&format!("unknown command `{other}`")),
    }
}

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Flags {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .unwrap_or_else(|| usage(&format!("expected --flag, got `{}`", args[i])));
        let value = args
            .get(i + 1)
            .unwrap_or_else(|| usage(&format!("--{key} needs a value")));
        out.insert(key.to_string(), value.clone());
        i += 2;
    }
    out
}

fn flag<T: std::str::FromStr>(opts: &Flags, key: &str, default: T) -> T {
    match opts.get(key) {
        None => default,
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| usage(&format!("cannot parse --{key} {v}"))),
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: dls-cli <command> [flags]\n\
         commands:\n\
         \x20 generate    --clusters N --connectivity P --seed S [--heterogeneity H]\n\
         \x20             [--local-bw G] [--backbone-bw BW] [--max-connections M] [--relays R]\n\
         \x20 dot         --platform FILE|-\n\
         \x20 solve       --platform FILE|- [--heuristic g|lpr|lprg|lprr|bound] [--objective sum|maxmin]\n\
         \x20             [--payoffs a,b,…] [--spread S --payoff-seed N]\n\
         \x20             [--threads N]   (lprr pin sweep; 0 = all cores, 1 = sequential)\n\
         \x20 schedule    (solve flags) [--denominator D]\n\
         \x20 simulate    (solve flags) [--periods P]\n\
         \x20 scenario    --catalog steady|bursty|drift|churn|flash|faulty|partition\n\
         \x20             [--clusters N] [--seed S]\n\
         \x20             | --platform FILE|- --trace FILE   (JSON scenario trace)\n\
         \x20             [--policy periodic|periodic-cold|threshold|stale] [--format json|csv|text]\n\
         \x20 bottleneck  --platform FILE|- [objective/payoff flags]\n\
         \x20 serve       [--addr HOST:PORT] [--workers N] [--checkpoint-dir DIR]\n\
         \x20             [--checkpoint-every EPOCHS]   (daemon; SIGTERM drains + exits 0)\n\
         \x20 submit      --addr HOST:PORT --tenant NAME [--create yes [tenant-spec flags]]\n\
         \x20             [--jobs a:o:s[:w],…|@FILE] [--advance EPOCHS] [--run yes]\n\
         \x20 query       --addr HOST:PORT --tenant NAME [--format json|text]\n\
         \x20 ctl         --addr HOST:PORT --op list|shutdown|checkpoint|advance|run\n\
         \x20             [--tenant NAME] [--epochs N]"
    );
    exit(if err.is_empty() { 0 } else { 2 });
}

fn cmd_generate(opts: &Flags) {
    let clusters = flag(opts, "clusters", 10usize);
    if clusters == 0 {
        usage("--clusters must be at least 1");
    }
    let cfg = PlatformConfig {
        num_clusters: clusters,
        connectivity: flag(opts, "connectivity", 0.4f64),
        heterogeneity: flag(opts, "heterogeneity", 0.4f64),
        mean_local_bw: flag(opts, "local-bw", 250.0f64),
        mean_backbone_bw: flag(opts, "backbone-bw", 50.0f64),
        mean_max_connections: flag(opts, "max-connections", 30.0f64),
        speed: flag(opts, "speed", 100.0f64),
        relay_routers: flag(opts, "relays", 0usize),
    };
    let platform = PlatformGenerator::new(flag(opts, "seed", 42u64)).generate(&cfg);
    println!("{}", platform.to_json());
}

fn load_platform(opts: &Flags) -> Platform {
    let path = opts
        .get("platform")
        .unwrap_or_else(|| usage("--platform FILE (or -) is required"));
    let json = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .unwrap_or_else(|e| usage(&format!("cannot read stdin: {e}")));
        buf
    } else {
        std::fs::read_to_string(path).unwrap_or_else(|e| usage(&format!("cannot read {path}: {e}")))
    };
    Platform::from_json(&json).unwrap_or_else(|e| usage(&format!("invalid platform: {e}")))
}

fn build_instance(opts: &Flags) -> ProblemInstance {
    let platform = load_platform(opts);
    let objective = match opts.get("objective").map(String::as_str) {
        None | Some("maxmin") => Objective::MaxMin,
        Some("sum") => Objective::Sum,
        Some(other) => usage(&format!("unknown objective `{other}`")),
    };
    if let Some(spec) = opts.get("payoffs") {
        let payoffs: Vec<f64> = spec
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("bad payoff `{s}`")))
            })
            .collect();
        ProblemInstance::new(platform, payoffs, objective)
            .unwrap_or_else(|e| usage(&format!("{e}")))
    } else if opts.contains_key("spread") {
        ProblemInstance::with_spread_payoffs(
            platform,
            objective,
            flag(opts, "spread", 0.5f64),
            flag(opts, "payoff-seed", 0u64),
        )
    } else {
        ProblemInstance::uniform(platform, objective)
    }
}

fn solve(opts: &Flags, inst: &ProblemInstance) -> dls::core::Allocation {
    let name = opts.get("heuristic").map(String::as_str).unwrap_or("lprg");
    let result = match name {
        "g" | "G" => Greedy::default().solve(inst),
        "lpr" => Lpr::default().solve(inst),
        "lprg" => Lprg::default().solve(inst),
        "lprr" => Lprr {
            threads: flag(opts, "threads", 0usize),
            ..Lprr::new(flag(opts, "seed", 42u64))
        }
        .solve(inst),
        other => usage(&format!("unknown heuristic `{other}`")),
    };
    let alloc = result.unwrap_or_else(|e| {
        eprintln!("solver error: {e}");
        exit(1);
    });
    if let Err(v) = alloc.validate(inst) {
        eprintln!("internal error: invalid allocation: {v:?}");
        exit(1);
    }
    alloc
}

fn cmd_dot(opts: &Flags) {
    println!("{}", to_dot(&load_platform(opts)));
}

fn cmd_solve(opts: &Flags) {
    let inst = build_instance(opts);
    if opts.get("heuristic").map(String::as_str) == Some("bound") {
        let b = UpperBound::default().bound(&inst).unwrap_or_else(|e| {
            eprintln!("solver error: {e}");
            exit(1);
        });
        println!("LP upper bound: {b:.4}");
        return;
    }
    let alloc = solve(opts, &inst);
    println!(
        "objective ({:?}): {:.4}",
        inst.objective,
        alloc.objective_value(&inst)
    );
    println!("throughputs:");
    for (k, t) in alloc.throughputs().iter().enumerate() {
        println!("  A_{k}: {t:.4} (payoff {})", inst.payoffs[k]);
    }
    println!("total load: {:.4}", alloc.total_load());
    let transfers = alloc.beta.iter().filter(|&&b| b > 0).count();
    println!("active transfers: {transfers}");
}

fn cmd_schedule(opts: &Flags) {
    let inst = build_instance(opts);
    let alloc = solve(opts, &inst);
    let builder = ScheduleBuilder {
        denominator: flag(opts, "denominator", 1000i128),
        skip_validation: false,
    };
    match builder.build(&inst, &alloc) {
        Ok(s) => print!("{}", s.describe()),
        Err(e) => {
            eprintln!("schedule error: {e}");
            exit(1);
        }
    }
}

fn cmd_simulate(opts: &Flags) {
    let inst = build_instance(opts);
    let alloc = solve(opts, &inst);
    let schedule = ScheduleBuilder::default()
        .build(&inst, &alloc)
        .unwrap_or_else(|e| {
            eprintln!("schedule error: {e}");
            exit(1);
        });
    let report = Simulator::new(&inst).run(
        &schedule,
        &SimConfig {
            periods: flag(opts, "periods", 10usize),
            ..SimConfig::default()
        },
    );
    println!("{}", report.summary());
    println!("per-app predicted vs measured throughput:");
    for (k, (p, m)) in report.predicted.iter().zip(&report.measured).enumerate() {
        println!("  A_{k}: {p:.3} vs {m:.3}");
    }
    println!("local-link utilisation:");
    for (k, u) in report.local_link_utilization.iter().enumerate() {
        println!("  C{k}: {:.1}%", 100.0 * u);
    }
}

fn cmd_scenario(opts: &Flags) {
    // Either a named catalog entry (platform generated internally) or an
    // explicit platform + JSON trace file.
    let (inst, scenario) = if let Some(entry) = opts.get("catalog") {
        let clusters = flag(opts, "clusters", 8usize);
        let seed = flag(opts, "seed", 42u64);
        build_catalog_entry(entry, clusters, seed)
            .unwrap_or_else(|| usage(&format!("unknown catalog entry `{entry}`")))
    } else {
        let inst = build_instance(opts);
        let path = opts
            .get("trace")
            .unwrap_or_else(|| usage("scenario needs --catalog NAME or --trace FILE"));
        let json = std::fs::read_to_string(path)
            .unwrap_or_else(|e| usage(&format!("cannot read {path}: {e}")));
        let scenario = Scenario::from_json(&json, &inst.platform)
            .unwrap_or_else(|e| usage(&format!("invalid trace: {e}")));
        (inst, scenario)
    };

    let policy_name = opts.get("policy").map(String::as_str).unwrap_or("periodic");
    let kind = PolicyKind::parse(policy_name)
        .unwrap_or_else(|| usage(&format!("unknown policy `{policy_name}`")));
    let mut policy = kind.build(&inst).unwrap_or_else(|e| {
        eprintln!("policy setup error: {e}");
        exit(1);
    });
    let report = run_scenario(
        &inst,
        &scenario,
        policy.as_mut(),
        &ScenarioConfig::default(),
    )
    .unwrap_or_else(|e| {
        eprintln!("scenario error: {e}");
        exit(1);
    });

    match opts.get("format").map(String::as_str).unwrap_or("text") {
        "json" => println!("{}", report.to_json()),
        "csv" => print!("{}", report.per_job_csv()),
        "text" => {
            println!("{}", report.summary());
            println!(
                "response times: mean {:.3}, max {:.3} over {} completed jobs",
                report.mean_response, report.max_response, report.completed_jobs
            );
        }
        other => usage(&format!("unknown format `{other}`")),
    }
}

fn cmd_bottleneck(opts: &Flags) {
    let inst = build_instance(opts);
    let report = bottleneck::analyze(&inst).unwrap_or_else(|e| {
        eprintln!("solver error: {e}");
        exit(1);
    });
    println!("LP objective: {:.4}", report.objective);
    let ranked = report.ranked();
    if ranked.is_empty() {
        println!("no binding resources (the platform is over-provisioned)");
        return;
    }
    println!("shadow prices (objective gain per unit of capacity):");
    for (what, price) in ranked {
        println!("  {price:>8.4}  {what}");
    }
}

/// `serve`: run the multi-tenant scheduler daemon until SIGTERM/SIGINT
/// (or a client `Shutdown` op) drains it. Prints the bound address on
/// the first stdout line so scripted callers can use `--addr ...:0`.
fn cmd_serve(opts: &Flags) {
    let cfg = ServiceConfig {
        addr: opts
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:0".into()),
        workers: flag(opts, "workers", 4usize),
        checkpoint_dir: opts.get("checkpoint-dir").map(std::path::PathBuf::from),
        checkpoint_every: flag(opts, "checkpoint-every", 0usize),
    };
    let server = Server::bind(cfg).unwrap_or_else(|e| {
        eprintln!("dls-service: cannot bind: {e}");
        exit(1);
    });
    install_signal_handlers();
    let addr = server.local_addr().expect("bound listener has an address");
    println!(
        "dls-service listening on {addr} ({} tenants restored)",
        server.restored_tenants()
    );
    std::io::stdout().flush().ok();
    if let Err(e) = server.run() {
        eprintln!("dls-service: {e}");
        exit(1);
    }
}

fn connect(opts: &Flags) -> Client {
    let addr = opts
        .get("addr")
        .unwrap_or_else(|| usage("--addr HOST:PORT is required"));
    Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        exit(1);
    })
}

fn required_tenant(opts: &Flags) -> String {
    opts.get("tenant")
        .cloned()
        .unwrap_or_else(|| usage("--tenant NAME is required"))
}

/// Jobs come inline (`arrival:origin:size[:weight]` comma-separated) or
/// from a JSON file holding an array of job specs (`@jobs.json`, `@-`
/// for stdin).
fn parse_jobs(spec: &str) -> Vec<JobSpec> {
    if let Some(path) = spec.strip_prefix('@') {
        let json = if path == "-" {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| usage(&format!("cannot read stdin: {e}")));
            buf
        } else {
            std::fs::read_to_string(path)
                .unwrap_or_else(|e| usage(&format!("cannot read {path}: {e}")))
        };
        return dls::serde_json::from_str(&json)
            .unwrap_or_else(|e| usage(&format!("invalid jobs file: {e}")));
    }
    spec.split(',')
        .filter(|s| !s.is_empty())
        .map(|item| {
            let parts: Vec<&str> = item.split(':').collect();
            if !(3..=4).contains(&parts.len()) {
                usage(&format!("job `{item}` wants arrival:origin:size[:weight]"));
            }
            let num = |i: usize| -> f64 {
                parts[i].parse().unwrap_or_else(|_| {
                    usage(&format!("bad number `{}` in job `{item}`", parts[i]))
                })
            };
            JobSpec {
                arrival: num(0),
                origin: parts[1]
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("bad origin in job `{item}`"))),
                size: num(2),
                weight: if parts.len() == 4 { num(3) } else { 1.0 },
            }
        })
        .collect()
}

fn ctl_ok(client: &mut Client, op: Op) -> RespBody {
    client.expect_ok(op).unwrap_or_else(|e| {
        eprintln!("daemon error: {e}");
        exit(1);
    })
}

fn print_body(body: &RespBody) {
    match body {
        RespBody::Created { tenant } => println!("created {tenant}"),
        RespBody::Accepted { tenant, admitted } => println!("admitted {admitted} into {tenant}"),
        RespBody::Advanced {
            tenant,
            epoch,
            done,
        } => println!("{tenant} at epoch {epoch} (done: {done})"),
        RespBody::Checkpointed { tenant, path } => println!("checkpointed {tenant} to {path}"),
        RespBody::Subscribed { tenant } => println!("subscribed to {tenant}"),
        RespBody::Tenants { tenants } => {
            for t in tenants {
                println!("{t}");
            }
        }
        RespBody::Hello { protocol } => println!("protocol {protocol}"),
        RespBody::ShuttingDown => println!("daemon shutting down"),
        RespBody::Report { report, .. } => println!("{}", report.summary()),
    }
}

/// `submit`: optionally create the tenant, then admit jobs and/or step
/// its session.
fn cmd_submit(opts: &Flags) {
    let tenant = required_tenant(opts);
    let mut client = connect(opts);
    if opts.get("create").map(String::as_str) == Some("yes") {
        let spec = TenantSpec {
            clusters: flag(opts, "clusters", 5usize),
            seed: flag(opts, "seed", 42u64),
            policy: opts
                .get("policy")
                .cloned()
                .unwrap_or_else(|| "periodic-cold".into()),
            period: flag(opts, "period", 10.0f64),
            engine: opts
                .get("engine")
                .cloned()
                .unwrap_or_else(|| "incremental".into()),
            record_events: opts.get("record-events").map(String::as_str) == Some("yes"),
        };
        let body = ctl_ok(
            &mut client,
            Op::CreateTenant {
                tenant: tenant.clone(),
                spec,
            },
        );
        print_body(&body);
    }
    if let Some(jobs_spec) = opts.get("jobs") {
        let jobs = parse_jobs(jobs_spec);
        let body = ctl_ok(
            &mut client,
            Op::Submit {
                tenant: tenant.clone(),
                jobs,
            },
        );
        print_body(&body);
    }
    if let Some(epochs) = opts.get("advance") {
        let epochs: usize = epochs
            .parse()
            .unwrap_or_else(|_| usage(&format!("bad --advance {epochs}")));
        let body = ctl_ok(
            &mut client,
            Op::Advance {
                tenant: tenant.clone(),
                epochs,
            },
        );
        print_body(&body);
    }
    if opts.get("run").map(String::as_str) == Some("yes") {
        let body = ctl_ok(&mut client, Op::Run { tenant });
        print_body(&body);
    }
}

/// `query`: fetch a tenant's current report.
fn cmd_query(opts: &Flags) {
    let tenant = required_tenant(opts);
    let mut client = connect(opts);
    let body = ctl_ok(&mut client, Op::Query { tenant });
    let RespBody::Report { report, .. } = body else {
        eprintln!("daemon sent an unexpected body");
        exit(1);
    };
    match opts.get("format").map(String::as_str).unwrap_or("text") {
        "json" => println!("{}", report.to_json()),
        "text" => println!("{}", report.summary()),
        other => usage(&format!("unknown format `{other}`")),
    }
}

/// `ctl`: daemon-wide and tenant-maintenance operations.
fn cmd_ctl(opts: &Flags) {
    let mut client = connect(opts);
    let op = opts
        .get("op")
        .unwrap_or_else(|| usage("--op list|shutdown|checkpoint|advance|run is required"));
    let body = match op.as_str() {
        "list" => ctl_ok(&mut client, Op::ListTenants),
        "shutdown" => ctl_ok(&mut client, Op::Shutdown),
        "checkpoint" => {
            let tenant = required_tenant(opts);
            ctl_ok(&mut client, Op::Checkpoint { tenant })
        }
        "advance" => {
            let tenant = required_tenant(opts);
            let epochs = flag(opts, "epochs", 1usize);
            ctl_ok(&mut client, Op::Advance { tenant, epochs })
        }
        "run" => {
            let tenant = required_tenant(opts);
            ctl_ok(&mut client, Op::Run { tenant })
        }
        other => usage(&format!("unknown ctl op `{other}`")),
    };
    print_body(&body);
}
