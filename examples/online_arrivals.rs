//! Online job arrivals with live rescheduling — the dynamic serving story.
//!
//! Jobs arrive continuously (seeded Poisson stream) while the platform
//! drifts, and the scenario engine executes them through the live
//! simulation core. Three policies race on the *same* timeline:
//!
//! * `periodic-warm` — re-solve the LPRG allocation every period through
//!   the warm-started LP pipeline;
//! * `threshold`     — re-solve only when observed throughput degrades;
//! * `stale`         — the paper's baseline: epoch-0 allocation, uniformly
//!   shrunk (`scale_to_fit`) when drift makes it infeasible.
//!
//! ```text
//! cargo run --example online_arrivals
//! ```

use dls::prelude::*;
use dls::scenario::build_catalog_entry;

fn main() {
    let (inst, scenario) = build_catalog_entry("drift", 8, 11).expect("known catalog entry");
    println!(
        "scenario `{}`: {} jobs ({:.0} load units) over {} platform events, period {}",
        scenario.name,
        scenario.jobs.len(),
        scenario.offered_work(),
        scenario.platform_events.len(),
        scenario.period,
    );
    println!();
    println!("policy          jobs  periods  makespan  mean-resp  max-resp  resolves");

    let run = |name: &str, policy: &mut dyn ReschedulePolicy| {
        let report = run_scenario(&inst, &scenario, policy, &ScenarioConfig::default())
            .expect("scenario executes");
        println!(
            "{:<14} {:>3}/{:<3} {:>6}  {:>8.2}  {:>9.2}  {:>8.2}  {:>8}",
            name,
            report.completed_jobs,
            report.jobs,
            report.periods,
            report.makespan,
            report.mean_response,
            report.max_response,
            report.reschedules,
        );
        report
    };

    let mut periodic = PeriodicResolve::new(Resolver::warm(&inst).expect("warm context builds"));
    let adaptive = run("periodic-warm", &mut periodic);

    let mut threshold = ThresholdTriggered::new(0.5, Resolver::Cold);
    run("threshold", &mut threshold);

    let mut stale = StaleScale::new(Resolver::Cold);
    let baseline = run("stale", &mut stale);

    println!();
    println!(
        "re-optimising every period finishes the backlog {:.1}% sooner than the stale baseline",
        100.0 * (baseline.makespan / adaptive.makespan.max(1e-9) - 1.0),
    );
}
