//! Adaptive periodic rescheduling — §1's motivation (iii) in action.
//!
//! Steady-state schedules are periodic, so the scheduler can fold observed
//! resource variation into the next period's optimisation. We drift the
//! platform's speeds and bandwidths over 12 epochs and compare re-solving
//! every epoch against keeping the stale epoch-0 allocation (uniformly
//! shrunk until it is feasible again).
//!
//! ```text
//! cargo run --example adaptive_rescheduling
//! ```

use dls::core::adaptive::{run_adaptive, DriftConfig};
use dls::core::heuristics::Lprg;
use dls::core::{Objective, ProblemInstance};
use dls::platform::{PlatformConfig, PlatformGenerator};

fn main() {
    let cfg = PlatformConfig {
        num_clusters: 8,
        connectivity: 0.5,
        heterogeneity: 0.4,
        ..PlatformConfig::default()
    };
    let platform = PlatformGenerator::new(11).generate(&cfg);
    let problem = ProblemInstance::uniform(platform, Objective::MaxMin);

    let drift = DriftConfig {
        epochs: 12,
        speed_drift: 0.25,
        local_bw_drift: 0.25,
        backbone_bw_drift: 0.25,
        seed: 3,
        ..DriftConfig::default()
    };
    let results = run_adaptive(&problem, &Lprg::default(), &drift).expect("solvable");

    println!("epoch  adaptive   stale(γ-scaled)   γ      advantage");
    let mut adaptive_sum = 0.0;
    let mut stale_sum = 0.0;
    for r in &results {
        adaptive_sum += r.adaptive_objective;
        stale_sum += r.stale_objective;
        println!(
            "{:>5}  {:>8.2}   {:>15.2}   {:>4.2}   {:>+7.1}%",
            r.epoch,
            r.adaptive_objective,
            r.stale_objective,
            r.stale_gamma,
            100.0 * (r.adaptive_objective / r.stale_objective.max(1e-9) - 1.0),
        );
    }
    let gain = adaptive_sum / stale_sum.max(1e-9);
    println!("\ncumulative MAXMIN objective: adaptive/stale = {gain:.3}×");
    assert!(
        gain >= 1.0 - 1e-9,
        "re-solving can never lose to a shrunk stale plan"
    );
}
