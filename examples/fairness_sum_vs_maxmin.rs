//! SUM vs MAXMIN on an asymmetric platform — the paper's two objective
//! functions (Eq. 5 / Eq. 6) embody very different policies, and payoff
//! factors tilt either of them.
//!
//! A well-connected "hub" application competes with two poorly-connected
//! ones. SUM happily starves the weak applications to maximise total
//! payoff; MAXMIN equalises weighted throughputs at some cost in total
//! load. Payoffs then prioritise one application under both policies.
//!
//! ```text
//! cargo run --example fairness_sum_vs_maxmin
//! ```

use dls::core::heuristics::{Heuristic, Lprg, UpperBound};
use dls::core::{Objective, ProblemInstance};
use dls::platform::PlatformBuilder;

fn build_platform() -> dls::platform::Platform {
    let mut b = PlatformBuilder::new();
    // The hub: modest own speed, fat pipes to two big helpers.
    let hub = b.add_cluster(50.0, 200.0);
    let helper_a = b.add_cluster(300.0, 150.0);
    let helper_b = b.add_cluster(300.0, 150.0);
    // Two isolated-ish clusters with thin connectivity.
    let edge_1 = b.add_cluster(80.0, 20.0);
    let edge_2 = b.add_cluster(60.0, 15.0);
    b.connect_clusters(hub, helper_a, 40.0, 4);
    b.connect_clusters(hub, helper_b, 40.0, 4);
    b.connect_clusters(edge_1, helper_a, 5.0, 1);
    b.connect_clusters(edge_2, helper_b, 5.0, 1);
    b.build().expect("valid platform")
}

fn solve_and_report(problem: &ProblemInstance, label: &str) {
    let alloc = Lprg::default().solve(problem).expect("solvable");
    alloc.validate(problem).expect("valid");
    let t = alloc.throughputs();
    let bound = UpperBound::default().bound(problem).unwrap();
    println!("\n=== {label} ===");
    println!(
        "  throughputs: {}",
        t.iter()
            .enumerate()
            .map(|(k, v)| format!("A_{k}={v:.1}"))
            .collect::<Vec<_>>()
            .join("  ")
    );
    println!(
        "  objective {:.1} (LP bound {:.1}), total load {:.1}",
        alloc.objective_value(problem),
        bound,
        alloc.total_load()
    );
}

fn main() {
    let platform = build_platform();

    // Uniform payoffs: SUM vs MAXMIN.
    let sum = ProblemInstance::uniform(platform.clone(), Objective::Sum);
    solve_and_report(&sum, "SUM, uniform payoffs (total throughput rules)");

    let maxmin = ProblemInstance::uniform(platform.clone(), Objective::MaxMin);
    solve_and_report(&maxmin, "MAXMIN, uniform payoffs (fairness rules)");

    // Priorities: the hub's application is 3× as valuable.
    let payoffs = vec![3.0, 1.0, 1.0, 1.0, 1.0];
    let prio = ProblemInstance::new(platform, payoffs, Objective::MaxMin).unwrap();
    solve_and_report(&prio, "MAXMIN, hub payoff ×3 (weighted fairness)");

    // The qualitative claims worth asserting:
    let sum_alloc = Lprg::default().solve(&sum).unwrap();
    let mm_alloc = Lprg::default().solve(&maxmin).unwrap();
    let sum_min = sum_alloc
        .throughputs()
        .into_iter()
        .fold(f64::INFINITY, f64::min);
    let mm_min = mm_alloc
        .throughputs()
        .into_iter()
        .fold(f64::INFINITY, f64::min);
    assert!(
        mm_min >= sum_min - 1e-9,
        "MAXMIN should never leave the weakest app worse off than SUM"
    );
    assert!(
        sum_alloc.total_load() >= mm_alloc.total_load() - 1e-6,
        "SUM should achieve at least MAXMIN's total load"
    );
    println!("\nchecks passed: MAXMIN lifts the minimum ({sum_min:.1} → {mm_min:.1}),");
    println!(
        "SUM keeps total load at least as high ({:.1} ≥ {:.1})",
        sum_alloc.total_load(),
        mm_alloc.total_load()
    );
}
