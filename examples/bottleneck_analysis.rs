//! Capacity planning with LP shadow prices, plus the classical
//! divisible-load-theory baseline the paper builds on.
//!
//! Part 1 — *which resource should this Grid upgrade first?* The dual
//! values of the steady-state relaxation price every resource: compute
//! speed (Eq. 7b), local links (7c), backbone connection budgets (7d).
//!
//! Part 2 — the single-load classical baseline: one divisible load on a
//! star, optimal one-round chunks (all workers finish together), and the
//! multi-installment improvement that motivates steady-state scheduling.
//!
//! ```text
//! cargo run --example bottleneck_analysis
//! ```

use dls::core::baselines::{multi_round_makespan, one_round_optimal, optimal_order};
use dls::core::bottleneck;
use dls::core::{Objective, ProblemInstance};
use dls::platform::{PlatformBuilder, Worker};

fn main() {
    // --- Part 1: shadow prices on a congested platform ---
    let mut b = PlatformBuilder::new();
    let main_site = b.add_cluster(80.0, 25.0); // starved local link
    let helper_a = b.add_cluster(300.0, 200.0);
    let helper_b = b.add_cluster(150.0, 200.0);
    b.connect_clusters(main_site, helper_a, 15.0, 2); // tight connection cap
    b.connect_clusters(main_site, helper_b, 20.0, 8);
    let problem =
        ProblemInstance::new(b.build().unwrap(), vec![1.0, 0.2, 0.2], Objective::Sum).unwrap();

    let report = bottleneck::analyze(&problem).expect("solvable");
    println!("steady-state objective (LP): {:.1}", report.objective);
    println!("shadow prices (objective gain per unit of capacity):");
    for (what, price) in report.ranked() {
        println!("  {price:>7.3}  {what}");
    }
    if let Some((what, price)) = report.top() {
        println!("→ upgrade first: {what} (worth {price:.3} per unit)\n");
    }

    // --- Part 2: classical single-load DLT on a star ---
    let workers = [
        Worker {
            speed: 40.0,
            link_bw: 25.0,
        },
        Worker {
            speed: 60.0,
            link_bw: 10.0,
        },
        Worker {
            speed: 20.0,
            link_bw: 50.0,
        },
    ];
    let load = 200.0;
    println!("single divisible load W = {load} on a 3-worker star (one-port):");
    println!(
        "  activation order (by bandwidth): {:?}",
        optimal_order(&workers)
    );
    let d = one_round_optimal(load, 0.0, &workers);
    println!(
        "  one-round chunks {:?}",
        d.chunks
            .iter()
            .map(|c| (c * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
    println!("  one-round makespan: {:.2}", d.makespan);
    for rounds in [2usize, 4, 16] {
        println!(
            "  {rounds:>2}-round makespan:  {:.2}",
            multi_round_makespan(load, 0.0, &workers, rounds)
        );
    }
    println!("(steady-state scheduling — the paper's regime — is the many-rounds limit)");
}
