//! The §4 NP-completeness reduction, executed end to end.
//!
//! Takes the Figure 3 example graph (a 4-cycle) and a random graph, builds
//! the Figure 4 platform for each, and shows that the *exact* optimal
//! steady-state throughput equals the graph's independence number — while
//! the polynomial heuristics may fall short (that is what NP-hardness
//! means in practice).
//!
//! ```text
//! cargo run --example np_hardness
//! ```

use dls::core::heuristics::{ExactMilp, Greedy, Heuristic, Lprg, UpperBound};
use dls::npc::{independent_set_from_allocation, max_independent_set, reduce, Graph};

fn analyse(name: &str, g: &Graph) {
    println!(
        "\n=== {name}: n = {}, m = {} ===",
        g.num_vertices(),
        g.edges().len()
    );
    let mis = max_independent_set(g);
    println!("  independence number α(G) = {} (set {mis:?})", mis.len());

    let red = reduce(g);
    red.verify_lemma1().expect("Lemma 1 holds by construction");
    let inst = red.instance();
    println!(
        "  reduced platform: {} clusters, {} routers, {} backbone links",
        inst.platform.num_clusters(),
        inst.platform.num_routers,
        inst.platform.links.len()
    );

    let exact = ExactMilp::default().solve(&inst).expect("small instance");
    let rho = exact.objective_value(&inst);
    println!("  exact MILP throughput  = {rho:.3}  (must equal α(G))");
    assert!((rho - mis.len() as f64).abs() < 1e-6);

    let recovered = independent_set_from_allocation(&red, &exact);
    println!("  recovered independent set: {recovered:?}");

    let lp = UpperBound::default().bound(&inst).unwrap();
    let greedy = Greedy::default()
        .solve(&inst)
        .unwrap()
        .objective_value(&inst);
    let lprg = Lprg::default().solve(&inst).unwrap().objective_value(&inst);
    println!("  LP relaxation bound    = {lp:.3}");
    println!("  greedy G               = {greedy:.3}");
    println!("  LPRG                   = {lprg:.3}");
}

fn main() {
    // Figure 3 of the paper: the 4-cycle V1V2V3V4.
    let figure3 = Graph::new(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
    analyse("Figure 3 (C4)", &figure3);

    // The Petersen graph — a classic with α = 4.
    let petersen = Graph::new(
        10,
        [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0),
            (5, 7),
            (7, 9),
            (9, 6),
            (6, 8),
            (8, 5),
            (0, 5),
            (1, 6),
            (2, 7),
            (3, 8),
            (4, 9),
        ],
    )
    .unwrap();
    analyse("Petersen graph", &petersen);

    // A random instance.
    let random = Graph::random(8, 0.4, 2026);
    analyse("G(8, 0.4) seed 2026", &random);

    println!("\nall reductions verified: optimal throughput ≡ independence number");
}
