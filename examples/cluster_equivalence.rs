//! Collapsing real cluster interiors into equivalent processors (§2).
//!
//! The paper's platform model represents each institution by a single
//! `(s_k, g_k)` pair, citing classical divisible-load-theory equivalence
//! results. This example starts from *full* cluster descriptions — a star
//! and a two-level tree of heterogeneous workers — computes their
//! equivalent speeds under both communication models, and schedules on the
//! collapsed platform.
//!
//! ```text
//! cargo run --example cluster_equivalence
//! ```

use dls::core::heuristics::{Heuristic, Lprg};
use dls::core::{Objective, ProblemInstance};
use dls::platform::equivalent::{star_equivalent_speed, EquivalentModel, TreeNode, Worker};
use dls::platform::PlatformBuilder;

fn main() {
    // Institution A: a front-end (no compute) driving 4 heterogeneous
    // workers over a switched LAN (bounded multiport, 1 Gb/s ≈ 120 units
    // aggregate egress).
    let workers_a = [
        Worker {
            speed: 80.0,
            link_bw: 50.0,
        },
        Worker {
            speed: 40.0,
            link_bw: 50.0,
        },
        Worker {
            speed: 120.0,
            link_bw: 30.0,
        },
        Worker {
            speed: 20.0,
            link_bw: 50.0,
        },
    ];
    let multiport = EquivalentModel::BoundedMultiport { egress: 120.0 };
    let s_a = star_equivalent_speed(0.0, &workers_a, multiport);
    let s_a_oneport = star_equivalent_speed(0.0, &workers_a, EquivalentModel::OnePort);
    println!("institution A (star of 4 workers):");
    println!("  equivalent speed, bounded multiport: {s_a:.1}");
    println!("  equivalent speed, one-port:          {s_a_oneport:.1}");

    // Institution B: a two-level tree (departmental switches).
    let tree_b = TreeNode {
        speed: 10.0,
        children: vec![
            (
                60.0,
                TreeNode {
                    speed: 20.0,
                    children: vec![(40.0, TreeNode::leaf(70.0)), (40.0, TreeNode::leaf(70.0))],
                },
            ),
            (
                30.0,
                TreeNode {
                    speed: 15.0,
                    children: vec![(25.0, TreeNode::leaf(90.0))],
                },
            ),
        ],
    };
    let s_b = tree_b.equivalent_speed(multiport);
    println!(
        "institution B (tree of {} processors): equivalent speed {s_b:.1}",
        tree_b.size()
    );

    // Build the collapsed wide-area platform and schedule two applications.
    let mut b = PlatformBuilder::new();
    let a = b.add_cluster(s_a, 80.0);
    let bb = b.add_cluster(s_b, 40.0);
    b.connect_clusters(a, bb, 12.0, 3);
    let platform = b.build().unwrap();
    let problem = ProblemInstance::uniform(platform, Objective::MaxMin);
    let alloc = Lprg::default().solve(&problem).unwrap();
    alloc.validate(&problem).unwrap();

    println!("\ncollapsed platform schedule (MAXMIN):");
    for (k, t) in alloc.throughputs().iter().enumerate() {
        println!("  A_{k}: {t:.1} load units / time unit");
    }
    assert!(s_a > s_a_oneport - 1e-9, "multiport dominates one-port");
}
