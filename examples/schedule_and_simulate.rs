//! From rates to an executable schedule — §3.2 end to end, plus a
//! bandwidth-sharing ablation in the simulator.
//!
//! Solves a 6-cluster instance, reconstructs the periodic schedule in both
//! modes (common-denominator and paper-faithful lcm), executes it in the
//! event-driven simulator under max-min fair sharing, and shows what the
//! naive equal-split discipline would lose.
//!
//! ```text
//! cargo run --example schedule_and_simulate
//! ```

use dls::core::heuristics::{Heuristic, Lprg};
use dls::core::schedule::{rate_to_fraction, ScheduleBuilder};
use dls::core::{Objective, ProblemInstance};
use dls::platform::{PlatformConfig, PlatformGenerator};
use dls::sim::{BandwidthModel, SimConfig, Simulator};

fn main() {
    let cfg = PlatformConfig {
        num_clusters: 6,
        connectivity: 0.6,
        heterogeneity: 0.4,
        ..PlatformConfig::default()
    };
    let platform = PlatformGenerator::new(5).generate(&cfg);
    let problem = ProblemInstance::uniform(platform, Objective::MaxMin);
    let alloc = Lprg::default().solve(&problem).expect("solvable");

    // The paper's u/v fractions for a couple of rates.
    println!("sample rate → fraction conversions (max denominator 100):");
    for &rate in alloc.alpha.iter().filter(|a| **a > 0.0).take(4) {
        println!("  {rate:.6} ≈ {}", rate_to_fraction(rate, 100).unwrap());
    }

    // Common-denominator reconstruction: period = 1000 time units.
    let schedule = ScheduleBuilder::default().build(&problem, &alloc).unwrap();
    println!(
        "\ncommon-denominator schedule: T_p = {}, {} compute tasks, {} transfers",
        schedule.period,
        schedule.compute_tasks.len(),
        schedule.transfers.len()
    );

    // Paper-faithful lcm reconstruction with small denominators.
    match (ScheduleBuilder {
        denominator: 32,
        skip_validation: false,
    })
    .build_exact(&problem, &alloc)
    {
        Ok(exact) => println!("exact lcm schedule:          T_p = {}", exact.period),
        Err(e) => println!("exact lcm schedule overflowed ({e}) — expected for wild rates"),
    }

    // Execute under both bandwidth disciplines.
    let sim = Simulator::new(&problem);
    let fair = sim.run(&schedule, &SimConfig::default());
    let naive = sim.run(
        &schedule,
        &SimConfig {
            bandwidth_model: BandwidthModel::EqualSplit,
            ..SimConfig::default()
        },
    );
    println!("\nmax-min fair sharing : {}", fair.summary());
    println!("equal-split ablation : {}", naive.summary());
    println!(
        "\nfairness buys {:.1}% efficiency here",
        100.0 * (fair.efficiency - naive.efficiency)
    );
    assert!(fair.achieves(0.95));
    assert!(fair.efficiency >= naive.efficiency - 1e-9);
}
