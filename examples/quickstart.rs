//! Quickstart: build a small Grid platform, schedule three divisible-load
//! applications fairly, and print the resulting steady-state allocation and
//! periodic schedule.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dls::prelude::*;

fn main() {
    // --- 1. Describe the platform (Figure 1 of the paper, in miniature) ---
    // Three institutions: a big cluster, a medium one and a small one,
    // linked by wide-area backbone links with per-connection bandwidth and
    // connection caps.
    let mut b = PlatformBuilder::new();
    let lyon = b.add_cluster(400.0, 120.0); // s = 400, g = 120
    let sandiego = b.add_cluster(250.0, 60.0);
    let tokyo = b.add_cluster(100.0, 90.0);
    b.connect_clusters(lyon, sandiego, 25.0, 4); // bw/connection, max-connect
    b.connect_clusters(sandiego, tokyo, 10.0, 6);
    b.connect_clusters(lyon, tokyo, 15.0, 2);
    let platform = b.build().expect("valid platform");

    // --- 2. One divisible application per cluster, MAX-MIN fairness ---
    let problem = ProblemInstance::uniform(platform, Objective::MaxMin);

    // --- 3. Solve with the paper's best practical heuristic (LPRG) ---
    let allocation = Lprg::default().solve(&problem).expect("solvable");
    allocation.validate(&problem).expect("valid allocation");

    println!("per-application throughput (load units / time unit):");
    for (k, t) in allocation.throughputs().iter().enumerate() {
        println!("  A_{k}: {t:.2}");
    }
    println!(
        "MAXMIN objective: {:.2} (LP upper bound: {:.2})",
        allocation.objective_value(&problem),
        UpperBound::default().bound(&problem).unwrap(),
    );

    // --- 4. Reconstruct the periodic schedule of §3.2 ---
    let schedule = ScheduleBuilder::default()
        .build(&problem, &allocation)
        .expect("schedulable");
    println!("\n{}", schedule.describe());

    // --- 5. Execute it in the event-driven simulator ---
    let report = Simulator::new(&problem).run(&schedule, &SimConfig::default());
    println!("{}", report.summary());
    assert!(report.achieves(0.95), "steady state should be sustained");
}
