//! Integration: the experiment harness regenerates every figure at Quick
//! scale, and the paper's qualitative claims hold on those samples.

use dls::core::Objective;
use dls::experiments::{fig5, fig6, fig7, overall_ratio, table1, Preset};

#[test]
fn fig5_quick_shape() {
    let out = fig5(Preset::Quick, 7, 0);
    // Both objectives aggregated, every ratio in (0, 1].
    assert_eq!(out.aggregates.len(), 2);
    for (_, agg) in &out.aggregates {
        assert!(!agg.is_empty());
        for a in agg {
            for (name, r) in &a.ratios {
                assert!(
                    (0.0..=1.0 + 1e-9).contains(r),
                    "{name} ratio {r} out of range"
                );
            }
            // LPR ≤ LPRG pointwise in the aggregate means too.
            let lpr = a.ratio("LPR").unwrap();
            let lprg = a.ratio("LPRG").unwrap();
            assert!(lpr <= lprg + 1e-9);
        }
    }
    // §6.1 scalar: LPRG at least matches G on average (the paper reports
    // 1.98× for MAXMIN, 1.02× for SUM at full scale).
    let r = overall_ratio(&out.records, Objective::MaxMin, "LPRG", "G").unwrap();
    assert!(r >= 0.99, "LPRG/G MAXMIN ratio {r} below parity");
}

#[test]
fn fig6_quick_lprr_dominates_lpr_rounding_floor() {
    let out = fig6(Preset::Quick, 7, 0, true);
    // LPRR present with the ablation variant.
    for (_, agg) in &out.aggregates {
        for a in agg {
            assert!(a.ratio("LPRR").is_some());
            assert!(a.ratio("LPRR-EQ").is_some());
            // LPRR stays within the bound.
            assert!(a.ratio("LPRR").unwrap() <= 1.0 + 1e-9);
        }
    }
}

#[test]
fn fig7_quick_orders_heuristics_by_cost() {
    let out = fig7(Preset::Quick, 7, 0);
    assert!(!out.timings.is_empty());
    for (k, row) in &out.timings {
        let get = |n: &str| {
            row.iter()
                .find(|(name, _)| name == n)
                .map(|(_, v)| *v)
                .unwrap()
        };
        // G is the cheapest; LPRR the most expensive (it solves ~K² LPs).
        assert!(get("G") <= get("LPRG") + 1e-6, "K={k}: G slower than LPRG");
        assert!(
            get("LPRR") >= get("LPRG"),
            "K={k}: LPRR cheaper than LPRG?!"
        );
    }
}

#[test]
fn table1_quick_prints_grid_and_marginals() {
    let out = table1(Preset::Quick, 7, 0);
    assert!(out.text.contains("Table 1"));
    assert!(out.text.contains("269,835"));
    assert!(out.text.contains("marginal LPRG/G"));
    assert!(out.csv.lines().count() > 1);
}
