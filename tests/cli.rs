//! End-to-end tests of the `dls-cli` binary.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dls-cli"))
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

fn generate_platform() -> String {
    run_ok(cli().args([
        "generate",
        "--clusters",
        "5",
        "--connectivity",
        "0.7",
        "--seed",
        "9",
    ]))
}

#[test]
fn generate_solve_pipeline_via_stdin() {
    let platform_json = generate_platform();
    assert!(platform_json.contains("\"clusters\""));

    let mut child = cli()
        .args(["solve", "--platform", "-", "--heuristic", "lprg"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(platform_json.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("objective (MaxMin):"), "{text}");
    assert!(text.contains("A_4:"));
}

#[test]
fn schedule_and_simulate_commands() {
    let platform_json = generate_platform();
    let dir = std::env::temp_dir().join("dls-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("p.json");
    std::fs::write(&path, &platform_json).unwrap();
    let path = path.to_str().unwrap();

    let sched = run_ok(cli().args(["schedule", "--platform", path, "--heuristic", "g"]));
    assert!(sched.contains("period T_p = 1000"), "{sched}");

    let sim = run_ok(cli().args([
        "simulate",
        "--platform",
        path,
        "--heuristic",
        "lprg",
        "--periods",
        "5",
    ]));
    assert!(sim.contains("efficiency"), "{sim}");
    assert!(sim.contains("local-link utilisation"));

    let dot = run_ok(cli().args(["dot", "--platform", path]));
    assert!(dot.starts_with("graph platform {"));

    let bn = run_ok(cli().args(["bottleneck", "--platform", path]));
    assert!(bn.contains("LP objective"), "{bn}");

    let bound = run_ok(cli().args([
        "solve",
        "--platform",
        path,
        "--heuristic",
        "bound",
        "--objective",
        "sum",
    ]));
    assert!(bound.contains("LP upper bound"), "{bound}");
}

#[test]
fn bad_arguments_fail_cleanly() {
    let out = cli().args(["solve"]).output().unwrap();
    assert!(!out.status.success());
    let out = cli().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let out = cli()
        .args(["generate", "--clusters", "not-a-number"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn explicit_payoffs_accepted() {
    let platform_json = generate_platform();
    let dir = std::env::temp_dir().join("dls-cli-test2");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("p.json");
    std::fs::write(&path, &platform_json).unwrap();

    let text = run_ok(cli().args([
        "solve",
        "--platform",
        path.to_str().unwrap(),
        "--payoffs",
        "1,2,0.5,1,0",
        "--objective",
        "sum",
        "--heuristic",
        "g",
    ]));
    assert!(text.contains("payoff 2"), "{text}");
}
