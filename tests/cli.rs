//! End-to-end tests of the `dls-cli` binary, driven through the shared
//! `dls-testkit` CLI helpers.

use dls_testkit::cli::{parse_json, run_expect_fail, run_ok, run_with_stdin, scratch_dir};
use dls_testkit::dls_cli;

fn generate_platform() -> String {
    run_ok(&mut dls_cli!(
        "generate",
        "--clusters",
        "5",
        "--connectivity",
        "0.7",
        "--seed",
        "9"
    ))
}

#[test]
fn generate_solve_pipeline_via_stdin() {
    let platform_json = generate_platform();
    assert!(parse_json(&platform_json).get("clusters").is_some());

    let text = run_with_stdin(
        &mut dls_cli!("solve", "--platform", "-", "--heuristic", "lprg"),
        &platform_json,
    );
    assert!(text.contains("objective (MaxMin):"), "{text}");
    assert!(text.contains("A_4:"));
}

#[test]
fn schedule_and_simulate_commands() {
    let platform_json = generate_platform();
    let path = scratch_dir("cli").join("p.json");
    std::fs::write(&path, &platform_json).unwrap();
    let path = path.to_str().unwrap();

    let sched = run_ok(&mut dls_cli!(
        "schedule",
        "--platform",
        path,
        "--heuristic",
        "g"
    ));
    assert!(sched.contains("period T_p = 1000"), "{sched}");

    let sim = run_ok(&mut dls_cli!(
        "simulate",
        "--platform",
        path,
        "--heuristic",
        "lprg",
        "--periods",
        "5"
    ));
    assert!(sim.contains("efficiency"), "{sim}");
    assert!(sim.contains("local-link utilisation"));

    let dot = run_ok(&mut dls_cli!("dot", "--platform", path));
    assert!(dot.starts_with("graph platform {"));

    let bn = run_ok(&mut dls_cli!("bottleneck", "--platform", path));
    assert!(bn.contains("LP objective"), "{bn}");

    let bound = run_ok(&mut dls_cli!(
        "solve",
        "--platform",
        path,
        "--heuristic",
        "bound",
        "--objective",
        "sum"
    ));
    assert!(bound.contains("LP upper bound"), "{bound}");
}

#[test]
fn bad_arguments_fail_cleanly() {
    run_expect_fail(&mut dls_cli!("solve"));
    run_expect_fail(&mut dls_cli!("frobnicate"));
    run_expect_fail(&mut dls_cli!("generate", "--clusters", "not-a-number"));
    run_expect_fail(&mut dls_cli!("scenario", "--catalog", "no-such-entry"));
    run_expect_fail(&mut dls_cli!("scenario", "--clusters", "4"));
}

#[test]
fn scenario_catalog_and_trace_runs() {
    // Catalog entry → JSON report with the scenario metrics.
    let json = run_ok(&mut dls_cli!(
        "scenario",
        "--catalog",
        "drift",
        "--clusters",
        "4",
        "--seed",
        "3",
        "--policy",
        "periodic",
        "--format",
        "json"
    ));
    let report = parse_json(&json);
    assert_eq!(report.get("scenario").unwrap().as_str(), Some("drift"));
    assert!(report.get("completed_jobs").is_some());
    assert!(report.get("per_job").is_some());

    // Per-job CSV under the stale baseline.
    let csv = run_ok(&mut dls_cli!(
        "scenario",
        "--catalog",
        "steady",
        "--clusters",
        "4",
        "--policy",
        "stale",
        "--format",
        "csv"
    ));
    assert!(csv.starts_with("job,origin,arrival,size,completed,response"));
    assert!(csv.lines().count() > 1);

    // Explicit platform + trace-file route.
    let platform_json = generate_platform();
    let dir = scratch_dir("cli-scenario");
    let p_path = dir.join("p.json");
    std::fs::write(&p_path, &platform_json).unwrap();
    let trace = r#"{
        "name": "hand-trace",
        "period": 1.0,
        "jobs": [
            {"arrival": 0.0, "origin": 0, "size": 40.0, "weight": 1.0},
            {"arrival": 1.5, "origin": 2, "size": 25.0, "weight": 1.0}
        ],
        "platform_events": [
            {"time": 2.0, "change": {"SetSpeed": {"cluster": 1, "speed": 50.0}}}
        ]
    }"#;
    let t_path = dir.join("trace.json");
    std::fs::write(&t_path, trace).unwrap();
    let text = run_ok(&mut dls_cli!(
        "scenario",
        "--platform",
        p_path.to_str().unwrap(),
        "--trace",
        t_path.to_str().unwrap(),
        "--policy",
        "threshold"
    ));
    assert!(text.contains("hand-trace"), "{text}");
    assert!(text.contains("2/2 jobs"), "{text}");
}

#[test]
fn scenario_fault_entries_and_fault_traces() {
    // The fault-injection catalog entries run end to end and surface their
    // fault telemetry in the JSON report.
    for entry in ["faulty", "partition"] {
        let json = run_ok(&mut dls_cli!(
            "scenario",
            "--catalog",
            entry,
            "--clusters",
            "4",
            "--seed",
            "7",
            "--policy",
            "periodic-cold",
            "--format",
            "json"
        ));
        let report = parse_json(&json);
        assert_eq!(report.get("scenario").unwrap().as_str(), Some(entry));
        let faults = report.get("faults").unwrap().as_array().unwrap();
        assert!(!faults.is_empty(), "{entry}: no fault records");
        assert!(report.get("lost_transfer").is_some(), "{entry}");
        assert!(report.get("redispatched_load").is_some(), "{entry}");
    }

    // Hand-written traces may carry the fault-event vocabulary: a crash, a
    // rejoin, a straggler window and a backbone partition.
    let platform_json = generate_platform();
    let dir = scratch_dir("cli-fault-trace");
    let p_path = dir.join("p.json");
    std::fs::write(&p_path, &platform_json).unwrap();
    let trace = r#"{
        "name": "fault-trace",
        "period": 1.0,
        "jobs": [
            {"arrival": 0.0, "origin": 0, "size": 60.0, "weight": 1.0},
            {"arrival": 1.0, "origin": 2, "size": 30.0, "weight": 1.0}
        ],
        "platform_events": [
            {"time": 1.0, "change": {"Straggler": {"cluster": 1, "factor": 0.5, "until": 3.0}}},
            {"time": 2.0, "change": {"ClusterCrash": {"cluster": 1}}},
            {"time": 3.0, "change": {"BackbonePartition": {"groups": [[0, 1], [2, 3, 4]], "until": 5.0}}},
            {"time": 5.0, "change": {"ClusterJoin": {"cluster": 1}}}
        ]
    }"#;
    let t_path = dir.join("trace.json");
    std::fs::write(&t_path, trace).unwrap();
    let json = run_ok(&mut dls_cli!(
        "scenario",
        "--platform",
        p_path.to_str().unwrap(),
        "--trace",
        t_path.to_str().unwrap(),
        "--policy",
        "periodic-cold",
        "--format",
        "json"
    ));
    let report = parse_json(&json);
    assert_eq!(
        report.get("scenario").unwrap().as_str(),
        Some("fault-trace")
    );
    let faults = report.get("faults").unwrap().as_array().unwrap();
    assert_eq!(faults.len(), 3, "crash + straggler + partition: {json}");
    assert_eq!(
        format!("{:?}", report.get("completed_jobs").unwrap()),
        format!("{:?}", report.get("jobs").unwrap()),
        "{json}"
    );

    // Malformed fault events are rejected with a usage error, not a panic.
    let bad = r#"{
        "name": "bad-partition",
        "period": 1.0,
        "jobs": [{"arrival": 0.0, "origin": 0, "size": 10.0, "weight": 1.0}],
        "platform_events": [
            {"time": 1.0, "change": {"BackbonePartition": {"groups": [[0, 1, 2, 3, 4]], "until": 2.0}}}
        ]
    }"#;
    let b_path = dir.join("bad.json");
    std::fs::write(&b_path, bad).unwrap();
    run_expect_fail(&mut dls_cli!(
        "scenario",
        "--platform",
        p_path.to_str().unwrap(),
        "--trace",
        b_path.to_str().unwrap()
    ));
}

#[test]
fn explicit_payoffs_accepted() {
    let platform_json = generate_platform();
    let path = scratch_dir("cli-payoffs").join("p.json");
    std::fs::write(&path, &platform_json).unwrap();

    let text = run_ok(&mut dls_cli!(
        "solve",
        "--platform",
        path.to_str().unwrap(),
        "--payoffs",
        "1,2,0.5,1,0",
        "--objective",
        "sum",
        "--heuristic",
        "g"
    ));
    assert!(text.contains("payoff 2"), "{text}");
}

/// Spawns `dls-cli serve` on an ephemeral port and returns the child,
/// its parsed address, the "N tenants restored" count, and the live
/// stdout reader (kept open so the daemon never sees a closed pipe).
#[cfg(unix)]
fn spawn_serve(
    ckpt: &std::path::Path,
) -> (
    std::process::Child,
    String,
    usize,
    std::io::BufReader<std::process::ChildStdout>,
) {
    use std::io::BufRead as _;
    let mut child = dls_cli!(
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--checkpoint-dir",
        ckpt.to_str().unwrap()
    )
    .stdout(std::process::Stdio::piped())
    .stderr(std::process::Stdio::piped())
    .spawn()
    .expect("daemon spawns");
    let mut reader = std::io::BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("daemon announces its address");
    // "dls-service listening on 127.0.0.1:PORT (N tenants restored)"
    let addr = line
        .split_whitespace()
        .nth(3)
        .expect("listening line carries an address")
        .to_string();
    let restored: usize = line
        .split('(')
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .expect("listening line carries the restored count");
    (child, addr, restored, reader)
}

#[cfg(unix)]
#[test]
fn service_daemon_sigterm_checkpoints_and_restart_resumes_bit_identically() {
    use dls::scenario::JobSpec;
    use dls::service::TenantSpec;
    use dls_testkit::service::{canonical_report_json, expected_report_with_checkpoint};

    let dir = scratch_dir("service-sigterm");
    let ckpt = dir.join("ckpt");
    let _ = std::fs::remove_dir_all(&ckpt);

    let jobs = [
        JobSpec {
            arrival: 0.0,
            origin: 0,
            size: 150.0,
            weight: 1.0,
        },
        JobSpec {
            arrival: 5.0,
            origin: 1,
            size: 120.0,
            weight: 1.0,
        },
        JobSpec {
            arrival: 12.0,
            origin: 2,
            size: 90.0,
            weight: 1.0,
        },
    ];
    let spec = TenantSpec {
        clusters: 4,
        seed: 7,
        policy: "periodic".into(),
        period: 10.0,
        engine: "incremental".into(),
        record_events: false,
    };

    // First daemon life: create, submit, advance partway, then SIGTERM.
    let (mut child, addr, restored, _out) = spawn_serve(&ckpt);
    assert_eq!(restored, 0, "fresh checkpoint dir restores nothing");
    run_ok(&mut dls_cli!(
        "submit",
        "--addr",
        &addr,
        "--tenant",
        "acme",
        "--create",
        "yes",
        "--clusters",
        "4",
        "--seed",
        "7",
        "--policy",
        "periodic",
        "--jobs",
        "0:0:150,5:1:120,12:2:90",
        "--advance",
        "2"
    ));
    let kill = std::process::Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success());
    let status = child.wait().expect("daemon exits");
    assert!(
        status.success(),
        "SIGTERM must drain, checkpoint, and exit 0 (got {status})"
    );
    assert!(
        ckpt.join("acme.ckpt.json").is_file(),
        "drain wrote the tenant checkpoint"
    );

    // Second life: the tenant comes back and the remaining timeline
    // replays bit-identically to an in-process run that checkpointed at
    // the same epoch (the checkpoint fires the warm policy's barrier, so
    // the reference must take one too).
    let (mut child, addr, restored, _out) = spawn_serve(&ckpt);
    assert_eq!(restored, 1, "restart restores the checkpointed tenant");
    let listed = run_ok(&mut dls_cli!("ctl", "--addr", &addr, "--op", "list"));
    assert_eq!(listed.trim(), "acme");
    run_ok(&mut dls_cli!(
        "ctl", "--addr", &addr, "--op", "run", "--tenant", "acme"
    ));
    let json = run_ok(&mut dls_cli!(
        "query", "--addr", &addr, "--tenant", "acme", "--format", "json"
    ));
    run_ok(&mut dls_cli!("ctl", "--addr", &addr, "--op", "shutdown"));
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "shutdown op must exit 0 (got {status})");

    let resumed = dls::scenario::ScenarioReport::from_json(json.trim()).expect("query emits JSON");
    let reference = expected_report_with_checkpoint("acme", &spec, &jobs, &[], 2);
    assert_eq!(
        canonical_report_json(&resumed),
        canonical_report_json(&reference),
        "kill/restart run diverged from the checkpointing reference"
    );
}
