//! Cross-crate integration: generate → solve → validate → reconstruct →
//! simulate, for every heuristic, on a spread of random platforms.

use dls::core::heuristics::{Greedy, Heuristic, Lpr, Lprg, Lprr, UpperBound};
use dls::core::schedule::ScheduleBuilder;
use dls::core::{Objective, ProblemInstance};
use dls::platform::{PlatformConfig, PlatformGenerator};
use dls::sim::{SimConfig, Simulator};

fn instances() -> Vec<ProblemInstance> {
    let mut out = Vec::new();
    for (seed, k, conn) in [(1u64, 4usize, 0.7), (2, 6, 0.4), (3, 8, 0.2), (4, 5, 1.0)] {
        let cfg = PlatformConfig {
            num_clusters: k,
            connectivity: conn,
            ..PlatformConfig::default()
        };
        let p = PlatformGenerator::new(seed).generate(&cfg);
        for objective in [Objective::Sum, Objective::MaxMin] {
            out.push(ProblemInstance::uniform(p.clone(), objective));
        }
    }
    out
}

#[test]
fn full_pipeline_for_every_heuristic() {
    for (i, inst) in instances().iter().enumerate() {
        let bound = UpperBound::default().bound(inst).unwrap();
        let heuristics: Vec<(&str, Box<dyn Heuristic>)> = vec![
            ("G", Box::new(Greedy::default())),
            ("LPR", Box::new(Lpr::default())),
            ("LPRG", Box::new(Lprg::default())),
            ("LPRR", Box::new(Lprr::new(i as u64))),
        ];
        for (name, h) in heuristics {
            let alloc = h.solve(inst).unwrap_or_else(|e| panic!("{name}: {e}"));
            alloc
                .validate(inst)
                .unwrap_or_else(|v| panic!("{name} invalid on instance {i}: {v:?}"));
            let value = alloc.objective_value(inst);
            assert!(
                value <= bound + 1e-5 * (1.0 + bound),
                "{name} = {value} exceeds LP bound {bound} on instance {i}"
            );

            // Reconstruct and execute.
            let schedule = ScheduleBuilder::default().build(inst, &alloc).unwrap();
            schedule.validate(inst).unwrap();
            let report = Simulator::new(inst).run(&schedule, &SimConfig::default());
            assert!(
                report.achieves(0.85),
                "{name} schedule underperforms on instance {i}: {}",
                report.summary()
            );
            assert!(
                report.connection_caps_respected,
                "{name} exceeded connection caps on instance {i}"
            );
        }
    }
}

#[test]
fn dominance_chain_holds_across_instances() {
    for inst in &instances() {
        let bound = UpperBound::default().bound(inst).unwrap();
        let lpr = Lpr::default().solve(inst).unwrap().objective_value(inst);
        let lprg = Lprg::default().solve(inst).unwrap().objective_value(inst);
        let slack = 1e-6 * (1.0 + bound);
        assert!(lpr <= lprg + slack, "LPR {lpr} > LPRG {lprg}");
        assert!(lprg <= bound + slack, "LPRG {lprg} > LP {bound}");
    }
}

#[test]
fn facade_prelude_compiles_and_works() {
    use dls::prelude::*;
    let mut b = PlatformBuilder::new();
    let c0 = b.add_cluster(100.0, 50.0);
    let c1 = b.add_cluster(200.0, 80.0);
    b.connect_clusters(c0, c1, 10.0, 4);
    let platform = b.build().unwrap();
    let problem = ProblemInstance::uniform(platform, Objective::MaxMin);
    let allocation = Lprg::default().solve(&problem).unwrap();
    assert!(allocation.validate(&problem).is_ok());
    assert!(allocation.objective_value(&problem) > 0.0);
}
