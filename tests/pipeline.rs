//! Cross-crate integration: generate → solve → validate → reconstruct →
//! simulate, for every heuristic, on the shared fixture matrix.

use dls::core::heuristics::{Greedy, Heuristic, Lpr, Lprg, Lprr, UpperBound};
use dls_testkit::assertions::{
    assert_schedule_executes, assert_within_bound_of, lp_bound, ExecutionCheck,
};
use dls_testkit::fixtures;

#[test]
fn full_pipeline_for_every_heuristic() {
    for (i, inst) in fixtures::instance_matrix().iter().enumerate() {
        let bound = lp_bound(inst, &format!("instance {i}"));
        let heuristics: Vec<(&str, Box<dyn Heuristic>)> = vec![
            ("G", Box::new(Greedy::default())),
            ("LPR", Box::new(Lpr::default())),
            ("LPRG", Box::new(Lprg::default())),
            ("LPRR", Box::new(Lprr::new(i as u64))),
        ];
        for (name, h) in heuristics {
            let what = format!("{name} on instance {i}");
            let alloc = h.solve(inst).unwrap_or_else(|e| panic!("{what}: {e}"));
            assert_within_bound_of(inst, &alloc, bound, 1e-5, &what);
            // Reconstruct and execute.
            assert_schedule_executes(inst, &alloc, &ExecutionCheck::default(), &what);
        }
    }
}

#[test]
fn dominance_chain_holds_across_instances() {
    for inst in &fixtures::instance_matrix() {
        let bound = UpperBound::default().bound(inst).unwrap();
        let lpr = Lpr::default().solve(inst).unwrap().objective_value(inst);
        let lprg = Lprg::default().solve(inst).unwrap().objective_value(inst);
        let slack = 1e-6 * (1.0 + bound);
        assert!(lpr <= lprg + slack, "LPR {lpr} > LPRG {lprg}");
        assert!(lprg <= bound + slack, "LPRG {lprg} > LP {bound}");
    }
}

#[test]
fn facade_prelude_compiles_and_works() {
    use dls::prelude::*;
    let mut b = PlatformBuilder::new();
    let c0 = b.add_cluster(100.0, 50.0);
    let c1 = b.add_cluster(200.0, 80.0);
    b.connect_clusters(c0, c1, 10.0, 4);
    let platform = b.build().unwrap();
    let problem = ProblemInstance::uniform(platform, Objective::MaxMin);
    let allocation = Lprg::default().solve(&problem).unwrap();
    assert!(allocation.validate(&problem).is_ok());
    assert!(allocation.objective_value(&problem) > 0.0);
}
