//! Multi-hop stress tests: on sparse platforms routes traverse several
//! backbone links and *share* them with other routes, which is exactly
//! where Eq. 7d (per-link connection budgets) and the LP's β-elimination
//! must agree with the greedy's residual accounting.

use dls::core::heuristics::{Greedy, Heuristic, Lpr, Lprg, Lprr};
use dls::core::{Objective, ProblemInstance};
use dls::platform::{ClusterId, PlatformBuilder, PlatformConfig, PlatformGenerator};
use dls_testkit::assertions::{
    assert_schedule_executes, assert_valid_allocation, assert_within_bound_of, lp_bound,
    ExecutionCheck,
};
use dls_testkit::fixtures;

#[test]
fn line_platform_routes_are_multi_hop() {
    let inst = fixtures::line_instance(5);
    let p = &inst.platform;
    assert_eq!(
        p.route(ClusterId(0), ClusterId(4)).unwrap().len(),
        4,
        "end-to-end route must cross all four links"
    );
    // Shared-link structure: routes 0→4 and 1→3 overlap on the middle.
    let r04 = p.route(ClusterId(0), ClusterId(4)).unwrap();
    let r13 = p.route(ClusterId(1), ClusterId(3)).unwrap();
    assert!(r13.iter().all(|l| r04.contains(l)));
}

#[test]
fn all_heuristics_valid_on_line_platform() {
    let inst = fixtures::line_instance(5);
    let bound = lp_bound(&inst, "line platform");
    let heuristics: Vec<(&str, Box<dyn Heuristic>)> = vec![
        ("G", Box::new(Greedy::default())),
        ("LPR", Box::new(Lpr::default())),
        ("LPRG", Box::new(Lprg::default())),
        ("LPRR", Box::new(Lprr::new(3))),
    ];
    for (name, h) in heuristics {
        let alloc = h.solve(&inst).unwrap();
        assert_within_bound_of(&inst, &alloc, bound, 1e-6, name);
        // Execute it too: multi-hop schedules must still be on time.
        assert_schedule_executes(&inst, &alloc, &ExecutionCheck::default(), name);
    }
}

#[test]
fn sparse_random_platforms_share_links() {
    // Low connectivity forces long routes; heuristics must stay valid and
    // below the bound despite heavy link sharing.
    let mut saw_multi_hop = false;
    for seed in 0..8u64 {
        let cfg = PlatformConfig {
            num_clusters: 10,
            connectivity: 0.15,
            mean_max_connections: 5.0,
            ..PlatformConfig::default()
        };
        let p = PlatformGenerator::new(seed).generate(&cfg);
        let max_hops = p
            .routed_pairs()
            .iter()
            .map(|&(a, b)| p.route(a, b).unwrap().len())
            .max()
            .unwrap_or(0);
        if max_hops >= 2 {
            saw_multi_hop = true;
        }
        for objective in [Objective::Sum, Objective::MaxMin] {
            let inst = ProblemInstance::with_spread_payoffs(p.clone(), objective, 0.5, seed);
            let bound = lp_bound(&inst, &format!("seed {seed} {objective:?}"));
            for (name, alloc) in [
                ("G", Greedy::default().solve(&inst).unwrap()),
                ("LPRG", Lprg::default().solve(&inst).unwrap()),
            ] {
                let what = format!("{name} seed {seed} {objective:?}");
                assert_valid_allocation(&inst, &alloc, &what);
                assert_within_bound_of(&inst, &alloc, bound, 1e-5, &what);
            }
        }
    }
    assert!(
        saw_multi_hop,
        "test platforms never exercised multi-hop routes"
    );
}

#[test]
fn relay_router_platforms_solve_cleanly() {
    // Relay routers (Figure 2's intermediate routers) lengthen routes
    // without adding clusters.
    for seed in 0..4u64 {
        let cfg = PlatformConfig {
            num_clusters: 6,
            connectivity: 0.7,
            relay_routers: 6,
            ..PlatformConfig::default()
        };
        let p = PlatformGenerator::new(seed).generate(&cfg);
        assert!(p.num_routers > 6);
        let inst = ProblemInstance::with_spread_payoffs(p, Objective::MaxMin, 0.5, seed);
        let alloc = Lprg::default().solve(&inst).unwrap();
        let check = ExecutionCheck {
            min_efficiency: 0.9,
            ..ExecutionCheck::default()
        };
        assert_schedule_executes(&inst, &alloc, &check, &format!("LPRG relay seed {seed}"));
    }
}

#[test]
fn shared_link_budget_is_respected_exactly() {
    // Two outer clusters both shipping through one middle link with
    // max-connect = 2: total β across both routes can never exceed 2.
    let mut b = PlatformBuilder::new();
    let left = b.add_cluster(10.0, 100.0);
    let right = b.add_cluster(10.0, 100.0);
    let hub = b.add_cluster(1000.0, 400.0);
    let far = b.add_cluster(1000.0, 400.0);
    b.connect_clusters(left, hub, 30.0, 9);
    b.connect_clusters(right, hub, 30.0, 9);
    b.connect_clusters(hub, far, 30.0, 2); // the scarce shared link
    let inst = ProblemInstance::new(
        b.build().unwrap(),
        vec![1.0, 1.0, 0.0, 0.0],
        Objective::MaxMin,
    )
    .unwrap();
    for (name, alloc) in [
        ("G", Greedy::default().solve(&inst).unwrap()),
        ("LPRG", Lprg::default().solve(&inst).unwrap()),
        ("LPRR", Lprr::new(1).solve(&inst).unwrap()),
    ] {
        assert_valid_allocation(&inst, &alloc, name);
        let shared_use = alloc.beta(ClusterId(0), ClusterId(3))
            + alloc.beta(ClusterId(1), ClusterId(3))
            + alloc.beta(ClusterId(3), ClusterId(0))
            + alloc.beta(ClusterId(3), ClusterId(1))
            + alloc.beta(ClusterId(2), ClusterId(3))
            + alloc.beta(ClusterId(3), ClusterId(2));
        assert!(shared_use <= 2, "shared link oversubscribed: {shared_use}");
    }
}
