//! Cross-crate integration: the §4 NP-completeness reduction against the
//! exact solver, the LP bound and the heuristics.

use dls::core::heuristics::{ExactMilp, Greedy, Heuristic, Lprg, UpperBound};
use dls::npc::{
    greedy_independent_set, independent_set_from_allocation, is_independent_set,
    max_independent_set, reduce, Graph,
};

#[test]
fn reduction_theorem_on_random_graphs() {
    for seed in 0..10 {
        let n = 4 + (seed as usize % 5);
        let g = Graph::random(n, 0.4, 7000 + seed);
        let red = reduce(&g);
        red.verify_lemma1().unwrap();
        let inst = red.instance();

        let mis = max_independent_set(&g);
        // Forward direction: the independent set's allocation is valid and
        // achieves |V'|.
        let alloc = red.allocation_for_set(&mis);
        alloc.validate(&inst).unwrap();
        assert_eq!(alloc.objective_value(&inst), mis.len() as f64);

        // Exact optimum equals α(G) and maps back to an independent set.
        let exact = ExactMilp::default().solve(&inst).unwrap();
        assert!((exact.objective_value(&inst) - mis.len() as f64).abs() < 1e-6);
        let recovered = independent_set_from_allocation(&red, &exact);
        assert!(is_independent_set(&g, &recovered));
        assert_eq!(recovered.len(), mis.len());
    }
}

#[test]
fn heuristics_bounded_by_alpha_g() {
    // Polynomial heuristics cannot beat the exact optimum α(G) (they may
    // fall short — that is the NP-hardness bite).
    for seed in 0..6 {
        let g = Graph::random(6, 0.5, 9000 + seed);
        let red = reduce(&g);
        let inst = red.instance();
        let alpha_g = max_independent_set(&g).len() as f64;
        for h in [&Greedy::default() as &dyn Heuristic, &Lprg::default()] {
            let v = h.solve(&inst).unwrap().objective_value(&inst);
            assert!(
                v <= alpha_g + 1e-6,
                "{} achieved {v} > α(G) = {alpha_g}",
                h.name()
            );
        }
        // The LP bound sits between α(G) and n (fractional relaxation of
        // independent set).
        let lp = UpperBound::default().bound(&inst).unwrap();
        assert!(lp >= alpha_g - 1e-6);
        assert!(lp <= g.num_vertices() as f64 + 1e-6);
    }
}

#[test]
fn greedy_mis_matches_reduction_greedy_quality_direction() {
    // Sanity link between the two greedy worlds: a graph where the greedy
    // independent set is maximum (a star) should also let the scheduling
    // heuristics reach α(G) — the star reduction has no sharing conflicts
    // among the leaves.
    let star = Graph::new(6, (1..6).map(|v| (0, v))).unwrap();
    assert_eq!(greedy_independent_set(&star).len(), 5);
    let red = reduce(&star);
    let inst = red.instance();
    let lprg = Lprg::default().solve(&inst).unwrap().objective_value(&inst);
    assert!(lprg >= 4.0 - 1e-6, "LPRG only reached {lprg} on the star");
}
