//! Smoke test: every file in `examples/` compiles, runs successfully, and —
//! because all examples fix their seeds — produces byte-identical output on
//! repeated runs.
//!
//! The examples are built once through a nested cargo invocation with a
//! separate `CARGO_TARGET_DIR` (`target-smoke/`): the outer `cargo test`
//! holds the main target directory's build lock, so reusing it would
//! deadlock. After that single build, the example binaries are executed
//! directly — no per-run cargo overhead.

use std::path::PathBuf;
use std::process::Command;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn example_names() -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(workspace_root().join("examples"))
        .expect("examples/ exists")
        .filter_map(|entry| {
            let path = entry.expect("readable dir entry").path();
            (path.extension()? == "rs")
                .then(|| path.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    names.sort();
    names
}

/// Builds all examples into `target-smoke/` and returns the binary dir.
fn build_examples() -> PathBuf {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let smoke_target = workspace_root().join("target-smoke");
    let out = Command::new(cargo)
        .args(["build", "--quiet", "--offline", "--examples"])
        .current_dir(workspace_root())
        .env("CARGO_TARGET_DIR", &smoke_target)
        .output()
        .expect("cargo spawns");
    assert!(
        out.status.success(),
        "examples failed to build:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    smoke_target.join("debug").join("examples")
}

fn run_example(bin_dir: &std::path::Path, name: &str) -> String {
    let out = Command::new(bin_dir.join(name))
        .current_dir(workspace_root())
        .output()
        .expect("example binary spawns");
    assert!(
        out.status.success(),
        "example `{name}` failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn every_example_runs_and_is_deterministic() {
    let names = example_names();
    assert!(
        names.len() >= 7,
        "expected the seed examples to be present, found {names:?}"
    );
    let bin_dir = build_examples();
    for name in &names {
        let first = run_example(&bin_dir, name);
        assert!(!first.trim().is_empty(), "example `{name}` printed nothing");
        let second = run_example(&bin_dir, name);
        assert_eq!(
            first, second,
            "example `{name}` is not deterministic — fix its seed"
        );
    }
}
