//! Dual-value tests: known textbook duals, complementary slackness,
//! engine agreement, and marginal-value (shadow price) verification by
//! re-solving with a perturbed right-hand side.

use dls_lp::{solve_with, ConstraintOp, DenseSimplex, Engine, Model, RevisedSimplex, Sense};
use proptest::prelude::*;

#[test]
fn textbook_duals() {
    // max 3x + 2y  s.t.  (c1) x + y ≤ 4,  (c2) x + 3y ≤ 6.
    // Optimum x = 4, y = 0: c1 binding (dual 3), c2 slack (dual 0).
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var("x", 0.0, f64::INFINITY);
    let y = m.add_var("y", 0.0, f64::INFINITY);
    m.set_objective_coef(x, 3.0);
    m.set_objective_coef(y, 2.0);
    let c1 = m.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
    let c2 = m.add_constraint(vec![(x, 1.0), (y, 3.0)], ConstraintOp::Le, 6.0);
    for engine in [Engine::Dense, Engine::Revised, Engine::Sparse] {
        let sol = solve_with(&m, engine).unwrap();
        assert!((sol.dual(c1).unwrap() - 3.0).abs() < 1e-7, "{engine:?}");
        assert!(sol.dual(c2).unwrap().abs() < 1e-7, "{engine:?}");
    }
}

#[test]
fn minimisation_duals() {
    // min 2x + 3y  s.t.  x + y ≥ 10 (binding, dual 2), x ≥ 3 (slack at
    // optimum x = 10).
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_var("x", 0.0, f64::INFINITY);
    let y = m.add_var("y", 0.0, f64::INFINITY);
    m.set_objective_coef(x, 2.0);
    m.set_objective_coef(y, 3.0);
    let c1 = m.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 10.0);
    let c2 = m.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 3.0);
    let sol = DenseSimplex::default().solve(&m).unwrap();
    assert!((sol.dual(c1).unwrap() - 2.0).abs() < 1e-7);
    assert!(sol.dual(c2).unwrap().abs() < 1e-7);
}

#[test]
fn shadow_price_predicts_objective_change() {
    // Bump the binding rhs by δ and compare against the dual prediction.
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var("x", 0.0, f64::INFINITY);
    let y = m.add_var("y", 0.0, f64::INFINITY);
    m.set_objective_coef(x, 5.0);
    m.set_objective_coef(y, 4.0);
    let c1 = m.add_constraint(vec![(x, 6.0), (y, 4.0)], ConstraintOp::Le, 24.0);
    let c2 = m.add_constraint(vec![(x, 1.0), (y, 2.0)], ConstraintOp::Le, 6.0);
    let base = DenseSimplex::default().solve(&m).unwrap();
    let delta = 0.05; // small enough to stay within the optimal basis
    for (con, rhs) in [(c1, 24.0), (c2, 6.0)] {
        let mut bumped = m.clone();
        bumped.set_rhs(con, rhs + delta);
        let sol = DenseSimplex::default().solve(&bumped).unwrap();
        let predicted = base.objective + base.dual(con).unwrap() * delta;
        assert!(
            (sol.objective - predicted).abs() < 1e-6,
            "constraint {con:?}: predicted {predicted}, got {}",
            sol.objective
        );
    }
}

fn random_feasible_lp() -> impl Strategy<Value = Model> {
    (2usize..6, 1usize..6).prop_flat_map(|(n, m_rows)| {
        let coefs = proptest::collection::vec(proptest::collection::vec(-4.0f64..4.0, n), m_rows);
        let witness = proptest::collection::vec(0.0f64..2.0, n);
        let slack = proptest::collection::vec(0.5f64..3.0, m_rows);
        let obj = proptest::collection::vec(-2.0f64..2.0, n);
        (coefs, witness, slack, obj).prop_map(move |(coefs, witness, slack, obj)| {
            // Upper bounds are added as explicit constraint rows (not
            // variable bounds) so that strong duality holds over the
            // reported constraint duals alone: max c·x, Ax ≤ b, x ≥ 0 has
            // optimal value y·b.
            let mut model = Model::new(Sense::Maximize);
            let vars: Vec<_> = (0..n)
                .map(|j| model.add_var(format!("x{j}"), 0.0, f64::INFINITY))
                .collect();
            for (j, &v) in vars.iter().enumerate() {
                model.set_objective_coef(v, obj[j]);
                model.add_constraint(vec![(v, 1.0)], ConstraintOp::Le, 5.0);
            }
            for i in 0..m_rows {
                let at_witness: f64 = coefs[i].iter().zip(&witness).map(|(a, x)| a * x).sum();
                model.add_constraint(
                    vars.iter()
                        .enumerate()
                        .map(|(j, &v)| (v, coefs[i][j]))
                        .collect::<Vec<_>>(),
                    ConstraintOp::Le,
                    at_witness + slack[i],
                );
            }
            model
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn complementary_slackness_and_dual_signs(m in random_feasible_lp()) {
        let sol = DenseSimplex::default().solve(&m).unwrap();
        prop_assume!(sol.is_optimal());
        prop_assert_eq!(sol.duals.len(), m.num_constraints());
        for (i, dual) in sol.duals.iter().enumerate() {
            let con = dls_lp::ConstraintId::from_index(i);
            let _ = con;
            // Maximisation with ≤ rows: duals are non-negative.
            prop_assert!(*dual >= -1e-7, "negative dual {dual} on ≤ row");
        }
        // Complementary slackness: dual > 0 ⇒ the row is binding.
        // (Recompute each row's lhs from the model's public API.)
        for i in 0..m.num_constraints() {
            let dual = sol.duals[i];
            if dual > 1e-6 {
                // Perturb the rhs downward: objective must drop ≈ dual·δ,
                // which indirectly certifies the row binds.
                // Cheap binding check via rhs perturbation:
                let con = dls_lp::ConstraintId::from_index(i);
                let mut tight = m.clone();
                tight.set_rhs(con, m.rhs(con) - 1e-4);
                let sol2 = DenseSimplex::default().solve(&tight).unwrap();
                if sol2.is_optimal() {
                    prop_assert!(sol2.objective <= sol.objective + 1e-7,
                        "objective rose when tightening a positively-priced row");
                }
            }
        }
    }

    #[test]
    fn strong_duality_and_engine_agreement(m in random_feasible_lp()) {
        let d = DenseSimplex::default().solve(&m).unwrap();
        let r = RevisedSimplex::default().solve(&m).unwrap();
        prop_assume!(d.is_optimal() && r.is_optimal());
        // All rows are explicit ≤ constraints over x ≥ 0, so strong duality
        // says y·b equals the primal optimum — for both engines, even if
        // they landed on different degenerate bases.
        let dual_obj = |duals: &[f64]| -> f64 {
            (0..m.num_constraints())
                .map(|i| duals[i] * m.rhs(dls_lp::ConstraintId::from_index(i)))
                .sum()
        };
        let slack = 1e-6 * (1.0 + d.objective.abs());
        prop_assert!((dual_obj(&d.duals) - d.objective).abs() < slack,
            "dense strong duality: y·b {} vs obj {}", dual_obj(&d.duals), d.objective);
        prop_assert!((dual_obj(&r.duals) - r.objective).abs() < slack,
            "revised strong duality: y·b {} vs obj {}", dual_obj(&r.duals), r.objective);
    }
}
