//! Property tests for the LP/MILP solvers.
//!
//! The generators construct problems that are feasible by design (the
//! right-hand side is derived from a known interior point) and bounded by
//! design (box constraints), so the solvers must return `Optimal` and the
//! returned point must satisfy every constraint. The dense and revised
//! engines are cross-checked for objective agreement, and branch-and-bound
//! incumbents are checked for integrality and consistency with the
//! relaxation bound.

use dls_lp::{
    BranchBound, BranchBoundConfig, ConstraintId, ConstraintOp, DenseSimplex, Model,
    RevisedSimplex, Sense, Status, VarId, WarmSimplex,
};
use proptest::prelude::*;

/// A random feasible-bounded LP together with the witness point that proves
/// feasibility.
#[derive(Debug, Clone)]
struct RandomLp {
    model: Model,
    witness: Vec<f64>,
}

fn random_lp(max_vars: usize, max_cons: usize) -> impl Strategy<Value = RandomLp> {
    (2..=max_vars, 1..=max_cons).prop_flat_map(|(n, m)| {
        let coefs = proptest::collection::vec(proptest::collection::vec(-5.0f64..5.0, n), m);
        let witness = proptest::collection::vec(0.0f64..3.0, n);
        let slack = proptest::collection::vec(0.0f64..4.0, m);
        let obj = proptest::collection::vec(-3.0f64..3.0, n);
        let ub = proptest::collection::vec(3.0f64..10.0, n);
        (coefs, witness, slack, obj, ub).prop_map(move |(coefs, witness, slack, obj, ub)| {
            let mut model = Model::new(Sense::Maximize);
            let vars: Vec<_> = (0..n)
                .map(|j| model.add_var(format!("x{j}"), 0.0, ub[j]))
                .collect();
            for (j, &v) in vars.iter().enumerate() {
                model.set_objective_coef(v, obj[j]);
            }
            for i in 0..m {
                let lhs_at_witness: f64 = coefs[i].iter().zip(&witness).map(|(a, x)| a * x).sum();
                let terms: Vec<_> = vars
                    .iter()
                    .enumerate()
                    .map(|(j, &v)| (v, coefs[i][j]))
                    .collect();
                // witness satisfies `lhs ≤ lhs(witness) + slack` strictly.
                model.add_constraint(terms, ConstraintOp::Le, lhs_at_witness + slack[i]);
            }
            RandomLp { model, witness }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dense_solution_is_feasible_and_optimal(lp in random_lp(8, 8)) {
        let sol = DenseSimplex::default().solve(&lp.model).unwrap();
        prop_assert_eq!(sol.status, Status::Optimal);
        prop_assert!(lp.model.check_feasible(&sol.values, 1e-6).is_ok(),
            "{:?}", lp.model.check_feasible(&sol.values, 1e-6));
        // At least as good as the witness.
        let witness_obj = lp.model.objective_value(&lp.witness);
        prop_assert!(sol.objective >= witness_obj - 1e-6);
    }

    #[test]
    fn engines_agree(lp in random_lp(7, 7)) {
        let d = DenseSimplex::default().solve(&lp.model).unwrap();
        let r = RevisedSimplex::default().solve(&lp.model).unwrap();
        prop_assert_eq!(d.status, Status::Optimal);
        prop_assert_eq!(r.status, Status::Optimal);
        prop_assert!((d.objective - r.objective).abs() <= 1e-5 * (1.0 + d.objective.abs()),
            "dense {} vs revised {}", d.objective, r.objective);
        prop_assert!(lp.model.check_feasible(&r.values, 1e-6).is_ok());
    }

    #[test]
    fn branch_and_bound_within_relaxation(lp in random_lp(6, 5)) {
        // Mark a prefix of variables integral.
        let mut milp = lp.model.clone();
        let n_int = milp.num_vars() / 2;
        let vars: Vec<_> = milp.var_ids().collect();
        for &var in vars.iter().take(n_int) {
            milp.set_integer(var, true);
        }
        let relax = DenseSimplex::default().solve(&lp.model).unwrap();
        let exact = BranchBound::default().solve(&milp).unwrap();
        if exact.status == Status::Optimal {
            // Objective cannot exceed the relaxation (maximisation).
            prop_assert!(exact.objective <= relax.objective + 1e-5 * (1.0 + relax.objective.abs()));
            // Integer variables are integral.
            for v in milp.integer_vars() {
                let x = exact.values[v.index()];
                prop_assert!((x - x.round()).abs() < 1e-6);
            }
            prop_assert!(milp.check_feasible(&exact.values, 1e-6).is_ok());
        }
    }

    #[test]
    fn warm_context_tracks_cold_under_random_patches(
        lp in random_lp(6, 6),
        patches in proptest::collection::vec(
            (0usize..3, 0usize..6, 0usize..6, 0.1f64..3.0), 1..12),
    ) {
        // Replay a random sequence of in-place deltas (bound tightenings,
        // rhs nudges, coefficient changes) through a WarmSimplex with the
        // cold cross-check oracle armed: every warm solve must match a cold
        // solve of the same model, bit-for-bit in status and to tolerance
        // in objective — the oracle itself returns an error otherwise.
        let mut warm = WarmSimplex::new(lp.model.clone(), RevisedSimplex::default()).unwrap();
        warm.check_against_cold = true;
        prop_assert_eq!(warm.solve().unwrap().status, Status::Optimal);
        for (kind, vi, ci, mag) in patches {
            let var = VarId::from_index(vi % warm.model().num_vars());
            let con = ConstraintId::from_index(ci % warm.model().num_constraints());
            match kind {
                0 => {
                    // Tighten the variable's upper bound (stays finite).
                    let (lo, up) = warm.model().bounds(var);
                    let new_up = lo + (up - lo) * (mag / 3.0).min(1.0);
                    warm.set_var_bounds(var, lo, new_up).unwrap();
                }
                1 => {
                    let rhs = warm.model().rhs(con);
                    // Both tightening and relaxing directions.
                    warm.set_rhs(con, rhs + (mag - 1.5)).unwrap();
                }
                _ => {
                    let old = warm.model().coefficient(con, var);
                    // Change, zero out, or introduce a coefficient.
                    let new = if mag < 0.8 { 0.0 } else { old + mag - 2.0 };
                    warm.set_coefficient(con, var, new).unwrap();
                }
            }
            // Status may legitimately become Infeasible (rhs pushed below
            // what the bounds allow); the oracle check covers that too.
            let sol = warm.solve().unwrap();
            if sol.status == Status::Optimal {
                prop_assert!(warm.model().check_feasible(&sol.values, 1e-6).is_ok(),
                    "{:?}", warm.model().check_feasible(&sol.values, 1e-6));
            }
        }
    }

    #[test]
    fn solve_warm_matches_cold_after_tightening(lp in random_lp(6, 6), frac in 0.0f64..1.0) {
        // Basis snapshot / restore across a model rebuild: tighten one
        // bounded variable and re-solve from the old optimal basis.
        let solver = RevisedSimplex::default();
        let (cold0, basis) = solver.solve_with_basis(&lp.model).unwrap();
        prop_assert_eq!(cold0.status, Status::Optimal);
        let Some(basis) = basis else { return Ok(()); };
        let mut child = lp.model.clone();
        let var = VarId::from_index(0);
        let (lo, up) = child.bounds(var);
        child.set_bounds(var, lo, lo + (up - lo) * frac);
        let (warm_sol, _) = solver.solve_warm(&child, &basis).unwrap();
        let cold = DenseSimplex::default().solve(&child).unwrap();
        prop_assert_eq!(warm_sol.status, cold.status);
        if cold.status == Status::Optimal {
            prop_assert!((warm_sol.objective - cold.objective).abs()
                <= 1e-5 * (1.0 + cold.objective.abs()),
                "warm {} vs cold {}", warm_sol.objective, cold.objective);
            prop_assert!(child.check_feasible(&warm_sol.values, 1e-6).is_ok());
        }
    }

    #[test]
    fn warm_branch_and_bound_matches_cold(lp in random_lp(6, 5)) {
        let mut milp = lp.model.clone();
        let vars: Vec<_> = milp.var_ids().collect();
        for &var in vars.iter().take(milp.num_vars() / 2 + 1) {
            milp.set_integer(var, true);
        }
        let warm = BranchBound::default().solve(&milp).unwrap();
        let cold = BranchBound::new(BranchBoundConfig {
            warm_start: false,
            ..BranchBoundConfig::default()
        }).solve(&milp).unwrap();
        prop_assert_eq!(warm.status, cold.status);
        if warm.status == Status::Optimal {
            prop_assert!((warm.objective - cold.objective).abs()
                <= 1e-5 * (1.0 + cold.objective.abs()),
                "warm {} vs cold {}", warm.objective, cold.objective);
            prop_assert!(milp.check_feasible(&warm.values, 1e-6).is_ok());
        }
    }

    #[test]
    fn equality_rows_solved_consistently(
        n in 2usize..5,
        seedvals in proptest::collection::vec(0.1f64..2.0, 5),
    ) {
        // Σ x_j = Σ witness_j with box bounds: both engines must agree.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..n).map(|j| m.add_var(format!("x{j}"), 0.0, 4.0)).collect();
        let total: f64 = seedvals.iter().take(n).sum();
        for (j, &v) in vars.iter().enumerate() {
            m.set_objective_coef(v, (j + 1) as f64);
        }
        m.add_constraint(vars.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(), ConstraintOp::Eq, total);
        let d = DenseSimplex::default().solve(&m).unwrap();
        let r = RevisedSimplex::default().solve(&m).unwrap();
        prop_assert_eq!(d.status, Status::Optimal);
        prop_assert!((d.objective - r.objective).abs() < 1e-6);
        let sum: f64 = d.values.iter().sum();
        prop_assert!((sum - total).abs() < 1e-6);
    }
}
