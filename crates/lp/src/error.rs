//! Error type shared by the LP/MILP solvers.

use std::fmt;

/// Errors surfaced by model construction and the solvers.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field meanings are given per variant
pub enum LpError {
    /// A coefficient, bound or right-hand side was NaN/infinite where a
    /// finite value is required.
    NotFinite(&'static str),
    /// A variable id referenced a different model.
    BadVariable,
    /// Lower bound exceeds upper bound.
    EmptyDomain { var: usize, lo: f64, up: f64 },
    /// The simplex hit its iteration limit before reaching optimality —
    /// almost always a symptom of numerical trouble on a degenerate model.
    IterationLimit { iterations: usize },
    /// Branch-and-bound exhausted its node budget before proving optimality.
    NodeLimit { explored: usize },
    /// Basis refactorisation failed (singular basis), a numerical breakdown.
    SingularBasis,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::NotFinite(what) => write!(f, "non-finite value in {what}"),
            LpError::BadVariable => write!(f, "variable does not belong to this model"),
            LpError::EmptyDomain { var, lo, up } => {
                write!(f, "variable {var} has empty domain [{lo}, {up}]")
            }
            LpError::IterationLimit { iterations } => {
                write!(
                    f,
                    "simplex iteration limit reached after {iterations} iterations"
                )
            }
            LpError::NodeLimit { explored } => {
                write!(
                    f,
                    "branch-and-bound node limit reached after {explored} nodes"
                )
            }
            LpError::SingularBasis => write!(f, "singular basis during refactorisation"),
        }
    }
}

impl std::error::Error for LpError {}
