//! Error type shared by the LP/MILP solvers.

use std::fmt;

/// Errors surfaced by model construction and the solvers.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field meanings are given per variant
pub enum LpError {
    /// A coefficient, bound or right-hand side was NaN/infinite where a
    /// finite value is required.
    NotFinite(&'static str),
    /// A variable id referenced a different model.
    BadVariable,
    /// Lower bound exceeds upper bound.
    EmptyDomain { var: usize, lo: f64, up: f64 },
    /// The simplex hit its iteration limit before reaching optimality —
    /// almost always a symptom of numerical trouble on a degenerate model.
    IterationLimit { iterations: usize },
    /// Branch-and-bound exhausted its node budget before proving optimality.
    NodeLimit { explored: usize },
    /// Basis refactorisation failed (singular basis), a numerical breakdown.
    SingularBasis,
    /// A phase diverged in a way that is impossible for a well-posed problem
    /// (e.g. an "unbounded" phase-1, whose objective is bounded below by 0),
    /// or an internal factorisation invariant broke (e.g. the sparse LU's
    /// Markowitz pivot search found no candidate while active columns
    /// remained — `"markowitz pivot search"`).
    NumericalBreakdown(&'static str),
    /// A warm-start patch would change the standard-form layout (e.g. turning
    /// an infinite variable bound finite adds a bound row); the caller must
    /// rebuild from scratch instead.
    StructuralChange(&'static str),
    /// The warm-started solve disagreed with the cold cross-check oracle.
    WarmColdMismatch { warm: f64, cold: f64 },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::NotFinite(what) => write!(f, "non-finite value in {what}"),
            LpError::BadVariable => write!(f, "variable does not belong to this model"),
            LpError::EmptyDomain { var, lo, up } => {
                write!(f, "variable {var} has empty domain [{lo}, {up}]")
            }
            LpError::IterationLimit { iterations } => {
                write!(
                    f,
                    "simplex iteration limit reached after {iterations} iterations"
                )
            }
            LpError::NodeLimit { explored } => {
                write!(
                    f,
                    "branch-and-bound node limit reached after {explored} nodes"
                )
            }
            LpError::SingularBasis => write!(f, "singular basis during refactorisation"),
            LpError::NumericalBreakdown(what) => {
                write!(f, "numerical breakdown in {what}")
            }
            LpError::StructuralChange(what) => {
                write!(f, "patch changes the standard-form layout: {what}")
            }
            LpError::WarmColdMismatch { warm, cold } => {
                write!(
                    f,
                    "warm-started solve ({warm}) disagrees with cold oracle ({cold})"
                )
            }
        }
    }
}

impl std::error::Error for LpError {}
