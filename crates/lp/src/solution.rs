//! Solver results.

use crate::model::{ConstraintId, VarId};
use serde::{Deserialize, Serialize};
use std::ops::Index;

/// Termination status of an LP/MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// An optimal solution was found (within tolerances).
    Optimal,
    /// The constraint system admits no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

/// Result of a solve: a status, the objective value in the *original*
/// (user-facing) sense, and one value per model variable.
///
/// For `Infeasible`/`Unbounded` results the `values` vector is empty and
/// `objective` is `NaN`; callers should check `status` first.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Solution {
    /// Termination status.
    pub status: Status,
    /// Objective value (meaningful only when `status == Optimal`).
    pub objective: f64,
    /// Value per variable, indexed by [`VarId::index`].
    pub values: Vec<f64>,
    /// Dual value per model constraint (sensitivity of the objective to the
    /// constraint's right-hand side, in the model's optimisation sense).
    /// Empty for infeasible/unbounded results and for mixed-integer solves,
    /// where LP duality does not apply.
    pub duals: Vec<f64>,
    /// Simplex iterations spent (summed over phases, and over B&B nodes for
    /// mixed-integer solves).
    pub iterations: usize,
}

impl Solution {
    /// An infeasible result.
    pub fn infeasible(iterations: usize) -> Self {
        Solution {
            status: Status::Infeasible,
            objective: f64::NAN,
            values: Vec::new(),
            duals: Vec::new(),
            iterations,
        }
    }

    /// An unbounded result.
    pub fn unbounded(iterations: usize) -> Self {
        Solution {
            status: Status::Unbounded,
            objective: f64::NAN,
            values: Vec::new(),
            duals: Vec::new(),
            iterations,
        }
    }

    /// Value of a variable (panics on infeasible/unbounded results).
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// Dual value of a constraint, if duals were produced.
    pub fn dual(&self, con: ConstraintId) -> Option<f64> {
        self.duals.get(con.index()).copied()
    }

    /// `true` iff the solve proved optimality.
    pub fn is_optimal(&self) -> bool {
        self.status == Status::Optimal
    }
}

impl Index<VarId> for Solution {
    type Output = f64;
    fn index(&self, var: VarId) -> &f64 {
        &self.values[var.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Solution::infeasible(3).status, Status::Infeasible);
        assert_eq!(Solution::unbounded(0).status, Status::Unbounded);
        assert!(Solution::infeasible(0).objective.is_nan());
    }
}
