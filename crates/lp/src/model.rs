//! The modelling layer: variables, linear expressions, constraints.

use crate::LpError;
use serde::{Deserialize, Serialize};

/// Handle to a decision variable of a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Reconstructs a handle from a dense index (variables are numbered in
    /// declaration order).
    pub fn from_index(index: usize) -> Self {
        VarId(index as u32)
    }

    /// Index of the variable inside its model.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Handle to a constraint of a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConstraintId(pub(crate) u32);

impl ConstraintId {
    /// Reconstructs a handle from a dense index (constraints are numbered
    /// in insertion order; useful when iterating `Solution::duals`).
    pub fn from_index(index: usize) -> Self {
        ConstraintId(index as u32)
    }

    /// Index of the constraint inside its model.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstraintOp {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

/// Optimisation direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    /// Maximise the objective.
    Maximize,
    /// Minimise the objective.
    Minimize,
}

/// A linear expression as a sparse list of `(variable, coefficient)` terms.
/// Repeated variables are allowed; they are summed during lowering.
pub type LinExpr = Vec<(VarId, f64)>;

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Variable {
    pub name: String,
    pub lo: f64,
    pub up: f64,
    pub obj: f64,
    pub integer: bool,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Constraint {
    pub terms: LinExpr,
    pub op: ConstraintOp,
    pub rhs: f64,
}

/// A linear (or mixed-integer, when variables are marked integral) program.
///
/// Variables carry bounds `lo ≤ x ≤ up` (`lo` must be finite — every
/// variable of the divisible-load formulation is non-negative; free
/// variables can be modelled as a difference of two). Constraints are
/// `Σ aᵢxᵢ {≤,≥,=} b` with finite coefficients and right-hand side.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Model {
    sense: Sense,
    pub(crate) vars: Vec<Variable>,
    pub(crate) cons: Vec<Constraint>,
}

impl Model {
    /// Creates an empty model with the given optimisation sense.
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            vars: Vec::new(),
            cons: Vec::new(),
        }
    }

    /// Optimisation direction.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Adds a continuous variable with bounds `[lo, up]` (`up` may be
    /// `f64::INFINITY`) and zero objective coefficient.
    pub fn add_var(&mut self, name: impl Into<String>, lo: f64, up: f64) -> VarId {
        debug_assert!(lo.is_finite(), "lower bounds must be finite");
        debug_assert!(!up.is_nan());
        let id = VarId(self.vars.len() as u32);
        self.vars.push(Variable {
            name: name.into(),
            lo,
            up,
            obj: 0.0,
            integer: false,
        });
        id
    }

    /// Adds an integer variable with bounds `[lo, up]`.
    pub fn add_int_var(&mut self, name: impl Into<String>, lo: f64, up: f64) -> VarId {
        let id = self.add_var(name, lo, up);
        self.vars[id.index()].integer = true;
        id
    }

    /// Sets the objective coefficient of `var`.
    pub fn set_objective_coef(&mut self, var: VarId, coef: f64) {
        self.vars[var.index()].obj = coef;
    }

    /// Adds `coef` to the objective coefficient of `var`.
    pub fn add_objective_coef(&mut self, var: VarId, coef: f64) {
        self.vars[var.index()].obj += coef;
    }

    /// Adds the constraint `terms {op} rhs` and returns its handle.
    pub fn add_constraint(&mut self, terms: LinExpr, op: ConstraintOp, rhs: f64) -> ConstraintId {
        debug_assert!(rhs.is_finite());
        debug_assert!(terms.iter().all(|(_, c)| c.is_finite()));
        let id = ConstraintId(self.cons.len() as u32);
        self.cons.push(Constraint { terms, op, rhs });
        id
    }

    /// Replaces the right-hand side of an existing constraint (used by the
    /// randomized-rounding heuristic when re-solving with fixed β values).
    pub fn set_rhs(&mut self, con: ConstraintId, rhs: f64) {
        self.cons[con.index()].rhs = rhs;
    }

    /// Right-hand side of a constraint.
    pub fn rhs(&self, con: ConstraintId) -> f64 {
        self.cons[con.index()].rhs
    }

    /// Replaces the coefficient of `var` in an existing constraint (merging
    /// any duplicate terms first). A zero coefficient removes the term; a
    /// nonzero coefficient on a variable the row never mentioned adds one.
    /// Used by the warm-started LP pipeline to apply formulation deltas in
    /// place instead of rebuilding the model.
    pub fn set_coefficient(&mut self, con: ConstraintId, var: VarId, coef: f64) {
        debug_assert!(coef.is_finite());
        let terms = &mut self.cons[con.index()].terms;
        terms.retain(|&(v, _)| v != var);
        if coef != 0.0 {
            terms.push((var, coef));
        }
    }

    /// Current coefficient of `var` in a constraint (duplicate terms summed,
    /// 0.0 when the row does not mention the variable).
    pub fn coefficient(&self, con: ConstraintId, var: VarId) -> f64 {
        self.cons[con.index()]
            .terms
            .iter()
            .filter(|&&(v, _)| v == var)
            .map(|&(_, a)| a)
            .sum()
    }

    /// Tightens the bounds of a variable (used by branch-and-bound).
    pub fn set_bounds(&mut self, var: VarId, lo: f64, up: f64) {
        let v = &mut self.vars[var.index()];
        v.lo = lo;
        v.up = up;
    }

    /// Current bounds of a variable.
    pub fn bounds(&self, var: VarId) -> (f64, f64) {
        let v = &self.vars[var.index()];
        (v.lo, v.up)
    }

    /// Marks / unmarks a variable as integral.
    pub fn set_integer(&mut self, var: VarId, integer: bool) {
        self.vars[var.index()].integer = integer;
    }

    /// `true` iff the variable is integer-constrained.
    pub fn is_integer(&self, var: VarId) -> bool {
        self.vars[var.index()].integer
    }

    /// Name given to a variable at creation.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.vars[var.index()].name
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.cons.len()
    }

    /// Number of variables with a finite upper bound (each costs one extra
    /// row in standard form).
    pub fn num_upper_bounded_vars(&self) -> usize {
        self.vars.iter().filter(|v| v.up.is_finite()).count()
    }

    /// All variable ids in declaration order.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.vars.len() as u32).map(VarId)
    }

    /// Ids of all integer-constrained variables.
    pub fn integer_vars(&self) -> Vec<VarId> {
        (0..self.vars.len() as u32)
            .map(VarId)
            .filter(|v| self.vars[v.index()].integer)
            .collect()
    }

    /// Objective value of an assignment (no feasibility check).
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.vars.iter().zip(values).map(|(v, &x)| v.obj * x).sum()
    }

    /// Checks an assignment against bounds and constraints with tolerance
    /// `tol`; returns the first violation description, if any.
    pub fn check_feasible(&self, values: &[f64], tol: f64) -> Result<(), String> {
        if values.len() != self.vars.len() {
            return Err(format!(
                "assignment has {} values for {} variables",
                values.len(),
                self.vars.len()
            ));
        }
        for (j, v) in self.vars.iter().enumerate() {
            let x = values[j];
            if x < v.lo - tol || x > v.up + tol {
                return Err(format!(
                    "variable {} = {x} outside [{}, {}]",
                    v.name, v.lo, v.up
                ));
            }
        }
        for (i, c) in self.cons.iter().enumerate() {
            let lhs: f64 = c.terms.iter().map(|&(v, a)| a * values[v.index()]).sum();
            // Scale tolerance with the magnitude of the row to stay fair on
            // large right-hand sides.
            let scale = 1.0 + c.rhs.abs() + c.terms.iter().map(|(_, a)| a.abs()).sum::<f64>();
            let t = tol * scale;
            let ok = match c.op {
                ConstraintOp::Le => lhs <= c.rhs + t,
                ConstraintOp::Ge => lhs >= c.rhs - t,
                ConstraintOp::Eq => (lhs - c.rhs).abs() <= t,
            };
            if !ok {
                return Err(format!(
                    "constraint {i}: lhs {lhs} {:?} rhs {} violated",
                    c.op, c.rhs
                ));
            }
        }
        Ok(())
    }

    /// Validates the model itself (finite data, non-empty domains).
    pub fn validate(&self) -> Result<(), LpError> {
        for (j, v) in self.vars.iter().enumerate() {
            if !v.lo.is_finite() || v.up.is_nan() || !v.obj.is_finite() {
                return Err(LpError::NotFinite("variable data"));
            }
            if v.lo > v.up {
                return Err(LpError::EmptyDomain {
                    var: j,
                    lo: v.lo,
                    up: v.up,
                });
            }
        }
        for c in &self.cons {
            if !c.rhs.is_finite() {
                return Err(LpError::NotFinite("constraint rhs"));
            }
            for &(v, a) in &c.terms {
                if v.index() >= self.vars.len() {
                    return Err(LpError::BadVariable);
                }
                if !a.is_finite() {
                    return Err(LpError::NotFinite("constraint coefficient"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 5.0);
        let y = m.add_int_var("y", 0.0, f64::INFINITY);
        m.set_objective_coef(x, 2.0);
        m.add_objective_coef(x, 1.0);
        let c = m.add_constraint(vec![(x, 1.0), (y, 2.0)], ConstraintOp::Le, 10.0);

        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.num_upper_bounded_vars(), 1);
        assert!(m.is_integer(y));
        assert!(!m.is_integer(x));
        assert_eq!(m.integer_vars(), vec![y]);
        assert_eq!(m.var_name(x), "x");
        assert_eq!(m.rhs(c), 10.0);
        assert_eq!(m.objective_value(&[2.0, 3.0]), 6.0);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn feasibility_checker() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 1.0);
        m.add_constraint(vec![(x, 2.0)], ConstraintOp::Ge, 1.0);
        assert!(m.check_feasible(&[0.6], 1e-9).is_ok());
        assert!(m.check_feasible(&[0.2], 1e-9).is_err());
        assert!(m.check_feasible(&[1.5], 1e-9).is_err());
        assert!(m.check_feasible(&[], 1e-9).is_err());
    }

    #[test]
    fn validate_rejects_empty_domain() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 2.0, 1.0);
        let _ = x;
        assert!(matches!(m.validate(), Err(LpError::EmptyDomain { .. })));
    }

    #[test]
    fn coefficient_update() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 1.0);
        let y = m.add_var("y", 0.0, 1.0);
        // Duplicate terms: coefficient() sums, set_coefficient() merges.
        let c = m.add_constraint(vec![(x, 1.0), (x, 2.0)], ConstraintOp::Le, 6.0);
        assert_eq!(m.coefficient(c, x), 3.0);
        assert_eq!(m.coefficient(c, y), 0.0);
        m.set_coefficient(c, x, 5.0);
        assert_eq!(m.coefficient(c, x), 5.0);
        m.set_coefficient(c, y, -1.0);
        assert_eq!(m.coefficient(c, y), -1.0);
        m.set_coefficient(c, x, 0.0);
        assert_eq!(m.coefficient(c, x), 0.0);
        assert_eq!(m.cons[c.index()].terms.len(), 1);
    }

    #[test]
    fn bounds_update() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 5.0);
        m.set_bounds(x, 1.0, 3.0);
        assert_eq!(m.bounds(x), (1.0, 3.0));
    }
}
