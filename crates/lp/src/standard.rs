//! Lowering of a [`Model`] to computational standard form.
//!
//! Standard form is `min c·x  s.t.  A x = b,  x ≥ 0,  b ≥ 0`, obtained by
//!
//! 1. shifting every structural variable by its (finite) lower bound,
//! 2. materialising finite upper bounds as extra `≤` rows,
//! 3. adding a slack (`≤`) or surplus (`≥`) column per inequality row,
//! 4. normalising right-hand sides to be non-negative,
//! 5. adding an artificial column for every row whose slack cannot serve as
//!    the initial basic variable,
//! 6. scaling each row by its max-norm for numerical stability.
//!
//! Both the dense tableau simplex and the revised simplex consume this
//! representation; columns are stored sparsely as `(row, coefficient)` lists.

use crate::model::{ConstraintOp, Model, Sense};
use crate::LpError;

/// Provenance of a standard-form row, for mapping dual values back to the
/// user's constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RowOrigin {
    /// Row `i` lowers user constraint `constraint`; the standard row equals
    /// `sign · scale ·` (user row), so a standard-space dual `y` maps back
    /// as `y · sign · scale`.
    Constraint {
        /// Index into the model's constraint list.
        constraint: usize,
        /// Row-equilibration factor applied during lowering.
        scale: f64,
        /// −1.0 when the row was negated to make its rhs non-negative.
        sign: f64,
    },
    /// Row materialises the finite upper bound of a variable (its dual is
    /// the variable's bound multiplier, not a constraint dual).
    UpperBound {
        /// Index of the bounded variable.
        var: usize,
        /// Row sign/scale as for constraints.
        scale: f64,
        /// −1.0 when negated.
        sign: f64,
    },
}

/// A model lowered to `min c·x, A x = b, x ≥ 0, b ≥ 0`.
#[derive(Debug, Clone)]
pub struct StandardForm {
    /// Number of structural columns (one per model variable, in order).
    pub n_structural: usize,
    /// Total number of columns (structural + slack/surplus + artificial).
    pub n_cols: usize,
    /// Number of rows.
    pub m: usize,
    /// Sparse columns: `cols[j]` lists `(row, coef)` with coef ≠ 0.
    pub cols: Vec<Vec<(usize, f64)>>,
    /// Phase-2 cost vector (length `n_cols`), already negated for
    /// maximisation problems so that both senses minimise.
    pub c: Vec<f64>,
    /// Right-hand side (length `m`, all entries ≥ 0).
    pub b: Vec<f64>,
    /// Initial basis: one column index per row (slack with +1 coefficient,
    /// or an artificial).
    pub initial_basis: Vec<usize>,
    /// `is_artificial[j]` for every column.
    pub is_artificial: Vec<bool>,
    /// Lower bound shift per structural variable (`x_orig = lo + x_std`).
    pub lo_shift: Vec<f64>,
    /// Number of artificial columns (0 means the slack basis is feasible).
    pub n_artificial: usize,
    /// Provenance of each row (dual mapping).
    pub row_origin: Vec<RowOrigin>,
    /// `true` when the model maximises (duals are sign-flipped on recovery).
    pub maximise: bool,
}

/// One row in the intermediate (pre-slack) form.
struct Row {
    terms: Vec<(usize, f64)>,
    op: ConstraintOp,
    rhs: f64,
    /// `Ok(constraint index)` or `Err(variable index)` for bound rows.
    origin: Result<usize, usize>,
}

impl StandardForm {
    /// Lowers `model`, validating it first.
    pub fn from_model(model: &Model) -> Result<Self, LpError> {
        model.validate()?;
        let n = model.num_vars();
        let lo_shift: Vec<f64> = model.vars.iter().map(|v| v.lo).collect();

        // 1–2: build shifted rows, including upper-bound rows.
        let mut rows: Vec<Row> = Vec::with_capacity(model.num_constraints() + n);
        for (ci, con) in model.cons.iter().enumerate() {
            // Merge duplicate variables and apply the lower-bound shift.
            let mut dense: Vec<f64> = vec![0.0; n];
            for &(v, a) in &con.terms {
                dense[v.index()] += a;
            }
            let shift: f64 = dense.iter().zip(&lo_shift).map(|(a, lo)| a * lo).sum();
            let terms: Vec<(usize, f64)> = dense
                .iter()
                .enumerate()
                .filter(|(_, &a)| a != 0.0)
                .map(|(j, &a)| (j, a))
                .collect();
            rows.push(Row {
                terms,
                op: con.op,
                rhs: con.rhs - shift,
                origin: Ok(ci),
            });
        }
        for (j, v) in model.vars.iter().enumerate() {
            if v.up.is_finite() {
                rows.push(Row {
                    terms: vec![(j, 1.0)],
                    op: ConstraintOp::Le,
                    rhs: v.up - v.lo,
                    origin: Err(j),
                });
            }
        }

        let m = rows.len();
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut b = vec![0.0f64; m];
        let mut initial_basis = vec![usize::MAX; m];

        // 6 (scaling) is folded in: compute a per-row scale before emitting.
        // 3–5: slack/surplus and artificials are appended after structural
        // columns; we collect per-row slack info first.
        struct RowPlan {
            scale: f64,
            negate: bool,
            slack_sign: f64, // 0.0 = equality (no slack column)
        }
        let mut plans: Vec<RowPlan> = Vec::with_capacity(m);
        for row in &rows {
            let max_abs = row
                .terms
                .iter()
                .map(|(_, a)| a.abs())
                .fold(0.0f64, f64::max);
            let scale = if max_abs > 0.0 { 1.0 / max_abs } else { 1.0 };
            let rhs_scaled = row.rhs * scale;
            let negate = rhs_scaled < 0.0;
            let slack_sign = match row.op {
                ConstraintOp::Le => 1.0,
                ConstraintOp::Ge => -1.0,
                ConstraintOp::Eq => 0.0,
            };
            plans.push(RowPlan {
                scale,
                negate,
                slack_sign,
            });
        }

        let mut row_origin = Vec::with_capacity(m);
        for (i, (row, plan)) in rows.iter().zip(&plans).enumerate() {
            let sign = if plan.negate { -1.0 } else { 1.0 };
            for &(j, a) in &row.terms {
                cols[j].push((i, a * plan.scale * sign));
            }
            b[i] = row.rhs * plan.scale * sign;
            row_origin.push(match row.origin {
                Ok(constraint) => RowOrigin::Constraint {
                    constraint,
                    scale: plan.scale,
                    sign,
                },
                Err(var) => RowOrigin::UpperBound {
                    var,
                    scale: plan.scale,
                    sign,
                },
            });
        }

        // Slack/surplus columns.
        for (i, plan) in plans.iter().enumerate() {
            if plan.slack_sign != 0.0 {
                let sign = if plan.negate { -1.0 } else { 1.0 };
                let coef = plan.slack_sign * sign;
                let j = cols.len();
                cols.push(vec![(i, coef)]);
                if coef > 0.0 {
                    initial_basis[i] = j;
                }
            }
        }

        // Artificial columns for rows still lacking a basic column.
        let mut is_artificial = vec![false; cols.len()];
        let mut n_artificial = 0;
        for (i, basis) in initial_basis.iter_mut().enumerate() {
            if *basis == usize::MAX {
                let j = cols.len();
                cols.push(vec![(i, 1.0)]);
                is_artificial.push(true);
                *basis = j;
                n_artificial += 1;
            }
        }

        // Cost vector (minimisation internally).
        let flip = match model.sense() {
            Sense::Maximize => -1.0,
            Sense::Minimize => 1.0,
        };
        let mut c = vec![0.0f64; cols.len()];
        for (j, v) in model.vars.iter().enumerate() {
            c[j] = flip * v.obj;
        }

        Ok(StandardForm {
            n_structural: n,
            n_cols: cols.len(),
            m,
            cols,
            c,
            b,
            initial_basis,
            is_artificial,
            lo_shift,
            n_artificial,
            row_origin,
            maximise: model.sense() == Sense::Maximize,
        })
    }

    /// Maps standard-space duals (one per standard row, minimisation sense)
    /// back to one dual per *user constraint*, in the user's optimisation
    /// sense: for a maximisation model, the dual of a binding `≤` row is the
    /// marginal objective gain per unit of right-hand side.
    pub fn recover_duals(&self, y_std: &[f64], num_constraints: usize) -> Vec<f64> {
        let flip = if self.maximise { -1.0 } else { 1.0 };
        let mut duals = vec![0.0f64; num_constraints];
        for (i, origin) in self.row_origin.iter().enumerate() {
            if let RowOrigin::Constraint {
                constraint,
                scale,
                sign,
            } = origin
            {
                // Standard row = sign·scale·(user row): a unit increase of
                // the user rhs moves the standard rhs by sign·scale.
                duals[*constraint] = flip * y_std[i] * sign * scale;
            }
        }
        duals
    }

    /// Map from user-constraint index to standard-form row (one row per
    /// constraint, in order). Used by the warm-start layer to patch rows in
    /// place.
    pub fn constraint_rows(&self, num_constraints: usize) -> Vec<usize> {
        let mut rows = vec![usize::MAX; num_constraints];
        for (i, origin) in self.row_origin.iter().enumerate() {
            if let RowOrigin::Constraint { constraint, .. } = origin {
                rows[*constraint] = i;
            }
        }
        rows
    }

    /// Map from variable index to its upper-bound row, if the variable had a
    /// finite upper bound at lowering time.
    pub fn bound_rows(&self, num_vars: usize) -> Vec<Option<usize>> {
        let mut rows = vec![None; num_vars];
        for (i, origin) in self.row_origin.iter().enumerate() {
            if let RowOrigin::UpperBound { var, .. } = origin {
                rows[*var] = Some(i);
            }
        }
        rows
    }

    /// Row-equilibration factor and negation sign of a standard row: the
    /// standard row equals `sign · scale ·` (user row).
    pub fn row_scale_sign(&self, row: usize) -> (f64, f64) {
        match self.row_origin[row] {
            RowOrigin::Constraint { scale, sign, .. } => (scale, sign),
            RowOrigin::UpperBound { scale, sign, .. } => (scale, sign),
        }
    }

    /// Non-zero count of the basis matrix `B` formed by `basis`'s columns —
    /// the sparsity baseline against which factor fill-in is measured.
    pub(crate) fn basis_nnz(&self, basis: &[usize]) -> usize {
        basis.iter().map(|&j| self.cols[j].len()).sum()
    }

    /// Phase-1 cost vector: minimise the sum of artificial variables.
    pub fn phase1_costs(&self) -> Vec<f64> {
        self.is_artificial
            .iter()
            .map(|&a| if a { 1.0 } else { 0.0 })
            .collect()
    }

    /// Recovers original-space variable values from standard-form values of
    /// the structural columns.
    pub fn recover(&self, std_values: &[f64]) -> Vec<f64> {
        self.lo_shift
            .iter()
            .zip(std_values)
            .map(|(lo, x)| lo + x)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Model, Sense};

    #[test]
    fn slack_basis_when_all_le_nonneg() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        m.add_constraint(vec![(x, 2.0)], ConstraintOp::Le, 4.0);
        let sf = StandardForm::from_model(&m).unwrap();
        assert_eq!(sf.m, 1);
        assert_eq!(sf.n_artificial, 0);
        assert_eq!(sf.n_cols, 2); // x + slack
        assert!((sf.b[0] - 2.0).abs() < 1e-12); // scaled by 1/2
    }

    #[test]
    fn ge_rows_get_artificials() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        m.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 3.0);
        let sf = StandardForm::from_model(&m).unwrap();
        assert_eq!(sf.n_artificial, 1);
        assert_eq!(sf.n_cols, 3); // x + surplus + artificial
        assert!(sf.is_artificial[2]);
        assert_eq!(sf.initial_basis[0], 2);
    }

    #[test]
    fn negative_rhs_is_normalised() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        // x ≤ −2 is infeasible for x ≥ 0, but lowering must still produce
        // b ≥ 0 (feasibility is the solver's business).
        m.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, -2.0);
        let sf = StandardForm::from_model(&m).unwrap();
        assert!(sf.b[0] >= 0.0);
        // The flipped slack has coefficient −1 → artificial added.
        assert_eq!(sf.n_artificial, 1);
    }

    #[test]
    fn lower_bound_shift_applied() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 5.0, 8.0);
        m.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 7.0);
        let sf = StandardForm::from_model(&m).unwrap();
        // Constraint row becomes x̂ ≤ 2, bound row x̂ ≤ 3.
        assert_eq!(sf.m, 2);
        assert!((sf.b[0] - 2.0).abs() < 1e-12);
        assert!((sf.b[1] - 3.0).abs() < 1e-12);
        assert_eq!(sf.recover(&[1.0]), vec![6.0]);
    }

    #[test]
    fn duplicate_terms_are_merged() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        m.add_constraint(vec![(x, 1.0), (x, 2.0)], ConstraintOp::Le, 6.0);
        let sf = StandardForm::from_model(&m).unwrap();
        // Single merged coefficient 3, scaled to 1 with rhs 2.
        assert_eq!(sf.cols[0].len(), 1);
        assert!((sf.cols[0][0].1 - 1.0).abs() < 1e-12);
        assert!((sf.b[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn maximisation_negates_costs() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 1.0);
        m.set_objective_coef(x, 3.0);
        let sf = StandardForm::from_model(&m).unwrap();
        assert_eq!(sf.c[0], -3.0);
    }
}
