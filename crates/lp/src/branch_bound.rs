//! Best-first branch-and-bound for mixed-integer linear programs.
//!
//! The steady-state divisible-load program (Eq. 7 of the paper) mixes
//! rational `α` variables with integral connection counts `β`. The paper
//! proves optimising it is NP-hard and therefore only *bounds* the optimum
//! with the rational relaxation; this exact solver closes the loop on small
//! instances — our tests use it to verify the NP-completeness reduction
//! (maximum-independent-set size ⟺ optimal throughput) and to measure how
//! close the heuristics land on platforms where exactness is affordable.
//!
//! Standard design: LP relaxation per node, most-fractional branching,
//! best-first exploration ordered by relaxation bound, pruning against the
//! incumbent. With [`BranchBoundConfig::warm_start`] (the default) every
//! node solve runs the revised simplex warm-started from its parent's
//! optimal basis: a child differs from its parent only by one bound
//! tightening, so the dual simplex repairs the inherited basis in a few
//! pivots instead of re-running both cold phases per node.

use crate::model::{Model, Sense, VarId};
use crate::solution::{Solution, Status};
use crate::warm::Basis;
use crate::{solve_with, Engine, LpError, RevisedSimplex, INT_TOL};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Branch-and-bound configuration.
#[derive(Debug, Clone)]
pub struct BranchBoundConfig {
    /// Hard cap on explored nodes (default 100 000).
    pub max_nodes: usize,
    /// Relative optimality gap at which the search stops (default 1e-9,
    /// i.e. prove optimality).
    pub rel_gap: f64,
    /// LP engine used for node relaxations when `warm_start` is off. (An
    /// `Auto` choice is resolved once, from the root model, so one tree
    /// never straddles both engines as bound rows come and go.)
    pub engine: Engine,
    /// Warm-start node relaxations from the parent's basis (default). This
    /// forces the revised simplex, since only it can restore a [`Basis`];
    /// nodes whose snapshot is unusable silently degrade to a cold solve.
    pub warm_start: bool,
    /// Minimum root-model size (variables + constraints) at which
    /// `warm_start` actually engages. Below it every node cold-solves even
    /// with `warm_start` on: tiny relaxations finish in a handful of pivots
    /// either way, so the basis snapshot/restore bookkeeping costs more
    /// than the pivots it saves (measured ~2.5× slower on the K∈{3,4}
    /// steady-state programs). Default 64.
    pub warm_start_min_dim: usize,
}

impl Default for BranchBoundConfig {
    fn default() -> Self {
        BranchBoundConfig {
            max_nodes: 100_000,
            rel_gap: 1e-9,
            engine: Engine::Auto,
            warm_start: true,
            warm_start_min_dim: 64,
        }
    }
}

/// Exact MILP solver.
#[derive(Debug, Clone, Default)]
pub struct BranchBound {
    /// Tunables.
    pub config: BranchBoundConfig,
}

/// A node in the search tree: bound tightenings relative to the root model.
#[derive(Debug, Clone)]
struct Node {
    /// `(variable, lo, up)` overrides accumulated along the path.
    tightenings: Vec<(VarId, f64, f64)>,
    /// Parent relaxation objective — an optimistic bound for this node.
    bound: f64,
    depth: usize,
    /// Optimal basis of the parent relaxation (warm-start seed).
    basis: Option<Arc<Basis>>,
}

/// Heap ordering: best bound first (max-heap on `score`).
struct HeapEntry {
    score: f64,
    node: Node,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(Ordering::Equal)
            // Deeper nodes first among equal bounds: dives to integer
            // solutions sooner.
            .then_with(|| self.node.depth.cmp(&other.node.depth))
    }
}

impl BranchBound {
    /// Creates a solver with the given configuration.
    pub fn new(config: BranchBoundConfig) -> Self {
        BranchBound { config }
    }

    /// Solves `model` to proven optimality over its integer-marked
    /// variables.
    pub fn solve(&self, model: &Model) -> Result<Solution, LpError> {
        let int_vars = model.integer_vars();
        if int_vars.is_empty() {
            return solve_with(model, self.config.engine);
        }
        // `better(a, b)` ⇔ objective a improves on b for the model sense.
        let maximize = model.sense() == Sense::Maximize;
        let better = |a: f64, b: f64| if maximize { a > b } else { a < b };

        // Resolve an `Auto` engine once from the root: bound tightenings
        // flip infinite bounds finite and would otherwise flip the
        // size-based choice mid-tree.
        let engine = match self.config.engine {
            Engine::Auto => crate::resolve_engine(model),
            e => e,
        };
        // Warm node solves go through the revised simplex regardless of
        // `engine`; align its basis representation with the resolved choice
        // so sparse-engine trees keep the sparse factor at every node.
        let warm_solver = RevisedSimplex {
            basis_repr: match engine {
                Engine::Sparse => crate::BasisRepr::SparseLu,
                Engine::Dense | Engine::Revised => crate::BasisRepr::DenseInverse,
                Engine::Auto => crate::BasisRepr::Auto,
            },
            ..Default::default()
        };
        let warm_start = self.config.warm_start
            && model.num_vars() + model.num_constraints() >= self.config.warm_start_min_dim;

        let mut incumbent: Option<Solution> = None;
        let mut explored = 0usize;
        let mut total_iterations = 0usize;
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            score: if maximize {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            },
            node: Node {
                tightenings: Vec::new(),
                bound: if maximize {
                    f64::INFINITY
                } else {
                    f64::NEG_INFINITY
                },
                depth: 0,
                basis: None,
            },
        });

        let mut scratch = model.clone();
        while let Some(HeapEntry { node, .. }) = heap.pop() {
            explored += 1;
            if explored > self.config.max_nodes {
                // Out of budget: return the incumbent if we have one.
                return match incumbent {
                    Some(sol) => Ok(sol),
                    None => Err(LpError::NodeLimit { explored }),
                };
            }
            // Prune against the incumbent using the inherited bound.
            if let Some(inc) = &incumbent {
                if !better(
                    node.bound,
                    inc.objective * gap_factor(maximize, self.config.rel_gap),
                ) {
                    continue;
                }
            }

            // Apply tightenings onto the scratch model.
            restore_bounds(&mut scratch, model);
            let mut empty_domain = false;
            for &(v, lo, up) in &node.tightenings {
                if lo > up {
                    empty_domain = true;
                    break;
                }
                scratch.set_bounds(v, lo, up);
            }
            if empty_domain {
                continue;
            }

            // Warm path: restore the parent's basis and repair it with the
            // dual simplex (root and unusable snapshots cold-solve).
            let (relax, relax_basis) = if warm_start {
                let (sol, basis) = match node.basis.as_deref() {
                    Some(parent) => warm_solver.solve_warm(&scratch, parent)?,
                    None => warm_solver.solve_with_basis(&scratch)?,
                };
                (sol, basis.map(Arc::new))
            } else {
                (solve_with(&scratch, engine)?, None)
            };
            total_iterations += relax.iterations;
            match relax.status {
                Status::Infeasible => continue,
                Status::Unbounded => {
                    // An unbounded relaxation at the root means the MILP is
                    // unbounded (or will be cut off by integrality in a way
                    // we cannot bound) — report it.
                    return Ok(Solution::unbounded(total_iterations));
                }
                Status::Optimal => {}
            }
            if let Some(inc) = &incumbent {
                if !better(
                    relax.objective,
                    inc.objective * gap_factor(maximize, self.config.rel_gap),
                ) {
                    continue;
                }
            }

            // Find the most fractional integer variable.
            let mut branch_var = None;
            let mut worst_frac = INT_TOL;
            for &v in &int_vars {
                let x = relax.values[v.index()];
                let frac = (x - x.round()).abs();
                if frac > worst_frac {
                    worst_frac = frac;
                    branch_var = Some((v, x));
                }
            }

            match branch_var {
                None => {
                    // Integral: candidate incumbent. Snap the integer values
                    // exactly before storing. LP duals do not apply to the
                    // mixed program, so they are dropped (see `Solution`).
                    let mut sol = relax;
                    for &v in &int_vars {
                        sol.values[v.index()] = sol.values[v.index()].round();
                    }
                    sol.objective = model.objective_value(&sol.values);
                    sol.duals.clear();
                    let replace = match &incumbent {
                        None => true,
                        Some(inc) => better(sol.objective, inc.objective),
                    };
                    if replace {
                        incumbent = Some(sol);
                    }
                }
                Some((v, x)) => {
                    let (lo, up) = scratch.bounds(v);
                    let down = x.floor();
                    let up_branch = x.ceil();
                    for (new_lo, new_up) in [(lo, down), (up_branch, up)] {
                        if new_lo <= new_up {
                            let mut t = node.tightenings.clone();
                            t.push((v, new_lo, new_up));
                            heap.push(HeapEntry {
                                score: relax.objective * if maximize { 1.0 } else { -1.0 },
                                node: Node {
                                    tightenings: t,
                                    bound: relax.objective,
                                    depth: node.depth + 1,
                                    basis: relax_basis.clone(),
                                },
                            });
                        }
                    }
                }
            }
        }

        match incumbent {
            Some(mut sol) => {
                sol.iterations = total_iterations;
                Ok(sol)
            }
            None => Ok(Solution::infeasible(total_iterations)),
        }
    }
}

/// Incumbent comparison slack: a node must beat `incumbent·(1 ± gap)`.
fn gap_factor(maximize: bool, rel_gap: f64) -> f64 {
    if maximize {
        1.0 + rel_gap
    } else {
        1.0 - rel_gap
    }
}

fn restore_bounds(scratch: &mut Model, original: &Model) {
    for j in 0..original.num_vars() {
        let v = VarId(j as u32);
        let (lo, up) = original.bounds(v);
        scratch.set_bounds(v, lo, up);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Model, Sense};

    #[test]
    fn pure_lp_passthrough() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 3.5);
        m.set_objective_coef(x, 1.0);
        let s = BranchBound::default().solve(&m).unwrap();
        assert!((s.objective - 3.5).abs() < 1e-7);
    }

    #[test]
    fn knapsack_small() {
        // max 10a+6b+4c s.t. a+b+c ≤ 2 (binary) → a+b = 16.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_int_var("a", 0.0, 1.0);
        let b = m.add_int_var("b", 0.0, 1.0);
        let c = m.add_int_var("c", 0.0, 1.0);
        m.set_objective_coef(a, 10.0);
        m.set_objective_coef(b, 6.0);
        m.set_objective_coef(c, 4.0);
        m.add_constraint(vec![(a, 1.0), (b, 1.0), (c, 1.0)], ConstraintOp::Le, 2.0);
        let s = BranchBound::default().solve(&m).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 16.0).abs() < 1e-6);
        assert!((s[a] - 1.0).abs() < 1e-9);
        assert!((s[b] - 1.0).abs() < 1e-9);
        assert!(s[c].abs() < 1e-9);
    }

    #[test]
    fn integrality_forces_weaker_objective() {
        // max x s.t. 2x ≤ 5 → LP gives 2.5, MILP gives 2.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_int_var("x", 0.0, f64::INFINITY);
        m.set_objective_coef(x, 1.0);
        m.add_constraint(vec![(x, 2.0)], ConstraintOp::Le, 5.0);
        let s = BranchBound::default().solve(&m).unwrap();
        assert!((s.objective - 2.0).abs() < 1e-7);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 2x + y, x integer: x + y ≤ 3.7, x ≤ 2.2 → x=2, y=1.7, obj 5.7.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_int_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective_coef(x, 2.0);
        m.set_objective_coef(y, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 3.7);
        m.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 2.2);
        let s = BranchBound::default().solve(&m).unwrap();
        assert!((s.objective - 5.7).abs() < 1e-6, "obj {}", s.objective);
        assert!((s[x] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_milp() {
        // 0.4 ≤ x ≤ 0.6 integral → infeasible.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_int_var("x", 0.0, 1.0);
        m.set_objective_coef(x, 1.0);
        m.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 0.4);
        m.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 0.6);
        let s = BranchBound::default().solve(&m).unwrap();
        assert_eq!(s.status, Status::Infeasible);
    }

    #[test]
    fn minimisation_sense() {
        // min 3x + 2y s.t. x + y ≥ 2.5, integers → (0,3)=6 vs (1,2)=7 vs
        // (2,1)=8 vs (3,0)=9 → obj 6.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_int_var("x", 0.0, 10.0);
        let y = m.add_int_var("y", 0.0, 10.0);
        m.set_objective_coef(x, 3.0);
        m.set_objective_coef(y, 2.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 2.5);
        let s = BranchBound::default().solve(&m).unwrap();
        assert!((s.objective - 6.0).abs() < 1e-6);
    }

    #[test]
    fn warm_and_cold_trees_agree() {
        // Same MILP solved with basis inheritance and with per-node cold
        // solves must reach the same optimum (the search order may differ).
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..6)
            .map(|i| m.add_int_var(format!("x{i}"), 0.0, 3.0))
            .collect();
        for (i, &v) in vars.iter().enumerate() {
            m.set_objective_coef(v, 2.0 + (i as f64) * 0.7);
        }
        m.add_constraint(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + (i % 3) as f64))
                .collect::<Vec<_>>(),
            ConstraintOp::Le,
            7.3,
        );
        m.add_constraint(
            vars.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
            ConstraintOp::Le,
            5.0,
        );
        // `warm_start_min_dim: 0` forces genuine basis inheritance — this
        // model is far below the default tiny-model fallback threshold.
        let warm = BranchBound::new(BranchBoundConfig {
            warm_start_min_dim: 0,
            ..BranchBoundConfig::default()
        })
        .solve(&m)
        .unwrap();
        let cold = BranchBound::new(BranchBoundConfig {
            warm_start: false,
            ..BranchBoundConfig::default()
        })
        .solve(&m)
        .unwrap();
        assert_eq!(warm.status, Status::Optimal);
        assert_eq!(cold.status, Status::Optimal);
        assert!(
            (warm.objective - cold.objective).abs() < 1e-6,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
        m.check_feasible(&warm.values, 1e-6).unwrap();
    }

    #[test]
    fn tiny_models_fall_back_to_cold_but_agree() {
        // Below `warm_start_min_dim` the default config cold-solves every
        // node; the answer must match both a forced-warm and a forced-cold
        // tree on the same model.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..5)
            .map(|i| m.add_int_var(format!("x{i}"), 0.0, 4.0))
            .collect();
        for (i, &v) in vars.iter().enumerate() {
            m.set_objective_coef(v, 1.0 + (i as f64) * 0.9);
        }
        m.add_constraint(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + (i % 2) as f64))
                .collect::<Vec<_>>(),
            ConstraintOp::Le,
            9.4,
        );
        assert!(
            m.num_vars() + m.num_constraints() < BranchBoundConfig::default().warm_start_min_dim
        );
        let auto = BranchBound::default().solve(&m).unwrap();
        let forced_warm = BranchBound::new(BranchBoundConfig {
            warm_start_min_dim: 0,
            ..BranchBoundConfig::default()
        })
        .solve(&m)
        .unwrap();
        let forced_cold = BranchBound::new(BranchBoundConfig {
            warm_start: false,
            ..BranchBoundConfig::default()
        })
        .solve(&m)
        .unwrap();
        assert_eq!(auto.status, Status::Optimal);
        for other in [&forced_warm, &forced_cold] {
            assert!(
                (auto.objective - other.objective).abs() < 1e-6,
                "auto {} vs {}",
                auto.objective,
                other.objective
            );
        }
    }

    #[test]
    fn matches_bruteforce_on_random_knapsacks() {
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for trial in 0..25 {
            let n = rng.gen_range(3..8);
            let profits: Vec<f64> = (0..n).map(|_| rng.gen_range(1..20) as f64).collect();
            let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(1..10) as f64).collect();
            let cap = rng.gen_range(5..25) as f64;

            let mut m = Model::new(Sense::Maximize);
            let vars: Vec<_> = (0..n)
                .map(|i| m.add_int_var(format!("x{i}"), 0.0, 1.0))
                .collect();
            for (i, &v) in vars.iter().enumerate() {
                m.set_objective_coef(v, profits[i]);
            }
            m.add_constraint(
                vars.iter()
                    .enumerate()
                    .map(|(i, &v)| (v, weights[i]))
                    .collect::<Vec<_>>(),
                ConstraintOp::Le,
                cap,
            );
            let s = BranchBound::default().solve(&m).unwrap();

            // Brute force.
            let mut best = 0.0f64;
            for mask in 0u32..(1 << n) {
                let w: f64 = (0..n)
                    .filter(|i| mask >> i & 1 == 1)
                    .map(|i| weights[i])
                    .sum();
                if w <= cap {
                    let p: f64 = (0..n)
                        .filter(|i| mask >> i & 1 == 1)
                        .map(|i| profits[i])
                        .sum();
                    best = best.max(p);
                }
            }
            assert!(
                (s.objective - best).abs() < 1e-6,
                "trial {trial}: bb {} vs brute {best}",
                s.objective
            );
        }
    }
}
