//! Two-phase primal simplex on a dense tableau.
//!
//! This is the reference LP engine: simple, aggressively tested, and fast
//! enough for the small/medium platforms of the paper's sweep. Cycling is
//! prevented by switching to Bland's rule after a stall, and artificial
//! variables are prevented from re-entering (or silently growing) in phase 2
//! by an eviction pivot with step length zero.

use crate::model::Model;
use crate::solution::{Solution, Status};
use crate::standard::StandardForm;
use crate::{LpError, COST_TOL, FEAS_TOL, PIVOT_TOL};

/// Dense tableau simplex solver.
#[derive(Debug, Clone)]
pub struct DenseSimplex {
    /// Hard cap on pivots per phase; `None` derives the size-scaled default
    /// [`crate::scaled_iteration_cap`], so a pathological instance surfaces
    /// [`LpError::IterationLimit`] instead of spinning forever.
    pub max_iterations: Option<usize>,
    /// Pivots without objective improvement before Bland's rule engages.
    pub stall_limit: usize,
}

impl Default for DenseSimplex {
    fn default() -> Self {
        DenseSimplex {
            max_iterations: None,
            stall_limit: 256,
        }
    }
}

enum PhaseEnd {
    Optimal,
    Unbounded,
}

struct Tableau {
    m: usize,
    /// Row width: `n_cols + 1`, last column is the right-hand side.
    w: usize,
    t: Vec<f64>,
    basis: Vec<usize>,
    /// Reduced-cost row; `z[w-1]` holds the *negated* current objective.
    z: Vec<f64>,
    is_artificial: Vec<bool>,
    iterations: usize,
}

impl Tableau {
    fn rhs_col(&self) -> usize {
        self.w - 1
    }

    fn at(&self, i: usize, j: usize) -> f64 {
        self.t[i * self.w + j]
    }

    /// Installs a fresh cost row for the given per-column costs and zeroes
    /// the reduced costs of the current basic columns.
    fn set_costs(&mut self, costs: &[f64]) {
        self.z.clear();
        self.z.extend_from_slice(costs);
        self.z.push(0.0);
        for i in 0..self.m {
            let cb = costs[self.basis[i]];
            if cb != 0.0 {
                let row = &self.t[i * self.w..(i + 1) * self.w];
                // z ← z − c_B[i]·row  (zeroes the basic column, accumulates
                // −objective in the rhs slot).
                for (zj, &tj) in self.z.iter_mut().zip(row) {
                    *zj -= cb * tj;
                }
            }
        }
    }

    fn pivot(&mut self, r: usize, e: usize) {
        let w = self.w;
        let pivot_val = self.t[r * w + e];
        debug_assert!(pivot_val.abs() > 0.0);
        let inv = 1.0 / pivot_val;
        for v in &mut self.t[r * w..(r + 1) * w] {
            *v *= inv;
        }
        // Borrow-splitting: copy the (now normalised) pivot row out once; the
        // row is short-lived and m·w dominates the copy cost anyway.
        let pivot_row: Vec<f64> = self.t[r * w..(r + 1) * w].to_vec();
        for i in 0..self.m {
            if i == r {
                continue;
            }
            let factor = self.t[i * w + e];
            if factor.abs() > 1e-13 {
                let row = &mut self.t[i * w..(i + 1) * w];
                for (v, &p) in row.iter_mut().zip(&pivot_row) {
                    *v -= factor * p;
                }
                row[e] = 0.0; // kill round-off exactly on the pivot column
            }
        }
        let zfactor = self.z[e];
        if zfactor.abs() > 1e-13 {
            for (v, &p) in self.z.iter_mut().zip(&pivot_row) {
                *v -= zfactor * p;
            }
            self.z[e] = 0.0;
        }
        self.basis[r] = e;
        self.iterations += 1;
    }

    /// Runs pivots until optimality/unboundedness for the currently
    /// installed cost row.
    fn run(
        &mut self,
        banned: impl Fn(usize) -> bool,
        evict_artificials: bool,
        max_iter: usize,
        stall_limit: usize,
    ) -> Result<PhaseEnd, LpError> {
        let rhs = self.rhs_col();
        let mut bland = false;
        let mut stall = 0usize;
        let mut last_obj = self.z[rhs];
        let mut iters_this_phase = 0usize;

        loop {
            // --- entering column ---
            let mut entering = None;
            if bland {
                for j in 0..self.w - 1 {
                    if !banned(j) && self.z[j] < -COST_TOL {
                        entering = Some(j);
                        break;
                    }
                }
            } else {
                let mut best = -COST_TOL;
                for j in 0..self.w - 1 {
                    if !banned(j) && self.z[j] < best {
                        best = self.z[j];
                        entering = Some(j);
                    }
                }
            }
            let Some(e) = entering else {
                return Ok(PhaseEnd::Optimal);
            };

            // --- leaving row ---
            // Eviction first: a basic artificial with a nonzero entry in the
            // entering column is swapped out with step length 0, so it can
            // never grow back above zero in phase 2.
            let mut leaving = None;
            if evict_artificials {
                let mut best_abs = PIVOT_TOL;
                for i in 0..self.m {
                    if self.is_artificial[self.basis[i]] {
                        let v = self.at(i, e).abs();
                        if v > best_abs {
                            best_abs = v;
                            leaving = Some(i);
                        }
                    }
                }
            }
            if leaving.is_none() {
                let mut best_ratio = f64::INFINITY;
                let mut best_basis = usize::MAX;
                for i in 0..self.m {
                    let coef = self.at(i, e);
                    if coef > PIVOT_TOL {
                        let ratio = self.at(i, rhs) / coef;
                        // Tie-break on the smallest basis index (lexicographic
                        // flavour, cooperates with Bland's rule).
                        if ratio < best_ratio - 1e-12
                            || (ratio < best_ratio + 1e-12 && self.basis[i] < best_basis)
                        {
                            best_ratio = ratio;
                            best_basis = self.basis[i];
                            leaving = Some(i);
                        }
                    }
                }
            }
            let Some(r) = leaving else {
                return Ok(PhaseEnd::Unbounded);
            };

            self.pivot(r, e);
            iters_this_phase += 1;

            // --- stall / limit bookkeeping ---
            let obj = self.z[rhs];
            if obj > last_obj + 1e-12 {
                stall = 0;
                last_obj = obj;
            } else {
                stall += 1;
                if stall >= stall_limit {
                    bland = true;
                }
            }
            if iters_this_phase >= max_iter {
                return Err(LpError::IterationLimit {
                    iterations: self.iterations,
                });
            }
        }
    }
}

impl DenseSimplex {
    /// Solves the LP relaxation of `model` (integrality marks are ignored).
    pub fn solve(&self, model: &Model) -> Result<Solution, LpError> {
        let sf = StandardForm::from_model(model)?;
        self.solve_standard(model, &sf)
    }

    /// Solves a pre-lowered model (lets branch-and-bound reuse lowering
    /// logic; bounds changes require re-lowering, so this is internal-ish).
    pub(crate) fn solve_standard(
        &self,
        model: &Model,
        sf: &StandardForm,
    ) -> Result<Solution, LpError> {
        if sf.m == 0 {
            return Ok(solve_unconstrained(model, sf));
        }
        let w = sf.n_cols + 1;
        let mut t = vec![0.0f64; sf.m * w];
        for (j, col) in sf.cols.iter().enumerate() {
            for &(i, a) in col {
                t[i * w + j] = a;
            }
        }
        for (i, &bi) in sf.b.iter().enumerate() {
            t[i * w + sf.n_cols] = bi;
        }
        let mut tab = Tableau {
            m: sf.m,
            w,
            t,
            basis: sf.initial_basis.clone(),
            z: Vec::new(),
            is_artificial: sf.is_artificial.clone(),
            iterations: 0,
        };
        let max_iter = self
            .max_iterations
            .unwrap_or_else(|| crate::scaled_iteration_cap(sf.m, sf.n_cols));

        // --- Phase 1 ---
        if sf.n_artificial > 0 {
            let costs = sf.phase1_costs();
            tab.set_costs(&costs);
            match tab.run(|_| false, false, max_iter, self.stall_limit)? {
                PhaseEnd::Optimal => {}
                // Phase-1 objective is bounded below by 0; "unbounded" here
                // means numerical breakdown.
                PhaseEnd::Unbounded => return Err(LpError::NumericalBreakdown("phase 1")),
            }
            let b_norm = 1.0 + sf.b.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
            let phase1_obj = -tab.z[tab.rhs_col()];
            if phase1_obj > FEAS_TOL * b_norm {
                return Ok(Solution::infeasible(tab.iterations));
            }
        }

        // --- Phase 2 ---
        tab.set_costs(&sf.c);
        let art = sf.is_artificial.clone();
        let end = tab.run(|j| art[j], true, max_iter, self.stall_limit)?;
        if matches!(end, PhaseEnd::Unbounded) {
            return Ok(Solution::unbounded(tab.iterations));
        }

        // --- extract ---
        let rhs = tab.rhs_col();
        let mut std_values = vec![0.0f64; sf.n_structural];
        for i in 0..tab.m {
            let j = tab.basis[i];
            if j < sf.n_structural {
                std_values[j] = tab.at(i, rhs).max(0.0);
            }
        }
        let values = sf.recover(&std_values);
        let objective = model.objective_value(&values);
        // Standard-space duals: the initial-basis column of row i is an
        // identity column (+1 in row i, zero cost in phase 2), so its
        // reduced cost is 0 − y_i.
        let y_std: Vec<f64> = sf.initial_basis.iter().map(|&j| -tab.z[j]).collect();
        let duals = sf.recover_duals(&y_std, model.num_constraints());
        Ok(Solution {
            status: Status::Optimal,
            objective,
            values,
            duals,
            iterations: tab.iterations,
        })
    }
}

/// Degenerate case: no rows at all (no constraints and no finite upper
/// bounds). Each variable sits at its lower bound unless improving the
/// objective is possible, which then means unbounded.
pub(crate) fn solve_unconstrained(model: &Model, sf: &StandardForm) -> Solution {
    for j in 0..sf.n_structural {
        if sf.c[j] < -COST_TOL {
            return Solution::unbounded(0);
        }
    }
    let values = sf.recover(&vec![0.0; sf.n_structural]);
    let objective = model.objective_value(&values);
    Solution {
        status: Status::Optimal,
        objective,
        values,
        duals: Vec::new(),
        iterations: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Model, Sense};

    fn solve(m: &Model) -> Solution {
        DenseSimplex::default().solve(m).unwrap()
    }

    #[test]
    fn textbook_maximisation() {
        // max 3x+5y s.t. x ≤ 4, 2y ≤ 12, 3x+2y ≤ 18 → (2,6), obj 36.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective_coef(x, 3.0);
        m.set_objective_coef(y, 5.0);
        m.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 4.0);
        m.add_constraint(vec![(y, 2.0)], ConstraintOp::Le, 12.0);
        m.add_constraint(vec![(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let s = solve(&m);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 36.0).abs() < 1e-7);
        assert!((s[x] - 2.0).abs() < 1e-7);
        assert!((s[y] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn minimisation_with_ge_rows_needs_phase1() {
        // min 2x+3y s.t. x+y ≥ 10, x ≥ 3 → (10? no): optimum x=10,y=0? cost 20
        // vs x=3,y=7 cost 27 → x=10 y=0, obj 20.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective_coef(x, 2.0);
        m.set_objective_coef(y, 3.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 10.0);
        m.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 3.0);
        let s = solve(&m);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 20.0).abs() < 1e-7, "obj {}", s.objective);
        assert!((s[x] - 10.0).abs() < 1e-6);
        assert!(s[y].abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // max x+y s.t. x+y = 5, x−y = 1 → (3,2), obj 5.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective_coef(x, 1.0);
        m.set_objective_coef(y, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 5.0);
        m.add_constraint(vec![(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 1.0);
        let s = solve(&m);
        assert_eq!(s.status, Status::Optimal);
        assert!((s[x] - 3.0).abs() < 1e-7);
        assert!((s[y] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        m.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 1.0);
        m.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 2.0);
        assert_eq!(solve(&m).status, Status::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective_coef(x, 1.0);
        // Only y is bounded; x can grow forever.
        m.add_constraint(vec![(y, 1.0)], ConstraintOp::Le, 1.0);
        assert_eq!(solve(&m).status, Status::Unbounded);
    }

    #[test]
    fn variable_bounds_respected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 1.0, 3.0);
        let y = m.add_var("y", 0.5, 2.0);
        m.set_objective_coef(x, 1.0);
        m.set_objective_coef(y, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
        let s = solve(&m);
        assert!((s.objective - 4.0).abs() < 1e-7);
        assert!(s[x] >= 1.0 - 1e-9 && s[x] <= 3.0 + 1e-9);
        assert!(s[y] >= 0.5 - 1e-9 && s[y] <= 2.0 + 1e-9);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic cycling-prone example (Beale); Bland fallback must end it.
        let mut m = Model::new(Sense::Minimize);
        let x1 = m.add_var("x1", 0.0, f64::INFINITY);
        let x2 = m.add_var("x2", 0.0, f64::INFINITY);
        let x3 = m.add_var("x3", 0.0, f64::INFINITY);
        let x4 = m.add_var("x4", 0.0, f64::INFINITY);
        m.set_objective_coef(x1, -0.75);
        m.set_objective_coef(x2, 150.0);
        m.set_objective_coef(x3, -0.02);
        m.set_objective_coef(x4, 6.0);
        m.add_constraint(
            vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            ConstraintOp::Le,
            0.0,
        );
        m.add_constraint(
            vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            ConstraintOp::Le,
            0.0,
        );
        m.add_constraint(vec![(x3, 1.0)], ConstraintOp::Le, 1.0);
        let s = solve(&m);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - (-0.05)).abs() < 1e-6, "obj {}", s.objective);
    }

    #[test]
    fn no_constraints_at_all() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 2.0, f64::INFINITY);
        m.set_objective_coef(x, 5.0);
        let s = solve(&m);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 10.0).abs() < 1e-9);

        let mut m2 = Model::new(Sense::Maximize);
        let y = m2.add_var("y", 0.0, f64::INFINITY);
        m2.set_objective_coef(y, 1.0);
        assert_eq!(solve(&m2).status, Status::Unbounded);
    }

    #[test]
    fn zero_rhs_degenerate_start() {
        // max x s.t. x − y ≤ 0, y ≤ 7 → x = y = 7.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective_coef(x, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, -1.0)], ConstraintOp::Le, 0.0);
        m.add_constraint(vec![(y, 1.0)], ConstraintOp::Le, 7.0);
        let s = solve(&m);
        assert!((s.objective - 7.0).abs() < 1e-7);
    }

    #[test]
    fn solution_feasibility_always_checked() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0);
        let y = m.add_var("y", 0.0, 10.0);
        m.set_objective_coef(x, 1.0);
        m.set_objective_coef(y, 2.0);
        m.add_constraint(vec![(x, 3.0), (y, 1.0)], ConstraintOp::Le, 9.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 2.0);
        let s = solve(&m);
        assert_eq!(s.status, Status::Optimal);
        m.check_feasible(&s.values, 1e-7).unwrap();
    }
}
