//! Sparse LU basis factorisation with Markowitz pivoting and an eta file.
//!
//! The paper's steady-state formulation is overwhelmingly block-structured:
//! per-cluster α/β columns couple only through a handful of backbone rows
//! (Eq. 7b–7d) and the MAXMIN objective column, so the basis matrices the
//! revised simplex factorises are extremely sparse — a dense `m × m` B⁻¹
//! is O(m²) memory and O(m²) per pivot where O(nnz) suffices. This module
//! provides the sparse counterpart of the dense inverse kept by
//! [`crate::revised_simplex::Factor`]:
//!
//! * **Factorisation**: right-looking Gaussian elimination with
//!   **Markowitz pivoting** — each step picks the pivot minimising the
//!   fill bound `(row_count − 1)·(col_count − 1)` among entries passing a
//!   threshold-partial-pivoting test (`|a| ≥ 0.1·max|column|`), searched
//!   over a small number of lowest-count columns (bucket lists with lazy
//!   invalidation). Ties prefer the larger pivot magnitude.
//! * **FTRAN/BTRAN**: forward/backward solves through the sparse `L̃Ũ`
//!   factors plus the eta file, skipping zero intermediates.
//! * **Eta updates**: basis exchanges and the warm layer's single-entry
//!   column patches append *eta* matrices (identity with one replaced
//!   column) instead of touching the factors — the product-form update
//!   that replaces the dense engine's O(m²) elementary row transform and
//!   Sherman–Morrison repair with an O(nnz(w)) append.
//! * **Fill-bounded refactorisation**: when the eta file outgrows the LU
//!   factors ([`SparseLu::fill_exceeded`]), the owner refactorises from
//!   scratch, which both bounds solve cost and squashes accumulated error
//!   (same role as the dense engine's periodic Gauss–Jordan rebuild).
//!
//! Representation: after elimination `(E_{m−1}⋯E_0)B = Ũ`, so
//! `B = L̃Ũ` with `L̃ = E_0⁻¹⋯E_{m−1}⁻¹` stored as the per-step multiplier
//! lists, and the *current* basis is `B·E₁⋯E_q` with the etas in basis
//! position space. Row indices are original standard-form rows; column
//! indices are basis positions throughout.

use crate::error::LpError;
use crate::standard::StandardForm;

/// Dependent-column threshold, matching the dense Gauss–Jordan rebuild.
const SINGULAR_TOL: f64 = 1e-12;
/// Threshold partial pivoting: admit entries within this factor of the
/// column's largest magnitude (numerical stability vs. fill trade-off).
const REL_PIVOT: f64 = 0.1;
/// Number of candidate columns examined per Markowitz step.
const SEARCH_COLS: usize = 8;

/// Sparse LU factors + eta file for one basis, with reusable work storage.
#[derive(Debug, Clone, Default)]
pub(crate) struct SparseLu {
    m: usize,
    /// Pivot sequence: original row / basis position per elimination step.
    piv_row: Vec<u32>,
    piv_pos: Vec<u32>,
    /// Pivot values (the diagonal of `Ũ` in pivot order).
    u_piv: Vec<f64>,
    /// Off-pivot entries of each frozen pivot row, keyed by basis position.
    u_ptr: Vec<u32>,
    u_pos: Vec<u32>,
    u_val: Vec<f64>,
    /// Per-step elimination multipliers: `(row, multiplier)` lists.
    l_ptr: Vec<u32>,
    l_row: Vec<u32>,
    l_val: Vec<f64>,
    /// Eta file: basis position, pivot value, off-pivot entries.
    eta_r: Vec<u32>,
    eta_piv: Vec<f64>,
    eta_ptr: Vec<u32>,
    eta_idx: Vec<u32>,
    eta_val: Vec<f64>,
    /// Nonzeros of the basis columns at the last factorisation.
    pub(crate) basis_nnz: usize,
    /// Row-space scratch for FTRAN inputs / BTRAN outputs.
    scr_row: Vec<f64>,
    /// Position-space scratch for BTRAN inputs / U residuals.
    scr_pos: Vec<f64>,
    /// Reusable active-submatrix rows (cleared between factorisations; kept
    /// for their capacity only, so clones stay cheap).
    work_rows: Vec<Vec<(u32, f64)>>,
    /// Reusable column row-lists (pattern only, lazily invalidated).
    work_cols: Vec<Vec<u32>>,
}

impl SparseLu {
    /// The identity factorisation of the all-{slack, artificial} basis
    /// (`B = I`): trivial pivots, no multipliers, no etas.
    pub(crate) fn identity(m: usize) -> Self {
        let mut lu = SparseLu {
            m,
            scr_row: vec![0.0; m],
            scr_pos: vec![0.0; m],
            ..SparseLu::default()
        };
        lu.piv_row = (0..m as u32).collect();
        lu.piv_pos = (0..m as u32).collect();
        lu.u_piv = vec![1.0; m];
        lu.u_ptr = vec![0; m + 1];
        lu.l_ptr = vec![0; m + 1];
        lu.eta_ptr = vec![0];
        lu.basis_nnz = m;
        lu
    }

    /// Nonzeros in the LU factors (pivots + off-pivot U + L multipliers).
    pub(crate) fn lu_nnz(&self) -> usize {
        self.u_piv.len() + self.u_pos.len() + self.l_row.len()
    }

    /// Nonzeros in the eta file.
    pub(crate) fn eta_nnz(&self) -> usize {
        self.eta_piv.len() + self.eta_idx.len()
    }

    /// `true` when the eta file dominates the factors — time to
    /// refactorise even if the pivot-count interval has not elapsed.
    pub(crate) fn fill_exceeded(&self) -> bool {
        self.eta_nnz() > 8 * (self.lu_nnz() + self.m)
    }

    /// Factorises the basis given by `basis` (one standard-form column per
    /// position) with Markowitz pivoting, resetting the eta file.
    ///
    /// With `repair`, a dependent basis column is replaced by the initial
    /// (slack/artificial) column of a not-yet-pivoted row — elimination
    /// only ever subtracts *pivot* rows, and an unpivoted row `q` is never
    /// one, so the partially-eliminated replacement column is exactly the
    /// unit column `e_q` and elimination continues without any re-work.
    /// Returns the number of replaced columns; without `repair` a
    /// dependent column is [`LpError::SingularBasis`].
    pub(crate) fn factorise(
        &mut self,
        sf: &StandardForm,
        basis: &mut [usize],
        in_basis: &mut [bool],
        repair: bool,
    ) -> Result<usize, LpError> {
        let m = self.m;
        debug_assert_eq!(basis.len(), m);
        self.piv_row.clear();
        self.piv_pos.clear();
        self.u_piv.clear();
        self.u_ptr.clear();
        self.u_ptr.push(0);
        self.u_pos.clear();
        self.u_val.clear();
        self.l_ptr.clear();
        self.l_ptr.push(0);
        self.l_row.clear();
        self.l_val.clear();
        self.clear_etas();

        // Active submatrix: rows of B keyed by basis position, plus a
        // per-position row list (pattern only — entries go stale when an
        // update removes them; consumers re-validate against `rows`).
        let mut rows = std::mem::take(&mut self.work_rows);
        rows.resize_with(m, Vec::new);
        let mut col_rows = std::mem::take(&mut self.work_cols);
        col_rows.resize_with(m, Vec::new);
        for r in &mut rows {
            r.clear();
        }
        for c in &mut col_rows {
            c.clear();
        }
        let mut basis_nnz = 0usize;
        for (pos, &j) in basis.iter().enumerate() {
            for &(r, v) in &sf.cols[j] {
                rows[r].push((pos as u32, v));
                col_rows[pos].push(r as u32);
                basis_nnz += 1;
            }
        }
        self.basis_nnz = basis_nnz;

        let mut row_count: Vec<u32> = rows.iter().map(|r| r.len() as u32).collect();
        let mut col_count: Vec<u32> = col_rows.iter().map(|c| c.len() as u32).collect();
        let mut row_active = vec![true; m];
        let mut col_active = vec![true; m];

        // Columns bucketed by their current count. A column is re-pushed
        // whenever its count changes; stale entries are dropped on scan.
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); m + 1];
        for pos in 0..m {
            buckets[col_count[pos] as usize].push(pos as u32);
        }

        // Sparse accumulator for row updates, epoch-marked per use.
        let mut spa = vec![0.0f64; m];
        let mut spa_mark = vec![0u64; m];
        let mut epoch = 0u64;
        let mut touched: Vec<u32> = Vec::new();
        let mut col_entries: Vec<(u32, f64)> = Vec::new();

        let mut replaced = 0usize;

        for _step in 0..m {
            // ---- Markowitz pivot selection ----------------------------
            // (row, pos, value, markowitz cost)
            let mut best: Option<(usize, usize, f64, u64)> = None;
            let mut seen = 0usize;
            let mut dependent: Option<usize> = None;
            'select: for (count, bucket) in buckets.iter_mut().enumerate() {
                let mut i = 0;
                while i < bucket.len() {
                    let pos = bucket[i] as usize;
                    if !col_active[pos] || col_count[pos] as usize != count {
                        bucket.swap_remove(i);
                        continue;
                    }
                    i += 1;
                    col_entries.clear();
                    let mut col_max = 0.0f64;
                    for &r32 in &col_rows[pos] {
                        let r = r32 as usize;
                        if !row_active[r] {
                            continue;
                        }
                        if let Some(&(_, v)) = rows[r].iter().find(|&&(p, _)| p as usize == pos) {
                            col_entries.push((r32, v));
                            col_max = col_max.max(v.abs());
                        }
                    }
                    if col_max < SINGULAR_TOL {
                        dependent = Some(pos);
                        break 'select;
                    }
                    let admit = REL_PIVOT * col_max;
                    for &(r32, v) in &col_entries {
                        if v.abs() >= admit {
                            let r = r32 as usize;
                            let cost = (row_count[r] as u64 - 1) * (col_count[pos] as u64 - 1);
                            let better = match best {
                                None => true,
                                Some((_, _, bv, bc)) => {
                                    cost < bc || (cost == bc && v.abs() > bv.abs())
                                }
                            };
                            if better {
                                best = Some((r, pos, v, cost));
                            }
                        }
                    }
                    seen += 1;
                    if seen >= SEARCH_COLS {
                        break 'select;
                    }
                }
            }

            let (pr, pc, pval) = if let Some(pc) = dependent {
                if !repair {
                    self.work_rows = rows;
                    self.work_cols = col_rows;
                    return Err(LpError::SingularBasis);
                }
                // Replace the dependent column by `e_q` of an unpivoted
                // row whose initial column is nonbasic.
                let q = (0..m)
                    .find(|&q| row_active[q] && !in_basis[sf.initial_basis[q]])
                    .ok_or(LpError::SingularBasis);
                let q = match q {
                    Ok(q) => q,
                    Err(e) => {
                        self.work_rows = rows;
                        self.work_cols = col_rows;
                        return Err(e);
                    }
                };
                // Drop the defunct column's numerically-nil residue — both
                // the active rows *and* the already-frozen pivot rows of U:
                // the replacement `e_q` is zero in every pivot row (q is
                // unpivoted), so the old column's frozen entries at this
                // position would corrupt back-substitution.
                for (ui, &pos32) in self.u_pos.iter().enumerate() {
                    if pos32 as usize == pc {
                        self.u_val[ui] = 0.0;
                    }
                }
                let stale = std::mem::take(&mut col_rows[pc]);
                for &r32 in &stale {
                    let r = r32 as usize;
                    if !row_active[r] {
                        continue;
                    }
                    if let Some(idx) = rows[r].iter().position(|&(p, _)| p as usize == pc) {
                        rows[r].swap_remove(idx);
                        row_count[r] = rows[r].len() as u32;
                    }
                }
                col_rows[pc] = stale;
                col_rows[pc].clear();
                in_basis[basis[pc]] = false;
                let repl = sf.initial_basis[q];
                in_basis[repl] = true;
                basis[pc] = repl;
                replaced += 1;
                rows[q].push((pc as u32, 1.0));
                col_rows[pc].push(q as u32);
                col_count[pc] = 1;
                row_count[q] += 1;
                (q, pc, 1.0)
            } else {
                match best {
                    Some((pr, pc, pval, _)) => (pr, pc, pval),
                    // Unreachable while active columns remain; fail loudly
                    // rather than loop if the invariant is ever broken.
                    None => {
                        self.work_rows = rows;
                        self.work_cols = col_rows;
                        return Err(LpError::NumericalBreakdown("markowitz pivot search"));
                    }
                }
            };

            // ---- Freeze the pivot row into U --------------------------
            self.piv_row.push(pr as u32);
            self.piv_pos.push(pc as u32);
            self.u_piv.push(pval);
            let prow = std::mem::take(&mut rows[pr]);
            let u_start = self.u_pos.len();
            for &(pos32, v) in &prow {
                let pos = pos32 as usize;
                if pos == pc {
                    continue;
                }
                self.u_pos.push(pos32);
                self.u_val.push(v);
                col_count[pos] -= 1;
                buckets[col_count[pos] as usize].push(pos32);
            }
            let u_end = self.u_pos.len();
            self.u_ptr.push(u_end as u32);
            rows[pr] = prow;
            row_active[pr] = false;
            col_active[pc] = false;

            // ---- Eliminate the pivot column from the other rows -------
            let piv_col = std::mem::take(&mut col_rows[pc]);
            for &r32 in &piv_col {
                let r = r32 as usize;
                if !row_active[r] {
                    continue;
                }
                let Some(idx) = rows[r].iter().position(|&(p, _)| p as usize == pc) else {
                    continue; // stale pattern entry
                };
                let a = rows[r].swap_remove(idx).1;
                let mult = a / pval;
                self.l_row.push(r32);
                self.l_val.push(mult);
                if mult == 0.0 {
                    row_count[r] = rows[r].len() as u32;
                    continue;
                }
                // rows[r] −= mult · (off-pivot part of the pivot row),
                // scatter/gather through the epoch-marked accumulator.
                epoch += 1;
                touched.clear();
                for &(pos32, v) in &rows[r] {
                    let pos = pos32 as usize;
                    spa[pos] = v;
                    spa_mark[pos] = epoch;
                    touched.push(pos32);
                }
                for ui in u_start..u_end {
                    let pos = self.u_pos[ui] as usize;
                    let uv = self.u_val[ui];
                    if spa_mark[pos] == epoch {
                        spa[pos] -= mult * uv;
                    } else {
                        spa_mark[pos] = epoch;
                        spa[pos] = -mult * uv;
                        touched.push(pos as u32);
                        col_rows[pos].push(r32);
                        col_count[pos] += 1;
                        buckets[col_count[pos] as usize].push(pos as u32);
                    }
                }
                rows[r].clear();
                for &pos32 in &touched {
                    let pos = pos32 as usize;
                    let v = spa[pos];
                    if v == 0.0 {
                        // Exact cancellation: the entry disappears.
                        col_count[pos] -= 1;
                        buckets[col_count[pos] as usize].push(pos32);
                    } else {
                        rows[r].push((pos32, v));
                    }
                }
                row_count[r] = rows[r].len() as u32;
            }
            self.l_ptr.push(self.l_row.len() as u32);
            col_rows[pc] = piv_col;
            col_rows[pc].clear();
        }

        // Return the work storage emptied: the next factorisation refills
        // it, and probe-clones of the factor stay cheap.
        for r in &mut rows {
            r.clear();
        }
        for c in &mut col_rows {
            c.clear();
        }
        self.work_rows = rows;
        self.work_cols = col_rows;
        Ok(replaced)
    }

    fn clear_etas(&mut self) {
        self.eta_r.clear();
        self.eta_piv.clear();
        self.eta_ptr.clear();
        self.eta_ptr.push(0);
        self.eta_idx.clear();
        self.eta_val.clear();
    }

    /// Appends the product-form update for a basis whose column at
    /// position `r` was replaced by `w` (position space): pivot `w[r]`,
    /// off-pivot entries above `drop_tol` in magnitude (the same drop the
    /// dense engine applies to its elementary row transform).
    pub(crate) fn append_eta(&mut self, r: usize, piv: f64, w: &[f64], drop_tol: f64) {
        self.eta_r.push(r as u32);
        self.eta_piv.push(piv);
        for (i, &v) in w.iter().enumerate() {
            if i != r && v.abs() > drop_tol {
                self.eta_idx.push(i as u32);
                self.eta_val.push(v);
            }
        }
        self.eta_ptr.push(self.eta_idx.len() as u32);
    }

    /// FTRAN: `w = B⁻¹ a` for a sparse row-space input, result in basis
    /// position space. Solves through `L̃`, back-substitutes through `Ũ`,
    /// then applies the eta inverses in file order.
    pub(crate) fn ftran(&mut self, entries: &[(usize, f64)], w: &mut [f64]) {
        let m = self.m;
        let mut v = std::mem::take(&mut self.scr_row);
        v.iter_mut().for_each(|x| *x = 0.0);
        for &(r, a) in entries {
            v[r] += a;
        }
        // L̃⁻¹: apply the elimination steps in order.
        for t in 0..m {
            let va = v[self.piv_row[t] as usize];
            if va != 0.0 {
                let (s, e) = (self.l_ptr[t] as usize, self.l_ptr[t + 1] as usize);
                for i in s..e {
                    v[self.l_row[i] as usize] -= self.l_val[i] * va;
                }
            }
        }
        // Ũ⁻¹: back-substitution in reverse pivot order. Off-pivot
        // positions of step t were pivoted later, so their entries of `w`
        // are already final.
        w.iter_mut().for_each(|x| *x = 0.0);
        for t in (0..m).rev() {
            let mut s = v[self.piv_row[t] as usize];
            let (us, ue) = (self.u_ptr[t] as usize, self.u_ptr[t + 1] as usize);
            for i in us..ue {
                s -= self.u_val[i] * w[self.u_pos[i] as usize];
            }
            w[self.piv_pos[t] as usize] = s / self.u_piv[t];
        }
        self.scr_row = v;
        // Eta inverses, oldest first.
        for e in 0..self.eta_piv.len() {
            let r = self.eta_r[e] as usize;
            let t = w[r] / self.eta_piv[e];
            if t != 0.0 {
                let (s, en) = (self.eta_ptr[e] as usize, self.eta_ptr[e + 1] as usize);
                for i in s..en {
                    w[self.eta_idx[i] as usize] -= self.eta_val[i] * t;
                }
            }
            w[r] = t;
        }
    }

    /// FTRAN of a dense right-hand side (used to recompute `x_B = B⁻¹b`
    /// after a refactorisation).
    pub(crate) fn ftran_dense(&mut self, b: &[f64], w: &mut [f64]) {
        let m = self.m;
        let mut v = std::mem::take(&mut self.scr_row);
        v.copy_from_slice(b);
        for t in 0..m {
            let va = v[self.piv_row[t] as usize];
            if va != 0.0 {
                let (s, e) = (self.l_ptr[t] as usize, self.l_ptr[t + 1] as usize);
                for i in s..e {
                    v[self.l_row[i] as usize] -= self.l_val[i] * va;
                }
            }
        }
        w.iter_mut().for_each(|x| *x = 0.0);
        for t in (0..m).rev() {
            let mut s = v[self.piv_row[t] as usize];
            let (us, ue) = (self.u_ptr[t] as usize, self.u_ptr[t + 1] as usize);
            for i in us..ue {
                s -= self.u_val[i] * w[self.u_pos[i] as usize];
            }
            w[self.piv_pos[t] as usize] = s / self.u_piv[t];
        }
        self.scr_row = v;
        for e in 0..self.eta_piv.len() {
            let r = self.eta_r[e] as usize;
            let t = w[r] / self.eta_piv[e];
            if t != 0.0 {
                let (s, en) = (self.eta_ptr[e] as usize, self.eta_ptr[e + 1] as usize);
                for i in s..en {
                    w[self.eta_idx[i] as usize] -= self.eta_val[i] * t;
                }
            }
            w[r] = t;
        }
    }

    /// BTRAN: `y = B⁻ᵀ z` for a basis-position-space input, result in row
    /// space. Eta transposes newest first, then `Ũᵀ` forward substitution,
    /// then `L̃ᵀ` in reverse step order.
    pub(crate) fn btran(&mut self, z_init: impl Fn(usize) -> f64, y: &mut [f64]) {
        let m = self.m;
        let mut z = std::mem::take(&mut self.scr_pos);
        for (pos, zi) in z.iter_mut().enumerate() {
            *zi = z_init(pos);
        }
        // (Eᵀ)⁻¹ for each eta, newest first: only component `r` changes,
        // to (z_r − Σ_{i≠r} wᵢ·zᵢ) / w_r.
        for e in (0..self.eta_piv.len()).rev() {
            let r = self.eta_r[e] as usize;
            let (s, en) = (self.eta_ptr[e] as usize, self.eta_ptr[e + 1] as usize);
            let mut dot = 0.0;
            for i in s..en {
                dot += self.eta_val[i] * z[self.eta_idx[i] as usize];
            }
            z[r] = (z[r] - dot) / self.eta_piv[e];
        }
        // Ũᵀ q = z: forward over the pivot order, scattering residuals.
        y.iter_mut().for_each(|x| *x = 0.0);
        for t in 0..m {
            let q = z[self.piv_pos[t] as usize] / self.u_piv[t];
            y[self.piv_row[t] as usize] = q;
            if q != 0.0 {
                let (us, ue) = (self.u_ptr[t] as usize, self.u_ptr[t + 1] as usize);
                for i in us..ue {
                    z[self.u_pos[i] as usize] -= self.u_val[i] * q;
                }
            }
        }
        self.scr_pos = z;
        // L̃ᵀ: apply the transposed elimination steps in reverse.
        for t in (0..m).rev() {
            let (s, e) = (self.l_ptr[t] as usize, self.l_ptr[t + 1] as usize);
            let mut dot = 0.0;
            for i in s..e {
                dot += self.l_val[i] * y[self.l_row[i] as usize];
            }
            if dot != 0.0 {
                y[self.piv_row[t] as usize] -= dot;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Model, Sense};

    /// A small standard form with a mix of row types.
    fn fixture() -> StandardForm {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 4.0);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        let z = m.add_var("z", 1.0, 9.0);
        m.set_objective_coef(x, 3.0);
        m.set_objective_coef(y, 5.0);
        m.set_objective_coef(z, 1.0);
        m.add_constraint(vec![(x, 1.0), (z, 2.0)], ConstraintOp::Le, 8.0);
        m.add_constraint(vec![(y, 2.0), (z, -1.0)], ConstraintOp::Le, 12.0);
        m.add_constraint(vec![(x, 3.0), (y, 2.0)], ConstraintOp::Ge, 2.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0), (z, 1.0)], ConstraintOp::Eq, 6.0);
        StandardForm::from_model(&m).unwrap()
    }

    /// Dense reference: materialise B, solve with partial-pivot Gaussian
    /// elimination.
    fn dense_solve(sf: &StandardForm, basis: &[usize], rhs: &[f64]) -> Vec<f64> {
        let m = sf.m;
        let mut a = vec![0.0f64; m * m];
        for (c, &j) in basis.iter().enumerate() {
            for &(r, v) in &sf.cols[j] {
                a[r * m + c] = v;
            }
        }
        let mut x = rhs.to_vec();
        for col in 0..m {
            let mut p = col;
            for r in col + 1..m {
                if a[r * m + col].abs() > a[p * m + col].abs() {
                    p = r;
                }
            }
            if p != col {
                for j in 0..m {
                    a.swap(col * m + j, p * m + j);
                }
                x.swap(col, p);
            }
            let piv = a[col * m + col];
            assert!(piv.abs() > 1e-12, "fixture basis must be nonsingular");
            for r in 0..m {
                if r != col {
                    let f = a[r * m + col] / piv;
                    if f != 0.0 {
                        for j in col..m {
                            a[r * m + j] -= f * a[col * m + j];
                        }
                        x[r] -= f * x[col];
                    }
                }
            }
        }
        (0..m).map(|i| x[i] / a[i * m + i]).collect()
    }

    #[test]
    fn ftran_btran_match_dense_on_initial_basis_with_pivots() {
        let sf = fixture();
        let m = sf.m;
        let mut basis = sf.initial_basis.clone();
        let mut in_basis = vec![false; sf.n_cols];
        for &j in &basis {
            in_basis[j] = true;
        }
        // Swap a couple of structural columns into the basis so B ≠ I.
        basis[0] = 0;
        basis[1] = 1;
        in_basis[0] = true;
        in_basis[1] = true;
        let mut lu = SparseLu::identity(m);
        lu.factorise(&sf, &mut basis, &mut in_basis, false)
            .expect("nonsingular");

        // FTRAN of each structural column vs. the dense solve.
        let mut w = vec![0.0; m];
        for j in 0..sf.n_structural {
            lu.ftran(&sf.cols[j], &mut w);
            let mut rhs = vec![0.0; m];
            for &(r, v) in &sf.cols[j] {
                rhs[r] += v;
            }
            let want = dense_solve(&sf, &basis, &rhs);
            for i in 0..m {
                assert!(
                    (w[i] - want[i]).abs() <= 1e-9 * (1.0 + want[i].abs()),
                    "ftran col {j} pos {i}: {} vs {}",
                    w[i],
                    want[i]
                );
            }
        }

        // BTRAN of the cost vector: y solves Bᵀy = c_B, i.e. for every
        // basis column, yᵀa_j = c_j.
        let mut y = vec![0.0; m];
        lu.btran(|pos| sf.c[basis[pos]], &mut y);
        for (pos, &j) in basis.iter().enumerate() {
            let dot: f64 = sf.cols[j].iter().map(|&(r, v)| y[r] * v).sum();
            assert!(
                (dot - sf.c[j]).abs() <= 1e-9 * (1.0 + sf.c[j].abs()),
                "btran pos {pos}: {dot} vs {}",
                sf.c[j]
            );
        }
    }

    #[test]
    fn eta_updates_track_basis_exchanges() {
        let sf = fixture();
        let m = sf.m;
        let mut basis = sf.initial_basis.clone();
        let mut in_basis = vec![false; sf.n_cols];
        for &j in &basis {
            in_basis[j] = true;
        }
        let mut lu = SparseLu::identity(m);
        lu.factorise(&sf, &mut basis, &mut in_basis, false).unwrap();

        // Bring structural columns in one at a time via etas, checking
        // FTRAN against a dense factorisation of the *current* basis.
        let mut w = vec![0.0; m];
        for (r, e) in [(0usize, 0usize), (1, 1), (2, 2)] {
            lu.ftran(&sf.cols[e], &mut w);
            assert!(w[r].abs() > 1e-9, "pivot must be usable");
            lu.append_eta(r, w[r], &w, 0.0);
            in_basis[basis[r]] = false;
            in_basis[e] = true;
            basis[r] = e;

            let probe = 3usize; // a slack column
            lu.ftran(&sf.cols[probe], &mut w);
            let mut rhs = vec![0.0; m];
            for &(rr, v) in &sf.cols[probe] {
                rhs[rr] += v;
            }
            let want = dense_solve(&sf, &basis, &rhs);
            for i in 0..m {
                assert!(
                    (w[i] - want[i]).abs() <= 1e-8 * (1.0 + want[i].abs()),
                    "after eta: pos {i}: {} vs {}",
                    w[i],
                    want[i]
                );
            }
            let mut y = vec![0.0; m];
            lu.btran(|pos| sf.c[basis[pos]], &mut y);
            for (pos, &j) in basis.iter().enumerate() {
                let dot: f64 = sf.cols[j].iter().map(|&(rr, v)| y[rr] * v).sum();
                assert!(
                    (dot - sf.c[j]).abs() <= 1e-8 * (1.0 + sf.c[j].abs()),
                    "after eta btran pos {pos}"
                );
            }
        }
    }

    #[test]
    fn repair_substitutes_unit_columns_for_dependent_ones() {
        let sf = fixture();
        let m = sf.m;
        let mut basis = sf.initial_basis.clone();
        let mut in_basis = vec![false; sf.n_cols];
        for &j in &basis {
            in_basis[j] = true;
        }
        // Duplicate a column pattern: position 1 gets the same structural
        // column as position 0 → linearly dependent.
        basis[0] = 0;
        in_basis[0] = true;
        let dup = basis[1];
        in_basis[dup] = false;
        basis[1] = 0; // duplicate; from_basis would reject, factorise must repair
        let mut lu = SparseLu::identity(m);
        // in_basis deliberately marks column 0 once; the dependent copy is
        // what repair replaces.
        let replaced = lu
            .factorise(&sf, &mut basis, &mut in_basis, true)
            .expect("repair path");
        assert_eq!(replaced, 1, "one dependent column replaced");
        // All basis columns distinct again, and the factor solves.
        let mut seen = vec![false; sf.n_cols];
        for &j in basis.iter() {
            assert!(!seen[j], "duplicate column {j} after repair");
            seen[j] = true;
        }
        let mut w = vec![0.0; m];
        let mut rhs = vec![0.0; m];
        for &(r, v) in &sf.cols[2] {
            rhs[r] += v;
        }
        lu.ftran(&sf.cols[2], &mut w);
        let want = dense_solve(&sf, &basis, &rhs);
        for i in 0..m {
            assert!((w[i] - want[i]).abs() <= 1e-8 * (1.0 + want[i].abs()));
        }
    }
}
