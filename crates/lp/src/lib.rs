#![warn(missing_docs)]

//! # dls-lp — from-scratch linear and mixed-integer programming
//!
//! The divisible-load steady-state problem of Marchal et al. (IPDPS 2005,
//! Eq. 7) is a mixed integer/rational linear program. The paper solved its
//! rational relaxation with the `lp_solve` C library; this crate is the
//! equivalent substrate built from scratch in Rust:
//!
//! * [`Model`] — a small modelling layer (variables with bounds, linear
//!   constraints, maximise/minimise objectives, integer marking);
//! * [`dense_simplex::DenseSimplex`] — a two-phase primal simplex on a dense
//!   tableau, the robust reference implementation for small and medium
//!   problems;
//! * [`revised_simplex::RevisedSimplex`] — a revised primal simplex with a
//!   dense basis inverse and sparse column storage, used for the large
//!   platforms of the paper's sweep (thousands of rows);
//! * [`branch_bound::BranchBound`] — best-first branch-and-bound over either
//!   solver, giving exact optima of the *mixed* program on small instances
//!   (the paper only bounds the optimum; the exact solver lets our tests
//!   verify the NP-completeness reduction end-to-end);
//! * [`solve_auto`] — picks a solver by problem size.
//!
//! Both simplex implementations share the same [`standard::StandardForm`]
//! lowering (bounded variables, slack/artificial augmentation) and are
//! cross-checked against each other by property tests.
//!
//! ## Example
//!
//! ```
//! use dls_lp::{Model, Sense, ConstraintOp, solve_auto};
//!
//! // maximise 3x + 2y  s.t.  x + y ≤ 4,  x + 3y ≤ 6,  x,y ≥ 0
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_var("x", 0.0, f64::INFINITY);
//! let y = m.add_var("y", 0.0, f64::INFINITY);
//! m.set_objective_coef(x, 3.0);
//! m.set_objective_coef(y, 2.0);
//! m.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
//! m.add_constraint(vec![(x, 1.0), (y, 3.0)], ConstraintOp::Le, 6.0);
//! let sol = solve_auto(&m).unwrap();
//! assert!((sol.objective - 12.0).abs() < 1e-7);
//! assert!((sol[x] - 4.0).abs() < 1e-7);
//! ```

pub mod branch_bound;
pub mod dense_simplex;
pub mod error;
pub mod model;
pub mod revised_simplex;
pub mod solution;
pub mod standard;
pub mod warm;

pub use branch_bound::{BranchBound, BranchBoundConfig};
pub use dense_simplex::DenseSimplex;
pub use error::LpError;
pub use model::{ConstraintId, ConstraintOp, LinExpr, Model, Sense, VarId};
pub use revised_simplex::RevisedSimplex;
pub use solution::{Solution, Status};
pub use warm::{Basis, InjectedFault, WarmSimplex, WarmStats};

/// Feasibility tolerance: a constraint is satisfied if violated by at most
/// this amount (absolute, after row scaling).
pub const FEAS_TOL: f64 = 1e-7;

/// Pivot tolerance: tableau/column entries smaller than this are treated as
/// zero during the ratio test.
pub const PIVOT_TOL: f64 = 1e-9;

/// Reduced-cost tolerance for optimality.
pub const COST_TOL: f64 = 1e-8;

/// Integrality tolerance used by branch-and-bound.
pub const INT_TOL: f64 = 1e-6;

/// Default per-phase pivot cap for a standard form with `m` rows and
/// `n_cols` columns. Both simplex engines (and the dual/warm phases) fall
/// back to this size-scaled cap when `max_iterations` is `None`, so no solve
/// can loop forever — a pathological instance surfaces
/// [`LpError::IterationLimit`] instead.
pub fn scaled_iteration_cap(m: usize, n_cols: usize) -> usize {
    500 + 50 * (m + n_cols)
}

/// Solver engine selection for [`solve_with`] and the branch-and-bound layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Dense tableau simplex (reference implementation).
    Dense,
    /// Revised simplex with dense basis inverse (large problems).
    Revised,
    /// Choose by problem size: dense below [`AUTO_DENSE_LIMIT`] tableau
    /// cells, revised above.
    Auto,
}

/// Problems whose tableau would have more cells than this are routed to the
/// revised simplex by [`Engine::Auto`].
pub const AUTO_DENSE_LIMIT: usize = 4_000_000;

/// Solves a pure LP (integrality marks ignored) with the engine chosen by
/// problem size.
pub fn solve_auto(model: &Model) -> Result<Solution, LpError> {
    solve_with(model, Engine::Auto)
}

/// Resolves [`Engine::Auto`]'s size-based choice for a model: the concrete
/// engine `solve_with` would use. Callers that solve a *sequence* of related
/// models (LPRR's rounding loop, branch-and-bound trees) should resolve once
/// up front and reuse the result, so one run never straddles both engines as
/// in-place deltas change the model's size.
pub fn resolve_engine(model: &Model) -> Engine {
    let sf_rows = model.num_constraints() + model.num_upper_bounded_vars();
    let sf_cols = model.num_vars() + 2 * sf_rows;
    if sf_rows.saturating_mul(sf_cols) > AUTO_DENSE_LIMIT {
        Engine::Revised
    } else {
        Engine::Dense
    }
}

/// Solves a pure LP (integrality marks ignored) with an explicit engine.
pub fn solve_with(model: &Model, engine: Engine) -> Result<Solution, LpError> {
    let engine = match engine {
        Engine::Auto => resolve_engine(model),
        e => e,
    };
    match engine {
        Engine::Dense => DenseSimplex::default().solve(model),
        Engine::Revised => RevisedSimplex::default().solve(model),
        Engine::Auto => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_dispatch_small_problem() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0);
        m.set_objective_coef(x, 1.0);
        let sol = solve_auto(&m).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.objective - 10.0).abs() < 1e-7);
    }
}
