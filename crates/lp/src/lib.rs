#![warn(missing_docs)]

//! # dls-lp — from-scratch linear and mixed-integer programming
//!
//! The divisible-load steady-state problem of Marchal et al. (IPDPS 2005,
//! Eq. 7) is a mixed integer/rational linear program. The paper solved its
//! rational relaxation with the `lp_solve` C library; this crate is the
//! equivalent substrate built from scratch in Rust:
//!
//! * [`Model`] — a small modelling layer (variables with bounds, linear
//!   constraints, maximise/minimise objectives, integer marking);
//! * [`dense_simplex::DenseSimplex`] — a two-phase primal simplex on a dense
//!   tableau, the robust reference implementation for small and medium
//!   problems;
//! * [`revised_simplex::RevisedSimplex`] — a revised primal simplex with a
//!   dense basis inverse and sparse column storage, used for the large
//!   platforms of the paper's sweep (thousands of rows);
//! * [`branch_bound::BranchBound`] — best-first branch-and-bound over either
//!   solver, giving exact optima of the *mixed* program on small instances
//!   (the paper only bounds the optimum; the exact solver lets our tests
//!   verify the NP-completeness reduction end-to-end);
//! * [`solve_auto`] — picks a solver by problem size.
//!
//! Both simplex implementations share the same [`standard::StandardForm`]
//! lowering (bounded variables, slack/artificial augmentation) and are
//! cross-checked against each other by property tests.
//!
//! ## Example
//!
//! ```
//! use dls_lp::{Model, Sense, ConstraintOp, solve_auto};
//!
//! // maximise 3x + 2y  s.t.  x + y ≤ 4,  x + 3y ≤ 6,  x,y ≥ 0
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_var("x", 0.0, f64::INFINITY);
//! let y = m.add_var("y", 0.0, f64::INFINITY);
//! m.set_objective_coef(x, 3.0);
//! m.set_objective_coef(y, 2.0);
//! m.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
//! m.add_constraint(vec![(x, 1.0), (y, 3.0)], ConstraintOp::Le, 6.0);
//! let sol = solve_auto(&m).unwrap();
//! assert!((sol.objective - 12.0).abs() < 1e-7);
//! assert!((sol[x] - 4.0).abs() < 1e-7);
//! ```

pub mod branch_bound;
pub mod dense_simplex;
pub mod error;
pub mod model;
pub mod revised_simplex;
pub mod solution;
pub(crate) mod sparse_lu;
pub mod standard;
pub mod warm;

pub use branch_bound::{BranchBound, BranchBoundConfig};
pub use dense_simplex::DenseSimplex;
pub use error::LpError;
pub use model::{ConstraintId, ConstraintOp, LinExpr, Model, Sense, VarId};
pub use revised_simplex::{BasisRepr, RevisedSimplex};
pub use solution::{Solution, Status};
pub use warm::{Basis, FactorStats, InjectedFault, WarmSimplex, WarmStats};

/// Feasibility tolerance: a constraint is satisfied if violated by at most
/// this amount (absolute, after row scaling).
pub const FEAS_TOL: f64 = 1e-7;

/// Pivot tolerance: tableau/column entries smaller than this are treated as
/// zero during the ratio test.
pub const PIVOT_TOL: f64 = 1e-9;

/// Reduced-cost tolerance for optimality.
pub const COST_TOL: f64 = 1e-8;

/// Integrality tolerance used by branch-and-bound.
pub const INT_TOL: f64 = 1e-6;

/// Default per-phase pivot cap for a standard form with `m` rows and
/// `n_cols` columns. Both simplex engines (and the dual/warm phases) fall
/// back to this size-scaled cap when `max_iterations` is `None`, so no solve
/// can loop forever — a pathological instance surfaces
/// [`LpError::IterationLimit`] instead.
pub fn scaled_iteration_cap(m: usize, n_cols: usize) -> usize {
    500 + 50 * (m + n_cols)
}

/// Per-phase pivot cap for the **sparse** basis representation.
///
/// `scaled_iteration_cap` was tuned for the dense engine, where the O(m²)
/// per-pivot cost makes any solve that needs more than ~50·(m+n) pivots
/// intractable anyway, so the cap doubles as a runtime guard. The sparse
/// engine changes the trade-off: per-pivot cost is closer to O(nnz), so a
/// phase-1 on a large block-structured platform (K in the thousands, m in
/// the tens of thousands) can legitimately take more pivots than the dense
/// formula allows while still finishing in seconds — with the dense cap it
/// spuriously hits [`LpError::IterationLimit`].
///
/// Derivation: practical simplex folklore (and our bench instances) put the
/// expected pivot count between m and 3·(m + n) for non-degenerate
/// problems; phase 1 on a basis of all artificials needs at least one pivot
/// per row just to evict them, and degenerate ties under the Bland
/// anti-cycling fallback can multiply that by a small constant. We take
/// double the dense formula's slope (100 per row/column) plus a larger
/// constant floor so tiny models keep generous headroom:
///
/// ```text
/// cap_sparse(m, n_cols) = 2_000 + 100 · (m + n_cols)
/// ```
///
/// At K=5000 (m ≈ 67 000, n_cols ≈ 210 000) this allows ~28 M pivots — far
/// above the observed ~1·m pivot counts — while still bounding a cycling
/// pathological instance to hours rather than forever.
pub fn sparse_iteration_cap(m: usize, n_cols: usize) -> usize {
    2_000 + 100 * (m + n_cols)
}

/// Row-count threshold at which [`BasisRepr::Auto`] switches the revised
/// simplex from the dense basis inverse to the sparse LU factorisation.
/// Chosen above every committed small-K bench/scenario shape (K=50 warm
/// models have m ≈ 1 600) so existing baselines keep bit-identical dense
/// arithmetic, while the large-K platform axis (K ≥ 200 island platforms,
/// m ≳ 2 700) gets the sparse factor.
pub const SPARSE_MIN_ROWS: usize = 2048;

/// Solver engine selection for [`solve_with`] and the branch-and-bound layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Dense tableau simplex (reference implementation).
    Dense,
    /// Revised simplex with dense basis inverse (large problems). Retained
    /// as the cross-checked oracle for [`Engine::Sparse`], the same pattern
    /// as the simulator's `FullRecompute` engine.
    Revised,
    /// Revised simplex with the sparse LU basis factorisation (Markowitz
    /// pivoting + eta-file updates) — the large-platform engine.
    Sparse,
    /// Choose by problem size: dense below [`AUTO_DENSE_LIMIT`] tableau
    /// cells; above that, sparse when the standard form has at least
    /// [`SPARSE_MIN_ROWS`] rows, revised (dense inverse) otherwise.
    Auto,
}

/// Problems whose tableau would have more cells than this are routed to the
/// revised simplex by [`Engine::Auto`].
pub const AUTO_DENSE_LIMIT: usize = 4_000_000;

/// Solves a pure LP (integrality marks ignored) with the engine chosen by
/// problem size.
pub fn solve_auto(model: &Model) -> Result<Solution, LpError> {
    solve_with(model, Engine::Auto)
}

/// Resolves [`Engine::Auto`]'s size-based choice for a model: the concrete
/// engine `solve_with` would use. Callers that solve a *sequence* of related
/// models (LPRR's rounding loop, branch-and-bound trees) should resolve once
/// up front and reuse the result, so one run never straddles both engines as
/// in-place deltas change the model's size.
pub fn resolve_engine(model: &Model) -> Engine {
    let sf_rows = model.num_constraints() + model.num_upper_bounded_vars();
    let sf_cols = model.num_vars() + 2 * sf_rows;
    if sf_rows.saturating_mul(sf_cols) > AUTO_DENSE_LIMIT {
        if sf_rows >= SPARSE_MIN_ROWS {
            Engine::Sparse
        } else {
            Engine::Revised
        }
    } else {
        Engine::Dense
    }
}

/// Solves a pure LP (integrality marks ignored) with an explicit engine.
pub fn solve_with(model: &Model, engine: Engine) -> Result<Solution, LpError> {
    let engine = match engine {
        Engine::Auto => resolve_engine(model),
        e => e,
    };
    match engine {
        Engine::Dense => DenseSimplex::default().solve(model),
        Engine::Revised => RevisedSimplex {
            basis_repr: BasisRepr::DenseInverse,
            ..Default::default()
        }
        .solve(model),
        Engine::Sparse => RevisedSimplex {
            basis_repr: BasisRepr::SparseLu,
            ..Default::default()
        }
        .solve(model),
        Engine::Auto => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_dispatch_small_problem() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0);
        m.set_objective_coef(x, 1.0);
        let sol = solve_auto(&m).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.objective - 10.0).abs() < 1e-7);
    }
}
