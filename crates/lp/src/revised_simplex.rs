//! Revised primal simplex with a dense basis inverse and sparse columns.
//!
//! The dense tableau keeps the whole `m × n` matrix explicit, which is
//! wasteful for the paper's large platforms (K ≈ 95 clusters produce
//! thousands of rows and ~K² columns with only a handful of nonzeros each).
//! The revised method keeps only the `m × m` basis inverse and works from
//! the sparse constraint columns:
//!
//! * pricing: one BTRAN (`y = c_Bᵀ B⁻¹`, O(m²)) + a sparse dot per column;
//! * column generation: one FTRAN (`w = B⁻¹ a_e`, O(m·nnz));
//! * basis update: rank-1 elementary row transformation of `B⁻¹` (O(m²));
//! * periodic refactorisation (Gauss–Jordan with partial pivoting) bounds
//!   error accumulation.
//!
//! Pivot rules (Dantzig with Bland fallback, zero-step artificial eviction
//! in phase 2) mirror [`crate::dense_simplex`] exactly, which is what makes
//! the two engines cross-checkable by property tests.

// Index-based loops are deliberate in the numeric kernels below: most walk
// two or three parallel arrays with offsets, where iterator chains obscure
// the linear algebra.
#![allow(clippy::needless_range_loop)]

use crate::dense_simplex::solve_unconstrained;
use crate::model::Model;
use crate::solution::{Solution, Status};
use crate::standard::StandardForm;
use crate::{LpError, COST_TOL, FEAS_TOL, PIVOT_TOL};

/// Revised simplex solver.
#[derive(Debug, Clone)]
pub struct RevisedSimplex {
    /// Hard cap on pivots per phase; `None` derives `500 + 50·(m+n)`.
    pub max_iterations: Option<usize>,
    /// Pivots without improvement before Bland's rule engages.
    pub stall_limit: usize,
    /// Basis refactorisation interval (pivots).
    pub refactor_every: usize,
}

impl Default for RevisedSimplex {
    fn default() -> Self {
        RevisedSimplex {
            max_iterations: None,
            stall_limit: 256,
            refactor_every: 128,
        }
    }
}

enum PhaseEnd {
    Optimal,
    Unbounded,
}

struct Core<'a> {
    sf: &'a StandardForm,
    m: usize,
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    /// Dense row-major `B⁻¹`.
    binv: Vec<f64>,
    /// Current basic variable values `x_B = B⁻¹ b`.
    xb: Vec<f64>,
    iterations: usize,
    pivots_since_refactor: usize,
    refactor_every: usize,
    /// BTRAN scratch (`y`), reused across pivots and phases.
    scratch_y: Vec<f64>,
    /// FTRAN scratch (`w`), reused across pivots and phases.
    scratch_w: Vec<f64>,
    /// Dense `B` scratch for refactorisation (`m × m`, allocated once).
    scratch_a: Vec<f64>,
    /// Gauss–Jordan inverse scratch for refactorisation (`m × m`).
    scratch_inv: Vec<f64>,
}

impl<'a> Core<'a> {
    fn new(sf: &'a StandardForm, refactor_every: usize) -> Self {
        let m = sf.m;
        let mut in_basis = vec![false; sf.n_cols];
        for &j in &sf.initial_basis {
            in_basis[j] = true;
        }
        let mut binv = vec![0.0f64; m * m];
        for i in 0..m {
            binv[i * m + i] = 1.0;
        }
        // The initial basis is {slack, artificial} columns with coefficient
        // +1 on their row, so B = I and x_B = b.
        Core {
            sf,
            m,
            basis: sf.initial_basis.clone(),
            in_basis,
            binv,
            xb: sf.b.to_vec(),
            iterations: 0,
            pivots_since_refactor: 0,
            refactor_every,
            scratch_y: vec![0.0; m],
            scratch_w: vec![0.0; m],
            scratch_a: Vec::new(),
            scratch_inv: Vec::new(),
        }
    }

    /// `y = c_Bᵀ B⁻¹`.
    fn btran(&self, costs: &[f64], y: &mut [f64]) {
        y.iter_mut().for_each(|v| *v = 0.0);
        for (r, &bj) in self.basis.iter().enumerate() {
            let cb = costs[bj];
            if cb != 0.0 {
                let row = &self.binv[r * self.m..(r + 1) * self.m];
                for (yi, &bi) in y.iter_mut().zip(row) {
                    *yi += cb * bi;
                }
            }
        }
    }

    /// `w = B⁻¹ a_j` from the sparse column.
    fn ftran(&self, j: usize, w: &mut [f64]) {
        w.iter_mut().for_each(|v| *v = 0.0);
        for &(r, a) in &self.sf.cols[j] {
            let col = &self.binv[..];
            // Accumulate a · (column r of B⁻¹): row-major storage means a
            // strided walk; m is a few thousand at most so this stays cheap
            // relative to the m² updates.
            for i in 0..self.m {
                w[i] += a * col[i * self.m + r];
            }
        }
    }

    /// Reduced cost of column `j` given `y`.
    fn reduced_cost(&self, costs: &[f64], y: &[f64], j: usize) -> f64 {
        let mut d = costs[j];
        for &(r, a) in &self.sf.cols[j] {
            d -= y[r] * a;
        }
        d
    }

    fn objective(&self, costs: &[f64]) -> f64 {
        self.basis
            .iter()
            .zip(&self.xb)
            .map(|(&j, &x)| costs[j] * x)
            .sum()
    }

    /// Rebuilds `B⁻¹` from scratch (Gauss–Jordan with partial pivoting) and
    /// recomputes `x_B`.
    fn refactor(&mut self) -> Result<(), LpError> {
        let m = self.m;
        // Dense B from the sparse basis columns, into the reusable scratch
        // (zeroed in place — no per-refactor `m²` allocations).
        let mut a = std::mem::take(&mut self.scratch_a);
        let mut inv = std::mem::take(&mut self.scratch_inv);
        a.clear();
        a.resize(m * m, 0.0);
        inv.clear();
        inv.resize(m * m, 0.0);
        for (c, &j) in self.basis.iter().enumerate() {
            for &(r, v) in &self.sf.cols[j] {
                a[r * m + c] = v;
            }
        }
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            // Partial pivoting.
            let mut piv_row = col;
            let mut piv_val = a[col * m + col].abs();
            for r in col + 1..m {
                let v = a[r * m + col].abs();
                if v > piv_val {
                    piv_val = v;
                    piv_row = r;
                }
            }
            if piv_val < 1e-12 {
                self.scratch_a = a;
                self.scratch_inv = inv;
                return Err(LpError::SingularBasis);
            }
            if piv_row != col {
                for j in 0..m {
                    a.swap(col * m + j, piv_row * m + j);
                    inv.swap(col * m + j, piv_row * m + j);
                }
            }
            let inv_piv = 1.0 / a[col * m + col];
            for j in 0..m {
                a[col * m + j] *= inv_piv;
                inv[col * m + j] *= inv_piv;
            }
            for r in 0..m {
                if r != col {
                    let f = a[r * m + col];
                    if f != 0.0 {
                        for j in 0..m {
                            a[r * m + j] -= f * a[col * m + j];
                            inv[r * m + j] -= f * inv[col * m + j];
                        }
                    }
                }
            }
        }
        self.binv.copy_from_slice(&inv);
        self.scratch_a = a;
        self.scratch_inv = inv;
        // x_B = B⁻¹ b.
        for i in 0..m {
            let row = &self.binv[i * m..(i + 1) * m];
            self.xb[i] = row.iter().zip(&self.sf.b).map(|(&bi, &b)| bi * b).sum();
            if self.xb[i] < 0.0 && self.xb[i] > -FEAS_TOL {
                self.xb[i] = 0.0;
            }
        }
        self.pivots_since_refactor = 0;
        Ok(())
    }

    /// Applies the basis change for entering column `e` at row `r` with
    /// FTRAN result `w`.
    fn update(&mut self, r: usize, e: usize, w: &[f64]) {
        let m = self.m;
        let pivot = w[r];
        let theta = self.xb[r] / pivot;
        // Elementary row transformation of B⁻¹ and x_B.
        let inv_p = 1.0 / pivot;
        for j in 0..m {
            self.binv[r * m + j] *= inv_p;
        }
        for i in 0..m {
            if i != r {
                let f = w[i];
                if f.abs() > 1e-13 {
                    // Split borrows: copy pivot row is avoided with raw
                    // index math over the flat buffer.
                    for j in 0..m {
                        let pr = self.binv[r * m + j];
                        self.binv[i * m + j] -= f * pr;
                    }
                    self.xb[i] -= theta * f;
                    if self.xb[i] < 0.0 && self.xb[i] > -FEAS_TOL {
                        self.xb[i] = 0.0;
                    }
                }
            }
        }
        self.xb[r] = theta;
        self.in_basis[self.basis[r]] = false;
        self.in_basis[e] = true;
        self.basis[r] = e;
        self.iterations += 1;
        self.pivots_since_refactor += 1;
    }

    fn run_phase(
        &mut self,
        costs: &[f64],
        banned: &[bool],
        evict_artificials: bool,
        max_iter: usize,
        stall_limit: usize,
    ) -> Result<PhaseEnd, LpError> {
        // Borrow the BTRAN/FTRAN scratch out of `self` for the duration of
        // the phase so no pivot (or phase) allocates.
        let mut y = std::mem::take(&mut self.scratch_y);
        let mut w = std::mem::take(&mut self.scratch_w);
        let end = self.run_phase_inner(
            costs,
            banned,
            evict_artificials,
            max_iter,
            stall_limit,
            &mut y,
            &mut w,
        );
        self.scratch_y = y;
        self.scratch_w = w;
        end
    }

    #[allow(clippy::too_many_arguments)]
    fn run_phase_inner(
        &mut self,
        costs: &[f64],
        banned: &[bool],
        evict_artificials: bool,
        max_iter: usize,
        stall_limit: usize,
        y: &mut [f64],
        w: &mut [f64],
    ) -> Result<PhaseEnd, LpError> {
        let m = self.m;
        let mut bland = false;
        let mut stall = 0usize;
        let mut last_obj = self.objective(costs);
        let mut iters_this_phase = 0usize;

        loop {
            self.btran(costs, y);

            // --- entering column ---
            let mut entering = None;
            if bland {
                for j in 0..self.sf.n_cols {
                    if !banned[j] && !self.in_basis[j] {
                        let d = self.reduced_cost(costs, y, j);
                        if d < -COST_TOL {
                            entering = Some(j);
                            break;
                        }
                    }
                }
            } else {
                let mut best = -COST_TOL;
                for j in 0..self.sf.n_cols {
                    if !banned[j] && !self.in_basis[j] {
                        let d = self.reduced_cost(costs, y, j);
                        if d < best {
                            best = d;
                            entering = Some(j);
                        }
                    }
                }
            }
            let Some(e) = entering else {
                return Ok(PhaseEnd::Optimal);
            };

            self.ftran(e, w);

            // --- leaving row (artificial eviction first, as in the dense
            // engine) ---
            let mut leaving = None;
            if evict_artificials {
                let mut best_abs = PIVOT_TOL;
                for i in 0..m {
                    if self.sf.is_artificial[self.basis[i]] {
                        let v = w[i].abs();
                        if v > best_abs {
                            best_abs = v;
                            leaving = Some(i);
                        }
                    }
                }
            }
            if leaving.is_none() {
                let mut best_ratio = f64::INFINITY;
                let mut best_basis = usize::MAX;
                for i in 0..m {
                    if w[i] > PIVOT_TOL {
                        let ratio = self.xb[i] / w[i];
                        if ratio < best_ratio - 1e-12
                            || (ratio < best_ratio + 1e-12 && self.basis[i] < best_basis)
                        {
                            best_ratio = ratio;
                            best_basis = self.basis[i];
                            leaving = Some(i);
                        }
                    }
                }
            }
            let Some(r) = leaving else {
                return Ok(PhaseEnd::Unbounded);
            };

            self.update(r, e, w);
            iters_this_phase += 1;

            if self.pivots_since_refactor >= self.refactor_every {
                self.refactor()?;
            }

            let obj = self.objective(costs);
            if obj < last_obj - 1e-12 {
                stall = 0;
                last_obj = obj;
            } else {
                stall += 1;
                if stall >= stall_limit {
                    bland = true;
                }
            }
            if iters_this_phase >= max_iter {
                return Err(LpError::IterationLimit {
                    iterations: self.iterations,
                });
            }
        }
    }
}

impl RevisedSimplex {
    /// Solves the LP relaxation of `model` (integrality marks are ignored).
    pub fn solve(&self, model: &Model) -> Result<Solution, LpError> {
        let sf = StandardForm::from_model(model)?;
        self.solve_standard(model, &sf)
    }

    pub(crate) fn solve_standard(
        &self,
        model: &Model,
        sf: &StandardForm,
    ) -> Result<Solution, LpError> {
        if sf.m == 0 {
            return Ok(solve_unconstrained(model, sf));
        }
        let mut core = Core::new(sf, self.refactor_every);
        let max_iter = self.max_iterations.unwrap_or(500 + 50 * (sf.m + sf.n_cols));
        let no_ban = vec![false; sf.n_cols];

        // --- Phase 1 ---
        if sf.n_artificial > 0 {
            let costs = sf.phase1_costs();
            match core.run_phase(&costs, &no_ban, false, max_iter, self.stall_limit)? {
                PhaseEnd::Optimal => {}
                PhaseEnd::Unbounded => {
                    return Err(LpError::IterationLimit {
                        iterations: core.iterations,
                    })
                }
            }
            let b_norm = 1.0 + sf.b.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
            if core.objective(&costs) > FEAS_TOL * b_norm {
                return Ok(Solution::infeasible(core.iterations));
            }
        }

        // --- Phase 2 ---
        let end = core.run_phase(&sf.c, &sf.is_artificial, true, max_iter, self.stall_limit)?;
        if matches!(end, PhaseEnd::Unbounded) {
            return Ok(Solution::unbounded(core.iterations));
        }

        // --- extract ---
        let mut std_values = vec![0.0f64; sf.n_structural];
        for (i, &j) in core.basis.iter().enumerate() {
            if j < sf.n_structural {
                std_values[j] = core.xb[i].max(0.0);
            }
        }
        let values = sf.recover(&std_values);
        let objective = model.objective_value(&values);
        // Standard-space duals at optimality: y = c_Bᵀ B⁻¹.
        let mut y_std = vec![0.0f64; sf.m];
        core.btran(&sf.c, &mut y_std);
        let duals = sf.recover_duals(&y_std, model.num_constraints());
        Ok(Solution {
            status: Status::Optimal,
            objective,
            values,
            duals,
            iterations: core.iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Model, Sense};

    fn solve(m: &Model) -> Solution {
        RevisedSimplex::default().solve(m).unwrap()
    }

    #[test]
    fn matches_dense_on_textbook_problem() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective_coef(x, 3.0);
        m.set_objective_coef(y, 5.0);
        m.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 4.0);
        m.add_constraint(vec![(y, 2.0)], ConstraintOp::Le, 12.0);
        m.add_constraint(vec![(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let s = solve(&m);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 36.0).abs() < 1e-7);
    }

    #[test]
    fn phase1_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 1.0);
        m.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 2.0);
        assert_eq!(solve(&m).status, Status::Infeasible);
    }

    #[test]
    fn unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        m.set_objective_coef(x, 2.0);
        m.add_constraint(vec![(x, -1.0)], ConstraintOp::Le, 5.0);
        assert_eq!(solve(&m).status, Status::Unbounded);
    }

    #[test]
    fn equality_and_ge_mix() {
        // min 4a+b s.t. a+b = 3, a ≥ 1 → a=1? cost 4+2=6 vs a=3,b=0 cost 12
        // → a=1, b=2, obj 6.
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_var("a", 0.0, f64::INFINITY);
        let b = m.add_var("b", 0.0, f64::INFINITY);
        m.set_objective_coef(a, 4.0);
        m.set_objective_coef(b, 1.0);
        m.add_constraint(vec![(a, 1.0), (b, 1.0)], ConstraintOp::Eq, 3.0);
        m.add_constraint(vec![(a, 1.0)], ConstraintOp::Ge, 1.0);
        let s = solve(&m);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 6.0).abs() < 1e-7);
        assert!((s[a] - 1.0).abs() < 1e-7);
        assert!((s[b] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn refactorisation_path_exercised() {
        // A chain of constraints forcing many pivots with a tiny refactor
        // interval, to exercise the Gauss–Jordan rebuild.
        let n = 30;
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_var(format!("x{i}"), 0.0, f64::INFINITY))
            .collect();
        for (i, &v) in vars.iter().enumerate() {
            m.set_objective_coef(v, 1.0 + (i as f64) * 0.01);
            m.add_constraint(vec![(v, 1.0)], ConstraintOp::Le, 1.0 + i as f64);
        }
        m.add_constraint(
            vars.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
            ConstraintOp::Le,
            40.0,
        );
        let solver = RevisedSimplex {
            refactor_every: 4,
            ..RevisedSimplex::default()
        };
        let s = solver.solve(&m).unwrap();
        assert_eq!(s.status, Status::Optimal);
        m.check_feasible(&s.values, 1e-6).unwrap();
        // Compare against the dense engine.
        let d = crate::DenseSimplex::default().solve(&m).unwrap();
        assert!((s.objective - d.objective).abs() < 1e-5);
    }
}
