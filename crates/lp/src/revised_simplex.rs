//! Revised simplex over a pluggable basis factorisation — primal *and*
//! dual pivoting.
//!
//! The dense tableau keeps the whole `m × n` matrix explicit, which is
//! wasteful for the paper's large platforms (K ≈ 95 clusters produce
//! thousands of rows and ~K² columns with only a handful of nonzeros each).
//! The revised method keeps only a factorisation of the `m × m` basis and
//! works from the sparse constraint columns:
//!
//! * pricing: one BTRAN (`y = c_Bᵀ B⁻¹`) + a sparse dot per column;
//! * column generation: one FTRAN (`w = B⁻¹ a_e`);
//! * basis update: rank-1 repair of the factorisation;
//! * periodic refactorisation bounds error accumulation.
//!
//! The factorisation itself comes in two interchangeable representations
//! ([`BasisRepr`]): the original dense row-major `B⁻¹` (Gauss–Jordan
//! refactorisation, elementary-row-transform updates, Sherman–Morrison
//! column patches) and the sparse Markowitz LU of [`crate::sparse_lu`]
//! (eta-file updates, fill-bounded refactorisation). The dense inverse is
//! the retained, cross-checked oracle — the same pattern as the simulator's
//! `SimEngine::FullRecompute` — and every pivot rule below is shared
//! between both, so the representations agree to numerical noise.
//!
//! Primal pivot rules (Dantzig with Bland fallback, zero-step artificial
//! eviction in phase 2) mirror [`crate::dense_simplex`] exactly, which is
//! what makes the engines cross-checkable by property tests.
//!
//! # Dual simplex
//!
//! [`Factor::run_dual_phase`] implements the dual simplex: starting from a
//! basis whose reduced costs are non-negative (dual feasible) but whose
//! basic values `x_B = B⁻¹b` may be negative (primal infeasible), it
//! repeatedly
//!
//! 1. picks the leaving row `r` with the most negative `x_B[r]`,
//! 2. reads row `r` of `B⁻¹` (free — the inverse is stored row-major) and
//!    forms the pivot row `α_r = ρᵀA` by one sparse dot per column,
//! 3. picks the entering column minimising the dual ratio `d_j / (−α_rj)`
//!    over `α_rj < 0` (ties broken on the smallest column index, which
//!    guards against cycling the same way Bland's rule does),
//! 4. pivots with the same rank-1 update as the primal method.
//!
//! If a row is negative but no column qualifies, the row is a certificate of
//! primal infeasibility. The dual method is what makes warm starts cheap: a
//! bound tightening or right-hand-side delta leaves the previous optimal
//! basis dual feasible, so re-optimisation costs a handful of dual pivots
//! instead of a full two-phase cold solve (see [`crate::warm`]).

// Index-based loops are deliberate in the numeric kernels below: most walk
// two or three parallel arrays with offsets, where iterator chains obscure
// the linear algebra.
#![allow(clippy::needless_range_loop)]

use crate::dense_simplex::solve_unconstrained;
use crate::model::Model;
use crate::solution::{Solution, Status};
use crate::sparse_lu::SparseLu;
use crate::standard::StandardForm;
use crate::{
    scaled_iteration_cap, sparse_iteration_cap, LpError, COST_TOL, FEAS_TOL, PIVOT_TOL,
    SPARSE_MIN_ROWS,
};

/// How [`RevisedSimplex`] represents the basis factorisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasisRepr {
    /// Dense row-major `B⁻¹` — the retained, cross-checked oracle path.
    DenseInverse,
    /// Sparse Markowitz LU with eta updates ([`crate::sparse_lu`]).
    SparseLu,
    /// [`BasisRepr::SparseLu`] at or above [`SPARSE_MIN_ROWS`]
    /// standard-form rows, [`BasisRepr::DenseInverse`] below — small
    /// (paper-shape) models keep the dense oracle bit-for-bit.
    Auto,
}

/// Revised simplex solver.
#[derive(Debug, Clone)]
pub struct RevisedSimplex {
    /// Hard cap on pivots per phase; `None` derives the size-scaled default
    /// ([`scaled_iteration_cap`] / [`sparse_iteration_cap`] depending on
    /// the resolved representation), so a pathological or cycling instance
    /// surfaces [`LpError::IterationLimit`] instead of spinning forever.
    pub max_iterations: Option<usize>,
    /// Pivots without improvement before Bland's rule engages.
    pub stall_limit: usize,
    /// Basis refactorisation interval (pivots). The sparse representation
    /// additionally refactorises early when the eta file outgrows the LU
    /// factors (fill-bounded refactorisation).
    pub refactor_every: usize,
    /// Basis factorisation representation (see [`BasisRepr`]).
    pub basis_repr: BasisRepr,
}

impl Default for RevisedSimplex {
    fn default() -> Self {
        RevisedSimplex {
            max_iterations: None,
            stall_limit: 256,
            refactor_every: 128,
            basis_repr: BasisRepr::Auto,
        }
    }
}

impl RevisedSimplex {
    /// Resolves [`BasisRepr::Auto`] for a model with `m` standard-form
    /// rows: `true` = sparse LU.
    pub(crate) fn sparse_for(&self, m: usize) -> bool {
        match self.basis_repr {
            BasisRepr::DenseInverse => false,
            BasisRepr::SparseLu => true,
            BasisRepr::Auto => m >= SPARSE_MIN_ROWS,
        }
    }

    /// The per-phase pivot cap used on a given standard form.
    pub(crate) fn iteration_cap(&self, sf: &StandardForm) -> usize {
        self.max_iterations.unwrap_or_else(|| {
            if self.sparse_for(sf.m) {
                sparse_iteration_cap(sf.m, sf.n_cols)
            } else {
                scaled_iteration_cap(sf.m, sf.n_cols)
            }
        })
    }
}

pub(crate) enum PhaseEnd {
    Optimal,
    Unbounded,
}

/// Outcome of a dual-simplex phase.
pub(crate) enum DualEnd {
    /// All basic values are non-negative; the basis is primal feasible (and
    /// still dual feasible for the costs the phase ran with).
    PrimalFeasible,
    /// A negative row with no admissible pivot column: primal infeasible.
    Infeasible,
}

/// Dense row-major `B⁻¹` with its Gauss–Jordan refactorisation scratch —
/// the retained oracle representation.
#[derive(Debug, Clone)]
struct DenseInv {
    binv: Vec<f64>,
    /// Dense `B` scratch for refactorisation (`m × m`, allocated once).
    scratch_a: Vec<f64>,
    /// Gauss–Jordan inverse scratch for refactorisation (`m × m`).
    scratch_inv: Vec<f64>,
}

/// The interchangeable basis-factorisation representations. Exactly one
/// `Repr` lives in each solver context (never in bulk collections), so the
/// size gap between the variants costs nothing.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
enum Repr {
    Dense(DenseInv),
    Sparse(SparseLu),
}

/// The persistent simplex state: basis, a factorisation of it (dense `B⁻¹`
/// or sparse LU + etas), and basic values.
///
/// Unlike a per-solve tableau this owns no reference to the standard form,
/// so it can outlive a solve and be re-used by the warm-start layer: every
/// method takes the (possibly patched-in-place) `StandardForm` explicitly.
#[derive(Debug, Clone)]
pub(crate) struct Factor {
    pub(crate) m: usize,
    pub(crate) basis: Vec<usize>,
    pub(crate) in_basis: Vec<bool>,
    /// Basis factorisation.
    repr: Repr,
    /// Current basic variable values `x_B = B⁻¹ b`.
    pub(crate) xb: Vec<f64>,
    pub(crate) iterations: usize,
    /// Total refactorisations performed over this factor's lifetime.
    pub(crate) refactor_count: u64,
    pivots_since_refactor: usize,
    refactor_every: usize,
    /// BTRAN scratch (`y`), reused across pivots and phases.
    scratch_y: Vec<f64>,
    /// FTRAN scratch (`w`), reused across pivots and phases.
    scratch_w: Vec<f64>,
    /// Dual pricing-row scratch (`ρ`), reused across dual pivots.
    scratch_rho: Vec<f64>,
}

impl Factor {
    pub(crate) fn new(sf: &StandardForm, refactor_every: usize, sparse: bool) -> Self {
        let m = sf.m;
        let mut in_basis = vec![false; sf.n_cols];
        for &j in &sf.initial_basis {
            in_basis[j] = true;
        }
        // The initial basis is {slack, artificial} columns with coefficient
        // +1 on their row, so B = I and x_B = b.
        let repr = if sparse {
            Repr::Sparse(SparseLu::identity(m))
        } else {
            let mut binv = vec![0.0f64; m * m];
            for i in 0..m {
                binv[i * m + i] = 1.0;
            }
            Repr::Dense(DenseInv {
                binv,
                scratch_a: Vec::new(),
                scratch_inv: Vec::new(),
            })
        };
        Factor {
            m,
            basis: sf.initial_basis.clone(),
            in_basis,
            repr,
            xb: sf.b.to_vec(),
            iterations: 0,
            refactor_count: 0,
            pivots_since_refactor: 0,
            refactor_every,
            scratch_y: vec![0.0; m],
            scratch_w: vec![0.0; m],
            scratch_rho: vec![0.0; m],
        }
    }

    /// Installs an explicit basis (one column per row) and factorises it.
    /// Fails with [`LpError::SingularBasis`] when the columns are linearly
    /// dependent, and rejects malformed basis vectors.
    pub(crate) fn from_basis(
        sf: &StandardForm,
        cols: &[usize],
        refactor_every: usize,
        sparse: bool,
    ) -> Result<Self, LpError> {
        if cols.len() != sf.m {
            return Err(LpError::SingularBasis);
        }
        let mut in_basis = vec![false; sf.n_cols];
        for &j in cols {
            if j >= sf.n_cols || in_basis[j] {
                return Err(LpError::SingularBasis);
            }
            in_basis[j] = true;
        }
        let repr = if sparse {
            Repr::Sparse(SparseLu::identity(sf.m))
        } else {
            Repr::Dense(DenseInv {
                binv: vec![0.0; sf.m * sf.m],
                scratch_a: Vec::new(),
                scratch_inv: Vec::new(),
            })
        };
        let mut f = Factor {
            m: sf.m,
            basis: cols.to_vec(),
            in_basis,
            repr,
            xb: vec![0.0; sf.m],
            iterations: 0,
            refactor_count: 0,
            pivots_since_refactor: 0,
            refactor_every,
            scratch_y: vec![0.0; sf.m],
            scratch_w: vec![0.0; sf.m],
            scratch_rho: vec![0.0; sf.m],
        };
        // Repairing factorisation: a snapshot that went (near-)singular
        // after model edits degrades to a partially-restored basis instead
        // of failing outright; the warm repair loop re-optimises from it.
        f.refactor_repair(sf)?;
        Ok(f)
    }

    /// `true` when this factor uses the sparse LU representation.
    pub(crate) fn is_sparse(&self) -> bool {
        matches!(self.repr, Repr::Sparse(_))
    }

    /// Nonzeros held by the factorisation: `m²` for the dense inverse,
    /// LU + eta-file nonzeros for the sparse representation.
    pub(crate) fn factor_nnz(&self) -> usize {
        match &self.repr {
            Repr::Dense(_) => self.m * self.m,
            Repr::Sparse(lu) => lu.lu_nnz() + lu.eta_nnz(),
        }
    }

    /// Nonzeros of the basis columns at the last factorisation (dense:
    /// recomputed on demand is unnecessary — the sparse factoriser records
    /// it; dense callers fall back to the current sparse column count).
    pub(crate) fn basis_nnz(&self, sf: &StandardForm) -> usize {
        match &self.repr {
            Repr::Dense(_) => sf.basis_nnz(&self.basis),
            Repr::Sparse(lu) => lu.basis_nnz,
        }
    }

    /// `y = c_Bᵀ B⁻¹`.
    pub(crate) fn btran(&mut self, costs: &[f64], y: &mut [f64]) {
        let basis = &self.basis;
        match &mut self.repr {
            Repr::Dense(d) => {
                y.iter_mut().for_each(|v| *v = 0.0);
                for (r, &bj) in basis.iter().enumerate() {
                    let cb = costs[bj];
                    if cb != 0.0 {
                        let row = &d.binv[r * self.m..(r + 1) * self.m];
                        for (yi, &bi) in y.iter_mut().zip(row) {
                            *yi += cb * bi;
                        }
                    }
                }
            }
            Repr::Sparse(lu) => lu.btran(|pos| costs[basis[pos]], y),
        }
    }

    /// `ρ = e_posᵀ B⁻¹` — row `pos` of the inverse, indexed by original
    /// standard-form row. The dense representation reads the row straight
    /// off `B⁻¹` (bit-identical to the historical direct access); the
    /// sparse one runs a unit BTRAN.
    pub(crate) fn btran_unit(&mut self, pos: usize, rho: &mut [f64]) {
        match &mut self.repr {
            Repr::Dense(d) => rho.copy_from_slice(&d.binv[pos * self.m..(pos + 1) * self.m]),
            Repr::Sparse(lu) => lu.btran(|p| if p == pos { 1.0 } else { 0.0 }, rho),
        }
    }

    /// `w = B⁻¹ a_j` from the sparse column.
    pub(crate) fn ftran(&mut self, sf: &StandardForm, j: usize, w: &mut [f64]) {
        match &mut self.repr {
            Repr::Dense(d) => {
                w.iter_mut().for_each(|v| *v = 0.0);
                for &(r, a) in &sf.cols[j] {
                    let col = &d.binv[..];
                    // Accumulate a · (column r of B⁻¹): row-major storage
                    // means a strided walk; m is small on this path so it
                    // stays cheap relative to the m² updates.
                    for i in 0..self.m {
                        w[i] += a * col[i * self.m + r];
                    }
                }
            }
            Repr::Sparse(lu) => lu.ftran(&sf.cols[j], w),
        }
    }

    /// `w = B⁻¹ e_row` — column `row` of the inverse.
    pub(crate) fn ftran_unit(&mut self, row: usize, w: &mut [f64]) {
        match &mut self.repr {
            Repr::Dense(d) => {
                for i in 0..self.m {
                    w[i] = d.binv[i * self.m + row];
                }
            }
            Repr::Sparse(lu) => lu.ftran(&[(row, 1.0)], w),
        }
    }

    /// Reduced cost of column `j` given `y`.
    pub(crate) fn reduced_cost(
        &self,
        sf: &StandardForm,
        costs: &[f64],
        y: &[f64],
        j: usize,
    ) -> f64 {
        let mut d = costs[j];
        for &(r, a) in &sf.cols[j] {
            d -= y[r] * a;
        }
        d
    }

    pub(crate) fn objective(&self, costs: &[f64]) -> f64 {
        self.basis
            .iter()
            .zip(&self.xb)
            .map(|(&j, &x)| costs[j] * x)
            .sum()
    }

    /// Folds a single right-hand-side delta into `x_B` incrementally:
    /// `Δx_B = B⁻¹ Δb = δ ·` (column `row` of `B⁻¹`) — one column read
    /// (dense) or one unit FTRAN (sparse) instead of the full `x_B`
    /// recomputation.
    pub(crate) fn apply_b_delta(&mut self, row: usize, delta: f64) {
        let m = self.m;
        if let Repr::Dense(d) = &self.repr {
            for i in 0..m {
                self.xb[i] += delta * d.binv[i * m + row];
            }
            return;
        }
        let mut w = std::mem::take(&mut self.scratch_w);
        self.ftran_unit(row, &mut w);
        for i in 0..m {
            self.xb[i] += delta * w[i];
        }
        self.scratch_w = w;
    }

    /// Swaps the basic column at basis position `pos` for a nonbasic slack
    /// column with a numerically solid pivot element, using one ordinary
    /// basis update (`slack_cols` maps rows to their slack columns).
    /// Returns `false` when no such slack exists. Used by the warm-start
    /// layer to pull a column out of the basis *before* a coefficient patch
    /// that would make the basis singular.
    pub(crate) fn evict_position(
        &mut self,
        sf: &StandardForm,
        pos: usize,
        slack_cols: &[Option<usize>],
    ) -> bool {
        let m = self.m;
        // w_slack(r)[pos] = B⁻¹[pos, r] · coef, so the best candidate is
        // read off row `pos` of the inverse (one unit BTRAN for the sparse
        // representation).
        let mut rho = std::mem::take(&mut self.scratch_rho);
        self.btran_unit(pos, &mut rho);
        let mut best: Option<(usize, f64)> = None;
        for r in 0..m {
            let Some(s) = slack_cols[r] else {
                continue;
            };
            if self.in_basis[s] {
                continue;
            }
            let w_pos = (rho[r] * sf.cols[s][0].1).abs();
            if best.is_none_or(|(_, b)| w_pos > b) {
                best = Some((s, w_pos));
            }
        }
        self.scratch_rho = rho;
        let Some((e, mag)) = best else {
            return false;
        };
        if mag <= 1e-7 {
            return false;
        }
        let mut w = std::mem::take(&mut self.scratch_w);
        self.ftran(sf, e, &mut w);
        let ok = w[pos].abs() > PIVOT_TOL;
        if ok {
            self.update(pos, e, &w);
        }
        self.scratch_w = w;
        ok
    }

    /// `‖B·x_B − b‖∞`, computed from the *true* sparse basis columns — an
    /// O(nnz) health check of the incrementally-maintained factorisation.
    /// Rank-1 patches with modest denominators compound; when this residual
    /// leaves the noise floor the caller must refactorise before trusting
    /// another solve (a drifted `B⁻¹` sends the dual phase on a degenerate
    /// random walk of pivots).
    pub(crate) fn xb_residual_inf(&mut self, sf: &StandardForm) -> f64 {
        let mut res = std::mem::take(&mut self.scratch_w);
        res.copy_from_slice(&sf.b);
        for (pos, &j) in self.basis.iter().enumerate() {
            let x = self.xb[pos];
            if x != 0.0 {
                for &(r, a) in &sf.cols[j] {
                    res[r] -= a * x;
                }
            }
        }
        let worst = res.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()));
        self.scratch_w = res;
        worst
    }

    /// Rebuilds `B⁻¹` from scratch (Gauss–Jordan with partial pivoting) and
    /// recomputes `x_B`. Fails with [`LpError::SingularBasis`] when the
    /// basis columns are dependent.
    pub(crate) fn refactor(&mut self, sf: &StandardForm) -> Result<(), LpError> {
        self.refactor_inner(sf, false).map(|_| ())
    }

    /// Like [`Factor::refactor`], but *repairs* a singular basis instead of
    /// failing: when elimination exposes a dependent basis column, that
    /// basis slot is replaced by the unit (slack/artificial) column of a
    /// not-yet-pivoted row — `initial_basis` guarantees one exists per row —
    /// and elimination continues. Returns the number of replaced columns;
    /// the caller must treat the basis as arbitrary (re-run the full
    /// dual/primal repair loop) whenever it is nonzero.
    pub(crate) fn refactor_repair(&mut self, sf: &StandardForm) -> Result<usize, LpError> {
        self.refactor_inner(sf, true)
    }

    fn refactor_inner(&mut self, sf: &StandardForm, repair: bool) -> Result<usize, LpError> {
        let replaced = match &mut self.repr {
            Repr::Sparse(lu) => {
                let replaced = lu.factorise(sf, &mut self.basis, &mut self.in_basis, repair)?;
                // x_B = B⁻¹ b, with the same small-negative clamp as the
                // dense rebuild below.
                lu.ftran_dense(&sf.b, &mut self.xb);
                for v in self.xb.iter_mut() {
                    if *v < 0.0 && *v > -FEAS_TOL {
                        *v = 0.0;
                    }
                }
                replaced
            }
            Repr::Dense(_) => self.refactor_dense(sf, repair)?,
        };
        self.pivots_since_refactor = 0;
        self.refactor_count += 1;
        Ok(replaced)
    }

    /// The dense Gauss–Jordan rebuild (see [`Factor::refactor_repair`] for
    /// the repair semantics shared with the sparse factoriser).
    fn refactor_dense(&mut self, sf: &StandardForm, repair: bool) -> Result<usize, LpError> {
        let m = self.m;
        let Repr::Dense(dense) = &mut self.repr else {
            unreachable!("dense refactor on a sparse factor");
        };
        // Dense B from the sparse basis columns, into the reusable scratch
        // (zeroed in place — no per-refactor `m²` allocations).
        let mut a = std::mem::take(&mut dense.scratch_a);
        let mut inv = std::mem::take(&mut dense.scratch_inv);
        a.clear();
        a.resize(m * m, 0.0);
        inv.clear();
        inv.resize(m * m, 0.0);
        for (c, &j) in self.basis.iter().enumerate() {
            for &(r, v) in &sf.cols[j] {
                a[r * m + c] = v;
            }
        }
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        // Physical row ↔ original row bookkeeping (needed by the repair
        // path: replacement candidates are indexed by original rows).
        let mut perm: Vec<usize> = (0..m).collect();
        let mut replaced = 0usize;
        for col in 0..m {
            // Partial pivoting.
            let mut piv_row = col;
            let mut piv_val = a[col * m + col].abs();
            for r in col + 1..m {
                let v = a[r * m + col].abs();
                if v > piv_val {
                    piv_val = v;
                    piv_row = r;
                }
            }
            if piv_val < 1e-12 {
                if !repair {
                    dense.scratch_a = a;
                    dense.scratch_inv = inv;
                    return Err(LpError::SingularBasis);
                }
                // Basis column `col` is dependent on the already-pivoted
                // ones. Substitute the unit column `e_q` of an unpivoted
                // original row `q` whose slack/artificial is nonbasic; its
                // eliminated representation is just column `q` of the
                // accumulated op matrix (`inv`), so no re-elimination is
                // needed. Pick the candidate with the largest pivot.
                let mut best: Option<(usize, usize, f64)> = None;
                for r in col..m {
                    let q = perm[r];
                    let cand = sf.initial_basis[q];
                    if self.in_basis[cand] {
                        continue;
                    }
                    let mag = inv[r * m + q].abs();
                    if best.is_none_or(|(_, _, b)| mag > b) {
                        best = Some((r, q, mag));
                    }
                }
                match best {
                    Some((r, q, mag)) if mag >= 1e-12 => {
                        let cand = sf.initial_basis[q];
                        self.in_basis[self.basis[col]] = false;
                        self.in_basis[cand] = true;
                        self.basis[col] = cand;
                        for rr in 0..m {
                            a[rr * m + col] = inv[rr * m + q];
                        }
                        replaced += 1;
                        piv_row = r;
                        piv_val = mag;
                    }
                    _ => {
                        dense.scratch_a = a;
                        dense.scratch_inv = inv;
                        return Err(LpError::SingularBasis);
                    }
                }
                debug_assert!(piv_val >= 1e-12);
            }
            if piv_row != col {
                for j in 0..m {
                    a.swap(col * m + j, piv_row * m + j);
                    inv.swap(col * m + j, piv_row * m + j);
                }
                perm.swap(col, piv_row);
            }
            let inv_piv = 1.0 / a[col * m + col];
            for j in 0..m {
                a[col * m + j] *= inv_piv;
                inv[col * m + j] *= inv_piv;
            }
            for r in 0..m {
                if r != col {
                    let f = a[r * m + col];
                    if f != 0.0 {
                        for j in 0..m {
                            a[r * m + j] -= f * a[col * m + j];
                            inv[r * m + j] -= f * inv[col * m + j];
                        }
                    }
                }
            }
        }
        dense.binv.copy_from_slice(&inv);
        dense.scratch_a = a;
        dense.scratch_inv = inv;
        // x_B = B⁻¹ b.
        for i in 0..m {
            let row = &dense.binv[i * m..(i + 1) * m];
            self.xb[i] = row.iter().zip(&sf.b).map(|(&bi, &b)| bi * b).sum();
            if self.xb[i] < 0.0 && self.xb[i] > -FEAS_TOL {
                self.xb[i] = 0.0;
            }
        }
        Ok(replaced)
    }

    /// The Sherman–Morrison denominator `1 + δ·B⁻¹[pos, row]` a
    /// [`Factor::patch_basic_column`] call would divide by. The warm layer
    /// probes it to choose between the rank-1 patch, an eviction, and a
    /// full refactorisation *before* mutating anything.
    pub(crate) fn patch_denominator(&mut self, pos: usize, row: usize, delta: f64) -> f64 {
        if let Repr::Dense(d) = &self.repr {
            return 1.0 + delta * d.binv[pos * self.m + row];
        }
        let mut w = std::mem::take(&mut self.scratch_w);
        self.ftran_unit(row, &mut w);
        let denom = 1.0 + delta * w[pos];
        self.scratch_w = w;
        denom
    }

    /// Rank-1 repair of the factorisation after the *basic* column at basis
    /// position `pos` changed by `delta` in row `row`. The dense inverse
    /// applies Sherman–Morrison:
    /// `B′ = B + delta·e_row·e_posᵀ`, so
    /// `B′⁻¹ = B⁻¹ − (delta · B⁻¹e_row · e_posᵀB⁻¹) / (1 + delta·B⁻¹[pos,row])`.
    /// The sparse LU appends the product-form eta `E = I + u·e_posᵀ` with
    /// `u = δ·B⁻¹e_row` (`B′ = B·E`) — same operator, O(nnz) instead of
    /// O(m²). Both correct `x_B` with the identical rank-1 arithmetic.
    ///
    /// Fails (so the caller can fall back to a full refactorisation) when
    /// the update denominator signals a near-singular patched basis.
    pub(crate) fn patch_basic_column(
        &mut self,
        row: usize,
        pos: usize,
        delta: f64,
    ) -> Result<(), LpError> {
        let m = self.m;
        if self.is_sparse() {
            let mut u = std::mem::take(&mut self.scratch_w);
            self.ftran_unit(row, &mut u);
            for v in u.iter_mut() {
                *v *= delta;
            }
            let denom = 1.0 + u[pos];
            if denom.abs() < 1e-9 {
                self.scratch_w = u;
                return Err(LpError::SingularBasis);
            }
            let Repr::Sparse(lu) = &mut self.repr else {
                unreachable!()
            };
            // Column pos of E is e_pos + u: pivot `denom`, off entries u.
            lu.append_eta(pos, denom, &u, 0.0);
            // x_B correction, identical to the dense arithmetic below.
            let inv_denom = 1.0 / denom;
            let f = self.xb[pos] * inv_denom;
            for i in 0..m {
                self.xb[i] -= u[i] * f;
            }
            self.scratch_w = u;
            return Ok(());
        }
        let denom = self.patch_denominator(pos, row, delta);
        if denom.abs() < 1e-9 {
            return Err(LpError::SingularBasis);
        }
        // u = delta · (column `row` of B⁻¹), reusing the FTRAN scratch.
        let mut u = std::mem::take(&mut self.scratch_w);
        let Repr::Dense(dense) = &mut self.repr else {
            unreachable!()
        };
        for i in 0..m {
            u[i] = delta * dense.binv[i * m + row];
        }
        let inv_denom = 1.0 / denom;
        // Rows i ≠ pos read the *old* row pos, so it must be corrected last:
        // its own correction works out to a plain scaling by 1/denom
        // (`new = old − (u_pos/denom)·old = old·(denom − u_pos)/denom`, and
        // `denom − u_pos = 1` by the definition of the denominator).
        for i in 0..m {
            if i == pos {
                continue;
            }
            let f = u[i] * inv_denom;
            if f != 0.0 {
                // binv[i, :] -= f · binv[pos, :] — raw index math splits the
                // borrow between the updated row and the pivot row.
                for j in 0..m {
                    let pv = dense.binv[pos * m + j];
                    dense.binv[i * m + j] -= f * pv;
                }
            }
        }
        for j in 0..m {
            dense.binv[pos * m + j] *= inv_denom;
        }
        // Same rank-1 correction keeps x_B = B⁻¹b current:
        // `x_B ← x_B − u · x_B[pos]/denom` (the pos entry lands on
        // `x_B[pos]/denom` by the identity above).
        let f = self.xb[pos] * inv_denom;
        for i in 0..m {
            self.xb[i] -= u[i] * f;
        }
        self.scratch_w = u;
        Ok(())
    }

    /// Applies the basis change for entering column `e` at row `r` with
    /// FTRAN result `w`: an elementary row transformation of the dense
    /// `B⁻¹`, or an appended eta for the sparse LU (identical `x_B`
    /// arithmetic on both paths, including the 1e-13 drop threshold).
    pub(crate) fn update(&mut self, r: usize, e: usize, w: &[f64]) {
        let m = self.m;
        let pivot = w[r];
        let theta = self.xb[r] / pivot;
        match &mut self.repr {
            Repr::Dense(dense) => {
                let inv_p = 1.0 / pivot;
                for j in 0..m {
                    dense.binv[r * m + j] *= inv_p;
                }
                for i in 0..m {
                    if i != r {
                        let f = w[i];
                        if f.abs() > 1e-13 {
                            // Split borrows: copying the pivot row is
                            // avoided with raw index math over the flat
                            // buffer.
                            for j in 0..m {
                                let pr = dense.binv[r * m + j];
                                dense.binv[i * m + j] -= f * pr;
                            }
                            self.xb[i] -= theta * f;
                            if self.xb[i] < 0.0 && self.xb[i] > -FEAS_TOL {
                                self.xb[i] = 0.0;
                            }
                        }
                    }
                }
            }
            Repr::Sparse(lu) => {
                lu.append_eta(r, pivot, w, 1e-13);
                for i in 0..m {
                    if i != r {
                        let f = w[i];
                        if f.abs() > 1e-13 {
                            self.xb[i] -= theta * f;
                            if self.xb[i] < 0.0 && self.xb[i] > -FEAS_TOL {
                                self.xb[i] = 0.0;
                            }
                        }
                    }
                }
            }
        }
        self.xb[r] = theta;
        self.in_basis[self.basis[r]] = false;
        self.in_basis[e] = true;
        self.basis[r] = e;
        self.iterations += 1;
        self.pivots_since_refactor += 1;
    }

    /// Refactorisation trigger shared by the phase loops: the pivot-count
    /// interval, plus the sparse representation's fill bound (refactorise
    /// early when the eta file outgrows the LU factors — "fill-in-bounded
    /// refactorisation").
    fn due_refactor(&self) -> bool {
        self.pivots_since_refactor >= self.refactor_every
            || matches!(&self.repr, Repr::Sparse(lu) if lu.fill_exceeded())
    }

    pub(crate) fn run_phase(
        &mut self,
        sf: &StandardForm,
        costs: &[f64],
        banned: &[bool],
        evict_artificials: bool,
        max_iter: usize,
        stall_limit: usize,
    ) -> Result<PhaseEnd, LpError> {
        // Borrow the BTRAN/FTRAN scratch out of `self` for the duration of
        // the phase so no pivot (or phase) allocates.
        let mut y = std::mem::take(&mut self.scratch_y);
        let mut w = std::mem::take(&mut self.scratch_w);
        let end = self.run_phase_inner(
            sf,
            costs,
            banned,
            evict_artificials,
            max_iter,
            stall_limit,
            &mut y,
            &mut w,
        );
        self.scratch_y = y;
        self.scratch_w = w;
        end
    }

    #[allow(clippy::too_many_arguments)]
    fn run_phase_inner(
        &mut self,
        sf: &StandardForm,
        costs: &[f64],
        banned: &[bool],
        evict_artificials: bool,
        max_iter: usize,
        stall_limit: usize,
        y: &mut [f64],
        w: &mut [f64],
    ) -> Result<PhaseEnd, LpError> {
        let m = self.m;
        let mut bland = false;
        let mut stall = 0usize;
        let mut last_obj = self.objective(costs);
        let mut iters_this_phase = 0usize;

        loop {
            self.btran(costs, y);

            // --- entering column ---
            let mut entering = None;
            if bland {
                for j in 0..sf.n_cols {
                    if !banned[j] && !self.in_basis[j] {
                        let d = self.reduced_cost(sf, costs, y, j);
                        if d < -COST_TOL {
                            entering = Some(j);
                            break;
                        }
                    }
                }
            } else {
                let mut best = -COST_TOL;
                for j in 0..sf.n_cols {
                    if !banned[j] && !self.in_basis[j] {
                        let d = self.reduced_cost(sf, costs, y, j);
                        if d < best {
                            best = d;
                            entering = Some(j);
                        }
                    }
                }
            }
            let Some(e) = entering else {
                return Ok(PhaseEnd::Optimal);
            };

            self.ftran(sf, e, w);

            // --- leaving row (artificial eviction first, as in the dense
            // engine) ---
            let mut leaving = None;
            if evict_artificials {
                let mut best_abs = PIVOT_TOL;
                for i in 0..m {
                    if sf.is_artificial[self.basis[i]] {
                        let v = w[i].abs();
                        if v > best_abs {
                            best_abs = v;
                            leaving = Some(i);
                        }
                    }
                }
            }
            if leaving.is_none() {
                let mut best_ratio = f64::INFINITY;
                let mut best_basis = usize::MAX;
                for i in 0..m {
                    if w[i] > PIVOT_TOL {
                        let ratio = self.xb[i] / w[i];
                        if ratio < best_ratio - 1e-12
                            || (ratio < best_ratio + 1e-12 && self.basis[i] < best_basis)
                        {
                            best_ratio = ratio;
                            best_basis = self.basis[i];
                            leaving = Some(i);
                        }
                    }
                }
            }
            let Some(r) = leaving else {
                return Ok(PhaseEnd::Unbounded);
            };

            self.update(r, e, w);
            iters_this_phase += 1;

            if self.due_refactor() {
                self.refactor(sf)?;
            }

            let obj = self.objective(costs);
            if obj < last_obj - 1e-12 {
                stall = 0;
                last_obj = obj;
            } else {
                stall += 1;
                if stall >= stall_limit {
                    bland = true;
                }
            }
            if iters_this_phase >= max_iter {
                return Err(LpError::IterationLimit {
                    iterations: self.iterations,
                });
            }
        }
    }

    /// Dual simplex: from a dual-feasible basis (`d_j ≥ 0` for every
    /// non-banned column under `costs`), pivots until primal feasibility or
    /// an infeasibility certificate. See the module docs for the method.
    pub(crate) fn run_dual_phase(
        &mut self,
        sf: &StandardForm,
        costs: &[f64],
        banned: &[bool],
        max_iter: usize,
    ) -> Result<DualEnd, LpError> {
        let m = self.m;
        let mut y = std::mem::take(&mut self.scratch_y);
        let mut w = std::mem::take(&mut self.scratch_w);
        let mut rho = std::mem::take(&mut self.scratch_rho);
        let b_scale = 1.0 + sf.b.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
        let tol = FEAS_TOL * b_scale;
        let mut iters_this_phase = 0usize;
        let mut retried_after_refactor = false;

        let end = loop {
            // --- leaving row: the most violated basic value. A negative
            // basic variable violates its lower bound 0; a *positive* basic
            // artificial violates its conceptual upper bound 0 (artificials
            // are fixed at zero outside phase 1) and is driven out the same
            // way, with the ratio test run on the opposite sign. ---
            let mut leaving: Option<(usize, bool)> = None;
            let mut worst = tol;
            for i in 0..m {
                let (viol, above) = if self.xb[i] < 0.0 {
                    (-self.xb[i], false)
                } else if self.xb[i] > 0.0 && sf.is_artificial[self.basis[i]] {
                    (self.xb[i], true)
                } else {
                    continue;
                };
                if viol > worst {
                    worst = viol;
                    leaving = Some((i, above));
                }
            }
            let Some((r, above)) = leaving else {
                break Ok(DualEnd::PrimalFeasible);
            };
            // Entering candidates need `α_rj` of this sign for the pivot to
            // reduce the violation.
            let want_sign = if above { 1.0 } else { -1.0 };

            // --- entering column: dual ratio test over sign·α_rj > 0 ---
            self.btran(costs, &mut y);
            self.btran_unit(r, &mut rho);
            let mut entering: Option<(usize, f64)> = None;
            let mut best_ratio = f64::INFINITY;
            for j in 0..sf.n_cols {
                if banned[j] || self.in_basis[j] {
                    continue;
                }
                let mut a_rj = 0.0;
                for &(i, a) in &sf.cols[j] {
                    a_rj += rho[i] * a;
                }
                if a_rj * want_sign > PIVOT_TOL {
                    // Clamp drift: dual feasibility guarantees d ≥ −ε.
                    let d = self.reduced_cost(sf, costs, &y, j).max(0.0);
                    let ratio = d / (a_rj * want_sign);
                    // Strict improvement with ascending j means ties keep
                    // the smallest column index (Bland flavour), which
                    // guards against cycling on degenerate (d = 0) pivots.
                    if ratio < best_ratio - 1e-12 {
                        best_ratio = ratio;
                        entering = Some((j, a_rj));
                    }
                }
            }
            let Some((e, a_re)) = entering else {
                break Ok(DualEnd::Infeasible);
            };

            self.ftran(sf, e, &mut w);
            // The FTRAN pivot element must agree with the pricing row; a
            // disagreement means B⁻¹ drifted — refactorise once and retry.
            if w[r] * want_sign <= PIVOT_TOL || (w[r] - a_re).abs() > 1e-6 * (1.0 + a_re.abs()) {
                if retried_after_refactor {
                    break Err(LpError::NumericalBreakdown("dual pivot row"));
                }
                retried_after_refactor = true;
                if let Err(e) = self.refactor(sf) {
                    break Err(e);
                }
                continue;
            }
            retried_after_refactor = false;

            self.update(r, e, &w);
            iters_this_phase += 1;
            if self.due_refactor() {
                if let Err(e) = self.refactor(sf) {
                    break Err(e);
                }
            }
            if iters_this_phase >= max_iter {
                break Err(LpError::IterationLimit {
                    iterations: self.iterations,
                });
            }
        };
        self.scratch_y = y;
        self.scratch_w = w;
        self.scratch_rho = rho;
        end
    }

    /// `true` iff some artificial column is basic at a non-negligible level
    /// — the "solution" then violates an original row and must be rejected
    /// (warm starts fall back to a cold solve when this happens).
    pub(crate) fn artificial_above_zero(&self, sf: &StandardForm) -> bool {
        let b_scale = 1.0 + sf.b.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
        self.basis
            .iter()
            .zip(&self.xb)
            .any(|(&j, &x)| sf.is_artificial[j] && x.abs() > FEAS_TOL * b_scale)
    }
}

/// Builds the user-facing optimal solution (values, objective, duals) from a
/// factorised optimal basis. `y` may supply an already-computed pricing
/// vector `c_Bᵀ B⁻¹` (valid for the *current* basis and the true costs) to
/// skip the O(m²) BTRAN.
pub(crate) fn extract_optimal(
    model: &Model,
    sf: &StandardForm,
    factor: &mut Factor,
    y: Option<&[f64]>,
) -> Solution {
    let mut std_values = vec![0.0f64; sf.n_structural];
    for (i, &j) in factor.basis.iter().enumerate() {
        if j < sf.n_structural {
            std_values[j] = factor.xb[i].max(0.0);
        }
    }
    let values = sf.recover(&std_values);
    let objective = model.objective_value(&values);
    // Standard-space duals at optimality: y = c_Bᵀ B⁻¹.
    let duals = match y {
        Some(y) => sf.recover_duals(y, model.num_constraints()),
        None => {
            let mut y_std = std::mem::take(&mut factor.scratch_y);
            factor.btran(&sf.c, &mut y_std);
            let duals = sf.recover_duals(&y_std, model.num_constraints());
            factor.scratch_y = y_std;
            duals
        }
    };
    Solution {
        status: Status::Optimal,
        objective,
        values,
        duals,
        iterations: factor.iterations,
    }
}

impl RevisedSimplex {
    /// Solves the LP relaxation of `model` (integrality marks are ignored).
    pub fn solve(&self, model: &Model) -> Result<Solution, LpError> {
        let sf = StandardForm::from_model(model)?;
        self.solve_standard(model, &sf)
    }

    pub(crate) fn solve_standard(
        &self,
        model: &Model,
        sf: &StandardForm,
    ) -> Result<Solution, LpError> {
        Ok(self.solve_standard_keep(model, sf)?.0)
    }

    /// Cold two-phase solve that also hands back the final factorisation, so
    /// the warm-start layer can keep pivoting from where the solve ended.
    pub(crate) fn solve_standard_keep(
        &self,
        model: &Model,
        sf: &StandardForm,
    ) -> Result<(Solution, Option<Factor>), LpError> {
        if sf.m == 0 {
            return Ok((solve_unconstrained(model, sf), None));
        }
        let mut factor = Factor::new(sf, self.refactor_every, self.sparse_for(sf.m));
        let max_iter = self.iteration_cap(sf);
        let no_ban = vec![false; sf.n_cols];

        // --- Phase 1 ---
        if sf.n_artificial > 0 {
            let costs = sf.phase1_costs();
            match factor.run_phase(sf, &costs, &no_ban, false, max_iter, self.stall_limit)? {
                PhaseEnd::Optimal => {}
                // Phase-1 objective is bounded below by 0; "unbounded" here
                // means the factorisation broke down.
                PhaseEnd::Unbounded => return Err(LpError::NumericalBreakdown("phase 1")),
            }
            let b_norm = 1.0 + sf.b.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
            if factor.objective(&costs) > FEAS_TOL * b_norm {
                return Ok((Solution::infeasible(factor.iterations), Some(factor)));
            }
        }

        // --- Phase 2 ---
        let end = factor.run_phase(
            sf,
            &sf.c,
            &sf.is_artificial,
            true,
            max_iter,
            self.stall_limit,
        )?;
        if matches!(end, PhaseEnd::Unbounded) {
            return Ok((Solution::unbounded(factor.iterations), Some(factor)));
        }

        let solution = extract_optimal(model, sf, &mut factor, None);
        Ok((solution, Some(factor)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Model, Sense};

    fn solve(m: &Model) -> Solution {
        RevisedSimplex::default().solve(m).unwrap()
    }

    #[test]
    fn matches_dense_on_textbook_problem() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective_coef(x, 3.0);
        m.set_objective_coef(y, 5.0);
        m.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 4.0);
        m.add_constraint(vec![(y, 2.0)], ConstraintOp::Le, 12.0);
        m.add_constraint(vec![(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let s = solve(&m);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 36.0).abs() < 1e-7);
    }

    #[test]
    fn phase1_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 1.0);
        m.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 2.0);
        assert_eq!(solve(&m).status, Status::Infeasible);
    }

    #[test]
    fn unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        m.set_objective_coef(x, 2.0);
        m.add_constraint(vec![(x, -1.0)], ConstraintOp::Le, 5.0);
        assert_eq!(solve(&m).status, Status::Unbounded);
    }

    #[test]
    fn equality_and_ge_mix() {
        // min 4a+b s.t. a+b = 3, a ≥ 1 → a=1? cost 4+2=6 vs a=3,b=0 cost 12
        // → a=1, b=2, obj 6.
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_var("a", 0.0, f64::INFINITY);
        let b = m.add_var("b", 0.0, f64::INFINITY);
        m.set_objective_coef(a, 4.0);
        m.set_objective_coef(b, 1.0);
        m.add_constraint(vec![(a, 1.0), (b, 1.0)], ConstraintOp::Eq, 3.0);
        m.add_constraint(vec![(a, 1.0)], ConstraintOp::Ge, 1.0);
        let s = solve(&m);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 6.0).abs() < 1e-7);
        assert!((s[a] - 1.0).abs() < 1e-7);
        assert!((s[b] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn refactorisation_path_exercised() {
        // A chain of constraints forcing many pivots with a tiny refactor
        // interval, to exercise the Gauss–Jordan rebuild.
        let n = 30;
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_var(format!("x{i}"), 0.0, f64::INFINITY))
            .collect();
        for (i, &v) in vars.iter().enumerate() {
            m.set_objective_coef(v, 1.0 + (i as f64) * 0.01);
            m.add_constraint(vec![(v, 1.0)], ConstraintOp::Le, 1.0 + i as f64);
        }
        m.add_constraint(
            vars.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
            ConstraintOp::Le,
            40.0,
        );
        let solver = RevisedSimplex {
            refactor_every: 4,
            ..RevisedSimplex::default()
        };
        let s = solver.solve(&m).unwrap();
        assert_eq!(s.status, Status::Optimal);
        m.check_feasible(&s.values, 1e-6).unwrap();
        // Compare against the dense engine.
        let d = crate::DenseSimplex::default().solve(&m).unwrap();
        assert!((s.objective - d.objective).abs() < 1e-5);
    }

    #[test]
    fn dual_phase_repairs_rhs_tightening() {
        // Solve, tighten a right-hand side in place, and let the dual phase
        // repair the (now primal-infeasible) optimal basis.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective_coef(x, 3.0);
        m.set_objective_coef(y, 5.0);
        m.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 4.0);
        m.add_constraint(vec![(y, 2.0)], ConstraintOp::Le, 12.0);
        m.add_constraint(vec![(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let solver = RevisedSimplex::default();
        let mut sf = StandardForm::from_model(&m).unwrap();
        let (sol, factor) = solver.solve_standard_keep(&m, &sf).unwrap();
        assert!((sol.objective - 36.0).abs() < 1e-7);
        let mut factor = factor.unwrap();

        // Tighten row 2: 2y ≤ 12 → 2y ≤ 2 (scaled by 1/2 during lowering).
        // This drives x up against x ≤ 4, so the previous basis (where the
        // x ≤ 4 slack was basic) turns primal infeasible.
        sf.b[1] = 1.0;
        factor.refactor(&sf).unwrap();
        assert!(factor.xb.iter().any(|&v| v < -1e-9), "tightening must bite");
        let cap = solver.iteration_cap(&sf);
        match factor
            .run_dual_phase(&sf, &sf.c, &sf.is_artificial, cap)
            .unwrap()
        {
            DualEnd::PrimalFeasible => {}
            DualEnd::Infeasible => panic!("tightened LP is feasible"),
        }
        // Optimal after y ≤ 1: x=4, y=1 → 12 + 5 = 17.
        let repaired = extract_optimal(&m, &sf, &mut factor, None);
        m.set_rhs(crate::ConstraintId::from_index(1), 2.0);
        m.check_feasible(&repaired.values, 1e-6).unwrap();
        assert!(
            (repaired.objective - 17.0).abs() < 1e-6,
            "obj {}",
            repaired.objective
        );
    }

    #[test]
    fn dual_phase_detects_infeasibility() {
        // x ≤ 4 and x ≥ 2; tightening x ≤ 4 to x ≤ 1 makes it infeasible.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        m.set_objective_coef(x, 1.0);
        m.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 4.0);
        m.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 2.0);
        let solver = RevisedSimplex::default();
        let mut sf = StandardForm::from_model(&m).unwrap();
        let (sol, factor) = solver.solve_standard_keep(&m, &sf).unwrap();
        assert!((sol.objective - 4.0).abs() < 1e-7);
        let mut factor = factor.unwrap();
        sf.b[0] = 1.0;
        factor.refactor(&sf).unwrap();
        let cap = solver.iteration_cap(&sf);
        assert!(matches!(
            factor
                .run_dual_phase(&sf, &sf.c, &sf.is_artificial, cap)
                .unwrap(),
            DualEnd::Infeasible
        ));
    }
}

#[cfg(test)]
mod sparse_dense_props {
    use super::*;
    use crate::model::{ConstraintOp, Model, Sense};
    use proptest::prelude::*;

    /// Random block-structured LP in the shape of the paper's formulation:
    /// independent variable blocks with local rows, coupled by a few
    /// backbone rows over one variable per block. Feasible by witness.
    fn random_block_lp() -> impl Strategy<Value = Model> {
        (2usize..5, 2usize..4, 1usize..3).prop_flat_map(|(nblocks, bsize, nlocal)| {
            let n = nblocks * bsize;
            let coefs = proptest::collection::vec(
                proptest::collection::vec(0.2f64..4.0, bsize),
                nblocks * nlocal,
            );
            let witness = proptest::collection::vec(0.1f64..2.0, n);
            let slack = proptest::collection::vec(0.1f64..3.0, nblocks * nlocal + 1);
            let obj = proptest::collection::vec(-2.0f64..3.0, n);
            (coefs, witness, slack, obj).prop_map(move |(coefs, witness, slack, obj)| {
                let mut model = Model::new(Sense::Maximize);
                let vars: Vec<_> = (0..n)
                    .map(|j| model.add_var(format!("x{j}"), 0.0, 8.0))
                    .collect();
                for (j, &v) in vars.iter().enumerate() {
                    model.set_objective_coef(v, obj[j]);
                }
                for b in 0..nblocks {
                    for row in 0..nlocal {
                        let c = &coefs[b * nlocal + row];
                        let terms: Vec<_> =
                            (0..bsize).map(|i| (vars[b * bsize + i], c[i])).collect();
                        let at_witness: f64 =
                            (0..bsize).map(|i| c[i] * witness[b * bsize + i]).sum();
                        model.add_constraint(
                            terms,
                            ConstraintOp::Le,
                            at_witness + slack[b * nlocal + row],
                        );
                    }
                }
                // Backbone row coupling the first variable of every block.
                let terms: Vec<_> = (0..nblocks).map(|b| (vars[b * bsize], 1.0)).collect();
                let at_witness: f64 = (0..nblocks).map(|b| witness[b * bsize]).sum();
                model.add_constraint(
                    terms,
                    ConstraintOp::Le,
                    at_witness + slack[nblocks * nlocal],
                );
                model
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Tentpole invariant: the sparse LU engine solves every
        /// block-structured model to the same optimum as the dense-inverse
        /// engine, and on the *same basis* its FTRAN/BTRAN answers match
        /// the dense inverse's.
        #[test]
        fn sparse_engine_matches_dense_inverse(model in random_block_lp()) {
            let dense = RevisedSimplex {
                basis_repr: BasisRepr::DenseInverse,
                ..RevisedSimplex::default()
            };
            let sparse = RevisedSimplex {
                basis_repr: BasisRepr::SparseLu,
                refactor_every: 8, // force refactorisations mid-solve
                ..RevisedSimplex::default()
            };
            let sf = StandardForm::from_model(&model).unwrap();
            let (sol_d, factor_d) = dense.solve_standard_keep(&model, &sf).unwrap();
            let (sol_s, _) = sparse.solve_standard_keep(&model, &sf).unwrap();
            prop_assert_eq!(sol_d.status, sol_s.status);
            if sol_d.status == Status::Optimal {
                prop_assert!(
                    (sol_d.objective - sol_s.objective).abs()
                        <= 1e-6 * (1.0 + sol_d.objective.abs()),
                    "objectives: dense {} sparse {}", sol_d.objective, sol_s.objective
                );
                model.check_feasible(&sol_s.values, 1e-6).unwrap();
            }

            // FTRAN/BTRAN agreement on the dense solve's final basis.
            let Some(mut factor_d) = factor_d else { return Ok(()); };
            let mut factor_s =
                Factor::from_basis(&sf, &factor_d.basis, 128, true).unwrap();
            let m_rows = sf.m;
            let mut wd = vec![0.0; m_rows];
            let mut ws = vec![0.0; m_rows];
            for j in 0..sf.n_cols {
                factor_d.ftran(&sf, j, &mut wd);
                factor_s.ftran(&sf, j, &mut ws);
                for i in 0..m_rows {
                    prop_assert!(
                        (wd[i] - ws[i]).abs() <= 1e-7 * (1.0 + wd[i].abs()),
                        "ftran col {} row {}: dense {} sparse {}", j, i, wd[i], ws[i]
                    );
                }
            }
            factor_d.btran(&sf.c, &mut wd);
            factor_s.btran(&sf.c, &mut ws);
            for i in 0..m_rows {
                prop_assert!(
                    (wd[i] - ws[i]).abs() <= 1e-7 * (1.0 + wd[i].abs()),
                    "btran row {}: dense {} sparse {}", i, wd[i], ws[i]
                );
            }
        }
    }
}
