//! Warm-started LP solving: basis snapshots and in-place formulation deltas.
//!
//! The randomized-rounding heuristic (LPRR, §5.2.3 of the paper) and
//! branch-and-bound both solve long *sequences* of LPs where consecutive
//! models differ by a bound tightening, a right-hand-side delta, or a few
//! coefficient changes. Cold-solving each one from a slack basis wastes
//! almost all of the work: the previous optimal basis is one or two pivots
//! away from the new optimum. This module provides two warm-start layers on
//! top of [`RevisedSimplex`]:
//!
//! * [`Basis`] + [`RevisedSimplex::solve_warm`] — a snapshot/restore API.
//!   The basis of one solve seeds the next solve of a *same-shaped* model
//!   (same variables, constraints, and finite-bound pattern — exactly what
//!   branch-and-bound bound tightenings produce). The standard form is
//!   re-lowered, the snapshot basis re-factorised, and the solve finishes
//!   with the dual/primal repair loop below instead of two cold phases.
//!
//! * [`WarmSimplex`] — a persistent solver context that additionally keeps
//!   the lowered [`StandardForm`] *and* the factorised basis inverse alive
//!   across solves, applying model mutations as sparse in-place patches:
//!
//!   * right-hand-side and bound changes only touch `b` (the previous basis
//!     stays dual feasible, so the dual simplex repairs it directly);
//!   * a coefficient change patches one sparse column; if that column is
//!     basic, `B⁻¹` is repaired by a rank-1 Sherman–Morrison update instead
//!     of an O(m³) refactorisation.
//!
//! # The repair loop
//!
//! Each warm solve runs the same three steps from the inherited basis:
//!
//! 1. **Cost shift.** Reduced costs are recomputed; any non-basic column
//!    priced below zero (possible after a coefficient patch) has its cost
//!    shifted up so the basis is dual feasible by construction.
//! 2. **Dual phase.** The dual simplex drives every negative basic value
//!    out (or proves infeasibility) while keeping the shifted reduced costs
//!    non-negative.
//! 3. **Primal cleanup.** The shift is dropped and ordinary primal phase 2
//!    runs with the true costs from the now primal-feasible basis. When no
//!    shift was needed this terminates in a single pricing pass.
//!
//! Every failure mode (singular basis, iteration limit, an artificial
//! column stuck at a nonzero level) falls back to a full cold solve, and
//! [`WarmSimplex::check_against_cold`] optionally cross-checks every warm
//! result against a cold solve of the same model — the oracle knob used by
//! the property tests and the `dls-bench` LP perf suite.

use crate::model::{ConstraintId, Model, Sense, VarId};
use crate::revised_simplex::{extract_optimal, DualEnd, Factor, PhaseEnd, RevisedSimplex};
use crate::solution::{Solution, Status};
use crate::standard::StandardForm;
use crate::{LpError, COST_TOL};

/// A basis snapshot: the basic column (standard-form index) of every row,
/// plus the shape it was taken from. Restoring onto a standard form of a
/// different shape is rejected (the caller falls back to a cold solve).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    cols: Vec<usize>,
    n_cols: usize,
}

impl Basis {
    /// Number of rows the snapshot covers.
    pub fn num_rows(&self) -> usize {
        self.cols.len()
    }

    /// The basic column of every row (standard-form indices) — the raw
    /// descriptor a failover snapshot persists.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Total standard-form columns of the shape the snapshot was taken
    /// from (the other half of the descriptor).
    pub fn num_cols(&self) -> usize {
        self.n_cols
    }

    /// Rebuilds a snapshot from a persisted descriptor
    /// ([`Basis::cols`] / [`Basis::num_cols`]). An inconsistent
    /// descriptor is harmless: restoring it is rejected by the usual
    /// compatibility check and the next solve simply runs cold.
    pub fn from_parts(cols: Vec<usize>, n_cols: usize) -> Basis {
        Basis { cols, n_cols }
    }

    /// `true` when the snapshot can seed a solve of this standard form.
    pub fn compatible(&self, sf: &StandardForm) -> bool {
        self.cols.len() == sf.m && self.n_cols == sf.n_cols
    }

    fn of(factor: &Factor, sf: &StandardForm) -> Basis {
        Basis {
            cols: factor.basis.clone(),
            n_cols: sf.n_cols,
        }
    }
}

/// Counters describing how a [`WarmSimplex`] spent its solves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmStats {
    /// Total `solve()` calls.
    pub solves: u64,
    /// Solves finished by the warm repair loop.
    pub warm_solves: u64,
    /// Solves that ran the full cold two-phase method (first solve, and any
    /// fallback).
    pub cold_solves: u64,
    /// Warm attempts abandoned for a cold solve (numerical trouble).
    pub fallbacks: u64,
    /// Dual-simplex pivots spent across all warm solves.
    pub dual_pivots: u64,
    /// Primal cleanup pivots spent across all warm solves.
    pub primal_pivots: u64,
    /// Basic columns pivoted out ahead of a coefficient patch that would
    /// have made the basis singular.
    pub evictions: u64,
    /// Full basis refactorisations performed inside warm attempts (drift
    /// detector trips, deferred patches, singular-basis repairs, and
    /// explicit [`WarmSimplex::request_refactor`] calls).
    pub refactorisations: u64,
}

/// Snapshot of the current factorisation's sparsity, for bench artifacts
/// and diagnostics. All counts refer to the factor held after the last
/// solve; [`WarmSimplex::factor_stats`] returns `None` before any solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FactorStats {
    /// Non-zeros held by the basis representation (dense: m², sparse:
    /// LU factors plus the eta file).
    pub factor_nnz: usize,
    /// Non-zeros of the basis matrix `B` itself.
    pub basis_nnz: usize,
    /// `factor_nnz / basis_nnz` — fill-in ratio of the factorisation.
    pub fill_ratio: f64,
    /// Full refactorisations performed over the factor's lifetime.
    pub refactorisations: u64,
}

/// A failure queued by [`WarmSimplex::debug_inject_fault`]: deterministic
/// fault injection for recovery-path tests. Hidden — not part of the solver
/// API.
#[doc(hidden)]
#[derive(Debug, Clone)]
pub enum InjectedFault {
    /// The next warm attempt fails with this error, exercising the
    /// fallback path exactly as a real numerical breakdown would (the
    /// factorisation is discarded and the solve degrades to cold).
    WarmAttempt(LpError),
    /// The next `solve()` call fails outright with this error, as if even
    /// the cold path broke down.
    Solve(LpError),
}

/// Runs the shared warm repair loop (cost shift → dual phase → primal
/// cleanup → extraction) from an already-factorised basis whose `x_B` is
/// current.
///
/// The common LPRR/B&B case — the inherited basis is still optimal, or a
/// few dual pivots away — is served by a fast path: one BTRAN prices every
/// column, and if the basis is both dual and primal feasible the solution
/// is extracted directly (reusing that BTRAN for the duals), skipping both
/// phases entirely.
fn warm_finish(
    params: &RevisedSimplex,
    model: &Model,
    sf: &StandardForm,
    factor: &mut Factor,
) -> Result<(Solution, u64, u64), LpError> {
    let cap = params.iteration_cap(sf);

    // --- 1. cost shift: make the inherited basis dual feasible ---
    let mut y = vec![0.0f64; sf.m];
    factor.btran(&sf.c, &mut y);
    let mut shifted: Option<Vec<f64>> = None;
    for j in 0..sf.n_cols {
        if factor.in_basis[j] || sf.is_artificial[j] {
            continue;
        }
        let d = factor.reduced_cost(sf, &sf.c, &y, j);
        if d < -COST_TOL {
            shifted.get_or_insert_with(|| sf.c.to_vec())[j] -= d;
        }
    }

    // --- fast path: still optimal after the patches (a positive basic
    // artificial falls through to the dual phase, which evicts it) ---
    let b_scale = 1.0 + sf.b.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
    let primal_feasible = factor.xb.iter().all(|&x| x >= -crate::FEAS_TOL * b_scale);
    if shifted.is_none() && primal_feasible && !factor.artificial_above_zero(sf) {
        return Ok((extract_optimal(model, sf, factor, Some(&y)), 0, 0));
    }

    // --- 2. dual phase to primal feasibility ---
    // Anti-degeneracy cost perturbation: the steady-state LPs are massively
    // dual degenerate (redundant cap rows, MAXMIN ties), and a Dantzig dual
    // phase can thrash through 10⁵ zero-ratio pivots with a flat objective.
    // A tiny deterministic positive jitter on every non-basic cost makes
    // all dual ratios distinct, so each pivot strictly improves the dual
    // objective and the phase terminates in a handful of steps; the primal
    // cleanup below re-optimises with the *true* costs, absorbing the
    // perturbation exactly like it absorbs the feasibility shift.
    let mut costs = shifted.unwrap_or_else(|| sf.c.to_vec());
    let eps = 1e-7 * (1.0 + sf.c.iter().fold(0.0f64, |a, &c| a.max(c.abs())));
    for (j, c) in costs.iter_mut().enumerate() {
        if !factor.in_basis[j] && !sf.is_artificial[j] {
            let jitter = (j as u64).wrapping_mul(2_654_435_761) % 1024;
            *c += eps * (1.0 + jitter as f64 / 1024.0);
        }
    }
    let before = factor.iterations;
    let end = factor.run_dual_phase(sf, &costs, &sf.is_artificial, cap)?;
    let dual_pivots = (factor.iterations - before) as u64;
    if matches!(end, DualEnd::Infeasible) {
        return Ok((Solution::infeasible(factor.iterations), dual_pivots, 0));
    }
    if factor.artificial_above_zero(sf) {
        // An artificial basic at a nonzero level (the dual phase drives
        // those out; a leftover means it could not) violates an original
        // row; the primal phase would "evict" it with a large non-zero step
        // and hide the violation, so refuse the warm start instead.
        return Err(LpError::NumericalBreakdown(
            "artificial stuck in warm basis",
        ));
    }

    // --- 3. primal cleanup with the true costs ---
    let before = factor.iterations;
    let end = factor.run_phase(sf, &sf.c, &sf.is_artificial, true, cap, params.stall_limit)?;
    let primal_pivots = (factor.iterations - before) as u64;
    if matches!(end, PhaseEnd::Unbounded) {
        return Ok((
            Solution::unbounded(factor.iterations),
            dual_pivots,
            primal_pivots,
        ));
    }
    if factor.artificial_above_zero(sf) {
        // An artificial stuck at a nonzero level means an original row is
        // violated; the inherited basis cannot represent a real solution.
        return Err(LpError::NumericalBreakdown(
            "artificial stuck in warm basis",
        ));
    }
    Ok((
        extract_optimal(model, sf, factor, None),
        dual_pivots,
        primal_pivots,
    ))
}

impl RevisedSimplex {
    /// Cold solve that also snapshots the final basis, seeding later
    /// [`RevisedSimplex::solve_warm`] calls. The basis is `None` only for
    /// constraint-free models.
    pub fn solve_with_basis(&self, model: &Model) -> Result<(Solution, Option<Basis>), LpError> {
        let sf = StandardForm::from_model(model)?;
        let (solution, factor) = self.solve_standard_keep(model, &sf)?;
        Ok((solution, factor.map(|f| Basis::of(&f, &sf))))
    }

    /// Solves `model` starting from a basis snapshot of a previous solve of
    /// a same-shaped model (e.g. the parent node of a branch-and-bound
    /// tree, whose child differs only by a bound tightening).
    ///
    /// The snapshot basis is re-factorised against the freshly lowered
    /// model and repaired with the dual/primal loop; an incompatible or
    /// numerically unusable snapshot silently degrades to a cold solve, so
    /// the result is always exactly what [`RevisedSimplex::solve`] would
    /// return.
    pub fn solve_warm(
        &self,
        model: &Model,
        warm: &Basis,
    ) -> Result<(Solution, Option<Basis>), LpError> {
        let sf = StandardForm::from_model(model)?;
        if sf.m == 0 || !warm.compatible(&sf) {
            let (solution, factor) = self.solve_standard_keep(model, &sf)?;
            return Ok((solution, factor.map(|f| Basis::of(&f, &sf))));
        }
        let warm_result =
            Factor::from_basis(&sf, &warm.cols, self.refactor_every, self.sparse_for(sf.m))
                .and_then(|mut factor| {
                    warm_finish(self, model, &sf, &mut factor).map(|(sol, _, _)| (sol, factor))
                });
        match warm_result {
            Ok((solution, factor)) => Ok((solution, Some(Basis::of(&factor, &sf)))),
            // Unusable snapshot (singular, cycling, stuck artificial):
            // degrade to the cold two-phase method.
            Err(_) => {
                let (solution, factor) = self.solve_standard_keep(model, &sf)?;
                Ok((solution, factor.map(|f| Basis::of(&f, &sf))))
            }
        }
    }
}

/// Row → slack/surplus column map (single-entry non-artificial columns
/// beyond the structural block).
fn slack_columns(sf: &StandardForm) -> Vec<Option<usize>> {
    let mut map = vec![None; sf.m];
    for j in sf.n_structural..sf.n_cols {
        if !sf.is_artificial[j] {
            if let [(r, _)] = sf.cols[j][..] {
                map[r] = Some(j);
            }
        }
    }
    map
}

/// A persistent warm-start context: owns the model, its lowered standard
/// form, and the factorised basis of the last solve, and keeps all three in
/// sync under in-place mutations. See the module docs for the method.
#[derive(Debug, Clone)]
pub struct WarmSimplex {
    params: RevisedSimplex,
    model: Model,
    sf: StandardForm,
    factor: Option<Factor>,
    /// user-constraint index → standard row.
    con_rows: Vec<usize>,
    /// variable index → upper-bound row (vars with a finite bound only).
    bound_rows: Vec<Option<usize>>,
    /// row → its slack/surplus column (None for equality rows).
    slack_cols: Vec<Option<usize>>,
    needs_refactor: bool,
    /// When set, every solve is cross-checked against a cold solve of the
    /// same model and [`LpError::WarmColdMismatch`] is returned on
    /// disagreement — the oracle knob for tests and benches.
    pub check_against_cold: bool,
    stats: WarmStats,
    /// FIFO of injected faults (tests only; always empty in production).
    injected: Vec<InjectedFault>,
}

impl WarmSimplex {
    /// Builds a context around `model` with the given solver parameters.
    /// Nothing is solved yet; the first [`WarmSimplex::solve`] is cold.
    pub fn new(model: Model, params: RevisedSimplex) -> Result<Self, LpError> {
        let sf = StandardForm::from_model(&model)?;
        let con_rows = sf.constraint_rows(model.num_constraints());
        let bound_rows = sf.bound_rows(model.num_vars());
        let slack_cols = slack_columns(&sf);
        Ok(WarmSimplex {
            params,
            model,
            sf,
            factor: None,
            con_rows,
            bound_rows,
            slack_cols,
            needs_refactor: false,
            check_against_cold: false,
            stats: WarmStats::default(),
            injected: Vec::new(),
        })
    }

    /// The owned model, reflecting every patch applied so far.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Cumulative solve/pivot counters.
    pub fn stats(&self) -> WarmStats {
        self.stats
    }

    /// Snapshot of the current basis, if a solve has happened.
    pub fn basis(&self) -> Option<Basis> {
        self.factor.as_ref().map(|f| Basis::of(f, &self.sf))
    }

    /// Sparsity statistics of the current factorisation (`None` before the
    /// first solve).
    pub fn factor_stats(&self) -> Option<FactorStats> {
        self.factor.as_ref().map(|f| {
            let factor_nnz = f.factor_nnz();
            let basis_nnz = f.basis_nnz(&self.sf).max(1);
            FactorStats {
                factor_nnz,
                basis_nnz,
                fill_ratio: factor_nnz as f64 / basis_nnz as f64,
                refactorisations: f.refactor_count,
            }
        })
    }

    /// Forces the next warm attempt to refactorise the basis from scratch
    /// before solving — the first recovery rung after numerical trouble:
    /// compounding rank-1 updates are discarded and `B⁻¹` is rebuilt from
    /// the patched columns, which clears accumulated drift without paying
    /// for a cold two-phase solve.
    pub fn request_refactor(&mut self) {
        self.needs_refactor = true;
    }

    /// Seeds the context with a persisted basis snapshot (failover
    /// restore): the next solve warm-starts from it instead of running
    /// cold. Returns `false` — leaving the context on the cold path — when
    /// the snapshot does not fit the current shape or cannot be
    /// factorised; restore is best-effort by design, since a cold first
    /// solve is always correct.
    pub fn seed_basis(&mut self, basis: &Basis) -> bool {
        if !basis.compatible(&self.sf) {
            return false;
        }
        match Factor::from_basis(
            &self.sf,
            &basis.cols,
            self.params.refactor_every,
            self.params.sparse_for(self.sf.m),
        ) {
            Ok(f) => {
                self.factor = Some(f);
                self.needs_refactor = false;
                true
            }
            Err(_) => false,
        }
    }

    /// Queues a deterministic fault: the FIFO front fires at the next
    /// matching point ([`InjectedFault::Solve`] at `solve()` entry,
    /// [`InjectedFault::WarmAttempt`] when the warm repair loop would
    /// run). Tests only.
    #[doc(hidden)]
    pub fn debug_inject_fault(&mut self, fault: InjectedFault) {
        self.injected.push(fault);
    }

    /// Replaces the bounds of `var`, patching the standard form in place.
    ///
    /// The finiteness of the upper bound must not change (a finite bound is
    /// lowered to a dedicated row, so flipping it would change the layout);
    /// such a request fails with [`LpError::StructuralChange`] and leaves
    /// the context untouched.
    pub fn set_var_bounds(&mut self, var: VarId, lo: f64, up: f64) -> Result<(), LpError> {
        if !lo.is_finite() || up.is_nan() {
            return Err(LpError::NotFinite("variable bounds"));
        }
        if lo > up {
            return Err(LpError::EmptyDomain {
                var: var.index(),
                lo,
                up,
            });
        }
        let (_, old_up) = self.model.bounds(var);
        if old_up.is_finite() != up.is_finite() {
            return Err(LpError::StructuralChange(
                "upper bound flipped between finite and infinite",
            ));
        }
        self.model.set_bounds(var, lo, up);
        let j = var.index();
        let d_lo = lo - self.sf.lo_shift[j];
        if d_lo != 0.0 {
            // Every row's rhs was shifted by −a·lo at lowering time; move it
            // by the delta. The var's own bound row is covered too (its
            // coefficient is 1, giving rhs = up − lo).
            for idx in 0..self.sf.cols[j].len() {
                let (r, a) = self.sf.cols[j][idx];
                self.patch_b(r, -a * d_lo);
            }
            self.sf.lo_shift[j] = lo;
        }
        if up.is_finite() {
            let r = self.bound_rows[j].expect("finite upper bound has a bound row");
            debug_assert_eq!(self.sf.row_scale_sign(r), (1.0, 1.0));
            let delta = (up - lo) - self.sf.b[r];
            self.patch_b(r, delta);
        }
        Ok(())
    }

    /// Moves one standard-form rhs entry and folds the delta into the
    /// factorisation's `x_B` incrementally (O(m); skipped while a deferred
    /// refactorisation is pending, which recomputes `x_B` exactly anyway).
    fn patch_b(&mut self, row: usize, delta: f64) {
        if delta == 0.0 {
            return;
        }
        self.sf.b[row] += delta;
        if !self.needs_refactor {
            if let Some(factor) = &mut self.factor {
                factor.apply_b_delta(row, delta);
            }
        }
    }

    /// Replaces the objective coefficient of a variable, patching the
    /// standard form's cost vector in place. A pure `c` delta: the
    /// factorised basis, `x_B`, and every row stay valid, and the next
    /// solve's cost-shift/dual-repair loop absorbs whatever dual
    /// feasibility the change destroyed. This is what lets a caller run a
    /// lexicographic second stage (swap the objective, re-solve warm from
    /// the stage-1 basis, swap it back) at a handful of pivots.
    pub fn set_objective_coef(&mut self, var: VarId, coef: f64) -> Result<(), LpError> {
        if !coef.is_finite() {
            return Err(LpError::NotFinite("objective coefficient"));
        }
        self.model.set_objective_coef(var, coef);
        // Mirror the lowering convention: internal minimisation, so a
        // maximising model's costs enter negated (and never scaled —
        // standard-form scaling is per-row only).
        let flip = match self.model.sense() {
            Sense::Maximize => -1.0,
            Sense::Minimize => 1.0,
        };
        self.sf.c[var.index()] = flip * coef;
        Ok(())
    }

    /// Replaces the right-hand side of a constraint, patching the standard
    /// form in place (a pure `b` delta — the basis stays dual feasible).
    pub fn set_rhs(&mut self, con: ConstraintId, rhs: f64) -> Result<(), LpError> {
        if !rhs.is_finite() {
            return Err(LpError::NotFinite("constraint rhs"));
        }
        let delta = rhs - self.model.rhs(con);
        if delta != 0.0 {
            self.model.set_rhs(con, rhs);
            let row = self.con_rows[con.index()];
            let (scale, sign) = self.sf.row_scale_sign(row);
            self.patch_b(row, delta * scale * sign);
        }
        Ok(())
    }

    /// Replaces the coefficient of `var` in a constraint, patching the
    /// sparse column in place. If the column is basic, `B⁻¹` is repaired by
    /// a rank-1 Sherman–Morrison update (with a deferred refactorisation as
    /// the fallback when the update is numerically unsafe).
    pub fn set_coefficient(
        &mut self,
        con: ConstraintId,
        var: VarId,
        coef: f64,
    ) -> Result<(), LpError> {
        if !coef.is_finite() {
            return Err(LpError::NotFinite("constraint coefficient"));
        }
        let old = self.model.coefficient(con, var);
        if old == coef {
            return Ok(());
        }
        self.model.set_coefficient(con, var, coef);
        let j = var.index();
        let row = self.con_rows[con.index()];
        let (scale, sign) = self.sf.row_scale_sign(row);
        let scaled_new = coef * scale * sign;
        let col = &mut self.sf.cols[j];
        let entry = col.iter().position(|&(r, _)| r == row);
        let scaled_old = entry.map_or(0.0, |idx| col[idx].1);
        match (entry, scaled_new == 0.0) {
            (Some(idx), true) => {
                col.remove(idx);
            }
            (Some(idx), false) => col[idx].1 = scaled_new,
            (None, false) => col.push((row, scaled_new)),
            (None, true) => {}
        }
        let delta_scaled = scaled_new - scaled_old;
        // The lower-bound shift folded −a·lo into the rhs; keep it current.
        let lo = self.sf.lo_shift[j];
        if lo != 0.0 {
            self.patch_b(row, -delta_scaled * lo);
        }
        if self.needs_refactor {
            return Ok(());
        }
        if let Some(factor) = &mut self.factor {
            if factor.in_basis[j] {
                let pos = factor
                    .basis
                    .iter()
                    .position(|&b| b == j)
                    .expect("in_basis implies a basis slot");
                let denom = factor.patch_denominator(pos, row, delta_scaled);
                // A small denominator means the patched basis is nearly
                // singular: the rank-1 update would blow up B⁻¹'s
                // conditioning even when it technically succeeds, and that
                // drift is what eventually strands the dual phase. Prefer
                // the clean eviction pivot well before the breakdown point.
                if denom.abs() >= 0.1 {
                    // Repairs both B⁻¹ and x_B by the same rank-1 correction.
                    if factor.patch_basic_column(row, pos, delta_scaled).is_err() {
                        self.needs_refactor = true;
                    }
                } else if factor.evict_position(&self.sf, pos, &self.slack_cols) {
                    // The patched column would make the basis singular (the
                    // rank-1 denominator vanishes): the column was basic
                    // *because of* the entries this patch removes. Pivoting
                    // it out first — while B⁻¹ is still valid — sidesteps
                    // the singularity; the dual/primal repair at the next
                    // solve absorbs the (possibly infeasible) pivot.
                    self.stats.evictions += 1;
                } else {
                    // No usable replacement column: refactorise lazily (and
                    // cold-solve if even that fails).
                    self.needs_refactor = true;
                }
            }
        }
        Ok(())
    }

    /// Solves the current model: cold on the first call, warm (dual repair
    /// from the previous basis) afterwards, with automatic cold fallback on
    /// numerical trouble. The result is always equivalent to a fresh
    /// [`RevisedSimplex::solve`] of the current model.
    pub fn solve(&mut self) -> Result<Solution, LpError> {
        self.stats.solves += 1;
        if matches!(self.injected.first(), Some(InjectedFault::Solve(_))) {
            let InjectedFault::Solve(e) = self.injected.remove(0) else {
                unreachable!()
            };
            return Err(e);
        }
        let solution = match self.try_warm() {
            Some(Ok(sol)) => {
                self.stats.warm_solves += 1;
                sol
            }
            Some(Err(_)) => {
                self.stats.fallbacks += 1;
                self.solve_cold()?
            }
            None => self.solve_cold()?,
        };
        if self.check_against_cold {
            let cold = self.params.solve(&self.model)?;
            let agree = match (solution.status, cold.status) {
                (Status::Optimal, Status::Optimal) => {
                    (solution.objective - cold.objective).abs()
                        <= 1e-6 * (1.0 + cold.objective.abs())
                }
                (a, b) => a == b,
            };
            if !agree {
                return Err(LpError::WarmColdMismatch {
                    warm: solution.objective,
                    cold: cold.objective,
                });
            }
        }
        Ok(solution)
    }

    /// Attempts the warm repair loop; `None` when no basis exists yet.
    /// `x_B` is already current: every patch folded its delta in eagerly.
    ///
    /// A singular basis — a deferred refactorisation, or a periodic one
    /// inside a phase exposing accumulated drift — is *repaired* (dependent
    /// columns swapped for unit columns) and the repair loop re-run, so the
    /// expensive cold fallback is reserved for genuine breakdowns.
    fn try_warm(&mut self) -> Option<Result<Solution, LpError>> {
        let mut factor = self.factor.take()?;
        if matches!(self.injected.first(), Some(InjectedFault::WarmAttempt(_))) {
            let InjectedFault::WarmAttempt(e) = self.injected.remove(0) else {
                unreachable!()
            };
            // The taken factor is dropped, exactly as a real breakdown
            // leaves the context: the fallback cold solve rebuilds it.
            return Some(Err(e));
        }
        if !self.needs_refactor {
            // Drift detector: compare the maintained x_B against the true
            // patched columns. Compounding rank-1 updates eventually poison
            // B⁻¹; refactorising the moment the residual leaves the noise
            // floor is far cheaper than letting a solve run on bad numbers.
            let b_scale = 1.0 + self.sf.b.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
            if factor.xb_residual_inf(&self.sf) > 1e-6 * b_scale {
                self.needs_refactor = true;
            }
        }
        if self.needs_refactor {
            self.stats.refactorisations += 1;
            if let Err(e) = factor.refactor_repair(&self.sf) {
                return Some(Err(e));
            }
            self.needs_refactor = false;
        }
        let mut outcome = warm_finish(&self.params, &self.model, &self.sf, &mut factor);
        if matches!(outcome, Err(LpError::SingularBasis)) {
            self.stats.refactorisations += 1;
            outcome = factor
                .refactor_repair(&self.sf)
                .and_then(|_| warm_finish(&self.params, &self.model, &self.sf, &mut factor));
        }
        match outcome {
            Ok((solution, dual, primal)) => {
                self.stats.dual_pivots += dual;
                self.stats.primal_pivots += primal;
                self.factor = Some(factor);
                Some(Ok(solution))
            }
            Err(e) => Some(Err(e)),
        }
    }

    /// Cold path: re-lowers the model from scratch (restoring the `b ≥ 0` /
    /// fresh-scaling invariants the in-place patches do not maintain) and
    /// runs the two-phase method, keeping the final factorisation.
    fn solve_cold(&mut self) -> Result<Solution, LpError> {
        self.sf = StandardForm::from_model(&self.model)?;
        self.con_rows = self.sf.constraint_rows(self.model.num_constraints());
        self.bound_rows = self.sf.bound_rows(self.model.num_vars());
        self.slack_cols = slack_columns(&self.sf);
        self.needs_refactor = false;
        let (solution, factor) = self.params.solve_standard_keep(&self.model, &self.sf)?;
        self.factor = factor;
        self.stats.cold_solves += 1;
        Ok(solution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Sense};
    use crate::{DenseSimplex, Status};

    fn textbook() -> (
        Model,
        VarId,
        VarId,
        ConstraintId,
        ConstraintId,
        ConstraintId,
    ) {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 8.0);
        let y = m.add_var("y", 0.0, 8.0);
        m.set_objective_coef(x, 3.0);
        m.set_objective_coef(y, 5.0);
        let c0 = m.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 4.0);
        let c1 = m.add_constraint(vec![(y, 2.0)], ConstraintOp::Le, 12.0);
        let c2 = m.add_constraint(vec![(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        (m, x, y, c0, c1, c2)
    }

    fn assert_matches_cold(warm: &mut WarmSimplex) {
        let sol = warm.solve().unwrap();
        let cold = DenseSimplex::default().solve(warm.model()).unwrap();
        assert_eq!(sol.status, cold.status);
        if sol.status == Status::Optimal {
            assert!(
                (sol.objective - cold.objective).abs() <= 1e-6 * (1.0 + cold.objective.abs()),
                "warm {} vs cold {}",
                sol.objective,
                cold.objective
            );
            warm.model().check_feasible(&sol.values, 1e-6).unwrap();
        }
    }

    #[test]
    fn objective_patches_track_cold() {
        let (_, x, y, _, _, _) = textbook();
        let (m, ..) = textbook();
        let mut warm = WarmSimplex::new(m, RevisedSimplex::default()).unwrap();
        warm.solve().unwrap();
        // Swap the objective: y becomes nearly worthless, x precious.
        warm.set_objective_coef(x, 10.0).unwrap();
        warm.set_objective_coef(y, 0.5).unwrap();
        assert_matches_cold(&mut warm);
        // And back: the original optimum is re-certified warm.
        warm.set_objective_coef(x, 3.0).unwrap();
        warm.set_objective_coef(y, 5.0).unwrap();
        assert_matches_cold(&mut warm);
        assert!(warm.stats().warm_solves >= 1, "{:?}", warm.stats());
        assert!(warm.set_objective_coef(x, f64::NAN).is_err());
    }

    #[test]
    fn bound_tightening_sequence_matches_cold() {
        let (m, x, y, _, _, _) = textbook();
        let mut warm = WarmSimplex::new(m, RevisedSimplex::default()).unwrap();
        warm.check_against_cold = true;
        assert_matches_cold(&mut warm);
        // A sequence of tightenings, each repaired warm.
        for up in [5.0, 3.5, 2.0, 0.5] {
            warm.set_var_bounds(y, 0.0, up).unwrap();
            assert_matches_cold(&mut warm);
        }
        warm.set_var_bounds(x, 1.0, 2.0).unwrap();
        assert_matches_cold(&mut warm);
        let stats = warm.stats();
        assert_eq!(stats.cold_solves, 1, "{stats:?}");
        assert_eq!(stats.warm_solves, 5, "{stats:?}");
    }

    #[test]
    fn rhs_and_coefficient_patches_match_cold() {
        let (m, x, y, c0, c1, c2) = textbook();
        let mut warm = WarmSimplex::new(m, RevisedSimplex::default()).unwrap();
        warm.check_against_cold = true;
        assert_matches_cold(&mut warm);
        warm.set_rhs(c1, 7.0).unwrap();
        assert_matches_cold(&mut warm);
        // Remove x from the joint row, then re-weight y and relax c0.
        warm.set_coefficient(c2, x, 0.0).unwrap();
        assert_matches_cold(&mut warm);
        warm.set_coefficient(c2, y, 4.0).unwrap();
        assert_matches_cold(&mut warm);
        warm.set_rhs(c0, 2.0).unwrap();
        warm.set_coefficient(c1, y, 1.0).unwrap();
        assert_matches_cold(&mut warm);
    }

    #[test]
    fn infeasible_and_recovery() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0);
        m.set_objective_coef(x, 1.0);
        let le = m.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 6.0);
        m.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 2.0);
        let mut warm = WarmSimplex::new(m, RevisedSimplex::default()).unwrap();
        assert_eq!(warm.solve().unwrap().status, Status::Optimal);
        // 1 ≥ x ≥ 2 is empty; the dual phase must certify that.
        warm.set_rhs(le, 1.0).unwrap();
        assert_eq!(warm.solve().unwrap().status, Status::Infeasible);
        // And relaxing it again must recover optimality.
        warm.set_rhs(le, 4.0).unwrap();
        let sol = warm.solve().unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.objective - 4.0).abs() < 1e-7);
    }

    #[test]
    fn structural_change_is_rejected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        m.set_objective_coef(x, 1.0);
        m.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 3.0);
        let mut warm = WarmSimplex::new(m, RevisedSimplex::default()).unwrap();
        assert!(matches!(
            warm.set_var_bounds(x, 0.0, 2.0),
            Err(LpError::StructuralChange(_))
        ));
        // The rejected patch must not have leaked into the model.
        assert_eq!(warm.model().bounds(x).1, f64::INFINITY);
    }

    #[test]
    fn injected_warm_fault_falls_back_to_cold() {
        let (m, _, y, _, _, _) = textbook();
        let mut warm = WarmSimplex::new(m, RevisedSimplex::default()).unwrap();
        warm.check_against_cold = true;
        warm.solve().unwrap();
        // A forced warm breakdown must degrade to cold and still produce
        // the right optimum.
        warm.debug_inject_fault(InjectedFault::WarmAttempt(LpError::NumericalBreakdown(
            "injected",
        )));
        warm.set_var_bounds(y, 0.0, 4.0).unwrap();
        assert_matches_cold(&mut warm);
        let stats = warm.stats();
        assert_eq!(stats.fallbacks, 1, "{stats:?}");
        assert_eq!(stats.cold_solves, 2, "{stats:?}");
        // A forced solve-level fault surfaces to the caller...
        warm.debug_inject_fault(InjectedFault::Solve(LpError::IterationLimit {
            iterations: 1,
        }));
        assert!(matches!(
            warm.solve(),
            Err(LpError::IterationLimit { iterations: 1 })
        ));
        // ...and the context recovers on the next solve.
        assert_matches_cold(&mut warm);
    }

    #[test]
    fn request_refactor_is_counted_and_harmless() {
        let (m, _, y, _, _, _) = textbook();
        let mut warm = WarmSimplex::new(m, RevisedSimplex::default()).unwrap();
        warm.check_against_cold = true;
        warm.solve().unwrap();
        warm.request_refactor();
        warm.set_var_bounds(y, 0.0, 5.0).unwrap();
        assert_matches_cold(&mut warm);
        let stats = warm.stats();
        assert!(stats.refactorisations >= 1, "{stats:?}");
        assert_eq!(stats.warm_solves, 1, "{stats:?}");
    }

    #[test]
    fn seed_basis_restores_warm_start_from_descriptor() {
        let (m, ..) = textbook();
        let mut warm = WarmSimplex::new(m.clone(), RevisedSimplex::default()).unwrap();
        warm.solve().unwrap();
        let basis = warm.basis().expect("constrained model keeps a basis");
        // Persist the descriptor, rebuild a fresh context, seed it: the
        // first solve is warm, not cold.
        let descriptor = (basis.cols().to_vec(), basis.num_cols());
        let mut fresh = WarmSimplex::new(m, RevisedSimplex::default()).unwrap();
        fresh.check_against_cold = true;
        assert!(fresh.seed_basis(&Basis::from_parts(descriptor.0, descriptor.1)));
        assert_matches_cold(&mut fresh);
        let stats = fresh.stats();
        assert_eq!(stats.cold_solves, 0, "{stats:?}");
        assert_eq!(stats.warm_solves, 1, "{stats:?}");
        // An incompatible descriptor is rejected, not fatal.
        let (m2, ..) = textbook();
        let mut other = WarmSimplex::new(m2, RevisedSimplex::default()).unwrap();
        assert!(!other.seed_basis(&Basis::from_parts(vec![0], 1)));
        other.solve().unwrap();
    }

    #[test]
    fn solve_warm_reuses_basis_across_rebuilds() {
        let (m, _, y, _, _, _) = textbook();
        let solver = RevisedSimplex::default();
        let (sol, basis) = solver.solve_with_basis(&m).unwrap();
        assert!((sol.objective - 36.0).abs() < 1e-6);
        let basis = basis.unwrap();
        // Same-shaped child model: tighten y's bound (finite → finite).
        let mut child = m.clone();
        child.set_bounds(y, 0.0, 3.0);
        let (warm_sol, child_basis) = solver.solve_warm(&child, &basis).unwrap();
        let cold = solver.solve(&child).unwrap();
        assert_eq!(warm_sol.status, Status::Optimal);
        assert!((warm_sol.objective - cold.objective).abs() < 1e-6);
        assert!(child_basis.is_some());
        // Differently-shaped model: silently degrades to a cold solve.
        let mut other = Model::new(Sense::Maximize);
        let z = other.add_var("z", 0.0, 5.0);
        other.set_objective_coef(z, 2.0);
        let (deg, _) = solver.solve_warm(&other, &basis).unwrap();
        assert!((deg.objective - 10.0).abs() < 1e-7);
    }
}
