//! The online scenario engine: replays a [`Scenario`] timeline against a
//! live simulation, driving shipments from the policy's current allocation.
//!
//! Time is organised in control periods of length [`Scenario::period`]
//! (the online analogue of the §3.2 periodic schedule's `T_p`). At each
//! boundary the engine
//!
//! 1. advances the [`LiveSim`] to the boundary, collecting deliveries,
//!    compute completions, and job finishes on the way;
//! 2. heals expired faults (backbone partitions past their `until`,
//!    straggler windows that ended), then applies the platform events that
//!    came due — churn retires in-flight transfers (their payload returns
//!    to the source backlog), a [`PlatformChange::ClusterCrash`]
//!    additionally *loses* transfer progress and queued compute (accounted
//!    per fault in [`FaultRecord`]), a
//!    [`PlatformChange::BackbonePartition`] stalls flows crossing the cut
//!    at zero rate, capacity drift feeds the live-mutation API;
//! 3. activates the jobs that arrived, and marks jobs that can never
//!    finish (origin cluster permanently gone) as
//!    [`UnschedulableEntry`] instead of draining to the horizon;
//! 4. consults the [`ReschedulePolicy`], installing a fresh allocation if
//!    it returns one (solver failures surface as [`ScenarioError::Policy`]
//!    with the epoch, scenario time, and policy name attached);
//! 5. ships one period's worth of backlog: per application `k`, each
//!    destination `l` receives at most `α_{k,l} · T` units (drawn FIFO
//!    from `k`'s job backlog, local share enqueued directly), spawning one
//!    flow per used route with the allocation's `β·minbw` cap and `α`
//!    reservation — exactly the Eq. 7 shape the periodic engine executes,
//!    but driven by dynamic backlogs. Destinations currently separated
//!    from the origin by a partition are skipped (their load stays
//!    backlogged until the cut heals or the policy reshuffles it).
//!
//! The run ends when every job has been computed or proven unschedulable
//! (or at a drain-cap after the last arrival, reporting unfinished jobs as
//! such). [`run_scenario_resumable`] additionally supports interrupting
//! the loop at a chosen epoch, serialising the complete engine state as a
//! [`ScenarioSnapshot`], and replaying the remainder with
//! [`resume_scenario`] — bit-identically to the uninterrupted run.

use crate::events::{JobSpec, PlatformChange, PlatformEvent, Scenario};
use crate::policy::{PolicyCtx, PolicyState, ReschedulePolicy};
use crate::report::{
    FaultKind, FaultRecord, JobOutcome, RecoveryRecord, ScenarioReport, UnschedulableEntry,
};
use dls_core::{Allocation, ProblemInstance, SolveError};
use dls_platform::ClusterId;
use dls_sim::{
    BandwidthModel, ChunkPart, LiveConfig, LiveEvent, LiveFlowId, LiveFlowSpec, LiveSim,
    LiveSnapshot, SimEngine,
};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::time::Instant;

/// Scenario-engine settings.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Local-link sharing discipline.
    pub bandwidth_model: BandwidthModel,
    /// Which live-simulation core executes the timeline.
    pub engine: SimEngine,
    /// Cross-check every incremental mutation against a full solve
    /// (expensive; tests only). Implies [`ScenarioConfig::record_events`]:
    /// a checked run always carries the event trace needed to localise a
    /// divergence.
    pub oracle_check: bool,
    /// Record the simulation's delivery/compute event stream into
    /// [`ScenarioReport::events`], so two runs (e.g. incremental vs.
    /// full-recompute) can be compared event by event with
    /// [`ScenarioReport::first_event_divergence`].
    pub record_events: bool,
    /// Periods the engine keeps draining after the last arrival before
    /// giving up on unfinished jobs (churn can strand work forever).
    pub drain_periods: usize,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            bandwidth_model: BandwidthModel::MaxMinFair,
            engine: SimEngine::Incremental,
            oracle_check: false,
            record_events: false,
            drain_periods: 400,
        }
    }
}

/// Why a scenario run stopped short of a report.
#[derive(Debug, Clone)]
pub enum ScenarioError {
    /// The policy's solver failed at a period boundary and no recovery
    /// rung rescued it (wrap the policy in
    /// [`crate::RecoveryLadder`] to absorb transient failures).
    Policy {
        /// Control period (epoch) at which the decide failed.
        epoch: usize,
        /// Scenario time of the boundary.
        time: f64,
        /// [`ReschedulePolicy::name`] of the failing policy.
        policy: String,
        /// The underlying solver failure.
        source: SolveError,
    },
    /// A [`ScenarioSnapshot`] could not be restored against this
    /// scenario/platform (version skew, wrong scenario, shape mismatch).
    Snapshot(String),
    /// A [`ScenarioSession`] admission was rejected: the pushed job or
    /// platform event is invalid against the platform, or lands in the
    /// already-executed past (admitting it would break the session's
    /// bit-identity with a full-trace replay).
    Admission(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Policy {
                epoch,
                time,
                policy,
                source,
            } => write!(
                f,
                "policy `{policy}` failed at epoch {epoch} (t = {time}): {source}"
            ),
            ScenarioError::Snapshot(msg) => write!(f, "snapshot restore failed: {msg}"),
            ScenarioError::Admission(msg) => write!(f, "admission rejected: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Policy { source, .. } => Some(source),
            ScenarioError::Snapshot(_) | ScenarioError::Admission(_) => None,
        }
    }
}

/// Per-job execution state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct JobState {
    origin: usize,
    arrival: f64,
    size: f64,
    /// Load not yet assigned to a destination (backlogged at the origin).
    unassigned: f64,
    /// Assigned parts not yet fully computed.
    pending_parts: u32,
    in_backlog: bool,
    completed_at: Option<f64>,
    /// Proven unfinishable (origin cluster permanently gone with load
    /// still unplaced); terminal for the drain loop.
    stranded: bool,
}

impl JobState {
    fn done(&self) -> bool {
        self.completed_at.is_some()
    }

    /// `true` once the drain loop has nothing left to wait for.
    fn terminal(&self) -> bool {
        self.done() || (self.stranded && self.pending_parts == 0)
    }
}

/// A cluster's fault-aware capacity state. The *base* values track
/// scenario drift even while the cluster is absent or degraded; what the
/// platform (and hence the LP) sees is [`ClusterCaps::effective`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ClusterCaps {
    base_speed: f64,
    base_local: f64,
    /// `false` between a leave/crash and the matching rejoin.
    present: bool,
    /// Multiplicative straggler factor (1.0 outside straggler windows).
    straggler: f64,
}

impl ClusterCaps {
    fn effective(&self) -> (f64, f64) {
        if self.present {
            (
                self.base_speed * self.straggler,
                self.base_local * self.straggler,
            )
        } else {
            (0.0, 0.0)
        }
    }
}

/// One active backbone partition (removed when it heals).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PartitionState {
    groups: Vec<Vec<u32>>,
    until: f64,
}

/// `true` iff an active partition puts `a` and `b` in different groups
/// (clusters not listed in any group are unaffected).
fn separated(partitions: &[PartitionState], a: usize, b: usize) -> bool {
    partitions.iter().any(|p| {
        let ga = p.groups.iter().position(|g| g.contains(&(a as u32)));
        let gb = p.groups.iter().position(|g| g.contains(&(b as u32)));
        matches!((ga, gb), (Some(x), Some(y)) if x != y)
    })
}

/// Connection bookkeeping for one in-flight transfer.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FlowMeta {
    from: ClusterId,
    to: ClusterId,
    connections: u32,
    /// The flow's negotiated bandwidth cap (`None` = unbounded), kept so a
    /// partition stall can be undone at heal time.
    cap: Option<f64>,
    /// The flow's `α` reservation (demand rate), kept for the same reason.
    demand: f64,
    /// Currently stalled at zero rate by an active partition.
    stalled: bool,
}

/// Wire version of [`ScenarioSnapshot`].
pub const SCENARIO_SNAPSHOT_VERSION: u32 = 1;

/// The complete serialisable state of an interrupted scenario run:
/// restore with [`resume_scenario`] and the remainder replays
/// bit-identically to the uninterrupted run (report and event stream;
/// the wall-clock `reschedule_ms` field is the only exception).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioSnapshot {
    /// Wire version ([`SCENARIO_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Name of the scenario the snapshot was taken from (checked on
    /// restore).
    pub scenario: String,
    /// The next epoch to execute.
    pub epoch: usize,
    live: LiveSnapshot,
    cluster_speed: Vec<f64>,
    cluster_local: Vec<f64>,
    link_bw: Vec<f64>,
    link_max_conn: Vec<u32>,
    caps: Vec<ClusterCaps>,
    partitions: Vec<PartitionState>,
    straggler_ends: Vec<(f64, u32)>,
    jobs: Vec<JobState>,
    backlog: Vec<Vec<u32>>,
    flows: Vec<(u64, FlowMeta)>,
    conn_now: Vec<i64>,
    caps_ok: bool,
    alloc: Option<Allocation>,
    next_arrival: usize,
    next_event: usize,
    platform_changed: bool,
    achieved_window: f64,
    completed_work: f64,
    last_completion: f64,
    reschedules: usize,
    allocated_sum: f64,
    allocated_periods: usize,
    faults: Vec<FaultRecord>,
    pending_recovery: Vec<usize>,
    recoveries: Vec<RecoveryRecord>,
    unschedulable: Vec<UnschedulableEntry>,
    lost_transfer: f64,
    lost_compute: f64,
    redispatched: f64,
    policy_state: PolicyState,
}

impl ScenarioSnapshot {
    /// Serialises to JSON (all floats survive bit-exactly).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialisation cannot fail")
    }

    /// Parses a snapshot serialised by [`ScenarioSnapshot::to_json`].
    ///
    /// A snapshot written by a different wire version is rejected with an
    /// explicit schema-version message *before* field-level deserialisation
    /// runs, so version skew surfaces as "version 2 is not supported"
    /// rather than as an opaque missing/mistyped-field error.
    pub fn from_json(json: &str) -> Result<ScenarioSnapshot, ScenarioError> {
        let value =
            serde_json::from_str_value(json).map_err(|e| ScenarioError::Snapshot(e.to_string()))?;
        match value.get("version") {
            Some(serde_json::Value::Number(serde_json::Number::Int(v)))
                if *v == SCENARIO_SNAPSHOT_VERSION as i128 => {}
            Some(serde_json::Value::Number(serde_json::Number::Int(v))) => {
                return Err(ScenarioError::Snapshot(format!(
                    "snapshot schema version {v} is not supported by this build \
                     (it reads version {SCENARIO_SNAPSHOT_VERSION}); re-take the \
                     snapshot with a matching build"
                )));
            }
            _ => {
                return Err(ScenarioError::Snapshot(
                    "snapshot carries no integer `version` field — not a scenario snapshot".into(),
                ));
            }
        }
        serde_json::from_str(json).map_err(|e| ScenarioError::Snapshot(e.to_string()))
    }
}

/// How a resumable run ended.
#[derive(Debug)]
pub enum ResumableRun {
    /// The scenario ran to completion.
    Finished(Box<ScenarioReport>),
    /// The run was interrupted at the requested epoch; resume with
    /// [`resume_scenario`].
    Interrupted(Box<ScenarioSnapshot>),
}

/// All mutable state of one scenario run, so the control loop can be
/// paused, serialised, and resumed. Owns its scenario and configuration so
/// long-lived sessions ([`ScenarioSession`]) can extend the timeline while
/// the run is in flight.
struct Runner {
    scenario: Scenario,
    cfg: ScenarioConfig,
    tp: f64,
    max_periods: usize,
    time_eps: f64,
    /// Index of the *last* `ClusterJoin` event per cluster (derived from
    /// the scenario, not snapshotted): a cluster that is absent with no
    /// join at or past `next_event` is gone for good.
    last_join: Vec<Option<usize>>,
    inst: ProblemInstance,
    live: LiveSim,
    jobs: Vec<JobState>,
    backlog: Vec<VecDeque<u32>>,
    flows: HashMap<LiveFlowId, FlowMeta>,
    conn_now: Vec<i64>,
    caps_ok: bool,
    caps: Vec<ClusterCaps>,
    partitions: Vec<PartitionState>,
    straggler_ends: Vec<(f64, u32)>,
    alloc: Option<Allocation>,
    epoch: usize,
    next_arrival: usize,
    next_event: usize,
    platform_changed: bool,
    achieved_window: f64,
    completed_work: f64,
    last_completion: f64,
    reschedules: usize,
    reschedule_ms: f64,
    allocated_sum: f64,
    allocated_periods: usize,
    periods: usize,
    faults: Vec<FaultRecord>,
    /// Indices into `faults` awaiting their first post-fault allocation
    /// install (which stamps `recovery_latency`).
    pending_recovery: Vec<usize>,
    recoveries: Vec<RecoveryRecord>,
    unschedulable: Vec<UnschedulableEntry>,
    lost_transfer: f64,
    lost_compute: f64,
    redispatched: f64,
}

fn live_config(cfg: &ScenarioConfig) -> LiveConfig {
    LiveConfig {
        bandwidth_model: cfg.bandwidth_model,
        engine: cfg.engine,
        oracle_check: cfg.oracle_check,
        record_events: cfg.record_events || cfg.oracle_check,
    }
}

fn last_join_index(scenario: &Scenario, clusters: usize) -> Vec<Option<usize>> {
    let mut last = vec![None; clusters];
    for (i, e) in scenario.platform_events.iter().enumerate() {
        if let PlatformChange::ClusterJoin { cluster } = &e.change {
            last[*cluster as usize] = Some(i);
        }
    }
    last
}

impl Runner {
    fn new(base: &ProblemInstance, scenario: Scenario, cfg: ScenarioConfig) -> Runner {
        let tp = scenario.period;
        let inst = base.clone();
        let live = LiveSim::new(
            &inst
                .platform
                .clusters
                .iter()
                .map(|c| c.local_bw)
                .collect::<Vec<_>>(),
            &inst
                .platform
                .clusters
                .iter()
                .map(|c| c.speed)
                .collect::<Vec<_>>(),
            live_config(&cfg),
        );
        let jobs: Vec<JobState> = scenario
            .jobs
            .iter()
            .map(|j| JobState {
                origin: j.origin as usize,
                arrival: j.arrival,
                size: j.size,
                unassigned: 0.0,
                pending_parts: 0,
                in_backlog: false,
                completed_at: None,
                stranded: false,
            })
            .collect();
        let caps: Vec<ClusterCaps> = inst
            .platform
            .clusters
            .iter()
            .map(|c| ClusterCaps {
                base_speed: c.speed,
                base_local: c.local_bw,
                present: true,
                straggler: 1.0,
            })
            .collect();
        let last_arrival_period = (scenario.last_arrival() / tp).ceil() as usize;
        let max_periods = last_arrival_period + cfg.drain_periods.max(1);
        let last_join = last_join_index(&scenario, inst.platform.clusters.len());
        Runner {
            scenario,
            cfg,
            tp,
            max_periods,
            time_eps: 1e-9 * tp,
            last_join,
            backlog: vec![VecDeque::new(); base.num_apps()],
            flows: HashMap::new(),
            conn_now: vec![0; inst.platform.links.len()],
            caps_ok: true,
            caps,
            partitions: Vec::new(),
            straggler_ends: Vec::new(),
            alloc: None,
            epoch: 0,
            next_arrival: 0,
            next_event: 0,
            platform_changed: false,
            achieved_window: 0.0,
            completed_work: 0.0,
            last_completion: 0.0,
            reschedules: 0,
            reschedule_ms: 0.0,
            allocated_sum: 0.0,
            allocated_periods: 0,
            periods: 0,
            faults: Vec::new(),
            pending_recovery: Vec::new(),
            recoveries: Vec::new(),
            unschedulable: Vec::new(),
            lost_transfer: 0.0,
            lost_compute: 0.0,
            redispatched: 0.0,
            inst,
            live,
            jobs,
        }
    }

    fn snapshot(&self, policy: &dyn ReschedulePolicy) -> ScenarioSnapshot {
        let mut flows: Vec<(u64, FlowMeta)> = self
            .flows
            .iter()
            .map(|(id, m)| (id.to_raw(), m.clone()))
            .collect();
        flows.sort_by_key(|(raw, _)| *raw);
        ScenarioSnapshot {
            version: SCENARIO_SNAPSHOT_VERSION,
            scenario: self.scenario.name.clone(),
            epoch: self.epoch,
            live: self.live.snapshot(),
            cluster_speed: self
                .inst
                .platform
                .clusters
                .iter()
                .map(|c| c.speed)
                .collect(),
            cluster_local: self
                .inst
                .platform
                .clusters
                .iter()
                .map(|c| c.local_bw)
                .collect(),
            link_bw: self
                .inst
                .platform
                .links
                .iter()
                .map(|l| l.bw_per_connection)
                .collect(),
            link_max_conn: self
                .inst
                .platform
                .links
                .iter()
                .map(|l| l.max_connections)
                .collect(),
            caps: self.caps.clone(),
            partitions: self.partitions.clone(),
            straggler_ends: self.straggler_ends.clone(),
            jobs: self.jobs.clone(),
            backlog: self
                .backlog
                .iter()
                .map(|q| q.iter().copied().collect())
                .collect(),
            flows,
            conn_now: self.conn_now.clone(),
            caps_ok: self.caps_ok,
            alloc: self.alloc.clone(),
            next_arrival: self.next_arrival,
            next_event: self.next_event,
            platform_changed: self.platform_changed,
            achieved_window: self.achieved_window,
            completed_work: self.completed_work,
            last_completion: self.last_completion,
            reschedules: self.reschedules,
            allocated_sum: self.allocated_sum,
            allocated_periods: self.allocated_periods,
            faults: self.faults.clone(),
            pending_recovery: self.pending_recovery.clone(),
            recoveries: self.recoveries.clone(),
            unschedulable: self.unschedulable.clone(),
            lost_transfer: self.lost_transfer,
            lost_compute: self.lost_compute,
            redispatched: self.redispatched,
            policy_state: policy.export_state(),
        }
    }

    fn from_snapshot(
        base: &ProblemInstance,
        scenario: Scenario,
        cfg: ScenarioConfig,
        snap: &ScenarioSnapshot,
    ) -> Result<Runner, ScenarioError> {
        if snap.version != SCENARIO_SNAPSHOT_VERSION {
            return Err(ScenarioError::Snapshot(format!(
                "unsupported snapshot version {} (expected {SCENARIO_SNAPSHOT_VERSION})",
                snap.version
            )));
        }
        if snap.scenario != scenario.name {
            return Err(ScenarioError::Snapshot(format!(
                "snapshot was taken from scenario `{}`, not `{}`",
                snap.scenario, scenario.name
            )));
        }
        let clusters = base.platform.clusters.len();
        let links = base.platform.links.len();
        if snap.cluster_speed.len() != clusters
            || snap.cluster_local.len() != clusters
            || snap.caps.len() != clusters
            || snap.link_bw.len() != links
            || snap.link_max_conn.len() != links
            || snap.jobs.len() != scenario.jobs.len()
            || snap.backlog.len() != base.num_apps()
        {
            return Err(ScenarioError::Snapshot(
                "snapshot shape does not match the platform/scenario".into(),
            ));
        }
        let live_cfg = live_config(&cfg);
        let mut runner = Runner::new(base, scenario, cfg);
        for (i, c) in runner.inst.platform.clusters.iter_mut().enumerate() {
            c.speed = snap.cluster_speed[i];
            c.local_bw = snap.cluster_local[i];
        }
        for (i, l) in runner.inst.platform.links.iter_mut().enumerate() {
            l.bw_per_connection = snap.link_bw[i];
            l.max_connections = snap.link_max_conn[i];
        }
        runner.live = LiveSim::restore(live_cfg, &snap.live);
        runner.jobs = snap.jobs.clone();
        runner.backlog = snap
            .backlog
            .iter()
            .map(|q| q.iter().copied().collect())
            .collect();
        runner.flows = snap
            .flows
            .iter()
            .map(|(raw, m)| (LiveFlowId::from_raw(*raw), m.clone()))
            .collect();
        runner.conn_now = snap.conn_now.clone();
        runner.caps_ok = snap.caps_ok;
        runner.caps = snap.caps.clone();
        runner.partitions = snap.partitions.clone();
        runner.straggler_ends = snap.straggler_ends.clone();
        runner.alloc = snap.alloc.clone();
        runner.epoch = snap.epoch;
        runner.next_arrival = snap.next_arrival;
        runner.next_event = snap.next_event;
        runner.platform_changed = snap.platform_changed;
        runner.achieved_window = snap.achieved_window;
        runner.completed_work = snap.completed_work;
        runner.last_completion = snap.last_completion;
        runner.reschedules = snap.reschedules;
        runner.allocated_sum = snap.allocated_sum;
        runner.allocated_periods = snap.allocated_periods;
        runner.periods = snap.epoch.saturating_sub(1);
        runner.faults = snap.faults.clone();
        runner.pending_recovery = snap.pending_recovery.clone();
        runner.recoveries = snap.recoveries.clone();
        runner.unschedulable = snap.unschedulable.clone();
        runner.lost_transfer = snap.lost_transfer;
        runner.lost_compute = snap.lost_compute;
        runner.redispatched = snap.redispatched;
        Ok(runner)
    }

    /// Pushes a cluster's effective capacities into the platform and the
    /// live core (no-op for components that did not change).
    fn apply_cluster(&mut self, c: usize) {
        let (speed, local_bw) = self.caps[c].effective();
        if self.inst.platform.clusters[c].speed != speed {
            self.inst.platform.clusters[c].speed = speed;
            self.live.update_speed(ClusterId(c as u32), speed);
        }
        if self.inst.platform.clusters[c].local_bw != local_bw {
            self.inst.platform.clusters[c].local_bw = local_bw;
            self.live
                .update_link_capacity(ClusterId(c as u32), local_bw);
        }
    }

    /// Records a fault and queues it for recovery-latency stamping.
    fn push_fault(&mut self, rec: FaultRecord) {
        self.lost_transfer += rec.lost_transfer;
        self.lost_compute += rec.lost_compute;
        self.redispatched += rec.redispatched;
        self.pending_recovery.push(self.faults.len());
        self.faults.push(rec);
    }

    /// Retires every in-flight flow touching `cluster`, requeueing its
    /// payload at the source backlog. Returns `(shipped, redispatched)`:
    /// transfer progress forfeited and load returned to the pending pool.
    fn retire_cluster_flows(&mut self, cluster: u32) -> (f64, f64) {
        let mut victims: Vec<LiveFlowId> = self
            .flows
            .iter()
            .filter(|(_, m)| m.from.index() == cluster as usize || m.to.index() == cluster as usize)
            .map(|(id, _)| *id)
            .collect();
        // HashMap iteration order is not deterministic; the requeue order
        // below feeds FIFO backlogs, so fix it.
        victims.sort_by_key(|id| id.to_raw());
        let mut shipped = 0.0;
        let mut redispatched = 0.0;
        for retired in self.live.retire_flows(&victims) {
            shipped += retired.shipped;
            for part in &retired.parts {
                redispatched += part.amount;
                let j = &mut self.jobs[part.job as usize];
                j.pending_parts = j.pending_parts.saturating_sub(1);
                j.unassigned += part.amount;
                if !j.in_backlog {
                    j.in_backlog = true;
                    self.backlog[j.origin].push_back(part.job);
                }
            }
        }
        for id in victims {
            release_connections(&self.inst, &mut self.flows, &mut self.conn_now, id);
        }
        (shipped, redispatched)
    }

    /// Heals partitions past their `until` and ends expired straggler
    /// windows. Runs before the boundary's platform events so a heal and a
    /// fresh fault due at the same boundary compose in fault order.
    fn process_expiries(&mut self, t: f64) {
        let mut healed = false;
        self.partitions.retain(|p| {
            if p.until <= t + self.time_eps {
                healed = true;
                false
            } else {
                true
            }
        });
        if healed {
            self.platform_changed = true;
            let mut stalled: Vec<LiveFlowId> = self
                .flows
                .iter()
                .filter(|(_, m)| m.stalled)
                .map(|(id, _)| *id)
                .collect();
            stalled.sort_by_key(|id| id.to_raw());
            for id in stalled {
                let m = &self.flows[&id];
                if !separated(&self.partitions, m.from.index(), m.to.index()) {
                    let (cap, demand) = (m.cap.unwrap_or(f64::INFINITY), m.demand);
                    self.live.set_flow_constraints(id, cap, demand);
                    self.flows.get_mut(&id).expect("just looked up").stalled = false;
                }
            }
        }
        let mut ended: Vec<u32> = Vec::new();
        self.straggler_ends.retain(|&(until, c)| {
            if until <= t + self.time_eps {
                ended.push(c);
                false
            } else {
                true
            }
        });
        for c in ended {
            self.caps[c as usize].straggler = 1.0;
            self.apply_cluster(c as usize);
            self.platform_changed = true;
        }
    }

    /// Applies one due platform event.
    fn apply_event(&mut self, time: f64, change: &PlatformChange) {
        self.platform_changed = true;
        match change {
            PlatformChange::SetSpeed { cluster, speed } => {
                // Drift on an absent cluster must not revive it: the base
                // value updates, the effective capacity stays zero until
                // the rejoin.
                self.caps[*cluster as usize].base_speed = *speed;
                self.apply_cluster(*cluster as usize);
            }
            PlatformChange::SetLocalBw { cluster, bw } => {
                self.caps[*cluster as usize].base_local = *bw;
                self.apply_cluster(*cluster as usize);
            }
            PlatformChange::SetBackboneBw { link, bw } => {
                // Connection-oriented semantics (§2): a connection is
                // granted bw(l) when it opens, so transfers already in
                // flight keep their negotiated cap for the remainder of
                // their chunk; the new bandwidth applies to every flow
                // spawned from the next period on.
                self.inst.platform.links[*link as usize].bw_per_connection = *bw;
            }
            PlatformChange::SetMaxConnections { link, max } => {
                self.inst.platform.links[*link as usize].max_connections = *max;
                // A cap dropping below the already-open connection count is
                // a violation even if no new flow ever ships over the link.
                if self.conn_now[*link as usize] > *max as i64 {
                    self.caps_ok = false;
                }
            }
            PlatformChange::ClusterLeave { cluster } => {
                // Graceful departure: in-flight payload returns to the
                // source backlog in full (store-and-forward progress is
                // forfeited but not accounted as a fault), queued compute
                // stays put and resumes at the rejoin.
                self.caps[*cluster as usize].present = false;
                self.apply_cluster(*cluster as usize);
                self.retire_cluster_flows(*cluster);
            }
            PlatformChange::ClusterJoin { cluster } => {
                // Rejoin with the capacities the cluster would have had if
                // it never left: its base values track any drift recorded
                // during the outage.
                self.caps[*cluster as usize].present = true;
                self.apply_cluster(*cluster as usize);
            }
            PlatformChange::ClusterCrash { cluster } => {
                self.caps[*cluster as usize].present = false;
                self.apply_cluster(*cluster as usize);
                let (lost_transfer, mut redispatched) = self.retire_cluster_flows(*cluster);
                // Unlike a graceful leave, queued (and partially computed)
                // work on the crashed cluster is lost; the load returns to
                // the pending pool for re-dispatch.
                let mut lost_compute = 0.0;
                for e in self.live.purge_queue(ClusterId(*cluster)) {
                    lost_compute += e.original - e.remaining;
                    redispatched += e.original;
                    let j = &mut self.jobs[e.job as usize];
                    j.pending_parts = j.pending_parts.saturating_sub(1);
                    j.unassigned += e.original;
                    if !j.in_backlog {
                        j.in_backlog = true;
                        self.backlog[j.origin].push_back(e.job);
                    }
                }
                self.push_fault(FaultRecord {
                    kind: FaultKind::Crash,
                    time,
                    cluster: Some(*cluster),
                    lost_transfer,
                    lost_compute,
                    redispatched,
                    recovery_latency: None,
                });
            }
            PlatformChange::BackbonePartition { groups, until } => {
                self.partitions.push(PartitionState {
                    groups: groups.clone(),
                    until: *until,
                });
                // Stall in-flight flows crossing the cut at zero rate;
                // their progress keeps at heal time (nothing is lost).
                let mut ids: Vec<LiveFlowId> = self
                    .flows
                    .iter()
                    .filter(|(_, m)| !m.stalled)
                    .map(|(id, _)| *id)
                    .collect();
                ids.sort_by_key(|id| id.to_raw());
                for id in ids {
                    let m = &self.flows[&id];
                    if separated(&self.partitions, m.from.index(), m.to.index()) {
                        self.live.set_flow_constraints(id, 0.0, 0.0);
                        self.flows.get_mut(&id).expect("just looked up").stalled = true;
                    }
                }
                self.push_fault(FaultRecord {
                    kind: FaultKind::Partition,
                    time,
                    cluster: None,
                    lost_transfer: 0.0,
                    lost_compute: 0.0,
                    redispatched: 0.0,
                    recovery_latency: None,
                });
            }
            PlatformChange::Straggler {
                cluster,
                factor,
                until,
            } => {
                self.caps[*cluster as usize].straggler = *factor;
                self.apply_cluster(*cluster as usize);
                self.straggler_ends.push((*until, *cluster));
                self.push_fault(FaultRecord {
                    kind: FaultKind::Straggler,
                    time,
                    cluster: Some(*cluster),
                    lost_transfer: 0.0,
                    lost_compute: 0.0,
                    redispatched: 0.0,
                    recovery_latency: None,
                });
            }
        }
    }

    /// Marks backlogged jobs whose origin cluster is gone for good (absent
    /// with no rejoin anywhere in the remaining event stream) as
    /// unschedulable, so the drain loop stops waiting on them.
    fn detect_stranded(&mut self, t: f64) {
        for c in 0..self.caps.len() {
            if self.caps[c].present || self.backlog[c].is_empty() {
                continue;
            }
            if self.last_join[c].is_some_and(|idx| idx >= self.next_event) {
                continue; // a rejoin is still coming
            }
            for id in std::mem::take(&mut self.backlog[c]) {
                let j = &mut self.jobs[id as usize];
                j.in_backlog = false;
                j.stranded = true;
                self.unschedulable.push(UnschedulableEntry {
                    job: id,
                    detected_at: t,
                    reason: format!(
                        "origin cluster {c} is gone for good with {:.3} load units unplaced",
                        j.unassigned
                    ),
                });
            }
        }
    }

    /// Executes one control period. Returns `true` when the run is over
    /// (every job terminal, or the drain cap hit).
    fn step(&mut self, policy: &mut dyn ReschedulePolicy) -> Result<bool, ScenarioError> {
        let epoch = self.epoch;
        let t = epoch as f64 * self.tp;
        self.periods = epoch;

        // --- 1. advance the live core to the boundary ---
        let mut finished_flows: Vec<LiveFlowId> = Vec::new();
        for e in self.live.advance_to(t) {
            match *e {
                LiveEvent::FlowDone { id, .. } => finished_flows.push(id),
                LiveEvent::Delivered { .. } => {}
                LiveEvent::Computed {
                    time, job, amount, ..
                } => {
                    let j = &mut self.jobs[job as usize];
                    j.pending_parts = j.pending_parts.saturating_sub(1);
                    self.achieved_window += amount;
                    self.completed_work += amount;
                    if j.pending_parts == 0 && j.unassigned <= 0.0 && !j.in_backlog && !j.done() {
                        j.completed_at = Some(time);
                        self.last_completion = self.last_completion.max(time);
                    }
                }
            }
        }
        for id in finished_flows {
            release_connections(&self.inst, &mut self.flows, &mut self.conn_now, id);
        }

        // --- 2. fault expiries, then platform events due at this boundary ---
        self.process_expiries(t);
        while self.next_event < self.scenario.platform_events.len()
            && self.scenario.platform_events[self.next_event].time <= t + self.time_eps
        {
            let ev = self.scenario.platform_events[self.next_event].clone();
            self.next_event += 1;
            self.apply_event(ev.time, &ev.change);
        }

        // --- 3. job arrivals due at (or before) this boundary ---
        while self.next_arrival < self.scenario.jobs.len()
            && self.scenario.jobs[self.next_arrival].arrival <= t + self.time_eps
        {
            let j = &mut self.jobs[self.next_arrival];
            j.unassigned = j.size;
            j.in_backlog = true;
            self.backlog[j.origin].push_back(self.next_arrival as u32);
            self.next_arrival += 1;
        }
        self.detect_stranded(t);

        // --- termination ---
        let arrivals_left = self.next_arrival < self.scenario.jobs.len();
        let all_done = self.jobs.iter().all(JobState::terminal);
        if !arrivals_left && (all_done || epoch == self.max_periods) {
            return Ok(true);
        }

        // --- 4. policy ---
        let backlogged = self.backlog.iter().any(|q| !q.is_empty());
        if backlogged {
            let allocated = self.alloc.as_ref().map_or(0.0, Allocation::total_load);
            let ctx = PolicyCtx {
                inst: &self.inst,
                epoch,
                platform_changed: self.platform_changed,
                achieved: self.achieved_window / self.tp,
                allocated,
                backlogged,
                current: self.alloc.as_ref(),
            };
            let t0 = Instant::now();
            let decision = policy
                .decide(&ctx)
                .map_err(|source| ScenarioError::Policy {
                    epoch,
                    time: t,
                    policy: policy.name(),
                    source,
                })?;
            self.reschedule_ms += t0.elapsed().as_secs_f64() * 1e3;
            self.recoveries.extend(policy.drain_recovery());
            if let Some(new_alloc) = decision {
                debug_assert!(
                    new_alloc.validate(&self.inst).is_ok(),
                    "policy produced an invalid allocation: {:?}",
                    new_alloc.violations(&self.inst)
                );
                self.alloc = Some(new_alloc);
                self.reschedules += 1;
                self.platform_changed = false;
                // The first allocation installed at/after a fault closes
                // its recovery window.
                for &fi in &self.pending_recovery {
                    self.faults[fi].recovery_latency = Some(t - self.faults[fi].time);
                }
                self.pending_recovery.clear();
            }
        }
        self.achieved_window = 0.0;

        // --- 5. ship one period of backlog under the current allocation ---
        if let Some(a) = &self.alloc {
            if backlogged {
                self.allocated_sum += a.total_load();
                self.allocated_periods += 1;
                spawn_period(
                    &mut self.live,
                    &self.inst,
                    a,
                    self.tp,
                    &mut self.jobs,
                    &mut self.backlog,
                    &mut self.flows,
                    &mut self.conn_now,
                    &mut self.caps_ok,
                    &self.partitions,
                );
            }
        }
        self.epoch += 1;
        Ok(false)
    }

    /// Assembles a report of the run's *current* state. Non-consuming so a
    /// long-lived [`ScenarioSession`] can publish interim reports while the
    /// timeline is still open; the recorded vectors are cloned out.
    fn report(&mut self, policy: &mut dyn ReschedulePolicy) -> ScenarioReport {
        self.recoveries.extend(policy.drain_recovery());
        let completed_jobs = self.jobs.iter().filter(|j| j.done()).count();
        let responses: Vec<f64> = self
            .jobs
            .iter()
            .filter_map(|j| j.completed_at.map(|c| c - j.arrival))
            .collect();
        let mean_response = if responses.is_empty() {
            0.0
        } else {
            responses.iter().sum::<f64>() / responses.len() as f64
        };
        let max_response = responses.iter().fold(0.0f64, |a, &r| a.max(r));
        let per_job: Vec<JobOutcome> = self
            .scenario
            .jobs
            .iter()
            .zip(&self.jobs)
            .enumerate()
            .map(|(i, (spec, state))| JobOutcome {
                job: i as u32,
                origin: spec.origin,
                arrival: spec.arrival,
                size: spec.size,
                completed: state.completed_at,
            })
            .collect();

        ScenarioReport {
            scenario: self.scenario.name.clone(),
            policy: policy.name(),
            periods: self.periods,
            period_length: self.tp,
            jobs: self.jobs.len(),
            completed_jobs,
            offered_work: self.scenario.offered_work(),
            completed_work: self.completed_work,
            makespan: self.last_completion,
            mean_response,
            max_response,
            achieved_throughput: if self.last_completion > 0.0 {
                self.completed_work / self.last_completion
            } else {
                0.0
            },
            allocated_throughput: if self.allocated_periods > 0 {
                self.allocated_sum / self.allocated_periods as f64
            } else {
                0.0
            },
            reschedules: self.reschedules,
            reschedule_ms: self.reschedule_ms,
            sim_events: self.live.events_processed(),
            connection_caps_respected: self.caps_ok,
            per_job,
            events: (self.cfg.record_events || self.cfg.oracle_check)
                .then(|| self.live.event_log().to_vec()),
            faults: Some(self.faults.clone()),
            recoveries: Some(self.recoveries.clone()),
            unschedulable: Some(self.unschedulable.clone()),
            lost_transfer: Some(self.lost_transfer),
            lost_compute: Some(self.lost_compute),
            redispatched_load: Some(self.redispatched),
        }
    }

    /// Final-report convenience: consumes the runner.
    fn into_report(mut self, policy: &mut dyn ReschedulePolicy) -> ScenarioReport {
        self.report(policy)
    }
}

fn drive(
    mut runner: Runner,
    policy: &mut dyn ReschedulePolicy,
    interrupt_at_epoch: Option<usize>,
) -> Result<ResumableRun, ScenarioError> {
    loop {
        if Some(runner.epoch) == interrupt_at_epoch {
            return Ok(ResumableRun::Interrupted(Box::new(runner.snapshot(policy))));
        }
        if runner.step(policy)? {
            return Ok(ResumableRun::Finished(Box::new(runner.into_report(policy))));
        }
    }
}

/// Runs `scenario` on `base`'s platform under `policy`. The returned report
/// is deterministic except for its `reschedule_ms` wall-clock field.
pub fn run_scenario(
    base: &ProblemInstance,
    scenario: &Scenario,
    policy: &mut dyn ReschedulePolicy,
    cfg: &ScenarioConfig,
) -> Result<ScenarioReport, ScenarioError> {
    match drive(
        Runner::new(base, scenario.clone(), cfg.clone()),
        policy,
        None,
    )? {
        ResumableRun::Finished(report) => Ok(*report),
        ResumableRun::Interrupted(_) => unreachable!("no interrupt requested"),
    }
}

/// Like [`run_scenario`], but pauses *before* executing epoch
/// `interrupt_at_epoch` (if the run gets that far) and returns the
/// complete engine state as a [`ScenarioSnapshot`]. Replaying the snapshot
/// with [`resume_scenario`] — even in a fresh process — produces a report
/// and event stream bit-identical to the uninterrupted run (modulo the
/// wall-clock `reschedule_ms`).
pub fn run_scenario_resumable(
    base: &ProblemInstance,
    scenario: &Scenario,
    policy: &mut dyn ReschedulePolicy,
    cfg: &ScenarioConfig,
    interrupt_at_epoch: Option<usize>,
) -> Result<ResumableRun, ScenarioError> {
    drive(
        Runner::new(base, scenario.clone(), cfg.clone()),
        policy,
        interrupt_at_epoch,
    )
}

/// Continues an interrupted run from `snapshot` to completion. The policy
/// should be freshly constructed (or otherwise reset); its serialisable
/// state is re-seeded from the snapshot via
/// [`ReschedulePolicy::import_state`].
pub fn resume_scenario(
    base: &ProblemInstance,
    scenario: &Scenario,
    policy: &mut dyn ReschedulePolicy,
    cfg: &ScenarioConfig,
    snapshot: &ScenarioSnapshot,
) -> Result<ScenarioReport, ScenarioError> {
    let runner = Runner::from_snapshot(base, scenario.clone(), cfg.clone(), snapshot)?;
    policy.import_state(&snapshot.policy_state);
    match drive(runner, policy, None)? {
        ResumableRun::Finished(report) => Ok(*report),
        ResumableRun::Interrupted(_) => unreachable!("no interrupt requested"),
    }
}

/// A long-lived, externally driven scenario run: the engine state of
/// [`run_scenario`] held open so a caller (the `dls-service` daemon, an
/// interactive driver) can interleave stepping with *extending* the
/// timeline — admitting jobs and platform events as they are learned
/// rather than knowing the whole trace up front.
///
/// # Equivalence contract
///
/// Driving a session epoch by epoch, pushing jobs/events at any point
/// before their due boundary, yields a report and event stream
/// bit-identical to a single [`run_scenario`] over the final merged
/// timeline ([`ScenarioSession::scenario`]), modulo the wall-clock
/// `reschedule_ms` field. To keep that true, [`ScenarioSession::push_jobs`]
/// and [`ScenarioSession::push_platform_event`] reject anything landing at
/// or before the last boundary whose admission scan already ran — the
/// full-trace run would have admitted it there, so accepting it late would
/// diverge.
///
/// A session that has finished ([`ScenarioSession::is_done`]) re-opens
/// when new jobs arrive: the terminating boundary's admission phases are
/// pointer-idempotent, so re-executing that epoch after a push is
/// state-identical to the merged full-trace run reaching it for the first
/// time.
pub struct ScenarioSession {
    runner: Runner,
    done: bool,
}

impl ScenarioSession {
    /// Opens a session over `scenario` (which may be empty: jobs and
    /// events can all arrive later through the push API).
    pub fn new(base: &ProblemInstance, scenario: Scenario, cfg: ScenarioConfig) -> ScenarioSession {
        ScenarioSession {
            runner: Runner::new(base, scenario, cfg),
            done: false,
        }
    }

    /// Re-opens a session from a checkpoint. `scenario` must be the
    /// session's timeline *as of the snapshot* (the caller persists it
    /// alongside, since a session's timeline grows past the scenario it
    /// was created with). The policy's serialisable state is re-seeded
    /// from the snapshot via [`ReschedulePolicy::import_state`].
    pub fn restore(
        base: &ProblemInstance,
        scenario: Scenario,
        cfg: ScenarioConfig,
        snapshot: &ScenarioSnapshot,
        policy: &mut dyn ReschedulePolicy,
    ) -> Result<ScenarioSession, ScenarioError> {
        let runner = Runner::from_snapshot(base, scenario, cfg, snapshot)?;
        policy.import_state(&snapshot.policy_state);
        Ok(ScenarioSession {
            runner,
            done: false,
        })
    }

    /// The next control period to execute (re-execute, if the run is
    /// currently finished — that re-execution is state-idempotent).
    pub fn epoch(&self) -> usize {
        self.runner.epoch
    }

    /// `true` once every admitted job is terminal and no arrivals remain.
    /// Not a terminal state for the *session*: pushing more jobs re-opens
    /// the run.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The session's timeline so far (base scenario plus everything
    /// pushed). Persist this next to a snapshot to make it restorable.
    pub fn scenario(&self) -> &Scenario {
        &self.runner.scenario
    }

    /// Executes one control period; returns `true` when the run is (now)
    /// finished. A no-op returning `true` while the session is done.
    pub fn step(&mut self, policy: &mut dyn ReschedulePolicy) -> Result<bool, ScenarioError> {
        if self.done {
            return Ok(true);
        }
        self.done = self.runner.step(policy)?;
        Ok(self.done)
    }

    /// Steps until the run finishes.
    pub fn run_to_end(&mut self, policy: &mut dyn ReschedulePolicy) -> Result<(), ScenarioError> {
        while !self.step(policy)? {}
        Ok(())
    }

    /// Last boundary whose admission scan has run (`None` before the
    /// first step). Pushes must land strictly after it.
    fn scanned_boundary(&self) -> Option<f64> {
        if self.done {
            // The terminating step scanned boundary `epoch` before
            // returning early (without incrementing the epoch).
            Some(self.runner.epoch as f64 * self.runner.tp)
        } else if self.runner.epoch == 0 {
            None
        } else {
            Some((self.runner.epoch - 1) as f64 * self.runner.tp)
        }
    }

    fn check_time_admissible(&self, what: &str, t: f64) -> Result<(), ScenarioError> {
        if let Some(boundary) = self.scanned_boundary() {
            if t <= boundary + self.runner.time_eps {
                return Err(ScenarioError::Admission(format!(
                    "{what} at t={t} is in the executed past: the admission \
                     scan for boundary t={boundary} has already run"
                )));
            }
        }
        Ok(())
    }

    /// Admits new jobs into the open timeline. All-or-nothing: each job is
    /// validated against the platform and must arrive strictly after the
    /// last executed boundary, else nothing is admitted.
    pub fn push_jobs(&mut self, jobs: &[JobSpec]) -> Result<(), ScenarioError> {
        let k = self.runner.caps.len() as u32;
        for (i, j) in jobs.iter().enumerate() {
            if j.origin >= k {
                return Err(ScenarioError::Admission(format!(
                    "pushed job {i} originates at unknown cluster {}",
                    j.origin
                )));
            }
            if !(j.size.is_finite() && j.size > 0.0) {
                return Err(ScenarioError::Admission(format!(
                    "pushed job {i} has a non-positive size {}",
                    j.size
                )));
            }
            if !(j.arrival.is_finite() && j.arrival >= 0.0) {
                return Err(ScenarioError::Admission(format!(
                    "pushed job {i} has a bad arrival time {}",
                    j.arrival
                )));
            }
            self.check_time_admissible("job arrival", j.arrival)?;
        }
        for &j in jobs {
            // Stable position: after every job arriving at or before it —
            // exactly where append-then-`normalise()` would put it. The
            // admissibility check guarantees idx >= next_arrival, so
            // already-admitted job ids stay valid.
            let idx = self
                .runner
                .scenario
                .jobs
                .partition_point(|x| x.arrival <= j.arrival);
            debug_assert!(idx >= self.runner.next_arrival);
            self.runner.scenario.jobs.insert(idx, j);
            self.runner.jobs.insert(
                idx,
                JobState {
                    origin: j.origin as usize,
                    arrival: j.arrival,
                    size: j.size,
                    unassigned: 0.0,
                    pending_parts: 0,
                    in_backlog: false,
                    completed_at: None,
                    stranded: false,
                },
            );
        }
        if !jobs.is_empty() {
            let last_arrival_period =
                (self.runner.scenario.last_arrival() / self.runner.tp).ceil() as usize;
            self.runner.max_periods = last_arrival_period + self.runner.cfg.drain_periods.max(1);
            self.done = false;
        }
        Ok(())
    }

    /// Admits a platform event (fault notification, capacity update) into
    /// the open timeline. Must land strictly after the last executed
    /// boundary. Does not by itself re-open a finished run: a full-trace
    /// run over the merged timeline would terminate at the same epoch and
    /// never apply the event either.
    pub fn push_platform_event(&mut self, event: PlatformEvent) -> Result<(), ScenarioError> {
        let probe = Scenario {
            name: self.runner.scenario.name.clone(),
            period: self.runner.scenario.period,
            jobs: Vec::new(),
            platform_events: vec![event.clone()],
        };
        probe
            .validate(&self.runner.inst.platform)
            .map_err(ScenarioError::Admission)?;
        self.check_time_admissible("platform event", event.time)?;
        let idx = self
            .runner
            .scenario
            .platform_events
            .partition_point(|e| e.time <= event.time);
        debug_assert!(idx >= self.runner.next_event);
        self.runner.scenario.platform_events.insert(idx, event);
        // Re-derive join bookkeeping: the insert shifted later indices.
        self.runner.last_join = last_join_index(
            &self.runner.scenario,
            self.runner.inst.platform.clusters.len(),
        );
        Ok(())
    }

    /// Checkpoints the complete session state. Restore with
    /// [`ScenarioSession::restore`], handing it [`ScenarioSession::scenario`]
    /// as persisted at snapshot time; the remainder replays bit-identically
    /// to **this** session continuing from here.
    ///
    /// Taking a checkpoint fires [`ReschedulePolicy::checkpoint_barrier`]
    /// on the live policy: warm LP contexts carry an incrementally-updated
    /// factorisation that a restore necessarily rebuilds from scratch, so
    /// the live side schedules the same rebuild. The continuing run is
    /// therefore a function of *where checkpoints were taken* — a session
    /// that checkpoints at epoch `e` bit-agrees with a restored replica,
    /// and with any other session checkpointing at `e`, but may differ at
    /// the ulp level from a run that never checkpointed. Cold and
    /// heuristic policies are stateless across solves; for them the
    /// barrier is a no-op and snapshots are observationally free.
    pub fn snapshot(&self, policy: &mut dyn ReschedulePolicy) -> ScenarioSnapshot {
        let snap = self.runner.snapshot(&*policy);
        policy.checkpoint_barrier();
        snap
    }

    /// A report of the run's current state (interim if the run is still
    /// open). Deterministic except for the wall-clock `reschedule_ms`.
    pub fn report(&mut self, policy: &mut dyn ReschedulePolicy) -> ScenarioReport {
        self.runner.report(policy)
    }

    /// Consumes the session into a final report.
    pub fn into_report(mut self, policy: &mut dyn ReschedulePolicy) -> ScenarioReport {
        self.runner.report(policy)
    }
}

/// Drops the connection charge of a finished/retired flow (routes are
/// topology and never change, so the release mirrors the charge exactly).
fn release_connections(
    inst: &ProblemInstance,
    flows: &mut HashMap<LiveFlowId, FlowMeta>,
    conn_now: &mut [i64],
    id: LiveFlowId,
) {
    if let Some(meta) = flows.remove(&id) {
        let mut ignore = true;
        charge_route(inst, &meta, conn_now, &mut ignore, -1);
    }
}

/// Ships one control period's worth of backlog: per application, the FIFO
/// backlog is split across destinations under the `α_{k,l} · T` budgets,
/// local shares enqueue directly, remote shares spawn reserved flows.
/// Destinations cut off from the origin by an active partition are skipped
/// (their load stays backlogged).
#[allow(clippy::too_many_arguments)]
fn spawn_period(
    live: &mut LiveSim,
    inst: &ProblemInstance,
    alloc: &Allocation,
    tp: f64,
    jobs: &mut [JobState],
    backlog: &mut [VecDeque<u32>],
    flows: &mut HashMap<LiveFlowId, FlowMeta>,
    conn_now: &mut [i64],
    caps_ok: &mut bool,
    partitions: &[PartitionState],
) {
    let p = &inst.platform;
    let k = inst.num_apps();
    for (origin, queue) in backlog.iter_mut().enumerate() {
        if queue.is_empty() {
            continue;
        }
        let from = ClusterId(origin as u32);
        // Destination budgets for this period: local first, then remote
        // destinations in cluster order (deterministic).
        let mut dests: Vec<(usize, f64)> = Vec::new();
        let local_budget = alloc.alpha(from, from) * tp;
        if local_budget > 0.0 {
            dests.push((origin, local_budget));
        }
        for to in 0..k {
            if to == origin || separated(partitions, origin, to) {
                continue;
            }
            let b = alloc.alpha(from, ClusterId(to as u32)) * tp;
            if b > 0.0 {
                dests.push((to, b));
            }
        }
        if dests.is_empty() {
            continue;
        }
        let budget_eps: f64 = 1e-12 * (1.0 + dests.iter().map(|(_, b)| b).sum::<f64>());
        // Per-destination parts assembled this period.
        let mut parts: Vec<Vec<ChunkPart>> = vec![Vec::new(); dests.len()];
        'fifo: while let Some(&job_id) = queue.front() {
            let j = &mut jobs[job_id as usize];
            for (di, (_, b)) in dests.iter_mut().enumerate() {
                if *b <= budget_eps || j.unassigned <= 0.0 {
                    continue;
                }
                let mut take = j.unassigned.min(*b);
                // Sweep size-relative dust into the last part so jobs are
                // assigned *exactly* (completion is a part-count, not a
                // float comparison).
                if j.unassigned - take <= 1e-9 * (1.0 + j.size) {
                    take = j.unassigned;
                }
                j.unassigned -= take;
                *b -= take;
                j.pending_parts += 1;
                parts[di].push(ChunkPart {
                    job: job_id,
                    amount: take,
                });
            }
            if j.unassigned <= 0.0 {
                j.unassigned = 0.0;
                j.in_backlog = false;
                queue.pop_front();
            } else {
                break 'fifo; // budgets exhausted
            }
        }
        // Local shares: straight into the compute queue.
        let mut specs: Vec<LiveFlowSpec> = Vec::new();
        let mut spec_meta: Vec<FlowMeta> = Vec::new();
        for (di, (dest, _)) in dests.iter().enumerate() {
            if parts[di].is_empty() {
                continue;
            }
            if *dest == origin {
                for part in &parts[di] {
                    live.enqueue_compute(from, part.job, part.amount);
                }
                continue;
            }
            let to = ClusterId(*dest as u32);
            let amount: f64 = parts[di].iter().map(|c| c.amount).sum();
            let connections = alloc.beta(from, to);
            let cap = match p.route_bottleneck_bw(from, to) {
                Some(bw) if bw.is_finite() => Some(connections as f64 * bw),
                Some(_) => None,
                None => continue, // validated allocations never ship here
            };
            let demand = amount / tp;
            specs.push(LiveFlowSpec {
                src: from,
                dst: to,
                cap: cap.unwrap_or(f64::INFINITY),
                demand,
                parts: std::mem::take(&mut parts[di]),
            });
            spec_meta.push(FlowMeta {
                from,
                to,
                connections,
                cap,
                demand,
                stalled: false,
            });
        }
        if specs.is_empty() {
            continue;
        }
        let ids = live.add_flows(specs);
        for (id, meta) in ids.into_iter().zip(spec_meta) {
            charge_route(inst, &meta, conn_now, caps_ok, 1);
            flows.insert(id, meta);
        }
    }
}

/// Charges (`sign = 1`) or releases (`sign = -1`) a flow's connections on
/// every backbone link of its route, flagging cap violations on charge.
fn charge_route(
    inst: &ProblemInstance,
    meta: &FlowMeta,
    conn_now: &mut [i64],
    caps_ok: &mut bool,
    sign: i64,
) {
    if let Some(route) = inst.platform.route(meta.from, meta.to) {
        for l in route {
            conn_now[l.index()] += sign * meta.connections as i64;
            if sign > 0
                && conn_now[l.index()] > inst.platform.links[l.index()].max_connections as i64
            {
                *caps_ok = false;
            }
        }
    }
}
