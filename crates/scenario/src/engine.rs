//! The online scenario engine: replays a [`Scenario`] timeline against a
//! live simulation, driving shipments from the policy's current allocation.
//!
//! Time is organised in control periods of length [`Scenario::period`]
//! (the online analogue of the §3.2 periodic schedule's `T_p`). At each
//! boundary the engine
//!
//! 1. advances the [`LiveSim`] to the boundary, collecting deliveries,
//!    compute completions, and job finishes on the way;
//! 2. applies the platform events that came due — churn retires in-flight
//!    transfers (their payload returns to the source backlog), capacity
//!    drift feeds the live-mutation API;
//! 3. activates the jobs that arrived;
//! 4. consults the [`ReschedulePolicy`], installing a fresh allocation if
//!    it returns one;
//! 5. ships one period's worth of backlog: per application `k`, each
//!    destination `l` receives at most `α_{k,l} · T` units (drawn FIFO
//!    from `k`'s job backlog, local share enqueued directly), spawning one
//!    flow per used route with the allocation's `β·minbw` cap and `α`
//!    reservation — exactly the Eq. 7 shape the periodic engine executes,
//!    but driven by dynamic backlogs.
//!
//! The run ends when every job has been computed (or at a drain-cap after
//! the last arrival, reporting unfinished jobs as such).

use crate::events::{PlatformChange, Scenario};
use crate::policy::{PolicyCtx, ReschedulePolicy};
use crate::report::{JobOutcome, ScenarioReport};
use dls_core::{Allocation, ProblemInstance, SolveError};
use dls_platform::ClusterId;
use dls_sim::{
    BandwidthModel, ChunkPart, LiveConfig, LiveEvent, LiveFlowId, LiveFlowSpec, LiveSim, SimEngine,
};
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// Scenario-engine settings.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Local-link sharing discipline.
    pub bandwidth_model: BandwidthModel,
    /// Which live-simulation core executes the timeline.
    pub engine: SimEngine,
    /// Cross-check every incremental mutation against a full solve
    /// (expensive; tests only). Implies [`ScenarioConfig::record_events`]:
    /// a checked run always carries the event trace needed to localise a
    /// divergence.
    pub oracle_check: bool,
    /// Record the simulation's delivery/compute event stream into
    /// [`ScenarioReport::events`], so two runs (e.g. incremental vs.
    /// full-recompute) can be compared event by event with
    /// [`ScenarioReport::first_event_divergence`].
    pub record_events: bool,
    /// Periods the engine keeps draining after the last arrival before
    /// giving up on unfinished jobs (churn can strand work forever).
    pub drain_periods: usize,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            bandwidth_model: BandwidthModel::MaxMinFair,
            engine: SimEngine::Incremental,
            oracle_check: false,
            record_events: false,
            drain_periods: 400,
        }
    }
}

/// Per-job execution state.
#[derive(Debug, Clone)]
struct JobState {
    origin: usize,
    arrival: f64,
    size: f64,
    /// Load not yet assigned to a destination (backlogged at the origin).
    unassigned: f64,
    /// Assigned parts not yet fully computed.
    pending_parts: u32,
    in_backlog: bool,
    completed_at: Option<f64>,
}

impl JobState {
    fn done(&self) -> bool {
        self.completed_at.is_some()
    }
}

/// Connection bookkeeping for one in-flight transfer.
#[derive(Debug, Clone)]
struct FlowMeta {
    from: ClusterId,
    to: ClusterId,
    connections: u32,
}

/// Runs `scenario` on `base`'s platform under `policy`. The returned report
/// is deterministic except for its `reschedule_ms` wall-clock field.
pub fn run_scenario(
    base: &ProblemInstance,
    scenario: &Scenario,
    policy: &mut dyn ReschedulePolicy,
    cfg: &ScenarioConfig,
) -> Result<ScenarioReport, SolveError> {
    let tp = scenario.period;
    let k = base.num_apps();
    let mut inst = base.clone();
    let mut live = LiveSim::new(
        &inst
            .platform
            .clusters
            .iter()
            .map(|c| c.local_bw)
            .collect::<Vec<_>>(),
        &inst
            .platform
            .clusters
            .iter()
            .map(|c| c.speed)
            .collect::<Vec<_>>(),
        LiveConfig {
            bandwidth_model: cfg.bandwidth_model,
            engine: cfg.engine,
            oracle_check: cfg.oracle_check,
            record_events: cfg.record_events || cfg.oracle_check,
        },
    );

    let mut jobs: Vec<JobState> = scenario
        .jobs
        .iter()
        .map(|j| JobState {
            origin: j.origin as usize,
            arrival: j.arrival,
            size: j.size,
            unassigned: 0.0,
            pending_parts: 0,
            in_backlog: false,
            completed_at: None,
        })
        .collect();
    let mut backlog: Vec<VecDeque<u32>> = vec![VecDeque::new(); k];
    let mut flows: HashMap<LiveFlowId, FlowMeta> = HashMap::new();
    let mut conn_now: Vec<i64> = vec![0; inst.platform.links.len()];
    let mut caps_ok = true;
    // `Some((speed, local_bw))` while a cluster is churned out: the values
    // it will rejoin with. Captured at `ClusterLeave` and kept up to date by
    // drift events that fire during the outage, so a rejoin restores the
    // *latest drifted* capacities — not the scenario-start baseline.
    let mut away: Vec<Option<(f64, f64)>> = vec![None; inst.platform.clusters.len()];

    let mut alloc: Option<Allocation> = None;
    let mut next_arrival = 0usize;
    let mut next_event = 0usize;
    let mut platform_changed = false;
    let mut achieved_window = 0.0f64;
    let mut completed_work = 0.0f64;
    let mut last_completion = 0.0f64;
    let mut reschedules = 0usize;
    let mut reschedule_ms = 0.0f64;
    let mut allocated_sum = 0.0f64;
    let mut allocated_periods = 0usize;
    let mut periods = 0usize;

    let last_arrival_period = (scenario.last_arrival() / tp).ceil() as usize;
    let max_periods = last_arrival_period + cfg.drain_periods.max(1);
    let time_eps = 1e-9 * tp;

    for epoch in 0..=max_periods {
        let t = epoch as f64 * tp;
        periods = epoch;

        // --- 1. advance the live core to the boundary ---
        let mut finished_flows: Vec<LiveFlowId> = Vec::new();
        for e in live.advance_to(t) {
            match *e {
                LiveEvent::FlowDone { id, .. } => finished_flows.push(id),
                LiveEvent::Delivered { .. } => {}
                LiveEvent::Computed {
                    time, job, amount, ..
                } => {
                    let j = &mut jobs[job as usize];
                    j.pending_parts = j.pending_parts.saturating_sub(1);
                    achieved_window += amount;
                    completed_work += amount;
                    if j.pending_parts == 0 && j.unassigned <= 0.0 && !j.in_backlog && !j.done() {
                        j.completed_at = Some(time);
                        last_completion = last_completion.max(time);
                    }
                }
            }
        }
        for id in finished_flows {
            release_connections(&inst, &mut flows, &mut conn_now, id);
        }

        // --- 2. platform events due at (or before) this boundary ---
        while next_event < scenario.platform_events.len()
            && scenario.platform_events[next_event].time <= t + time_eps
        {
            let ev = scenario.platform_events[next_event];
            next_event += 1;
            platform_changed = true;
            match ev.change {
                PlatformChange::SetSpeed { cluster, speed } => {
                    // Drift on a churned-out cluster must not revive it:
                    // update its rejoin target instead of the live platform.
                    if let Some(target) = &mut away[cluster as usize] {
                        target.0 = speed;
                    } else {
                        inst.platform.clusters[cluster as usize].speed = speed;
                        live.update_speed(ClusterId(cluster), speed);
                    }
                }
                PlatformChange::SetLocalBw { cluster, bw } => {
                    if let Some(target) = &mut away[cluster as usize] {
                        target.1 = bw;
                    } else {
                        inst.platform.clusters[cluster as usize].local_bw = bw;
                        live.update_link_capacity(ClusterId(cluster), bw);
                    }
                }
                PlatformChange::SetBackboneBw { link, bw } => {
                    // Connection-oriented semantics (§2): a connection is
                    // granted bw(l) when it opens, so transfers already in
                    // flight keep their negotiated cap for the remainder of
                    // their chunk; the new bandwidth applies to every flow
                    // spawned from the next period on.
                    inst.platform.links[link as usize].bw_per_connection = bw;
                }
                PlatformChange::SetMaxConnections { link, max } => {
                    inst.platform.links[link as usize].max_connections = max;
                    // A cap dropping below the already-open connection
                    // count is a violation even if no new flow ever ships
                    // over the link.
                    if conn_now[link as usize] > max as i64 {
                        caps_ok = false;
                    }
                }
                PlatformChange::ClusterLeave { cluster } => {
                    let c = &inst.platform.clusters[cluster as usize];
                    if away[cluster as usize].is_none() {
                        away[cluster as usize] = Some((c.speed, c.local_bw));
                    }
                    inst.platform.clusters[cluster as usize].speed = 0.0;
                    inst.platform.clusters[cluster as usize].local_bw = 0.0;
                    live.update_speed(ClusterId(cluster), 0.0);
                    live.update_link_capacity(ClusterId(cluster), 0.0);
                    // Retire in-flight transfers touching the churned
                    // cluster; their payload returns to the source backlog
                    // (store-and-forward: partial progress is forfeited).
                    let victims: Vec<LiveFlowId> = flows
                        .iter()
                        .filter(|(_, m)| {
                            m.from.index() == cluster as usize || m.to.index() == cluster as usize
                        })
                        .map(|(id, _)| *id)
                        .collect();
                    for retired in live.retire_flows(&victims) {
                        for part in &retired.parts {
                            let j = &mut jobs[part.job as usize];
                            j.pending_parts = j.pending_parts.saturating_sub(1);
                            j.unassigned += part.amount;
                            if !j.in_backlog {
                                j.in_backlog = true;
                                backlog[j.origin].push_back(part.job);
                            }
                        }
                    }
                    for id in victims {
                        release_connections(&inst, &mut flows, &mut conn_now, id);
                    }
                }
                PlatformChange::ClusterJoin { cluster } => {
                    // Rejoin with the capacities the cluster would have had
                    // if it never left (its leave-time values plus any drift
                    // recorded during the outage); a join without a matching
                    // leave restores the scenario baseline.
                    let (speed, local_bw) = away[cluster as usize].take().unwrap_or_else(|| {
                        let original = &base.platform.clusters[cluster as usize];
                        (original.speed, original.local_bw)
                    });
                    inst.platform.clusters[cluster as usize].speed = speed;
                    inst.platform.clusters[cluster as usize].local_bw = local_bw;
                    live.update_speed(ClusterId(cluster), speed);
                    live.update_link_capacity(ClusterId(cluster), local_bw);
                }
            }
        }

        // --- 3. job arrivals due at (or before) this boundary ---
        while next_arrival < scenario.jobs.len()
            && scenario.jobs[next_arrival].arrival <= t + time_eps
        {
            let j = &mut jobs[next_arrival];
            j.unassigned = j.size;
            j.in_backlog = true;
            backlog[j.origin].push_back(next_arrival as u32);
            next_arrival += 1;
        }

        // --- termination ---
        let arrivals_left = next_arrival < scenario.jobs.len();
        let all_done = jobs.iter().all(JobState::done);
        if !arrivals_left && (all_done || epoch == max_periods) {
            break;
        }

        // --- 4. policy ---
        let backlogged = backlog.iter().any(|q| !q.is_empty());
        if backlogged {
            let allocated = alloc.as_ref().map_or(0.0, Allocation::total_load);
            let ctx = PolicyCtx {
                inst: &inst,
                epoch,
                platform_changed,
                achieved: achieved_window / tp,
                allocated,
                backlogged,
                current: alloc.as_ref(),
            };
            let t0 = Instant::now();
            let decision = policy.decide(&ctx)?;
            reschedule_ms += t0.elapsed().as_secs_f64() * 1e3;
            if let Some(new_alloc) = decision {
                debug_assert!(
                    new_alloc.validate(&inst).is_ok(),
                    "policy produced an invalid allocation: {:?}",
                    new_alloc.violations(&inst)
                );
                alloc = Some(new_alloc);
                reschedules += 1;
                platform_changed = false;
            }
        }
        achieved_window = 0.0;

        // --- 5. ship one period of backlog under the current allocation ---
        if let Some(a) = &alloc {
            if backlogged {
                allocated_sum += a.total_load();
                allocated_periods += 1;
                spawn_period(
                    &mut live,
                    &inst,
                    a,
                    tp,
                    &mut jobs,
                    &mut backlog,
                    &mut flows,
                    &mut conn_now,
                    &mut caps_ok,
                )
            }
        }
    }

    let completed_jobs = jobs.iter().filter(|j| j.done()).count();
    let responses: Vec<f64> = jobs
        .iter()
        .filter_map(|j| j.completed_at.map(|c| c - j.arrival))
        .collect();
    let mean_response = if responses.is_empty() {
        0.0
    } else {
        responses.iter().sum::<f64>() / responses.len() as f64
    };
    let max_response = responses.iter().fold(0.0f64, |a, &r| a.max(r));
    let per_job: Vec<JobOutcome> = scenario
        .jobs
        .iter()
        .zip(&jobs)
        .enumerate()
        .map(|(i, (spec, state))| JobOutcome {
            job: i as u32,
            origin: spec.origin,
            arrival: spec.arrival,
            size: spec.size,
            completed: state.completed_at,
        })
        .collect();

    Ok(ScenarioReport {
        scenario: scenario.name.clone(),
        policy: policy.name(),
        periods,
        period_length: tp,
        jobs: jobs.len(),
        completed_jobs,
        offered_work: scenario.offered_work(),
        completed_work,
        makespan: last_completion,
        mean_response,
        max_response,
        achieved_throughput: if last_completion > 0.0 {
            completed_work / last_completion
        } else {
            0.0
        },
        allocated_throughput: if allocated_periods > 0 {
            allocated_sum / allocated_periods as f64
        } else {
            0.0
        },
        reschedules,
        reschedule_ms,
        sim_events: live.events_processed(),
        connection_caps_respected: caps_ok,
        per_job,
        events: (cfg.record_events || cfg.oracle_check).then(|| live.event_log().to_vec()),
    })
}

/// Drops the connection charge of a finished/retired flow (routes are
/// topology and never change, so the release mirrors the charge exactly).
fn release_connections(
    inst: &ProblemInstance,
    flows: &mut HashMap<LiveFlowId, FlowMeta>,
    conn_now: &mut [i64],
    id: LiveFlowId,
) {
    if let Some(meta) = flows.remove(&id) {
        let mut ignore = true;
        charge_route(inst, &meta, conn_now, &mut ignore, -1);
    }
}

/// Ships one control period's worth of backlog: per application, the FIFO
/// backlog is split across destinations under the `α_{k,l} · T` budgets,
/// local shares enqueue directly, remote shares spawn reserved flows.
#[allow(clippy::too_many_arguments)]
fn spawn_period(
    live: &mut LiveSim,
    inst: &ProblemInstance,
    alloc: &Allocation,
    tp: f64,
    jobs: &mut [JobState],
    backlog: &mut [VecDeque<u32>],
    flows: &mut HashMap<LiveFlowId, FlowMeta>,
    conn_now: &mut [i64],
    caps_ok: &mut bool,
) {
    let p = &inst.platform;
    let k = inst.num_apps();
    for (origin, queue) in backlog.iter_mut().enumerate() {
        if queue.is_empty() {
            continue;
        }
        let from = ClusterId(origin as u32);
        // Destination budgets for this period: local first, then remote
        // destinations in cluster order (deterministic).
        let mut dests: Vec<(usize, f64)> = Vec::new();
        let local_budget = alloc.alpha(from, from) * tp;
        if local_budget > 0.0 {
            dests.push((origin, local_budget));
        }
        for to in 0..k {
            if to == origin {
                continue;
            }
            let b = alloc.alpha(from, ClusterId(to as u32)) * tp;
            if b > 0.0 {
                dests.push((to, b));
            }
        }
        if dests.is_empty() {
            continue;
        }
        let budget_eps: f64 = 1e-12 * (1.0 + dests.iter().map(|(_, b)| b).sum::<f64>());
        // Per-destination parts assembled this period.
        let mut parts: Vec<Vec<ChunkPart>> = vec![Vec::new(); dests.len()];
        'fifo: while let Some(&job_id) = queue.front() {
            let j = &mut jobs[job_id as usize];
            for (di, (_, b)) in dests.iter_mut().enumerate() {
                if *b <= budget_eps || j.unassigned <= 0.0 {
                    continue;
                }
                let mut take = j.unassigned.min(*b);
                // Sweep size-relative dust into the last part so jobs are
                // assigned *exactly* (completion is a part-count, not a
                // float comparison).
                if j.unassigned - take <= 1e-9 * (1.0 + j.size) {
                    take = j.unassigned;
                }
                j.unassigned -= take;
                *b -= take;
                j.pending_parts += 1;
                parts[di].push(ChunkPart {
                    job: job_id,
                    amount: take,
                });
            }
            if j.unassigned <= 0.0 {
                j.unassigned = 0.0;
                j.in_backlog = false;
                queue.pop_front();
            } else {
                break 'fifo; // budgets exhausted
            }
        }
        // Local shares: straight into the compute queue.
        let mut specs: Vec<LiveFlowSpec> = Vec::new();
        let mut spec_meta: Vec<FlowMeta> = Vec::new();
        for (di, (dest, _)) in dests.iter().enumerate() {
            if parts[di].is_empty() {
                continue;
            }
            if *dest == origin {
                for part in &parts[di] {
                    live.enqueue_compute(from, part.job, part.amount);
                }
                continue;
            }
            let to = ClusterId(*dest as u32);
            let amount: f64 = parts[di].iter().map(|c| c.amount).sum();
            let connections = alloc.beta(from, to);
            let cap = match p.route_bottleneck_bw(from, to) {
                Some(bw) if bw.is_finite() => connections as f64 * bw,
                Some(_) => f64::INFINITY,
                None => continue, // validated allocations never ship here
            };
            specs.push(LiveFlowSpec {
                src: from,
                dst: to,
                cap,
                demand: amount / tp,
                parts: std::mem::take(&mut parts[di]),
            });
            spec_meta.push(FlowMeta {
                from,
                to,
                connections,
            });
        }
        if specs.is_empty() {
            continue;
        }
        let ids = live.add_flows(specs);
        for (id, meta) in ids.into_iter().zip(spec_meta) {
            charge_route(inst, &meta, conn_now, caps_ok, 1);
            flows.insert(id, meta);
        }
    }
}

/// Charges (`sign = 1`) or releases (`sign = -1`) a flow's connections on
/// every backbone link of its route, flagging cap violations on charge.
fn charge_route(
    inst: &ProblemInstance,
    meta: &FlowMeta,
    conn_now: &mut [i64],
    caps_ok: &mut bool,
    sign: i64,
) {
    if let Some(route) = inst.platform.route(meta.from, meta.to) {
        for l in route {
            conn_now[l.index()] += sign * meta.connections as i64;
            if sign > 0
                && conn_now[l.index()] > inst.platform.links[l.index()].max_connections as i64
            {
                *caps_ok = false;
            }
        }
    }
}
