//! A catalog of named, seeded scenario families.
//!
//! Each entry deterministically builds a `(ProblemInstance, Scenario)` pair
//! from a cluster count and a seed, so sweeps, benches, the CLI, and the
//! examples all speak the same names:
//!
//! | name | workload | platform dynamics |
//! |------|----------|-------------------|
//! | `steady` | Poisson arrivals | none |
//! | `bursty` | on/off (flash-crowd) arrivals | none |
//! | `drift` | Poisson arrivals | multiplicative capacity drift each period |
//! | `churn` | Poisson arrivals | periodic cluster leave/join cycles |
//! | `flash` | one t=0 burst + trickle | none |
//! | `faulty` | Poisson arrivals | cluster crashes (lost work), straggler windows, rejoins |
//! | `partition` | Poisson arrivals | backbone partitions that split and heal |

use crate::events::{ArrivalProcess, JobSpec, PlatformChange, PlatformEvent, Scenario};
use dls_core::adaptive::DriftConfig;
use dls_core::{Objective, ProblemInstance};
use dls_platform::{PlatformConfig, PlatformGenerator};

/// A named catalog entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Catalog key (`steady`, `bursty`, `drift`, `churn`, `flash`).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
}

/// All catalog entries.
pub fn catalog() -> Vec<CatalogEntry> {
    vec![
        CatalogEntry {
            name: "steady",
            description: "Poisson arrivals on a static platform",
        },
        CatalogEntry {
            name: "bursty",
            description: "on/off arrival bursts on a static platform",
        },
        CatalogEntry {
            name: "drift",
            description: "Poisson arrivals under multiplicative capacity drift",
        },
        CatalogEntry {
            name: "churn",
            description: "Poisson arrivals with periodic cluster leave/join",
        },
        CatalogEntry {
            name: "flash",
            description: "a t=0 flash crowd followed by a trickle",
        },
        CatalogEntry {
            name: "faulty",
            description: "cluster crashes with lost work, straggler windows, rejoins",
        },
        CatalogEntry {
            name: "partition",
            description: "backbone partitions that split the platform and heal",
        },
    ]
}

/// The paper-shape platform the catalog draws (Table 1 grid centre), with
/// spread payoffs so transfers matter. Public so the bench harness measures
/// exactly the platforms the catalog replays.
pub fn paper_shape_instance(k: usize, seed: u64) -> ProblemInstance {
    let cfg = PlatformConfig {
        num_clusters: k,
        connectivity: 0.4,
        heterogeneity: 0.4,
        mean_local_bw: 250.0,
        mean_backbone_bw: 30.0,
        mean_max_connections: 15.0,
        speed: 100.0,
        relay_routers: 0,
    };
    ProblemInstance::with_spread_payoffs(
        PlatformGenerator::new(seed).generate(&cfg),
        Objective::MaxMin,
        0.5,
        seed ^ 0x9e37_79b9_7f4a_7c15,
    )
}

/// The catalog's workload: Poisson arrivals offering roughly 40% of the
/// platform's aggregate speed, so queues stay stable but the network is
/// genuinely exercised. Public for the same reason as
/// [`paper_shape_instance`].
pub fn poisson_jobs(k: usize, horizon: f64, seed: u64) -> Vec<JobSpec> {
    let mean_size = 150.0;
    let rate = 0.4 * k as f64 * 100.0 / mean_size;
    ArrivalProcess::Poisson { rate, mean_size }.generate(horizon, k, seed)
}

/// Builds a catalog entry. Returns `None` for unknown names.
pub fn build(name: &str, k: usize, seed: u64) -> Option<(ProblemInstance, Scenario)> {
    let inst = paper_shape_instance(k, seed);
    let period = 1.0;
    let horizon = 20.0;
    let scenario = match name {
        "steady" => Scenario {
            name: name.into(),
            period,
            jobs: poisson_jobs(k, horizon, seed ^ 0xa5a5),
            platform_events: Vec::new(),
        },
        "bursty" => Scenario {
            name: name.into(),
            period,
            jobs: ArrivalProcess::OnOff {
                rate: 0.8 * k as f64,
                mean_size: 150.0,
                on_len: 3.0,
                off_len: 5.0,
            }
            .generate(horizon, k, seed ^ 0xa5a5),
            platform_events: Vec::new(),
        },
        "drift" => Scenario {
            name: name.into(),
            period,
            jobs: poisson_jobs(k, horizon, seed ^ 0xa5a5),
            platform_events: crate::events::drift_events(
                &inst.platform,
                &DriftConfig {
                    epochs: horizon as usize + 1,
                    seed: seed ^ 0x5a5a,
                    ..DriftConfig::default()
                },
                period,
            ),
        },
        "churn" => {
            let mut events = Vec::new();
            // Every 6 periods one cluster (round-robin) leaves for 3.
            let mut victim = 0u32;
            let mut t = 4.0;
            while t + 3.0 < horizon {
                events.push(PlatformEvent {
                    time: t,
                    change: PlatformChange::ClusterLeave { cluster: victim },
                });
                events.push(PlatformEvent {
                    time: t + 3.0,
                    change: PlatformChange::ClusterJoin { cluster: victim },
                });
                victim = (victim + 1) % k as u32;
                t += 6.0;
            }
            Scenario {
                name: name.into(),
                period,
                jobs: poisson_jobs(k, horizon, seed ^ 0xa5a5),
                platform_events: events,
            }
        }
        "flash" => {
            let mut jobs = poisson_jobs(k, horizon, seed ^ 0xa5a5);
            // The flash crowd: one burst of K large jobs at t = 0.
            for c in 0..k {
                jobs.push(JobSpec {
                    arrival: 0.0,
                    origin: c as u32,
                    size: 300.0,
                    weight: 1.0,
                });
            }
            Scenario {
                name: name.into(),
                period,
                jobs,
                platform_events: Vec::new(),
            }
        }
        "faulty" => {
            // Every 7 periods a round-robin victim crashes (in-flight and
            // queued work lost, load re-dispatched) and rejoins 3 periods
            // later; between crashes a straggler window halves another
            // cluster's capacity for 2 periods.
            let mut events = Vec::new();
            let mut victim = 0u32;
            let mut t = 4.0;
            while t + 3.0 < horizon {
                events.push(PlatformEvent {
                    time: t,
                    change: PlatformChange::ClusterCrash { cluster: victim },
                });
                events.push(PlatformEvent {
                    time: t + 3.0,
                    change: PlatformChange::ClusterJoin { cluster: victim },
                });
                let straggler = (victim + 1) % k as u32;
                events.push(PlatformEvent {
                    time: t + 1.0,
                    change: PlatformChange::Straggler {
                        cluster: straggler,
                        factor: 0.5,
                        until: t + 3.0,
                    },
                });
                victim = (victim + 2) % k as u32;
                t += 7.0;
            }
            Scenario {
                name: name.into(),
                period,
                jobs: poisson_jobs(k, horizon, seed ^ 0xa5a5),
                platform_events: events,
            }
        }
        "partition" => {
            // Every 8 periods the backbone splits a rotating half of the
            // clusters away from the rest for 3 periods, then heals.
            let mut events = Vec::new();
            let half = (k / 2).max(1);
            let mut offset = 0usize;
            let mut t = 3.0;
            while t + 3.0 < horizon {
                let side: Vec<u32> = (0..half).map(|i| ((offset + i) % k) as u32).collect();
                let rest: Vec<u32> = (0..k as u32).filter(|c| !side.contains(c)).collect();
                if !rest.is_empty() {
                    events.push(PlatformEvent {
                        time: t,
                        change: PlatformChange::BackbonePartition {
                            groups: vec![side, rest],
                            until: t + 3.0,
                        },
                    });
                }
                offset = (offset + half) % k;
                t += 8.0;
            }
            Scenario {
                name: name.into(),
                period,
                jobs: poisson_jobs(k, horizon, seed ^ 0xa5a5),
                platform_events: events,
            }
        }
        _ => return None,
    };
    let mut scenario = scenario;
    scenario.normalise();
    debug_assert!(scenario.validate(&inst.platform).is_ok());
    Some((inst, scenario))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_entry_builds_and_validates() {
        for e in catalog() {
            let (inst, sc) = build(e.name, 6, 11).expect("known entry");
            assert!(sc.validate(&inst.platform).is_ok(), "{}", e.name);
            assert!(!sc.jobs.is_empty(), "{} has no jobs", e.name);
            // Deterministic.
            let (_, sc2) = build(e.name, 6, 11).unwrap();
            assert_eq!(sc.jobs, sc2.jobs);
            assert_eq!(sc.platform_events, sc2.platform_events);
        }
        assert!(build("nope", 6, 11).is_none());
    }

    #[test]
    fn drift_and_churn_have_platform_events() {
        let (_, drift) = build("drift", 5, 3).unwrap();
        assert!(!drift.platform_events.is_empty());
        let (_, churn) = build("churn", 5, 3).unwrap();
        assert!(churn
            .platform_events
            .iter()
            .any(|e| matches!(e.change, PlatformChange::ClusterLeave { .. })));
    }

    #[test]
    fn fault_entries_carry_their_fault_events() {
        let (_, faulty) = build("faulty", 5, 3).unwrap();
        assert!(faulty
            .platform_events
            .iter()
            .any(|e| matches!(e.change, PlatformChange::ClusterCrash { .. })));
        assert!(faulty
            .platform_events
            .iter()
            .any(|e| matches!(e.change, PlatformChange::Straggler { .. })));
        let (_, partition) = build("partition", 5, 3).unwrap();
        assert!(partition
            .platform_events
            .iter()
            .any(|e| matches!(e.change, PlatformChange::BackbonePartition { .. })));
    }
}
