//! Degraded-mode rescheduling: the recovery ladder.
//!
//! A solver failure inside a policy used to abort the whole scenario —
//! unacceptable for a failure-domain story where the *platform* is already
//! misbehaving (a crash or partition is exactly when the LP gets patched
//! hardest). [`RecoveryLadder`] wraps any [`ReschedulePolicy`] and, when a
//! decide fails with a plausibly-transient solver error, walks an
//! escalation ladder instead of giving up:
//!
//! 1. **warm resolve** — the wrapped policy's ordinary decide (already
//!    failed once when the ladder engages);
//! 2. **refactorise and retry** — [`RecoveryLevel::Refactor`] asks the
//!    policy to rebuild its basis factorisation in place, then retries the
//!    decide, up to a bounded number of attempts;
//! 3. **cold rebuild** — [`RecoveryLevel::Rebuild`] reconstructs the
//!    solver context from scratch on the current instance and retries once;
//! 4. **stale scale** — degraded mode: the currently installed allocation
//!    is shrunk to fit the current platform
//!    ([`dls_core::adaptive::scale_to_fit`]) and installed as the decision,
//!    so the system keeps shipping work under a provably feasible (if
//!    sub-optimal) schedule until a later epoch resolves cleanly.
//!
//! Which rung rescued each incident is recorded as a
//! [`RecoveryRecord`] and drained into
//! [`crate::ScenarioReport::recoveries`] by the engine. Non-transient
//! failures — oracle mismatches ([`dls_lp::LpError::WarmColdMismatch`]),
//! structural changes, malformed models — are *not* caught: they indicate
//! bugs, and masking them would disable exactly the checks that find them.

use crate::policy::{PolicyCtx, PolicyState, RecoveryLevel, ReschedulePolicy};
use crate::report::{RecoveryRecord, RecoveryRung};
use dls_core::adaptive::scale_to_fit;
use dls_core::{Allocation, ProblemInstance, SolveError};
use dls_lp::LpError;

/// `true` for failures the ladder may absorb: plausibly-transient solver
/// trouble (numerical breakdown, budget exhaustion, a singular basis, an
/// unexpected LP status). Everything else — oracle mismatches, structural
/// changes, malformed inputs — surfaces unchanged.
pub fn recoverable(err: &SolveError) -> bool {
    match err {
        SolveError::Lp(l) => matches!(
            l,
            LpError::NumericalBreakdown(_)
                | LpError::SingularBasis
                | LpError::IterationLimit { .. }
                | LpError::NodeLimit { .. }
        ),
        SolveError::UnexpectedStatus(_) => true,
        SolveError::PayoffMismatch { .. }
        | SolveError::InvalidAllocation(_)
        | SolveError::BadPin(_) => false,
    }
}

/// Wraps any policy with the crash-tolerant escalation ladder described in
/// the module docs.
#[derive(Debug)]
pub struct RecoveryLadder<P> {
    inner: P,
    /// Refactorise-and-retry attempts before escalating to a rebuild.
    pub max_refactor_retries: u32,
    records: Vec<RecoveryRecord>,
}

impl<P: ReschedulePolicy> RecoveryLadder<P> {
    /// Wraps `inner` with the default retry budget (2 refactor retries).
    pub fn new(inner: P) -> Self {
        RecoveryLadder {
            inner,
            max_refactor_retries: 2,
            records: Vec::new(),
        }
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The wrapped policy, mutably (e.g. to inject test faults).
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }

    fn record(&mut self, epoch: usize, rung: RecoveryRung, error: &SolveError, attempts: u32) {
        self.records.push(RecoveryRecord {
            epoch,
            rung,
            error: error.to_string(),
            attempts,
        });
    }
}

impl<P: ReschedulePolicy> ReschedulePolicy for RecoveryLadder<P> {
    fn name(&self) -> String {
        format!("recovery({})", self.inner.name())
    }

    fn decide(&mut self, ctx: &PolicyCtx<'_>) -> Result<Option<Allocation>, SolveError> {
        let first_err = match self.inner.decide(ctx) {
            Ok(d) => return Ok(d),
            Err(e) if recoverable(&e) => e,
            Err(e) => return Err(e),
        };
        let mut attempts = 1u32;

        // Rung 2: refactorise-and-retry with a bounded budget. A policy
        // that cannot repair at this level (stateless resolvers fail
        // deterministically) skips straight past the retries.
        if self.inner.recover(RecoveryLevel::Refactor, ctx.inst) {
            for _ in 0..self.max_refactor_retries.max(1) {
                attempts += 1;
                match self.inner.decide(ctx) {
                    Ok(d) => {
                        self.record(ctx.epoch, RecoveryRung::Refactor, &first_err, attempts);
                        return Ok(d);
                    }
                    Err(e) if recoverable(&e) => {
                        if !self.inner.recover(RecoveryLevel::Refactor, ctx.inst) {
                            break;
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
        }

        // Rung 3: rebuild the solver context from scratch and retry once.
        if self.inner.recover(RecoveryLevel::Rebuild, ctx.inst) {
            attempts += 1;
            match self.inner.decide(ctx) {
                Ok(d) => {
                    self.record(ctx.epoch, RecoveryRung::Rebuild, &first_err, attempts);
                    return Ok(d);
                }
                Err(e) if recoverable(&e) => {}
                Err(e) => return Err(e),
            }
        }

        // Rung 4: degraded mode. Scale the installed allocation to fit the
        // current platform — always feasible, keeps work flowing, and a
        // later epoch can still resolve properly. With no installed
        // allocation there is nothing to degrade to; surface the original
        // error.
        if let Some(current) = ctx.current {
            let (scaled, _gamma) = scale_to_fit(current, ctx.inst);
            self.record(ctx.epoch, RecoveryRung::StaleScale, &first_err, attempts);
            return Ok(Some(scaled));
        }
        Err(first_err)
    }

    fn recover(&mut self, level: RecoveryLevel, inst: &ProblemInstance) -> bool {
        self.inner.recover(level, inst)
    }

    fn drain_recovery(&mut self) -> Vec<RecoveryRecord> {
        std::mem::take(&mut self.records)
    }

    fn export_state(&self) -> PolicyState {
        self.inner.export_state()
    }

    fn import_state(&mut self, state: &PolicyState) {
        self.inner.import_state(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::RecoveryRung;

    /// A scripted policy: fails with a recoverable error until enough
    /// recover() calls of the demanded level arrive, then succeeds by
    /// delegating to a fixed answer.
    struct Scripted {
        refactors_needed: u32,
        rebuild_clears: bool,
        cleared: bool,
        decides: u32,
    }

    impl ReschedulePolicy for Scripted {
        fn name(&self) -> String {
            "scripted".into()
        }

        fn decide(&mut self, _ctx: &PolicyCtx<'_>) -> Result<Option<Allocation>, SolveError> {
            self.decides += 1;
            if self.cleared {
                Ok(None)
            } else {
                Err(SolveError::Lp(LpError::NumericalBreakdown("scripted")))
            }
        }

        fn recover(&mut self, level: RecoveryLevel, _inst: &ProblemInstance) -> bool {
            match level {
                RecoveryLevel::Refactor => {
                    if self.refactors_needed <= 1 {
                        self.cleared = self.refactors_needed == 1;
                        self.refactors_needed = 0;
                        self.cleared
                    } else {
                        self.refactors_needed -= 1;
                        true
                    }
                }
                RecoveryLevel::Rebuild => {
                    if self.rebuild_clears {
                        self.cleared = true;
                    }
                    self.rebuild_clears
                }
            }
        }
    }

    fn ctx<'a>(inst: &'a ProblemInstance, current: Option<&'a Allocation>) -> PolicyCtx<'a> {
        PolicyCtx {
            inst,
            epoch: 3,
            platform_changed: false,
            achieved: 0.0,
            allocated: 0.0,
            backlogged: true,
            current,
        }
    }

    fn instance() -> ProblemInstance {
        use dls_platform::PlatformBuilder;
        let mut b = PlatformBuilder::new();
        let c0 = b.add_cluster(100.0, 20.0);
        let c1 = b.add_cluster(50.0, 30.0);
        b.connect_clusters(c0, c1, 10.0, 2);
        ProblemInstance::uniform(b.build().unwrap(), dls_core::Objective::MaxMin)
    }

    #[test]
    fn refactor_rung_rescues_and_is_recorded() {
        let inst = instance();
        let mut ladder = RecoveryLadder::new(Scripted {
            refactors_needed: 1,
            rebuild_clears: false,
            cleared: false,
            decides: 0,
        });
        let out = ladder.decide(&ctx(&inst, None)).unwrap();
        assert!(out.is_none());
        let recs = ladder.drain_recovery();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].rung, RecoveryRung::Refactor);
        assert_eq!(recs[0].epoch, 3);
        assert!(recs[0].error.contains("scripted"));
        assert!(ladder.drain_recovery().is_empty(), "drain empties");
    }

    #[test]
    fn rebuild_rung_rescues_when_refactors_do_not() {
        let inst = instance();
        let mut ladder = RecoveryLadder::new(Scripted {
            refactors_needed: 100,
            rebuild_clears: true,
            cleared: false,
            decides: 0,
        });
        assert!(ladder.decide(&ctx(&inst, None)).unwrap().is_none());
        let recs = ladder.drain_recovery();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].rung, RecoveryRung::Rebuild);
        // The refactor budget was consumed first.
        assert!(recs[0].attempts > 2, "{recs:?}");
    }

    #[test]
    fn stale_scale_rung_needs_an_installed_allocation() {
        let inst = instance();
        let stuck = || Scripted {
            refactors_needed: 100,
            rebuild_clears: false,
            cleared: false,
            decides: 0,
        };
        // No installed allocation: the original error surfaces.
        let mut ladder = RecoveryLadder::new(stuck());
        assert!(matches!(
            ladder.decide(&ctx(&inst, None)),
            Err(SolveError::Lp(LpError::NumericalBreakdown(_)))
        ));
        assert!(ladder.drain_recovery().is_empty());
        // With one: degraded mode installs a scaled copy.
        use dls_core::heuristics::Heuristic as _;
        let current = dls_core::heuristics::Greedy::default()
            .solve(&inst)
            .unwrap();
        let mut ladder = RecoveryLadder::new(stuck());
        let out = ladder
            .decide(&ctx(&inst, Some(&current)))
            .unwrap()
            .expect("degraded-mode allocation");
        assert!(out.validate(&inst).is_ok());
        let recs = ladder.drain_recovery();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].rung, RecoveryRung::StaleScale);
    }

    #[test]
    fn non_recoverable_errors_pass_through() {
        struct Broken;
        impl ReschedulePolicy for Broken {
            fn name(&self) -> String {
                "broken".into()
            }
            fn decide(&mut self, _ctx: &PolicyCtx<'_>) -> Result<Option<Allocation>, SolveError> {
                Err(SolveError::Lp(LpError::WarmColdMismatch {
                    warm: 1.0,
                    cold: 2.0,
                }))
            }
        }
        let inst = instance();
        let mut ladder = RecoveryLadder::new(Broken);
        assert!(matches!(
            ladder.decide(&ctx(&inst, None)),
            Err(SolveError::Lp(LpError::WarmColdMismatch { .. }))
        ));
        assert!(!recoverable(&SolveError::Lp(LpError::WarmColdMismatch {
            warm: 1.0,
            cold: 2.0
        })));
        assert!(recoverable(&SolveError::UnexpectedStatus("x")));
    }
}
