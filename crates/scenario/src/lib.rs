#![warn(missing_docs)]

//! # dls-scenario — online workload & platform-dynamics engine
//!
//! The paper's central argument for steady-state *periodic* schedules
//! (§1, point (iii)) is **adaptability**: the schedule is cheap to compute,
//! so "resource availability variations" can simply be folded into the next
//! period's optimisation. This crate makes that claim executable. Instead
//! of a fixed platform with all flows present at `t = 0`, a [`Scenario`]
//! replays a timeline of
//!
//! * **workload events** — divisible-load job arrivals with sizes and
//!   weights, drawn from seeded arrival processes ([`ArrivalProcess`]:
//!   Poisson and bursty on/off) or loaded from a serde-JSON trace file
//!   ([`Scenario::from_json`]); and
//! * **platform events** — cluster churn ([`PlatformChange::ClusterLeave`]
//!   / [`PlatformChange::ClusterJoin`]), local- and backbone-bandwidth
//!   drift (the [`dls_core::adaptive`] random walk, lowered to explicit
//!   events by [`drift_events`]), and connection-cap changes —
//!
//! through the live simulation core ([`dls_sim::LiveSim`], the dirty-set
//! incremental engine grown in PR 2) while a pluggable
//! [`ReschedulePolicy`] decides, period by period, whether to fold the
//! observed changes into a fresh Eq. 7 allocation:
//!
//! * [`PeriodicResolve`] — re-solve each epoch; with [`Resolver::warm`]
//!   the LPRG relaxation is *warm-started* (PR 3's [`dls_lp::WarmSimplex`]
//!   patched with platform deltas) so a re-solve costs a handful of dual
//!   pivots;
//! * [`ThresholdTriggered`] — re-solve only when observed throughput
//!   degrades past a bound;
//! * [`StaleScale`] — the paper's stale baseline, shrinking the epoch-0
//!   allocation uniformly via [`dls_core::adaptive::scale_to_fit`].
//!
//! [`run_scenario`] executes the timeline and produces a
//! [`ScenarioReport`]: per-job response times, makespan, achieved vs.
//! allocated steady-state throughput, and reschedule counts/costs. The
//! [`catalog`] module names reproducible scenario families (`steady`,
//! `bursty`, `drift`, `churn`, `flash`) shared by the experiment sweep
//! (`dls-experiments`), the perf harness (`dls-bench`, emitting
//! `BENCH_scenario.json`), the `dls-cli scenario` subcommand, and
//! `examples/online_arrivals.rs`.

pub mod catalog;
pub mod engine;
pub mod events;
pub mod policy;
pub mod report;

pub use catalog::{build as build_catalog_entry, catalog, CatalogEntry};
pub use engine::{run_scenario, ScenarioConfig};
pub use events::{drift_events, ArrivalProcess, JobSpec, PlatformChange, PlatformEvent, Scenario};
pub use policy::{
    PeriodicResolve, PolicyCtx, ReschedulePolicy, Resolver, StaleScale, ThresholdTriggered,
    WarmLprg,
};
pub use report::{JobOutcome, ScenarioReport};

// The drift machinery this crate absorbs as one of its event sources,
// re-exported so downstream users need only one import.
pub use dls_core::adaptive::{scale_to_fit, DriftConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use dls_sim::SimEngine;

    #[test]
    fn steady_scenario_completes_all_jobs_under_periodic_warm() {
        let (inst, scenario) = build_catalog_entry("steady", 5, 17).unwrap();
        let mut policy = PeriodicResolve::new(Resolver::warm(&inst).unwrap());
        let report = run_scenario(
            &inst,
            &scenario,
            &mut policy,
            &ScenarioConfig {
                oracle_check: true,
                ..ScenarioConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.completed_jobs, report.jobs, "{}", report.summary());
        assert!(report.makespan > 0.0);
        assert!(report.mean_response > 0.0);
        assert!(report.reschedules > 0);
        assert!(report.connection_caps_respected);
        assert!(
            (report.completed_work - report.offered_work).abs() < 1e-6 * report.offered_work,
            "work lost: {} of {}",
            report.completed_work,
            report.offered_work
        );
    }

    #[test]
    fn incremental_and_full_engines_agree_on_reports() {
        for entry in ["steady", "drift", "churn"] {
            let (inst, scenario) = build_catalog_entry(entry, 5, 23).unwrap();
            let mut pa = PeriodicResolve::new(Resolver::Cold);
            let mut pb = PeriodicResolve::new(Resolver::Cold);
            let fast = run_scenario(
                &inst,
                &scenario,
                &mut pa,
                &ScenarioConfig {
                    oracle_check: true,
                    ..ScenarioConfig::default()
                },
            )
            .unwrap();
            let slow = run_scenario(
                &inst,
                &scenario,
                &mut pb,
                &ScenarioConfig {
                    engine: SimEngine::FullRecompute,
                    record_events: true,
                    ..ScenarioConfig::default()
                },
            )
            .unwrap();
            assert!(
                fast.agrees_with(&slow, 1e-6),
                "{entry}: engines diverged:\n{}\n{}",
                fast.summary(),
                slow.summary()
            );
            // Report-level agreement is necessary but coarse; the event
            // streams must match event for event, and a mismatch must name
            // the first offending event.
            assert!(
                !fast.event_trace().is_empty(),
                "{entry}: no events recorded"
            );
            if let Some(d) = fast.first_event_divergence(&slow, 1e-6) {
                panic!("{entry}: engines diverged at {}", d.describe());
            }
        }
    }

    #[test]
    fn drift_scenario_adaptive_beats_stale() {
        let (inst, scenario) = build_catalog_entry("drift", 6, 29).unwrap();
        let mut adaptive = PeriodicResolve::new(Resolver::warm(&inst).unwrap());
        let a = run_scenario(&inst, &scenario, &mut adaptive, &ScenarioConfig::default()).unwrap();
        let mut stale = StaleScale::new(Resolver::Cold);
        let s = run_scenario(&inst, &scenario, &mut stale, &ScenarioConfig::default()).unwrap();
        assert_eq!(a.completed_jobs, a.jobs, "adaptive: {}", a.summary());
        // The stale baseline must not finish faster: re-optimising each
        // epoch can only help (allow float noise).
        assert!(
            a.makespan <= s.makespan + 1e-6 * (1.0 + s.makespan),
            "adaptive {} vs stale {}",
            a.makespan,
            s.makespan
        );
        assert!(a.reschedules >= s.reschedules);
    }

    #[test]
    fn churn_scenario_recovers_in_flight_work() {
        let (inst, scenario) = build_catalog_entry("churn", 5, 31).unwrap();
        let mut policy = PeriodicResolve::new(Resolver::warm(&inst).unwrap());
        let report = run_scenario(
            &inst,
            &scenario,
            &mut policy,
            &ScenarioConfig {
                oracle_check: true,
                ..ScenarioConfig::default()
            },
        )
        .unwrap();
        // Churned clusters rejoin, so everything eventually completes.
        assert_eq!(report.completed_jobs, report.jobs, "{}", report.summary());
    }

    #[test]
    fn rejoin_restores_drift_applied_during_outage() {
        // A cluster that drifts while churned out must rejoin with the
        // drifted capacities — not the scenario-start baseline — and the
        // drift events themselves must not revive it mid-outage. Both are
        // captured by one equivalence: drifting *during* the outage must
        // produce exactly the run where the same drift lands at the rejoin
        // instant.
        let (inst, base) = build_catalog_entry("steady", 4, 53).unwrap();
        let speed = inst.platform.clusters[1].speed * 0.6;
        let bw = inst.platform.clusters[1].local_bw * 0.7;
        let mk = |events: Vec<PlatformEvent>| {
            let mut s = base.clone();
            s.platform_events = events;
            s.normalise();
            s
        };
        let leave = |t: f64| PlatformEvent {
            time: t,
            change: PlatformChange::ClusterLeave { cluster: 1 },
        };
        let join = |t: f64| PlatformEvent {
            time: t,
            change: PlatformChange::ClusterJoin { cluster: 1 },
        };
        let set_speed = |t: f64| PlatformEvent {
            time: t,
            change: PlatformChange::SetSpeed { cluster: 1, speed },
        };
        let set_bw = |t: f64| PlatformEvent {
            time: t,
            change: PlatformChange::SetLocalBw { cluster: 1, bw },
        };
        let during = mk(vec![leave(2.0), set_speed(3.0), set_bw(4.0), join(6.0)]);
        let at_rejoin = mk(vec![leave(2.0), join(6.0), set_speed(6.0), set_bw(6.0)]);
        let cfg = ScenarioConfig {
            oracle_check: true,
            ..ScenarioConfig::default()
        };
        let mut pa = PeriodicResolve::new(Resolver::Cold);
        let mut pb = PeriodicResolve::new(Resolver::Cold);
        let a = run_scenario(&inst, &during, &mut pa, &cfg).unwrap();
        let b = run_scenario(&inst, &at_rejoin, &mut pb, &cfg).unwrap();
        assert!(
            a.agrees_with(&b, 1e-9),
            "outage drift diverged from rejoin-time drift:\n{}\n{}",
            a.summary(),
            b.summary()
        );
        assert_eq!(a.completed_jobs, a.jobs, "{}", a.summary());
    }

    #[test]
    fn threshold_policy_reschedules_less_than_periodic() {
        let (inst, scenario) = build_catalog_entry("drift", 5, 37).unwrap();
        let mut periodic = PeriodicResolve::new(Resolver::Cold);
        let p = run_scenario(&inst, &scenario, &mut periodic, &ScenarioConfig::default()).unwrap();
        let mut threshold = ThresholdTriggered::new(0.5, Resolver::Cold);
        let t = run_scenario(&inst, &scenario, &mut threshold, &ScenarioConfig::default()).unwrap();
        assert!(
            t.reschedules < p.reschedules,
            "threshold {} vs periodic {}",
            t.reschedules,
            p.reschedules
        );
        assert_eq!(t.completed_jobs, t.jobs, "{}", t.summary());
    }

    #[test]
    fn greedy_heuristic_policy_runs_lp_free() {
        let (inst, scenario) = build_catalog_entry("bursty", 4, 41).unwrap();
        let mut policy = PeriodicResolve::new(Resolver::Heuristic(Box::new(
            dls_core::heuristics::Greedy::default(),
        )));
        let report =
            run_scenario(&inst, &scenario, &mut policy, &ScenarioConfig::default()).unwrap();
        assert_eq!(report.completed_jobs, report.jobs, "{}", report.summary());
    }
}
