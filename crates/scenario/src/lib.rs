#![warn(missing_docs)]

//! # dls-scenario — online workload & platform-dynamics engine
//!
//! The paper's central argument for steady-state *periodic* schedules
//! (§1, point (iii)) is **adaptability**: the schedule is cheap to compute,
//! so "resource availability variations" can simply be folded into the next
//! period's optimisation. This crate makes that claim executable. Instead
//! of a fixed platform with all flows present at `t = 0`, a [`Scenario`]
//! replays a timeline of
//!
//! * **workload events** — divisible-load job arrivals with sizes and
//!   weights, drawn from seeded arrival processes ([`ArrivalProcess`]:
//!   Poisson and bursty on/off) or loaded from a serde-JSON trace file
//!   ([`Scenario::from_json`]); and
//! * **platform events** — cluster churn ([`PlatformChange::ClusterLeave`]
//!   / [`PlatformChange::ClusterJoin`]), local- and backbone-bandwidth
//!   drift (the [`dls_core::adaptive`] random walk, lowered to explicit
//!   events by [`drift_events`]), and connection-cap changes —
//!
//! through the live simulation core ([`dls_sim::LiveSim`], the dirty-set
//! incremental engine grown in PR 2) while a pluggable
//! [`ReschedulePolicy`] decides, period by period, whether to fold the
//! observed changes into a fresh Eq. 7 allocation:
//!
//! * [`PeriodicResolve`] — re-solve each epoch; with [`Resolver::warm`]
//!   the LPRG relaxation is *warm-started* (PR 3's [`dls_lp::WarmSimplex`]
//!   patched with platform deltas) so a re-solve costs a handful of dual
//!   pivots;
//! * [`ThresholdTriggered`] — re-solve only when observed throughput
//!   degrades past a bound;
//! * [`StaleScale`] — the paper's stale baseline, shrinking the epoch-0
//!   allocation uniformly via [`dls_core::adaptive::scale_to_fit`].
//!
//! [`run_scenario`] executes the timeline and produces a
//! [`ScenarioReport`]: per-job response times, makespan, achieved vs.
//! allocated steady-state throughput, and reschedule counts/costs. The
//! [`catalog`] module names reproducible scenario families (`steady`,
//! `bursty`, `drift`, `churn`, `flash`) shared by the experiment sweep
//! (`dls-experiments`), the perf harness (`dls-bench`, emitting
//! `BENCH_scenario.json`), the `dls-cli scenario` subcommand, and
//! `examples/online_arrivals.rs`.

pub mod catalog;
pub mod engine;
pub mod events;
pub mod policy;
pub mod recovery;
pub mod report;

pub use catalog::{build as build_catalog_entry, catalog, CatalogEntry};
pub use engine::{
    resume_scenario, run_scenario, run_scenario_resumable, ResumableRun, ScenarioConfig,
    ScenarioError, ScenarioSession, ScenarioSnapshot, SCENARIO_SNAPSHOT_VERSION,
};
pub use events::{drift_events, ArrivalProcess, JobSpec, PlatformChange, PlatformEvent, Scenario};
pub use policy::{
    PeriodicResolve, PolicyCtx, PolicyState, RecoveryLevel, ReschedulePolicy, Resolver, StaleScale,
    ThresholdTriggered, WarmLprg,
};
pub use recovery::{recoverable, RecoveryLadder};
pub use report::{
    FaultKind, FaultRecord, JobOutcome, RecoveryRecord, RecoveryRung, ScenarioReport,
    UnschedulableEntry,
};

// The drift machinery this crate absorbs as one of its event sources,
// re-exported so downstream users need only one import.
pub use dls_core::adaptive::{scale_to_fit, DriftConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use dls_sim::SimEngine;

    #[test]
    fn steady_scenario_completes_all_jobs_under_periodic_warm() {
        let (inst, scenario) = build_catalog_entry("steady", 5, 17).unwrap();
        let mut policy = PeriodicResolve::new(Resolver::warm(&inst).unwrap());
        let report = run_scenario(
            &inst,
            &scenario,
            &mut policy,
            &ScenarioConfig {
                oracle_check: true,
                ..ScenarioConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.completed_jobs, report.jobs, "{}", report.summary());
        assert!(report.makespan > 0.0);
        assert!(report.mean_response > 0.0);
        assert!(report.reschedules > 0);
        assert!(report.connection_caps_respected);
        assert!(
            (report.completed_work - report.offered_work).abs() < 1e-6 * report.offered_work,
            "work lost: {} of {}",
            report.completed_work,
            report.offered_work
        );
    }

    #[test]
    fn incremental_and_full_engines_agree_on_reports() {
        for entry in ["steady", "drift", "churn"] {
            let (inst, scenario) = build_catalog_entry(entry, 5, 23).unwrap();
            let mut pa = PeriodicResolve::new(Resolver::Cold);
            let mut pb = PeriodicResolve::new(Resolver::Cold);
            let fast = run_scenario(
                &inst,
                &scenario,
                &mut pa,
                &ScenarioConfig {
                    oracle_check: true,
                    ..ScenarioConfig::default()
                },
            )
            .unwrap();
            let slow = run_scenario(
                &inst,
                &scenario,
                &mut pb,
                &ScenarioConfig {
                    engine: SimEngine::FullRecompute,
                    record_events: true,
                    ..ScenarioConfig::default()
                },
            )
            .unwrap();
            assert!(
                fast.agrees_with(&slow, 1e-6),
                "{entry}: engines diverged:\n{}\n{}",
                fast.summary(),
                slow.summary()
            );
            // Report-level agreement is necessary but coarse; the event
            // streams must match event for event, and a mismatch must name
            // the first offending event.
            assert!(
                !fast.event_trace().is_empty(),
                "{entry}: no events recorded"
            );
            if let Some(d) = fast.first_event_divergence(&slow, 1e-6) {
                panic!("{entry}: engines diverged at {}", d.describe());
            }
        }
    }

    #[test]
    fn drift_scenario_adaptive_beats_stale() {
        let (inst, scenario) = build_catalog_entry("drift", 6, 29).unwrap();
        let mut adaptive = PeriodicResolve::new(Resolver::warm(&inst).unwrap());
        let a = run_scenario(&inst, &scenario, &mut adaptive, &ScenarioConfig::default()).unwrap();
        let mut stale = StaleScale::new(Resolver::Cold);
        let s = run_scenario(&inst, &scenario, &mut stale, &ScenarioConfig::default()).unwrap();
        assert_eq!(a.completed_jobs, a.jobs, "adaptive: {}", a.summary());
        // The stale baseline must not finish faster: re-optimising each
        // epoch can only help (allow float noise).
        assert!(
            a.makespan <= s.makespan + 1e-6 * (1.0 + s.makespan),
            "adaptive {} vs stale {}",
            a.makespan,
            s.makespan
        );
        assert!(a.reschedules >= s.reschedules);
    }

    #[test]
    fn churn_scenario_recovers_in_flight_work() {
        let (inst, scenario) = build_catalog_entry("churn", 5, 31).unwrap();
        let mut policy = PeriodicResolve::new(Resolver::warm(&inst).unwrap());
        let report = run_scenario(
            &inst,
            &scenario,
            &mut policy,
            &ScenarioConfig {
                oracle_check: true,
                ..ScenarioConfig::default()
            },
        )
        .unwrap();
        // Churned clusters rejoin, so everything eventually completes.
        assert_eq!(report.completed_jobs, report.jobs, "{}", report.summary());
    }

    #[test]
    fn rejoin_restores_drift_applied_during_outage() {
        // A cluster that drifts while churned out must rejoin with the
        // drifted capacities — not the scenario-start baseline — and the
        // drift events themselves must not revive it mid-outage. Both are
        // captured by one equivalence: drifting *during* the outage must
        // produce exactly the run where the same drift lands at the rejoin
        // instant.
        let (inst, base) = build_catalog_entry("steady", 4, 53).unwrap();
        let speed = inst.platform.clusters[1].speed * 0.6;
        let bw = inst.platform.clusters[1].local_bw * 0.7;
        let mk = |events: Vec<PlatformEvent>| {
            let mut s = base.clone();
            s.platform_events = events;
            s.normalise();
            s
        };
        let leave = |t: f64| PlatformEvent {
            time: t,
            change: PlatformChange::ClusterLeave { cluster: 1 },
        };
        let join = |t: f64| PlatformEvent {
            time: t,
            change: PlatformChange::ClusterJoin { cluster: 1 },
        };
        let set_speed = |t: f64| PlatformEvent {
            time: t,
            change: PlatformChange::SetSpeed { cluster: 1, speed },
        };
        let set_bw = |t: f64| PlatformEvent {
            time: t,
            change: PlatformChange::SetLocalBw { cluster: 1, bw },
        };
        let during = mk(vec![leave(2.0), set_speed(3.0), set_bw(4.0), join(6.0)]);
        let at_rejoin = mk(vec![leave(2.0), join(6.0), set_speed(6.0), set_bw(6.0)]);
        let cfg = ScenarioConfig {
            oracle_check: true,
            ..ScenarioConfig::default()
        };
        let mut pa = PeriodicResolve::new(Resolver::Cold);
        let mut pb = PeriodicResolve::new(Resolver::Cold);
        let a = run_scenario(&inst, &during, &mut pa, &cfg).unwrap();
        let b = run_scenario(&inst, &at_rejoin, &mut pb, &cfg).unwrap();
        assert!(
            a.agrees_with(&b, 1e-9),
            "outage drift diverged from rejoin-time drift:\n{}\n{}",
            a.summary(),
            b.summary()
        );
        assert_eq!(a.completed_jobs, a.jobs, "{}", a.summary());
    }

    #[test]
    fn threshold_policy_reschedules_less_than_periodic() {
        let (inst, scenario) = build_catalog_entry("drift", 5, 37).unwrap();
        let mut periodic = PeriodicResolve::new(Resolver::Cold);
        let p = run_scenario(&inst, &scenario, &mut periodic, &ScenarioConfig::default()).unwrap();
        let mut threshold = ThresholdTriggered::new(0.5, Resolver::Cold);
        let t = run_scenario(&inst, &scenario, &mut threshold, &ScenarioConfig::default()).unwrap();
        assert!(
            t.reschedules < p.reschedules,
            "threshold {} vs periodic {}",
            t.reschedules,
            p.reschedules
        );
        assert_eq!(t.completed_jobs, t.jobs, "{}", t.summary());
    }

    #[test]
    fn greedy_heuristic_policy_runs_lp_free() {
        let (inst, scenario) = build_catalog_entry("bursty", 4, 41).unwrap();
        let mut policy = PeriodicResolve::new(Resolver::Heuristic(Box::new(
            dls_core::heuristics::Greedy::default(),
        )));
        let report =
            run_scenario(&inst, &scenario, &mut policy, &ScenarioConfig::default()).unwrap();
        assert_eq!(report.completed_jobs, report.jobs, "{}", report.summary());
    }

    #[test]
    fn faulty_scenario_loses_work_then_recovers_it() {
        // Seed 7 places queued compute on the crash victims; crashes on a
        // quiet boundary lose nothing (the periodic budgets size transfers
        // to finish exactly at the boundary), which is correct but not what
        // this test is about.
        let (inst, scenario) = build_catalog_entry("faulty", 5, 7).unwrap();
        let mut policy = PeriodicResolve::new(Resolver::warm(&inst).unwrap());
        let report = run_scenario(
            &inst,
            &scenario,
            &mut policy,
            &ScenarioConfig {
                oracle_check: true,
                ..ScenarioConfig::default()
            },
        )
        .unwrap();
        // Crashed clusters rejoin, so every job still completes — but only
        // because lost load was re-dispatched.
        assert_eq!(report.completed_jobs, report.jobs, "{}", report.summary());
        let faults = report.fault_records();
        assert!(
            faults.iter().any(|f| f.kind == FaultKind::Crash),
            "no crash recorded"
        );
        assert!(
            faults.iter().any(|f| f.kind == FaultKind::Straggler),
            "no straggler recorded"
        );
        assert!(
            report.redispatched_load.unwrap_or(0.0) > 0.0,
            "crashes re-dispatched nothing"
        );
        assert!(
            faults
                .iter()
                .filter(|f| f.kind == FaultKind::Crash)
                .any(|f| f.recovery_latency.is_some()),
            "no crash recovery latency stamped"
        );
    }

    /// A crash under congestion exercises *every* loss channel: a straggler
    /// drags cluster 1's capacity below the stale allocation's demands (the
    /// threshold policy deliberately reacts late), so at the next boundary
    /// transfers are still in flight and the compute queue is backed up —
    /// then the crash loses both, and the re-dispatched load still
    /// completes after the rejoin.
    #[test]
    fn crash_during_congestion_loses_transfers_and_compute() {
        let (inst, mut scenario) = build_catalog_entry("flash", 5, 19).unwrap();
        scenario.platform_events.push(PlatformEvent {
            time: 2.0,
            change: PlatformChange::Straggler {
                cluster: 1,
                factor: 0.05,
                until: 6.0,
            },
        });
        scenario.platform_events.push(PlatformEvent {
            time: 3.0,
            change: PlatformChange::ClusterCrash { cluster: 1 },
        });
        scenario.platform_events.push(PlatformEvent {
            time: 6.0,
            change: PlatformChange::ClusterJoin { cluster: 1 },
        });
        scenario.normalise();
        let mut policy = ThresholdTriggered::new(0.5, Resolver::Cold);
        let report =
            run_scenario(&inst, &scenario, &mut policy, &ScenarioConfig::default()).unwrap();
        assert_eq!(report.completed_jobs, report.jobs, "{}", report.summary());
        let crash = report
            .fault_records()
            .iter()
            .find(|f| f.kind == FaultKind::Crash)
            .cloned()
            .expect("crash recorded");
        assert!(crash.lost_transfer > 0.0, "no in-flight transfer lost");
        assert!(crash.lost_compute > 0.0, "no queued compute lost");
        assert!(
            crash.redispatched >= crash.lost_transfer,
            "re-dispatch must cover at least the lost transfers"
        );
        assert_eq!(crash.recovery_latency, Some(1.0), "{crash:?}");
        // The report totals mirror the per-fault records.
        assert_eq!(report.lost_transfer, Some(crash.lost_transfer));
        assert_eq!(report.lost_compute, Some(crash.lost_compute));
    }

    #[test]
    fn fault_scenarios_keep_engines_in_agreement() {
        for entry in ["faulty", "partition"] {
            let (inst, scenario) = build_catalog_entry(entry, 5, 43).unwrap();
            let mut pa = PeriodicResolve::new(Resolver::Cold);
            let mut pb = PeriodicResolve::new(Resolver::Cold);
            let fast = run_scenario(
                &inst,
                &scenario,
                &mut pa,
                &ScenarioConfig {
                    oracle_check: true,
                    ..ScenarioConfig::default()
                },
            )
            .unwrap();
            let slow = run_scenario(
                &inst,
                &scenario,
                &mut pb,
                &ScenarioConfig {
                    engine: SimEngine::FullRecompute,
                    record_events: true,
                    ..ScenarioConfig::default()
                },
            )
            .unwrap();
            assert!(
                fast.agrees_with(&slow, 1e-6),
                "{entry}: engines diverged:\n{}\n{}",
                fast.summary(),
                slow.summary()
            );
            if let Some(d) = fast.first_event_divergence(&slow, 1e-6) {
                panic!("{entry}: engines diverged at {}", d.describe());
            }
        }
    }

    #[test]
    fn partition_stalls_cross_cut_flows_until_heal() {
        // Split cluster 0 away from everyone for a while: work still
        // completes after the heal, and the partition is on the fault log.
        let (inst, base) = build_catalog_entry("steady", 4, 59).unwrap();
        let mut scenario = base.clone();
        scenario.platform_events = vec![PlatformEvent {
            time: 3.0,
            change: PlatformChange::BackbonePartition {
                groups: vec![vec![0], vec![1, 2, 3]],
                until: 8.0,
            },
        }];
        scenario.normalise();
        let mut policy = PeriodicResolve::new(Resolver::warm(&inst).unwrap());
        let report = run_scenario(
            &inst,
            &scenario,
            &mut policy,
            &ScenarioConfig {
                oracle_check: true,
                ..ScenarioConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.completed_jobs, report.jobs, "{}", report.summary());
        assert!(report
            .fault_records()
            .iter()
            .any(|f| f.kind == FaultKind::Partition));
        // Nothing is lost by a partition — flows stall, they don't die.
        assert!(report.lost_transfer.unwrap_or(0.0) == 0.0);
        assert!(report.lost_compute.unwrap_or(0.0) == 0.0);
    }

    #[test]
    fn permanent_crash_marks_jobs_unschedulable_instead_of_draining() {
        let (inst, base) = build_catalog_entry("steady", 4, 61).unwrap();
        let mut scenario = base.clone();
        // Cluster 2 crashes at t = 2 and never comes back.
        scenario.platform_events = vec![PlatformEvent {
            time: 2.0,
            change: PlatformChange::ClusterCrash { cluster: 2 },
        }];
        scenario.normalise();
        let mut policy = PeriodicResolve::new(Resolver::Cold);
        let cfg = ScenarioConfig::default();
        let report = run_scenario(&inst, &scenario, &mut policy, &cfg).unwrap();
        let stranded = report.unschedulable_entries();
        assert!(
            !stranded.is_empty(),
            "no job was homed at the dead cluster: {}",
            report.summary()
        );
        assert_eq!(
            report.completed_jobs + stranded.len(),
            report.jobs,
            "{}",
            report.summary()
        );
        // The run must stop once everything else drains — far short of the
        // drain-cap horizon the old engine looped to.
        let last_arrival_period = (scenario.last_arrival() / scenario.period).ceil() as usize;
        assert!(
            report.periods < last_arrival_period + cfg.drain_periods / 4,
            "drained to the horizon: {} periods",
            report.periods
        );
        for e in stranded {
            assert!(report.per_job[e.job as usize].completed.is_none());
            assert!(e.reason.contains("cluster 2"), "{}", e.reason);
        }
    }

    #[test]
    fn policy_failures_surface_with_scenario_context() {
        let (inst, scenario) = build_catalog_entry("steady", 4, 67).unwrap();
        let mut policy = PeriodicResolve::new(Resolver::warm(&inst).unwrap());
        // A fault the ladder is NOT wrapping: surfaces with context.
        policy
            .resolver_mut()
            .warm_mut()
            .unwrap()
            .debug_inject_fault(dls_lp::InjectedFault::Solve(
                dls_lp::LpError::NumericalBreakdown("injected"),
            ));
        let err = run_scenario(&inst, &scenario, &mut policy, &ScenarioConfig::default())
            .expect_err("injected fault must surface");
        match &err {
            ScenarioError::Policy {
                epoch,
                time,
                policy,
                source,
            } => {
                assert_eq!(*time, *epoch as f64 * scenario.period);
                assert!(policy.contains("warm"), "{policy}");
                assert!(matches!(
                    source,
                    dls_core::SolveError::Lp(dls_lp::LpError::NumericalBreakdown(_))
                ));
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("failed at epoch"), "{err}");
    }

    #[test]
    fn recovery_ladder_rescues_injected_solver_faults() {
        let (inst, scenario) = build_catalog_entry("steady", 4, 71).unwrap();
        let mut policy = RecoveryLadder::new(PeriodicResolve::new(Resolver::warm(&inst).unwrap()));
        policy
            .inner_mut()
            .resolver_mut()
            .warm_mut()
            .unwrap()
            .debug_inject_fault(dls_lp::InjectedFault::Solve(
                dls_lp::LpError::NumericalBreakdown("injected"),
            ));
        let report = run_scenario(&inst, &scenario, &mut policy, &ScenarioConfig::default())
            .expect("the ladder absorbs the injected fault");
        assert_eq!(report.completed_jobs, report.jobs, "{}", report.summary());
        let recs = report.recovery_records();
        assert_eq!(recs.len(), 1, "{recs:?}");
        assert_eq!(recs[0].rung, RecoveryRung::Refactor);
        assert!(recs[0].error.contains("injected"), "{}", recs[0].error);
    }

    #[test]
    fn snapshot_restore_replays_bit_identically() {
        for engine in [SimEngine::Incremental, SimEngine::FullRecompute] {
            let (inst, scenario) = build_catalog_entry("faulty", 4, 73).unwrap();
            let cfg = ScenarioConfig {
                engine,
                record_events: true,
                ..ScenarioConfig::default()
            };
            let mut uninterrupted = PeriodicResolve::new(Resolver::Cold);
            let mut full = run_scenario(&inst, &scenario, &mut uninterrupted, &cfg).unwrap();
            let mut first = PeriodicResolve::new(Resolver::Cold);
            let snap = match run_scenario_resumable(&inst, &scenario, &mut first, &cfg, Some(7))
                .unwrap()
            {
                ResumableRun::Interrupted(snap) => snap,
                ResumableRun::Finished(_) => panic!("run finished before epoch 7"),
            };
            // The snapshot survives a JSON round trip bit-exactly.
            let snap = ScenarioSnapshot::from_json(&snap.to_json()).unwrap();
            let mut second = PeriodicResolve::new(Resolver::Cold);
            let mut resumed = resume_scenario(&inst, &scenario, &mut second, &cfg, &snap).unwrap();
            // Bit-identical up to the wall-clock-only reschedule_ms field.
            full.reschedule_ms = 0.0;
            resumed.reschedule_ms = 0.0;
            assert_eq!(
                full.to_json(),
                resumed.to_json(),
                "{engine:?}: resumed run diverged"
            );
        }
    }

    #[test]
    fn snapshot_rejects_version_and_scenario_skew() {
        let (inst, scenario) = build_catalog_entry("steady", 4, 79).unwrap();
        let cfg = ScenarioConfig::default();
        let mut p = PeriodicResolve::new(Resolver::Cold);
        let snap = match run_scenario_resumable(&inst, &scenario, &mut p, &cfg, Some(3)).unwrap() {
            ResumableRun::Interrupted(snap) => *snap,
            ResumableRun::Finished(_) => panic!("run finished before epoch 3"),
        };
        let mut wrong_version = snap.clone();
        wrong_version.version += 1;
        let mut q = PeriodicResolve::new(Resolver::Cold);
        assert!(matches!(
            resume_scenario(&inst, &scenario, &mut q, &cfg, &wrong_version),
            Err(ScenarioError::Snapshot(_))
        ));
        let (inst2, scenario2) = build_catalog_entry("drift", 4, 79).unwrap();
        assert!(matches!(
            resume_scenario(&inst2, &scenario2, &mut q, &cfg, &snap),
            Err(ScenarioError::Snapshot(_))
        ));
    }

    #[test]
    fn snapshot_json_version_skew_is_a_clear_error() {
        let (inst, scenario) = build_catalog_entry("steady", 4, 101).unwrap();
        let cfg = ScenarioConfig::default();
        let mut p = PeriodicResolve::new(Resolver::Cold);
        let snap = match run_scenario_resumable(&inst, &scenario, &mut p, &cfg, Some(3)).unwrap() {
            ResumableRun::Interrupted(snap) => snap,
            ResumableRun::Finished(_) => panic!("run finished before epoch 3"),
        };
        let bumped = snap
            .to_json()
            .replacen("\"version\":1", "\"version\":99", 1);
        assert_ne!(bumped, snap.to_json(), "version field not found to bump");
        match ScenarioSnapshot::from_json(&bumped) {
            Err(ScenarioError::Snapshot(msg)) => {
                assert!(
                    msg.contains("schema version 99"),
                    "unhelpful message: {msg}"
                );
                assert!(
                    msg.contains(&SCENARIO_SNAPSHOT_VERSION.to_string()),
                    "message does not name the supported version: {msg}"
                );
            }
            other => panic!("expected a snapshot error, got {other:?}"),
        }
        match ScenarioSnapshot::from_json("{\"not\": \"a snapshot\"}") {
            Err(ScenarioError::Snapshot(msg)) => {
                assert!(msg.contains("version"), "unhelpful message: {msg}");
            }
            other => panic!("expected a snapshot error, got {other:?}"),
        }
    }

    #[test]
    fn session_fed_just_in_time_matches_full_trace_run() {
        for entry in ["bursty", "faulty"] {
            let (inst, scenario) = build_catalog_entry(entry, 4, 91).unwrap();
            let cfg = ScenarioConfig {
                record_events: true,
                ..ScenarioConfig::default()
            };
            let mut pref = PeriodicResolve::new(Resolver::Cold);
            let mut full = run_scenario(&inst, &scenario, &mut pref, &cfg).unwrap();

            // Session starts with the platform-event timeline but *no*
            // jobs: each job is pushed only just before its due boundary,
            // the way a daemon learns of submissions.
            let mut base = scenario.clone();
            let jobs = std::mem::take(&mut base.jobs);
            let mut session = ScenarioSession::new(&inst, base, cfg.clone());
            let mut policy = PeriodicResolve::new(Resolver::Cold);
            let eps = 1e-9 * scenario.period;
            let mut fed = 0;
            while fed < jobs.len() || !session.is_done() {
                if session.is_done() {
                    // The run went idle before this arrival was known:
                    // feeding it re-opens the session.
                    session.push_jobs(&[jobs[fed]]).unwrap();
                    fed += 1;
                    continue;
                }
                let t_next = session.epoch() as f64 * scenario.period + eps;
                while fed < jobs.len() && jobs[fed].arrival <= t_next {
                    session.push_jobs(&[jobs[fed]]).unwrap();
                    fed += 1;
                }
                session.step(&mut policy).unwrap();
            }
            // The merged timeline equals the original scenario...
            assert_eq!(session.scenario().jobs, scenario.jobs, "{entry}");
            // ...and the run bit-agrees with the full-trace replay.
            let mut report = session.into_report(&mut policy);
            full.reschedule_ms = 0.0;
            report.reschedule_ms = 0.0;
            assert_eq!(
                full.to_json(),
                report.to_json(),
                "{entry}: session run diverged from the full-trace run"
            );
        }
    }

    #[test]
    fn session_rejects_inadmissible_pushes() {
        let (inst, scenario) = build_catalog_entry("steady", 4, 103).unwrap();
        let mut session = ScenarioSession::new(&inst, scenario.clone(), ScenarioConfig::default());
        let mut policy = PeriodicResolve::new(Resolver::Cold);
        for _ in 0..3 {
            assert!(!session.step(&mut policy).unwrap());
        }
        let tp = scenario.period;
        // A job at an already-scanned boundary is refused...
        let past = JobSpec {
            arrival: tp,
            origin: 0,
            size: 10.0,
            weight: 1.0,
        };
        assert!(matches!(
            session.push_jobs(&[past]),
            Err(ScenarioError::Admission(_))
        ));
        // ...as is one aimed at a cluster the platform doesn't have...
        let bad_origin = JobSpec {
            arrival: 10.0 * tp,
            origin: 99,
            size: 10.0,
            weight: 1.0,
        };
        assert!(matches!(
            session.push_jobs(&[bad_origin]),
            Err(ScenarioError::Admission(_))
        ));
        // ...and a platform event in the executed past.
        let ev = PlatformEvent {
            time: tp,
            change: PlatformChange::SetSpeed {
                cluster: 0,
                speed: 120.0,
            },
        };
        assert!(matches!(
            session.push_platform_event(ev),
            Err(ScenarioError::Admission(_))
        ));
        // Future admissions are accepted and the session still finishes.
        session
            .push_jobs(&[JobSpec {
                arrival: 10.0 * tp,
                origin: 0,
                size: 25.0,
                weight: 1.0,
            }])
            .unwrap();
        session
            .push_platform_event(PlatformEvent {
                time: 11.0 * tp,
                change: PlatformChange::SetSpeed {
                    cluster: 0,
                    speed: 120.0,
                },
            })
            .unwrap();
        session.run_to_end(&mut policy).unwrap();
        let report = session.into_report(&mut policy);
        assert_eq!(report.completed_jobs, report.jobs, "{}", report.summary());
    }

    #[test]
    fn warm_policy_state_survives_snapshot_restore() {
        let (inst, scenario) = build_catalog_entry("steady", 4, 83).unwrap();
        let cfg = ScenarioConfig::default();
        let mut first = PeriodicResolve::new(Resolver::warm(&inst).unwrap());
        let snap =
            match run_scenario_resumable(&inst, &scenario, &mut first, &cfg, Some(5)).unwrap() {
                ResumableRun::Interrupted(snap) => snap,
                ResumableRun::Finished(_) => panic!("run finished before epoch 5"),
            };
        let mut second = PeriodicResolve::new(Resolver::warm(&inst).unwrap());
        let resumed = resume_scenario(&inst, &scenario, &mut second, &cfg, &snap).unwrap();
        assert_eq!(
            resumed.completed_jobs,
            resumed.jobs,
            "{}",
            resumed.summary()
        );
        // The imported basis lets the resumed run's very first resolve go
        // warm: its context never pays a from-scratch cold solve.
        let stats = second.resolver_mut().warm_mut().unwrap().stats();
        assert!(stats.solves > 0);
        assert_eq!(
            stats.cold_solves, 0,
            "resumed warm context fell back cold: {stats:?}"
        );
    }
}
