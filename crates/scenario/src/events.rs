//! Scenario timelines: workload events (job arrivals) and platform events
//! (churn, capacity drift, connection-cap changes).
//!
//! A [`Scenario`] is a fully materialised, serialisable timeline — either
//! generated from a seeded [`ArrivalProcess`] (plus optionally
//! [`drift_events`] for platform dynamics) or loaded from a JSON trace file
//! ([`Scenario::from_json`]). The scenario engine replays it against a
//! [`dls_core::ProblemInstance`] under a pluggable rescheduling policy.

use dls_core::adaptive::DriftConfig;
use dls_platform::Platform;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One divisible-load job: `size` load units of the application homed at
/// cluster `origin`, arriving at `arrival`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Arrival time.
    pub arrival: f64,
    /// Home cluster of the job's application (`C^k`).
    pub origin: u32,
    /// Load units to process.
    pub size: f64,
    /// Relative worth (reserved for payoff-weighted metrics; `1.0` for
    /// generated workloads).
    pub weight: f64,
}

/// What a platform event does when it fires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlatformChange {
    /// Set a cluster's cumulated compute speed `s_k`.
    SetSpeed {
        /// Target cluster.
        cluster: u32,
        /// New speed.
        speed: f64,
    },
    /// Set a cluster's local-link capacity `g_k`.
    SetLocalBw {
        /// Target cluster.
        cluster: u32,
        /// New capacity.
        bw: f64,
    },
    /// Set a backbone link's per-connection bandwidth `bw(l)`.
    ///
    /// Connection-oriented semantics: connections already open keep the
    /// bandwidth they were granted at open time until their transfer
    /// completes (the §2 model grants `bw(l)` per connection, not per
    /// instant); the change applies to flows spawned afterwards.
    SetBackboneBw {
        /// Target backbone link index.
        link: u32,
        /// New per-connection bandwidth.
        bw: f64,
    },
    /// Set a backbone link's connection cap `max-connect(l)`.
    SetMaxConnections {
        /// Target backbone link index.
        link: u32,
        /// New connection cap.
        max: u32,
    },
    /// A cluster churns out: speed and local link drop to zero, in-flight
    /// transfers touching it are retired (their payload re-queued at the
    /// source application).
    ClusterLeave {
        /// Departing cluster.
        cluster: u32,
    },
    /// A churned-out cluster rejoins with its original speed and local
    /// link.
    ClusterJoin {
        /// Returning cluster.
        cluster: u32,
    },
    /// A cluster crashes: unlike the graceful [`PlatformChange::ClusterLeave`],
    /// in-flight transfers touching it and compute queued on it are *lost*
    /// — transfer progress and partial compute results are discarded, the
    /// unfinished load returns to the pending pool, and it is re-dispatched
    /// on the next resolve. A later [`PlatformChange::ClusterJoin`] brings
    /// the cluster back (empty-handed).
    ClusterCrash {
        /// Crashing cluster.
        cluster: u32,
    },
    /// A backbone partition: clusters listed in different `groups` cannot
    /// exchange data until `until`. Flows crossing the cut stall at zero
    /// rate (they are *not* killed — progress resumes at heal), and no new
    /// cross-cut flow is spawned while the partition holds. Clusters not
    /// listed in any group are unaffected.
    BackbonePartition {
        /// The partition's sides (disjoint, non-empty cluster-index sets;
        /// at least two).
        groups: Vec<Vec<u32>>,
        /// Heal time (absolute; must not precede the event).
        until: f64,
    },
    /// A straggler window: the cluster's compute speed and local link are
    /// multiplied by `factor` (in `(0, 1]` for degradation) until `until`,
    /// then restored to their drift-tracked values.
    Straggler {
        /// Degraded cluster.
        cluster: u32,
        /// Multiplicative speed/bandwidth factor.
        factor: f64,
        /// Restore time (absolute; must not precede the event).
        until: f64,
    },
}

/// A timed platform event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformEvent {
    /// When the event fires.
    pub time: f64,
    /// What it does.
    pub change: PlatformChange,
}

/// A complete scenario: the replayable timeline the engine executes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable name (catalog entry or trace file stem).
    pub name: String,
    /// Control-period length: arrivals/platform events take effect and the
    /// policy runs at multiples of this.
    pub period: f64,
    /// Jobs, sorted by arrival time.
    pub jobs: Vec<JobSpec>,
    /// Platform events, sorted by time.
    pub platform_events: Vec<PlatformEvent>,
}

impl Scenario {
    /// Serialises the scenario to pretty JSON (the trace-file format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario serialisation cannot fail")
    }

    /// Parses a scenario from JSON and validates it against a platform.
    pub fn from_json(s: &str, platform: &Platform) -> Result<Self, String> {
        let mut sc: Scenario = serde_json::from_str(s).map_err(|e| e.to_string())?;
        sc.normalise();
        sc.validate(platform)?;
        Ok(sc)
    }

    /// Sorts jobs and platform events by time (the engine requires it).
    pub fn normalise(&mut self) {
        self.jobs.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
        self.platform_events
            .sort_by(|a, b| a.time.total_cmp(&b.time));
    }

    /// Checks indices and numeric sanity against a platform.
    pub fn validate(&self, platform: &Platform) -> Result<(), String> {
        if !(self.period.is_finite() && self.period > 0.0) {
            return Err(format!("period must be positive, got {}", self.period));
        }
        let k = platform.num_clusters() as u32;
        let links = platform.links.len() as u32;
        for (i, j) in self.jobs.iter().enumerate() {
            if j.origin >= k {
                return Err(format!(
                    "job {i} originates at unknown cluster {}",
                    j.origin
                ));
            }
            if !(j.size.is_finite() && j.size > 0.0) {
                return Err(format!("job {i} has a non-positive size {}", j.size));
            }
            if !(j.arrival.is_finite() && j.arrival >= 0.0) {
                return Err(format!("job {i} has a bad arrival time {}", j.arrival));
            }
        }
        for (i, e) in self.platform_events.iter().enumerate() {
            if !(e.time.is_finite() && e.time >= 0.0) {
                return Err(format!("platform event {i} has a bad time {}", e.time));
            }
            let (cluster, link, value) = match &e.change {
                PlatformChange::SetSpeed { cluster, speed } => (Some(*cluster), None, *speed),
                PlatformChange::SetLocalBw { cluster, bw } => (Some(*cluster), None, *bw),
                PlatformChange::SetBackboneBw { link, bw } => (None, Some(*link), *bw),
                PlatformChange::SetMaxConnections { link, max } => (None, Some(*link), *max as f64),
                PlatformChange::ClusterLeave { cluster }
                | PlatformChange::ClusterJoin { cluster }
                | PlatformChange::ClusterCrash { cluster } => (Some(*cluster), None, 0.0),
                PlatformChange::BackbonePartition { groups, until } => {
                    if groups.len() < 2 {
                        return Err(format!(
                            "platform event {i} partitions into fewer than two groups"
                        ));
                    }
                    let mut seen = std::collections::HashSet::new();
                    for g in groups {
                        if g.is_empty() {
                            return Err(format!("platform event {i} has an empty partition group"));
                        }
                        for &c in g {
                            if c >= k {
                                return Err(format!(
                                    "platform event {i} partitions unknown cluster {c}"
                                ));
                            }
                            if !seen.insert(c) {
                                return Err(format!(
                                    "platform event {i} lists cluster {c} in two partition groups"
                                ));
                            }
                        }
                    }
                    if !(until.is_finite() && *until >= e.time) {
                        return Err(format!(
                            "platform event {i} has a bad partition heal time {until}"
                        ));
                    }
                    (None, None, 0.0)
                }
                PlatformChange::Straggler {
                    cluster,
                    factor,
                    until,
                } => {
                    if !(factor.is_finite() && *factor > 0.0) {
                        return Err(format!(
                            "platform event {i} has a bad straggler factor {factor}"
                        ));
                    }
                    if !(until.is_finite() && *until >= e.time) {
                        return Err(format!(
                            "platform event {i} has a bad straggler end time {until}"
                        ));
                    }
                    (Some(*cluster), None, 0.0)
                }
            };
            if let Some(c) = cluster {
                if c >= k {
                    return Err(format!("platform event {i} targets unknown cluster {c}"));
                }
            }
            if let Some(l) = link {
                if l >= links {
                    return Err(format!("platform event {i} targets unknown link {l}"));
                }
            }
            if !(value.is_finite() && value >= 0.0) {
                return Err(format!("platform event {i} carries a bad value {value}"));
            }
        }
        Ok(())
    }

    /// Total offered work, `Σ size`.
    pub fn offered_work(&self) -> f64 {
        self.jobs.iter().map(|j| j.size).sum()
    }

    /// Latest job arrival (0 for an empty workload).
    pub fn last_arrival(&self) -> f64 {
        self.jobs.iter().fold(0.0f64, |a, j| a.max(j.arrival))
    }
}

/// Seeded stochastic workload generators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals at `rate` jobs per time unit, sizes uniform in
    /// `[0.5, 1.5] · mean_size`, origins uniform over clusters.
    Poisson {
        /// Mean arrivals per time unit.
        rate: f64,
        /// Mean job size (load units).
        mean_size: f64,
    },
    /// Bursty on/off arrivals: Poisson at `rate` during on-windows of
    /// length `on_len`, silent during off-windows of length `off_len`.
    OnOff {
        /// Mean arrivals per time unit while on.
        rate: f64,
        /// Mean job size (load units).
        mean_size: f64,
        /// On-window length.
        on_len: f64,
        /// Off-window length.
        off_len: f64,
    },
}

impl ArrivalProcess {
    /// Generates the jobs arriving in `[0, horizon)` for a `k`-cluster
    /// platform, deterministically from `seed`.
    pub fn generate(&self, horizon: f64, k: usize, seed: u64) -> Vec<JobSpec> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut jobs = Vec::new();
        let (rate, mean_size) = match *self {
            ArrivalProcess::Poisson { rate, mean_size } => (rate, mean_size),
            ArrivalProcess::OnOff {
                rate, mean_size, ..
            } => (rate, mean_size),
        };
        if rate <= 0.0 || mean_size <= 0.0 {
            return jobs;
        }
        let mut t = 0.0f64;
        loop {
            // Exponential inter-arrival via inverse transform.
            let u: f64 = rng.gen_range(1e-12..1.0);
            t += -u.ln() / rate;
            if t >= horizon {
                break;
            }
            let arrival = match *self {
                ArrivalProcess::Poisson { .. } => t,
                ArrivalProcess::OnOff {
                    on_len, off_len, ..
                } => {
                    // Thin the homogeneous stream down to the on-windows by
                    // folding time into the on/off cycle: arrivals landing
                    // in an off-window are dropped.
                    let cycle = on_len + off_len;
                    if cycle <= 0.0 || t.rem_euclid(cycle) < on_len {
                        t
                    } else {
                        continue;
                    }
                }
            };
            jobs.push(JobSpec {
                arrival,
                origin: rng.gen_range(0..k as u32),
                size: mean_size * rng.gen_range(0.5..1.5),
                weight: 1.0,
            });
        }
        jobs
    }
}

/// Lowers the multiplicative random-walk drift of
/// [`dls_core::adaptive::DriftConfig`] into an explicit platform-event
/// timeline: one epoch per control period, each epoch drifting every
/// cluster speed, local link, and backbone bandwidth exactly like
/// [`dls_core::adaptive::run_adaptive`] does (same clamping band, same
/// per-capacity walk), but emitted as replayable [`PlatformEvent`]s so the
/// *online* engine — not an offline epoch comparison — absorbs them.
pub fn drift_events(platform: &Platform, cfg: &DriftConfig, period: f64) -> Vec<PlatformEvent> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut events = Vec::new();
    let mut speeds: Vec<f64> = platform.clusters.iter().map(|c| c.speed).collect();
    let mut local: Vec<f64> = platform.clusters.iter().map(|c| c.local_bw).collect();
    let mut backbone: Vec<f64> = platform.links.iter().map(|l| l.bw_per_connection).collect();
    let originals = (speeds.clone(), local.clone(), backbone.clone());

    let drift = |rng: &mut ChaCha8Rng, value: f64, spread: f64, orig: f64| -> f64 {
        let next = if spread <= 0.0 {
            value
        } else {
            value * rng.gen_range(1.0 - spread..1.0 + spread)
        };
        next.clamp(orig * cfg.floor_fraction, orig * cfg.ceil_fraction)
    };

    for epoch in 1..cfg.epochs.max(1) {
        let time = epoch as f64 * period;
        for (c, speed) in speeds.iter_mut().enumerate() {
            *speed = drift(&mut rng, *speed, cfg.speed_drift, originals.0[c]);
            events.push(PlatformEvent {
                time,
                change: PlatformChange::SetSpeed {
                    cluster: c as u32,
                    speed: *speed,
                },
            });
        }
        for (c, bw) in local.iter_mut().enumerate() {
            *bw = drift(&mut rng, *bw, cfg.local_bw_drift, originals.1[c]);
            events.push(PlatformEvent {
                time,
                change: PlatformChange::SetLocalBw {
                    cluster: c as u32,
                    bw: *bw,
                },
            });
        }
        for (l, bw) in backbone.iter_mut().enumerate() {
            *bw = drift(&mut rng, *bw, cfg.backbone_bw_drift, originals.2[l]);
            events.push(PlatformEvent {
                time,
                change: PlatformChange::SetBackboneBw {
                    link: l as u32,
                    bw: *bw,
                },
            });
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_platform::PlatformBuilder;

    fn platform() -> Platform {
        let mut b = PlatformBuilder::new();
        let c0 = b.add_cluster(100.0, 20.0);
        let c1 = b.add_cluster(50.0, 30.0);
        b.connect_clusters(c0, c1, 10.0, 2);
        b.build().unwrap()
    }

    #[test]
    fn poisson_generation_is_deterministic_and_in_range() {
        let p = ArrivalProcess::Poisson {
            rate: 2.0,
            mean_size: 10.0,
        };
        let a = p.generate(50.0, 4, 7);
        let b = p.generate(50.0, 4, 7);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for j in &a {
            assert!(j.arrival >= 0.0 && j.arrival < 50.0);
            assert!(j.origin < 4);
            assert!(j.size >= 5.0 && j.size <= 15.0);
        }
        // Expect roughly rate · horizon arrivals.
        assert!(a.len() > 50 && a.len() < 200, "{}", a.len());
    }

    #[test]
    fn onoff_keeps_only_on_window_arrivals() {
        let p = ArrivalProcess::OnOff {
            rate: 5.0,
            mean_size: 4.0,
            on_len: 2.0,
            off_len: 8.0,
        };
        let jobs = p.generate(100.0, 3, 1);
        assert!(!jobs.is_empty());
        for j in &jobs {
            assert!(
                j.arrival.rem_euclid(10.0) < 2.0,
                "off-window arrival {}",
                j.arrival
            );
        }
    }

    #[test]
    fn scenario_json_round_trip() {
        let p = platform();
        let mut sc = Scenario {
            name: "t".into(),
            period: 1.0,
            jobs: vec![JobSpec {
                arrival: 0.5,
                origin: 1,
                size: 12.0,
                weight: 1.0,
            }],
            platform_events: vec![PlatformEvent {
                time: 2.0,
                change: PlatformChange::ClusterLeave { cluster: 0 },
            }],
        };
        sc.normalise();
        let json = sc.to_json();
        let back = Scenario::from_json(&json, &p).unwrap();
        assert_eq!(back.jobs, sc.jobs);
        assert_eq!(back.platform_events, sc.platform_events);
    }

    #[test]
    fn validation_rejects_bad_targets() {
        let p = platform();
        let sc = Scenario {
            name: "bad".into(),
            period: 1.0,
            jobs: vec![JobSpec {
                arrival: 0.0,
                origin: 9,
                size: 1.0,
                weight: 1.0,
            }],
            platform_events: vec![],
        };
        assert!(sc.validate(&p).is_err());
        let sc = Scenario {
            name: "bad".into(),
            period: 0.0,
            jobs: vec![],
            platform_events: vec![],
        };
        assert!(sc.validate(&p).is_err());
    }

    #[test]
    fn drift_events_cover_every_capacity_each_epoch() {
        let p = platform();
        let cfg = DriftConfig {
            epochs: 4,
            seed: 3,
            ..DriftConfig::default()
        };
        let events = drift_events(&p, &cfg, 2.0);
        // 3 drifting epochs × (2 speeds + 2 locals + 1 backbone).
        assert_eq!(events.len(), 3 * 5);
        for e in &events {
            assert!(e.time >= 2.0 - 1e-12);
            let v = match &e.change {
                PlatformChange::SetSpeed { speed, .. } => *speed,
                PlatformChange::SetLocalBw { bw, .. } => *bw,
                PlatformChange::SetBackboneBw { bw, .. } => *bw,
                _ => panic!("unexpected event kind"),
            };
            assert!(v > 0.0);
        }
        // Deterministic.
        assert_eq!(events, drift_events(&p, &cfg, 2.0));
    }
}
