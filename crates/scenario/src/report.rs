//! Scenario outcome reporting.

use dls_sim::{EventDivergence, EventRecord};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Outcome of one job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Index into the scenario's job list.
    pub job: u32,
    /// Home cluster.
    pub origin: u32,
    /// Arrival time.
    pub arrival: f64,
    /// Load units.
    pub size: f64,
    /// Completion time (`None` when the scenario ended first).
    pub completed: Option<f64>,
}

impl JobOutcome {
    /// Response time (completion − arrival), if the job finished.
    pub fn response(&self) -> Option<f64> {
        self.completed.map(|c| c - self.arrival)
    }
}

/// What kind of fault a [`FaultRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A cluster crashed: in-flight transfers and queued compute were lost.
    Crash,
    /// A backbone partition started: flows crossing the cut stalled.
    Partition,
    /// A straggler window started: a cluster's speed/local link degraded.
    Straggler,
}

/// Lost-work accounting for one fault event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Fault kind.
    pub kind: FaultKind,
    /// When the fault fired.
    pub time: f64,
    /// Affected cluster (`None` for partitions, which cut between groups).
    pub cluster: Option<u32>,
    /// Transfer progress lost: load units already shipped on flows that
    /// were killed (store-and-forward — partial transfers are worthless).
    pub lost_transfer: f64,
    /// Compute progress lost: load units already processed on chunks whose
    /// results died with the cluster.
    pub lost_compute: f64,
    /// Load units returned to the pending pool for re-dispatch (full
    /// original chunk sizes, not just the lost progress).
    pub redispatched: f64,
    /// Time from the fault to the first allocation installed afterwards —
    /// how long the system ran without a post-fault schedule. `None` when
    /// the scenario ended first (or the fault needed no reschedule).
    pub recovery_latency: Option<f64>,
}

/// Which recovery-ladder rung rescued an epoch that would otherwise have
/// aborted the scenario (see `RecoveryLadder`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryRung {
    /// Refactorise-and-retry: the warm context rebuilt its factorisation
    /// and the retry succeeded.
    Refactor,
    /// Full rebuild: the solver context was reconstructed from scratch
    /// (the cold rung) and succeeded.
    Rebuild,
    /// Degraded mode: the last good allocation was scaled to fit the
    /// current platform instead of re-solving.
    StaleScale,
}

/// One recovery-ladder activation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryRecord {
    /// Epoch whose policy decision needed rescue.
    pub epoch: usize,
    /// The rung that produced a usable decision.
    pub rung: RecoveryRung,
    /// The original error, rendered.
    pub error: String,
    /// Decide attempts consumed before the rung succeeded (including the
    /// initial failed one).
    pub attempts: u32,
}

/// A job the engine proved can never finish (e.g. its home cluster is
/// permanently gone), reported instead of draining to the horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnschedulableEntry {
    /// Index into the scenario's job list.
    pub job: u32,
    /// When the engine detected it.
    pub detected_at: f64,
    /// Human-readable cause.
    pub reason: String,
}

/// What a scenario run achieved.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Policy name.
    pub policy: String,
    /// Control periods executed.
    pub periods: usize,
    /// Control-period length.
    pub period_length: f64,
    /// Total jobs offered.
    pub jobs: usize,
    /// Jobs completed before the scenario ended.
    pub completed_jobs: usize,
    /// `Σ size` over all offered jobs.
    pub offered_work: f64,
    /// Load units fully computed.
    pub completed_work: f64,
    /// Completion time of the last finished job (0 when none finished).
    pub makespan: f64,
    /// Mean response time over completed jobs.
    pub mean_response: f64,
    /// Maximum response time over completed jobs.
    pub max_response: f64,
    /// `completed_work / makespan` — the throughput the online system
    /// actually sustained.
    pub achieved_throughput: f64,
    /// Mean, over periods, of the installed allocation's total steady-state
    /// throughput — the optimal rate the §3 allocation promises if backlog
    /// never starves it.
    pub allocated_throughput: f64,
    /// Times the policy installed a new allocation.
    pub reschedules: usize,
    /// Wall-clock spent inside the policy (solver cost), milliseconds.
    /// The only non-deterministic field.
    pub reschedule_ms: f64,
    /// Events processed by the live simulation core.
    pub sim_events: u64,
    /// `true` while per-link open connections never exceeded the (current)
    /// backbone connection caps.
    pub connection_caps_respected: bool,
    /// Per-job outcomes, in scenario order.
    pub per_job: Vec<JobOutcome>,
    /// The recorded delivery/compute event stream (`None` unless
    /// [`crate::ScenarioConfig::record_events`] or `oracle_check` was
    /// set). `Option` so reports serialised before the field existed
    /// still parse (a missing key reads back as `None`).
    pub events: Option<Vec<EventRecord>>,
    /// Per-fault lost-work accounting, in event order. `Option` (like
    /// every field below) so pre-fault-era reports still parse; the
    /// engine always emits `Some`.
    pub faults: Option<Vec<FaultRecord>>,
    /// Recovery-ladder activations, in epoch order.
    pub recoveries: Option<Vec<RecoveryRecord>>,
    /// Jobs proven unfinishable (their `completed` stays `None`).
    pub unschedulable: Option<Vec<UnschedulableEntry>>,
    /// Total transfer progress lost to faults (`Σ` over `faults`).
    pub lost_transfer: Option<f64>,
    /// Total compute progress lost to faults.
    pub lost_compute: Option<f64>,
    /// Total load returned to the pending pool by faults.
    pub redispatched_load: Option<f64>,
}

impl ScenarioReport {
    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialisation cannot fail")
    }

    /// Parses a report back from JSON.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }

    /// Per-job CSV (`job,origin,arrival,size,completed,response`).
    pub fn per_job_csv(&self) -> String {
        let mut out = String::from("job,origin,arrival,size,completed,response\n");
        for j in &self.per_job {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{}",
                j.job,
                j.origin,
                j.arrival,
                j.size,
                j.completed.map_or(String::new(), |c| format!("{c}")),
                j.response().map_or(String::new(), |r| format!("{r}")),
            );
        }
        out
    }

    /// One-paragraph human-readable summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "scenario `{}` under `{}`: {}/{} jobs done in {} periods \
             (makespan {:.2}), throughput {:.3} achieved vs {:.3} allocated, \
             mean response {:.2} (max {:.2}), {} reschedules, {} sim events{}",
            self.scenario,
            self.policy,
            self.completed_jobs,
            self.jobs,
            self.periods,
            self.makespan,
            self.achieved_throughput,
            self.allocated_throughput,
            self.mean_response,
            self.max_response,
            self.reschedules,
            self.sim_events,
            if self.connection_caps_respected {
                ""
            } else {
                " [connection caps exceeded]"
            }
        );
        let faults = self.fault_records();
        if !faults.is_empty() {
            let _ = write!(
                s,
                "; {} faults (lost {:.1} transfer + {:.1} compute, {:.1} re-dispatched)",
                faults.len(),
                self.lost_transfer.unwrap_or(0.0),
                self.lost_compute.unwrap_or(0.0),
                self.redispatched_load.unwrap_or(0.0),
            );
        }
        let recoveries = self.recovery_records();
        if !recoveries.is_empty() {
            let _ = write!(s, "; {} recoveries", recoveries.len());
        }
        let stranded = self.unschedulable_entries();
        if !stranded.is_empty() {
            let _ = write!(s, "; {} unschedulable", stranded.len());
        }
        s
    }

    /// Per-fault lost-work records (empty for pre-fault-era reports).
    pub fn fault_records(&self) -> &[FaultRecord] {
        self.faults.as_deref().unwrap_or(&[])
    }

    /// Recovery-ladder activations (empty when no ladder ran or rescued).
    pub fn recovery_records(&self) -> &[RecoveryRecord] {
        self.recoveries.as_deref().unwrap_or(&[])
    }

    /// Jobs the engine proved unfinishable.
    pub fn unschedulable_entries(&self) -> &[UnschedulableEntry] {
        self.unschedulable.as_deref().unwrap_or(&[])
    }

    /// `true` when the deterministic metrics of two runs of the *same*
    /// scenario agree within `tol` relative — the cross-pipeline
    /// equivalence check used by the bench harness (wall-clock fields are
    /// excluded).
    pub fn agrees_with(&self, other: &ScenarioReport, tol: f64) -> bool {
        let close = |a: f64, b: f64| (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()));
        if self.jobs != other.jobs
            || self.completed_jobs != other.completed_jobs
            || self.periods != other.periods
            || !close(self.makespan, other.makespan)
            || !close(self.completed_work, other.completed_work)
            || !close(self.mean_response, other.mean_response)
            || !close(self.max_response, other.max_response)
            || !close(self.achieved_throughput, other.achieved_throughput)
            || !close(self.allocated_throughput, other.allocated_throughput)
            || !close(
                self.lost_transfer.unwrap_or(0.0),
                other.lost_transfer.unwrap_or(0.0),
            )
            || !close(
                self.lost_compute.unwrap_or(0.0),
                other.lost_compute.unwrap_or(0.0),
            )
            || !close(
                self.redispatched_load.unwrap_or(0.0),
                other.redispatched_load.unwrap_or(0.0),
            )
        {
            return false;
        }
        let stranded = |r: &ScenarioReport| -> Vec<u32> {
            r.unschedulable_entries().iter().map(|u| u.job).collect()
        };
        if stranded(self) != stranded(other) {
            return false;
        }
        self.per_job.len() == other.per_job.len()
            && self.per_job.iter().zip(&other.per_job).all(|(a, b)| {
                match (a.completed, b.completed) {
                    (Some(x), Some(y)) => close(x, y),
                    (None, None) => true,
                    _ => false,
                }
            })
    }

    /// The recorded event stream (empty when recording was off).
    pub fn event_trace(&self) -> &[EventRecord] {
        self.events.as_deref().unwrap_or(&[])
    }

    /// First point where the two runs' recorded event streams disagree
    /// within `tol` relative, or `None` when they match end to end. Both
    /// runs must have been executed with
    /// [`crate::ScenarioConfig::record_events`] for this to be meaningful:
    /// two empty traces trivially agree.
    pub fn first_event_divergence(
        &self,
        other: &ScenarioReport,
        tol: f64,
    ) -> Option<EventDivergence> {
        dls_sim::first_divergence(self.event_trace(), other.event_trace(), tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ScenarioReport {
        ScenarioReport {
            scenario: "t".into(),
            policy: "p".into(),
            periods: 3,
            period_length: 1.0,
            jobs: 2,
            completed_jobs: 1,
            offered_work: 30.0,
            completed_work: 10.0,
            makespan: 2.5,
            mean_response: 2.0,
            max_response: 2.0,
            achieved_throughput: 4.0,
            allocated_throughput: 12.0,
            reschedules: 3,
            reschedule_ms: 1.5,
            sim_events: 17,
            connection_caps_respected: true,
            per_job: vec![
                JobOutcome {
                    job: 0,
                    origin: 1,
                    arrival: 0.5,
                    size: 10.0,
                    completed: Some(2.5),
                },
                JobOutcome {
                    job: 1,
                    origin: 0,
                    arrival: 1.0,
                    size: 20.0,
                    completed: None,
                },
            ],
            events: None,
            faults: None,
            recoveries: None,
            unschedulable: None,
            lost_transfer: None,
            lost_compute: None,
            redispatched_load: None,
        }
    }

    #[test]
    fn json_round_trip_and_csv() {
        let r = report();
        let back = ScenarioReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.per_job, r.per_job);
        assert_eq!(back.sim_events, r.sim_events);
        let csv = r.per_job_csv();
        assert!(csv.contains("0,1,0.5,10,2.5,2"));
        assert!(csv.lines().count() == 3);
        assert!(r.summary().contains("1/2 jobs"));
    }

    #[test]
    fn event_trace_round_trips_and_divergence_is_localised() {
        use dls_sim::EventKind;
        let mut a = report();
        a.events = Some(vec![
            EventRecord {
                kind: EventKind::Delivered,
                time: 1.0,
                cluster: 0,
                job: 0,
                amount: 10.0,
            },
            EventRecord {
                kind: EventKind::Computed,
                time: 2.5,
                cluster: 0,
                job: 0,
                amount: 10.0,
            },
        ]);
        let back = ScenarioReport::from_json(&a.to_json()).unwrap();
        assert_eq!(back.events, a.events);
        // A report serialised before the field existed still parses: the
        // shim reads a missing key as null, which an Option tolerates.
        let legacy_json = report().to_json().replace("\"events\"", "\"unrelated\"");
        let legacy = ScenarioReport::from_json(&legacy_json).unwrap();
        assert!(legacy.event_trace().is_empty());
        let mut b = a.clone();
        assert_eq!(a.first_event_divergence(&b, 1e-9), None);
        b.events.as_mut().unwrap()[1].time = 3.0;
        let d = a.first_event_divergence(&b, 1e-9).expect("shifted event");
        assert_eq!(d.index, 1);
    }

    #[test]
    fn fault_and_recovery_records_round_trip_and_gate_agreement() {
        let mut r = report();
        r.faults = Some(vec![FaultRecord {
            kind: FaultKind::Crash,
            time: 4.0,
            cluster: Some(2),
            lost_transfer: 12.5,
            lost_compute: 3.0,
            redispatched: 40.0,
            recovery_latency: Some(1.0),
        }]);
        r.recoveries = Some(vec![RecoveryRecord {
            epoch: 4,
            rung: RecoveryRung::StaleScale,
            error: "numerical breakdown".into(),
            attempts: 3,
        }]);
        r.unschedulable = Some(vec![UnschedulableEntry {
            job: 1,
            detected_at: 4.0,
            reason: "origin cluster permanently lost".into(),
        }]);
        r.lost_transfer = Some(12.5);
        r.lost_compute = Some(3.0);
        r.redispatched_load = Some(40.0);
        let back = ScenarioReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.faults, r.faults);
        assert_eq!(back.recoveries, r.recoveries);
        assert_eq!(back.unschedulable, r.unschedulable);
        assert!(r.summary().contains("1 faults"));
        assert!(r.summary().contains("1 unschedulable"));
        // Lost work and stranded jobs are deterministic metrics: two runs
        // disagreeing on them must not count as agreeing.
        let mut other = r.clone();
        assert!(r.agrees_with(&other, 1e-9));
        other.lost_transfer = Some(99.0);
        assert!(!r.agrees_with(&other, 1e-9));
        let mut other = r.clone();
        other.unschedulable = Some(vec![]);
        assert!(!r.agrees_with(&other, 1e-9));
        // Legacy reports (no fault fields) still parse and read as empty.
        let legacy = ScenarioReport::from_json(&report().to_json()).unwrap();
        assert!(legacy.fault_records().is_empty());
        assert!(legacy.recovery_records().is_empty());
        assert!(legacy.unschedulable_entries().is_empty());
    }

    #[test]
    fn agreement_ignores_wall_clock_but_not_metrics() {
        let a = report();
        let mut b = report();
        b.reschedule_ms = 99.0;
        assert!(a.agrees_with(&b, 1e-9));
        b.makespan += 1.0;
        assert!(!a.agrees_with(&b, 1e-9));
    }
}
