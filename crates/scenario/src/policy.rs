//! Live rescheduling policies.
//!
//! At every control-period boundary the scenario engine hands the policy a
//! [`PolicyCtx`] snapshot (current — possibly drifted — platform, observed
//! vs. allocated throughput, whether the platform changed) and the policy
//! answers with a fresh [`Allocation`] or `None` to keep the current one:
//!
//! * [`PeriodicResolve`] — the paper's §1 (iii) story: the steady-state
//!   schedule is cheap to recompute, so just re-solve every epoch. With
//!   [`Resolver::warm`] the LP relaxation behind LPRG is *warm-started*: one
//!   persistent [`WarmSimplex`] is patched with the platform deltas (speed,
//!   local-link, backbone-bandwidth, connection-cap changes are pure
//!   rhs/coefficient/bound patches — the §2 topology fixes the LP layout)
//!   and re-solved in a handful of dual pivots instead of from scratch.
//! * [`ThresholdTriggered`] — re-solve only when the observed throughput
//!   degrades past a bound relative to what the current allocation promises.
//! * [`StaleScale`] — the paper's stale baseline: keep the epoch-0
//!   allocation and uniformly shrink it with
//!   [`dls_core::adaptive::scale_to_fit`] whenever drift makes it
//!   infeasible.

use crate::report::RecoveryRecord;
use dls_core::adaptive::scale_to_fit;
use dls_core::allocation::FractionalAllocation;
use dls_core::formulation::LpFormulation;
use dls_core::heuristics::{Heuristic, Lprg};
use dls_core::{Allocation, ProblemInstance, SolveError};
use dls_lp::{solve_with, Basis, ConstraintId, Engine, RevisedSimplex, Status, VarId, WarmSimplex};
use dls_platform::ClusterId;
use serde::{Deserialize, Serialize};

/// What the engine knows at a period boundary.
#[derive(Debug, Clone, Copy)]
pub struct PolicyCtx<'a> {
    /// The instance on the *current* (drifted) platform.
    pub inst: &'a ProblemInstance,
    /// Period index (0 = scenario start).
    pub epoch: usize,
    /// `true` iff a platform event fired since the last decision.
    pub platform_changed: bool,
    /// Work completed during the last period, per time unit.
    pub achieved: f64,
    /// Total throughput the current allocation budgets per time unit.
    pub allocated: f64,
    /// `true` iff unshipped work is waiting (throughput comparisons are
    /// only meaningful under backlog).
    pub backlogged: bool,
    /// The currently installed allocation, if any.
    pub current: Option<&'a Allocation>,
}

/// How aggressively a policy should repair its solver state after a
/// failure (the escalation axis the `RecoveryLadder` walks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryLevel {
    /// Discard accumulated factorisation state and refactorise in place:
    /// cheap, clears the numerical drift behind most warm-solve
    /// breakdowns.
    Refactor,
    /// Rebuild the solver context from scratch on the current instance —
    /// the cold rung, forgetting every warm-start artefact.
    Rebuild,
}

/// The persistable half of a policy: what a failover snapshot carries so a
/// restored run decides like the uninterrupted one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicyState {
    /// Nothing to persist — the policy re-derives everything from the
    /// timeline (cold and heuristic resolvers).
    Stateless,
    /// The stale baseline's frozen epoch-0 allocation.
    Stale {
        /// The allocation [`StaleScale`] keeps rescaling.
        initial: Option<Allocation>,
    },
    /// A warm-basis descriptor ([`Basis::cols`] / [`Basis::num_cols`]).
    /// Restore is best-effort: an incompatible descriptor just means the
    /// first post-restore solve runs cold — decisions are unchanged either
    /// way (the warm pipeline certifies the same canonical vertex), only
    /// their cost.
    WarmBasis {
        /// Basic column per row, standard-form indices.
        cols: Vec<usize>,
        /// Standard-form column count of the originating shape.
        n_cols: usize,
    },
}

/// A live rescheduling policy. Implementations are driven once per control
/// period; returning `Some` installs a new allocation for the next period's
/// shipments.
pub trait ReschedulePolicy {
    /// Name used in reports (`"periodic-warm"`, `"stale"`, …).
    fn name(&self) -> String;

    /// Decides whether to install a new allocation.
    fn decide(&mut self, ctx: &PolicyCtx<'_>) -> Result<Option<Allocation>, SolveError>;

    /// Repairs internal solver state after a failed [`decide`]
    /// (`ReschedulePolicy::decide`), returning `true` when a repair was
    /// actually applied — `false` tells the caller a retry at this level
    /// is pointless (stateless policies fail deterministically). The
    /// default is a no-op.
    fn recover(&mut self, _level: RecoveryLevel, _inst: &ProblemInstance) -> bool {
        false
    }

    /// Takes the recovery-ladder activations recorded since the last call
    /// (empty for policies that never rescue anything). The engine drains
    /// this into [`crate::ScenarioReport::recoveries`].
    fn drain_recovery(&mut self) -> Vec<RecoveryRecord> {
        Vec::new()
    }

    /// Exports the state a failover snapshot must carry.
    fn export_state(&self) -> PolicyState {
        PolicyState::Stateless
    }

    /// Restores state captured by [`export_state`]
    /// (`ReschedulePolicy::export_state`). Mismatched state is ignored.
    fn import_state(&mut self, _state: &PolicyState) {}

    /// Called on the **live** policy immediately after a failover snapshot
    /// is captured. Policies carrying incremental numerical state (the
    /// warm simplex's product-form factorisation) must realign it with
    /// what a restore rebuilds from [`export_state`]
    /// (`ReschedulePolicy::export_state`), so the continuing run and any
    /// replica restored from that snapshot stay bit-identical. Stateless
    /// policies have nothing to align; the default is a no-op.
    fn checkpoint_barrier(&mut self) {}
}

/// Cached per-pair LP bookkeeping for the warm path.
#[derive(Debug, Clone)]
struct PairDelta {
    from: ClusterId,
    to: ClusterId,
    var: VarId,
    /// (7d) rows along the pair's route.
    rows: Vec<ConstraintId>,
    minbw: f64,
    cap: f64,
}

/// The warm-started LPRG resolver: `relaxation_warm` built once, then
/// platform drift applied as in-place deltas to a persistent
/// [`WarmSimplex`] (see the module docs).
#[derive(Debug)]
pub struct WarmLprg {
    formulation: LpFormulation,
    warm: WarmSimplex,
    pairs: Vec<PairDelta>,
    /// Canonical stage-2 objective (see [`LpFormulation::tiebreak_terms`]).
    tiebreak: Vec<(VarId, f64)>,
    /// Times [`WarmLprg::recover`] was invoked (recovery-retry telemetry,
    /// alongside the fallback/refactorisation counters in
    /// [`dls_lp::WarmStats`]). Survives rebuilds.
    recover_calls: u64,
}

/// Margin by which the stage-2 lower bound on the objective variable is
/// relaxed below the certified stage-1 optimum: wide enough to absorb the
/// solver's own termination noise (≪ 1e-9 relative), narrow enough that the
/// canonical vertex is optimal to far better than the heuristics' rounding
/// tolerances.
fn stage2_floor(z_star: f64) -> f64 {
    (z_star - 1e-9 * (1.0 + z_star.abs())).max(0.0)
}

impl WarmLprg {
    /// Builds the persistent context from the scenario's initial instance.
    pub fn new(inst: &ProblemInstance) -> Result<Self, SolveError> {
        let formulation = LpFormulation::relaxation_warm(inst)?;
        let warm = WarmSimplex::new(formulation.model.clone(), RevisedSimplex::default())
            .map_err(SolveError::Lp)?;
        let pairs = Self::collect_pairs(inst, &formulation);
        let tiebreak = formulation.tiebreak_terms();
        Ok(WarmLprg {
            formulation,
            warm,
            pairs,
            tiebreak,
            recover_calls: 0,
        })
    }

    fn collect_pairs(inst: &ProblemInstance, f: &LpFormulation) -> Vec<PairDelta> {
        let p = &inst.platform;
        let mut pairs = Vec::new();
        for from in p.cluster_ids() {
            for to in p.cluster_ids() {
                if from == to {
                    continue;
                }
                let Some(var) = f.alpha_var(from, to) else {
                    continue;
                };
                let Some(minbw) = p.route_bottleneck_bw(from, to) else {
                    continue;
                };
                if !minbw.is_finite() {
                    // Same-router pair: no (7d) rows, uncapped α.
                    continue;
                }
                let rows = p
                    .route(from, to)
                    .map(|route| {
                        route
                            .iter()
                            .filter_map(|l| f.link_row(*l))
                            .collect::<Vec<_>>()
                    })
                    .unwrap_or_default();
                let cap = p
                    .route_max_connections(from, to)
                    .map(|b| b as f64 * minbw)
                    .unwrap_or(f64::INFINITY);
                pairs.push(PairDelta {
                    from,
                    to,
                    var,
                    rows,
                    minbw,
                    cap,
                });
            }
        }
        pairs
    }

    /// Mirrors the current platform capacities onto the warm context:
    /// (7b)/(7c)/(7d) right-hand sides, `1/minbw` coefficients, and the
    /// pre-materialised α caps.
    fn push_platform(&mut self, inst: &ProblemInstance) -> Result<(), SolveError> {
        let p = &inst.platform;
        for c in p.cluster_ids() {
            if let Some(row) = self.formulation.compute_row(c) {
                self.warm
                    .set_rhs(row, p.cluster(c).speed)
                    .map_err(SolveError::Lp)?;
            }
            if let Some(row) = self.formulation.local_link_row(c) {
                self.warm
                    .set_rhs(row, p.cluster(c).local_bw)
                    .map_err(SolveError::Lp)?;
            }
        }
        for l in p.link_ids() {
            if let Some(row) = self.formulation.link_row(l) {
                self.warm
                    .set_rhs(row, p.link(l).max_connections as f64)
                    .map_err(SolveError::Lp)?;
            }
        }
        for i in 0..self.pairs.len() {
            let (from, to) = (self.pairs[i].from, self.pairs[i].to);
            let minbw = p
                .route_bottleneck_bw(from, to)
                .expect("routes are topology, which never changes");
            let cap = p
                .route_max_connections(from, to)
                .map(|b| b as f64 * minbw)
                .unwrap_or(f64::INFINITY);
            let pair = &mut self.pairs[i];
            if minbw != pair.minbw && minbw > 0.0 {
                for r in 0..pair.rows.len() {
                    self.warm
                        .set_coefficient(pair.rows[r], pair.var, 1.0 / minbw)
                        .map_err(SolveError::Lp)?;
                }
            }
            if cap != pair.cap || (minbw <= 0.0) != (pair.minbw <= 0.0) {
                // A dead route (`minbw = 0`) pins α to 0 through its bound.
                let up = if minbw > 0.0 { cap } else { 0.0 };
                self.warm
                    .set_var_bounds(pair.var, 0.0, up)
                    .map_err(SolveError::Lp)?;
            }
            pair.minbw = minbw;
            pair.cap = cap;
        }
        Ok(())
    }

    /// Maps the warm solution back to `(α, β̃)` using the *current*
    /// platform's bottleneck bandwidths.
    fn extract(
        &self,
        inst: &ProblemInstance,
        values: &[f64],
        objective: f64,
    ) -> FractionalAllocation {
        let p = &inst.platform;
        let k = inst.num_apps();
        let mut alpha = vec![0.0f64; k * k];
        let mut beta = vec![0.0f64; k * k];
        for from in p.cluster_ids() {
            for to in p.cluster_ids() {
                let i = from.index() * k + to.index();
                if let Some(v) = self.formulation.alpha_var(from, to) {
                    alpha[i] = values[v.index()].max(0.0);
                }
                if from == to {
                    continue;
                }
                if let Some(bw) = p.route_bottleneck_bw(from, to) {
                    if bw.is_finite() && bw > 0.0 && alpha[i] > 0.0 {
                        beta[i] = alpha[i] / bw;
                    }
                }
            }
        }
        FractionalAllocation {
            k,
            alpha,
            beta,
            objective,
        }
    }

    /// Re-solves on the (possibly drifted) platform: platform deltas, a
    /// warm dual-repair solve, the canonical second stage, then the LPRG
    /// rounding. A [`dls_lp::LpError::StructuralChange`] (a patch the warm
    /// context cannot absorb) rebuilds the context once; every *numerical*
    /// failure surfaces to the caller, where the recovery ladder
    /// ([`crate::RecoveryLadder`]) decides between refactorising, rebuilding
    /// and degrading. An oracle disagreement
    /// ([`dls_lp::LpError::WarmColdMismatch`]) is never masked.
    pub fn resolve(&mut self, inst: &ProblemInstance) -> Result<Allocation, SolveError> {
        self.push_platform(inst)?;
        let sol = match self.warm.solve() {
            Ok(sol) => sol,
            Err(dls_lp::LpError::StructuralChange(_)) => {
                // The standard-form layout changed under the patches: a
                // rebuild is the documented contract, not a recovery
                // heuristic. Preserve the oracle knob and telemetry; a
                // second failure is terminal.
                let check = self.warm.check_against_cold;
                let calls = self.recover_calls;
                *self = WarmLprg::new(inst)?;
                self.warm.check_against_cold = check;
                self.recover_calls = calls;
                self.warm.solve().map_err(SolveError::Lp)?
            }
            Err(e) => {
                // Numerical trouble (breakdown, singular basis, iteration
                // limit) and oracle mismatches surface: masking them here
                // would hide exactly what the recovery ladder and the
                // check_against_cold knob exist to observe.
                return Err(SolveError::Lp(e));
            }
        };
        if sol.status != Status::Optimal {
            return Err(SolveError::UnexpectedStatus("non-optimal warm relaxation"));
        }
        let frac = match self.formulation.objective_var() {
            Some(z) => {
                let canon = self.canonical_values(z, sol.values[z.index()])?;
                self.extract(inst, canon.as_deref().unwrap_or(&sol.values), sol.objective)
            }
            None => self.extract(inst, &sol.values, sol.objective),
        };
        Ok(Lprg::default().from_relaxation(inst, &frac))
    }

    /// Canonical lexicographic second stage on the persistent warm context:
    /// pin the certified MAXMIN objective (margin-relaxed), maximise the
    /// deterministic tie-break objective warm from the stage-1 basis, then
    /// revert both patches. The stage-1 optimal face is massively
    /// degenerate (only `z` carries a cost), so without this stage a warm
    /// and a cold solver certify *different* optimal vertices and the
    /// downstream pipelines diverge event-for-event. Returns `None` when
    /// the second stage could not re-certify optimality — the caller then
    /// falls back to the (correct, but non-canonical) stage-1 vertex.
    fn canonical_values(&mut self, z: VarId, z_star: f64) -> Result<Option<Vec<f64>>, SolveError> {
        self.warm
            .set_var_bounds(z, stage2_floor(z_star), f64::INFINITY)
            .map_err(SolveError::Lp)?;
        self.warm
            .set_objective_coef(z, 0.0)
            .map_err(SolveError::Lp)?;
        for i in 0..self.tiebreak.len() {
            let (v, w) = self.tiebreak[i];
            self.warm.set_objective_coef(v, w).map_err(SolveError::Lp)?;
        }
        let outcome = self.warm.solve();
        // Revert before interpreting the outcome: the persistent context
        // must leave stage 2 carrying the stage-1 objective and a free z.
        self.warm
            .set_objective_coef(z, 1.0)
            .map_err(SolveError::Lp)?;
        for i in 0..self.tiebreak.len() {
            let v = self.tiebreak[i].0;
            self.warm
                .set_objective_coef(v, 0.0)
                .map_err(SolveError::Lp)?;
        }
        self.warm
            .set_var_bounds(z, 0.0, f64::INFINITY)
            .map_err(SolveError::Lp)?;
        match outcome {
            // A failed stage 2 is not fatal: fall back to the (already
            // certified-optimal) stage-1 vertex rather than erroring out of
            // the whole resolve. Oracle mismatches still surface.
            Ok(sol) if sol.status == Status::Optimal => Ok(Some(sol.values)),
            Ok(_) => Ok(None),
            Err(e @ dls_lp::LpError::WarmColdMismatch { .. }) => Err(SolveError::Lp(e)),
            Err(_) => Ok(None),
        }
    }

    /// Cumulative warm-solve statistics (solves, pivots, fallbacks,
    /// refactorisations).
    pub fn stats(&self) -> dls_lp::WarmStats {
        self.warm.stats()
    }

    /// The explicit recovery path: requests a fresh factorisation of the
    /// warm basis, so the next resolve retries on clean numerics instead
    /// of compounding whatever drift caused a breakdown. Cheap — no solve
    /// happens here.
    pub fn recover(&mut self) {
        self.recover_calls += 1;
        self.warm.request_refactor();
    }

    /// Times [`WarmLprg::recover`] was invoked.
    pub fn recover_calls(&self) -> u64 {
        self.recover_calls
    }

    /// Realigns the live numerical state with what a restore reconstructs:
    /// schedules a fresh factorisation of the current basis, so the next
    /// solve starts from the same clean factor that [`WarmLprg::seed_basis`]
    /// builds on the restored side. Without this the live context keeps its
    /// incrementally-updated product-form factorisation and drifts from a
    /// restored replica at the ulp level. Not a repair, so unlike
    /// [`WarmLprg::recover`] the recovery counter is untouched.
    pub fn checkpoint_barrier(&mut self) {
        self.warm.request_refactor();
    }

    /// The current warm-basis descriptor, for failover snapshots.
    pub fn basis_descriptor(&self) -> Option<(Vec<usize>, usize)> {
        self.warm.basis().map(|b| (b.cols().to_vec(), b.num_cols()))
    }

    /// Best-effort warm-start from a persisted basis descriptor; `false`
    /// (and a cold next solve) when the descriptor does not fit.
    pub fn seed_basis(&mut self, cols: Vec<usize>, n_cols: usize) -> bool {
        self.warm.seed_basis(&Basis::from_parts(cols, n_cols))
    }

    /// Queues a deterministic solver fault (tests only): see
    /// [`dls_lp::WarmSimplex::debug_inject_fault`].
    #[doc(hidden)]
    pub fn debug_inject_fault(&mut self, fault: dls_lp::InjectedFault) {
        self.warm.debug_inject_fault(fault);
    }

    /// Cross-checks every warm solve against a cold solve of the same
    /// model (the PR-3 oracle knob): on objective disagreement the resolve
    /// fails with [`SolveError::Lp`]. Expensive — tests and benches only.
    pub fn set_check_against_cold(&mut self, on: bool) {
        self.warm.check_against_cold = on;
    }
}

/// How a policy computes a fresh allocation when it decides to re-solve.
pub enum Resolver {
    /// Warm-started LPRG (the PR-3 pipeline; see [`WarmLprg`]). Boxed: the
    /// persistent context dwarfs the other variants.
    Warm(Box<WarmLprg>),
    /// Cold LPRG: rebuild the `relaxation_warm` formulation and solve it
    /// with a fresh revised simplex every time (the baseline the bench
    /// compares against).
    Cold,
    /// Any heuristic re-run from scratch (e.g. `Greedy` for LP-free
    /// scenarios).
    Heuristic(Box<dyn Heuristic + Send>),
}

impl std::fmt::Debug for Resolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Resolver::Warm(_) => f.write_str("Resolver::Warm"),
            Resolver::Cold => f.write_str("Resolver::Cold"),
            Resolver::Heuristic(h) => write!(f, "Resolver::Heuristic({})", h.name()),
        }
    }
}

impl Resolver {
    /// Warm-started LPRG over `inst`'s topology.
    pub fn warm(inst: &ProblemInstance) -> Result<Self, SolveError> {
        Ok(Resolver::Warm(Box::new(WarmLprg::new(inst)?)))
    }

    /// Short name for report labels.
    pub fn label(&self) -> &'static str {
        match self {
            Resolver::Warm(_) => "warm",
            Resolver::Cold => "cold",
            Resolver::Heuristic(_) => "heuristic",
        }
    }

    /// The warm LPRG context, if this is a warm resolver (e.g. to inject
    /// test faults or read telemetry).
    pub fn warm_mut(&mut self) -> Option<&mut WarmLprg> {
        match self {
            Resolver::Warm(w) => Some(w),
            Resolver::Cold | Resolver::Heuristic(_) => None,
        }
    }

    /// Computes an allocation for the current platform.
    pub fn resolve(&mut self, inst: &ProblemInstance) -> Result<Allocation, SolveError> {
        match self {
            Resolver::Warm(w) => w.resolve(inst),
            Resolver::Cold => {
                let f = LpFormulation::relaxation_warm(inst)?;
                let solver = RevisedSimplex::default();
                let (sol, basis) = solver.solve_with_basis(&f.model)?;
                if sol.status != Status::Optimal {
                    return Err(SolveError::UnexpectedStatus("non-optimal cold relaxation"));
                }
                let mut frac = f.extract_fractional(&sol);
                // Mirror the warm resolver's canonical second stage so both
                // pipelines extract the *same* optimal vertex (see
                // [`LpFormulation::tiebreak_terms`]): pin the certified
                // objective, maximise the tie-break objective warm from the
                // stage-1 basis.
                if let Some(z) = f.objective_var() {
                    let mut stage2 = f.model.clone();
                    stage2.set_bounds(z, stage2_floor(sol.values[z.index()]), f64::INFINITY);
                    stage2.set_objective_coef(z, 0.0);
                    for (v, w) in f.tiebreak_terms() {
                        stage2.set_objective_coef(v, w);
                    }
                    let canon = match &basis {
                        Some(b) => solver.solve_warm(&stage2, b)?.0,
                        None => solve_with(&stage2, Engine::Revised)?,
                    };
                    if canon.status == Status::Optimal {
                        let objective = frac.objective;
                        frac = f.extract_fractional(&canon);
                        frac.objective = objective;
                    }
                }
                Ok(Lprg::default().from_relaxation(inst, &frac))
            }
            Resolver::Heuristic(h) => h.solve(inst),
        }
    }

    /// Repairs the resolver after a failed [`Resolver::resolve`]. Warm
    /// contexts refactorise ([`RecoveryLevel::Refactor`]) or are rebuilt
    /// from scratch on the current instance ([`RecoveryLevel::Rebuild`]);
    /// cold and heuristic resolvers are stateless, so there is nothing to
    /// repair and retries are pointless — `false`.
    pub fn recover(&mut self, level: RecoveryLevel, inst: &ProblemInstance) -> bool {
        match self {
            Resolver::Warm(w) => match level {
                RecoveryLevel::Refactor => {
                    w.recover();
                    true
                }
                RecoveryLevel::Rebuild => match WarmLprg::new(inst) {
                    Ok(mut fresh) => {
                        fresh.warm.check_against_cold = w.warm.check_against_cold;
                        fresh.recover_calls = w.recover_calls + 1;
                        **w = fresh;
                        true
                    }
                    Err(_) => false,
                },
            },
            Resolver::Cold | Resolver::Heuristic(_) => false,
        }
    }

    /// The resolver state a failover snapshot carries.
    pub fn export_state(&self) -> PolicyState {
        match self {
            Resolver::Warm(w) => match w.basis_descriptor() {
                Some((cols, n_cols)) => PolicyState::WarmBasis { cols, n_cols },
                None => PolicyState::Stateless,
            },
            Resolver::Cold | Resolver::Heuristic(_) => PolicyState::Stateless,
        }
    }

    /// Restores [`Resolver::export_state`] output (best-effort for warm
    /// bases; everything else is a no-op).
    pub fn import_state(&mut self, state: &PolicyState) {
        if let (Resolver::Warm(w), PolicyState::WarmBasis { cols, n_cols }) = (&mut *self, state) {
            let _ = w.seed_basis(cols.clone(), *n_cols);
        }
    }

    /// See [`ReschedulePolicy::checkpoint_barrier`]: warm contexts schedule
    /// a refactorisation of the current basis; cold and heuristic resolvers
    /// are stateless and have nothing to align.
    pub fn checkpoint_barrier(&mut self) {
        if let Resolver::Warm(w) = self {
            w.checkpoint_barrier();
        }
    }
}

/// Re-solve every `every` periods (and always after a platform event).
#[derive(Debug)]
pub struct PeriodicResolve {
    /// Re-solve cadence in periods (1 = every period).
    pub every: usize,
    resolver: Resolver,
}

impl PeriodicResolve {
    /// Re-solves every period with the given resolver.
    pub fn new(resolver: Resolver) -> Self {
        PeriodicResolve { every: 1, resolver }
    }

    /// The underlying resolver (e.g. to inject test faults).
    pub fn resolver_mut(&mut self) -> &mut Resolver {
        &mut self.resolver
    }
}

impl ReschedulePolicy for PeriodicResolve {
    fn name(&self) -> String {
        format!("periodic-{}", self.resolver.label())
    }

    fn decide(&mut self, ctx: &PolicyCtx<'_>) -> Result<Option<Allocation>, SolveError> {
        let due = ctx.epoch.is_multiple_of(self.every.max(1));
        if ctx.current.is_none() || ctx.platform_changed || due {
            return Ok(Some(self.resolver.resolve(ctx.inst)?));
        }
        Ok(None)
    }

    fn recover(&mut self, level: RecoveryLevel, inst: &ProblemInstance) -> bool {
        self.resolver.recover(level, inst)
    }

    fn export_state(&self) -> PolicyState {
        self.resolver.export_state()
    }

    fn import_state(&mut self, state: &PolicyState) {
        self.resolver.import_state(state);
    }

    fn checkpoint_barrier(&mut self) {
        self.resolver.checkpoint_barrier();
    }
}

/// Re-solve only when observed throughput degrades past
/// `threshold · allocated` while work is backlogged.
#[derive(Debug)]
pub struct ThresholdTriggered {
    /// Degradation bound in `(0, 1]`: re-solve when
    /// `achieved < threshold · allocated`.
    pub threshold: f64,
    resolver: Resolver,
}

impl ThresholdTriggered {
    /// Triggers below `threshold` with the given resolver.
    pub fn new(threshold: f64, resolver: Resolver) -> Self {
        ThresholdTriggered {
            threshold,
            resolver,
        }
    }
}

impl ReschedulePolicy for ThresholdTriggered {
    fn name(&self) -> String {
        format!("threshold-{}", self.resolver.label())
    }

    fn decide(&mut self, ctx: &PolicyCtx<'_>) -> Result<Option<Allocation>, SolveError> {
        let degraded =
            ctx.backlogged && ctx.allocated > 0.0 && ctx.achieved < self.threshold * ctx.allocated;
        if ctx.current.is_none() || degraded {
            return Ok(Some(self.resolver.resolve(ctx.inst)?));
        }
        Ok(None)
    }

    fn recover(&mut self, level: RecoveryLevel, inst: &ProblemInstance) -> bool {
        self.resolver.recover(level, inst)
    }

    fn export_state(&self) -> PolicyState {
        self.resolver.export_state()
    }

    fn import_state(&mut self, state: &PolicyState) {
        self.resolver.import_state(state);
    }

    fn checkpoint_barrier(&mut self) {
        self.resolver.checkpoint_barrier();
    }
}

/// The paper's stale baseline: solve once at epoch 0, then only shrink the
/// initial allocation uniformly ([`scale_to_fit`]) when drift makes it
/// infeasible.
#[derive(Debug)]
pub struct StaleScale {
    resolver: Resolver,
    initial: Option<Allocation>,
}

impl StaleScale {
    /// Solves epoch 0 with the given resolver, then never re-optimises.
    pub fn new(resolver: Resolver) -> Self {
        StaleScale {
            resolver,
            initial: None,
        }
    }
}

impl ReschedulePolicy for StaleScale {
    fn name(&self) -> String {
        "stale".into()
    }

    fn decide(&mut self, ctx: &PolicyCtx<'_>) -> Result<Option<Allocation>, SolveError> {
        if self.initial.is_none() {
            let alloc = self.resolver.resolve(ctx.inst)?;
            self.initial = Some(alloc.clone());
            return Ok(Some(alloc));
        }
        if ctx.platform_changed {
            let (scaled, _gamma) =
                scale_to_fit(self.initial.as_ref().expect("set above"), ctx.inst);
            return Ok(Some(scaled));
        }
        Ok(None)
    }

    fn recover(&mut self, level: RecoveryLevel, inst: &ProblemInstance) -> bool {
        self.resolver.recover(level, inst)
    }

    fn export_state(&self) -> PolicyState {
        PolicyState::Stale {
            initial: self.initial.clone(),
        }
    }

    fn import_state(&mut self, state: &PolicyState) {
        if let PolicyState::Stale { initial } = state {
            self.initial = initial.clone();
        }
    }

    fn checkpoint_barrier(&mut self) {
        self.resolver.checkpoint_barrier();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_core::Objective;
    use dls_platform::{PlatformConfig, PlatformGenerator};

    fn instance(seed: u64, k: usize) -> ProblemInstance {
        let cfg = PlatformConfig {
            num_clusters: k,
            connectivity: 0.6,
            ..PlatformConfig::default()
        };
        ProblemInstance::with_spread_payoffs(
            PlatformGenerator::new(seed).generate(&cfg),
            Objective::MaxMin,
            0.5,
            seed ^ 0x9e37_79b9_7f4a_7c15,
        )
    }

    /// Entrywise canonical-vertex comparison: β must match exactly, α to
    /// solver termination noise. This is the agreement contract the
    /// lexicographic stage 2 buys — warm and cold land on the *same*
    /// vertex, not merely equally good ones.
    fn assert_canonical_eq(inst: &ProblemInstance, a: &Allocation, b: &Allocation, what: &str) {
        for from in inst.platform.cluster_ids() {
            for to in inst.platform.cluster_ids() {
                assert_eq!(
                    a.beta(from, to),
                    b.beta(from, to),
                    "{what}: beta({from:?},{to:?}) diverged"
                );
                let (aa, ab) = (a.alpha(from, to), b.alpha(from, to));
                assert!(
                    (aa - ab).abs() <= 1e-7 * (1.0 + ab.abs()),
                    "{what}: alpha({from:?},{to:?}) {aa} vs {ab}"
                );
            }
        }
    }

    #[test]
    fn warm_resolver_matches_cold_on_drifting_platform() {
        let mut inst = instance(3, 6);
        let mut warm = WarmLprg::new(&inst).unwrap();
        // The PR-3 oracle: every warm solve's objective is cross-checked
        // against a cold solve of the patched model; a mismatch fails the
        // resolve.
        warm.set_check_against_cold(true);
        let mut cold = Resolver::Cold;
        for step in 0..6 {
            // Drift capacities deterministically.
            for (i, c) in inst.platform.clusters.iter_mut().enumerate() {
                c.speed *= 1.0 + 0.07 * (((step + i) % 3) as f64 - 1.0);
                c.local_bw *= 1.0 + 0.05 * (((step + 2 * i) % 3) as f64 - 1.0);
            }
            for (i, l) in inst.platform.links.iter_mut().enumerate() {
                l.bw_per_connection *= 1.0 + 0.06 * (((step + i) % 3) as f64 - 1.0);
            }
            let a = warm.resolve(&inst).unwrap();
            let b = cold.resolve(&inst).unwrap();
            assert!(a.validate(&inst).is_ok(), "step {step}: warm invalid");
            assert!(b.validate(&inst).is_ok(), "step {step}: cold invalid");
            assert_canonical_eq(&inst, &a, &b, &format!("drift step {step}"));
        }
        assert!(warm.stats().solves >= 6);
    }

    #[test]
    fn warm_resolver_is_exactly_cold_on_a_static_platform() {
        // No platform deltas between resolves: the warm context re-certifies
        // the same basis and must reproduce the cold allocation's canonical
        // vertex (this is what makes the scenario pipelines comparable on
        // arrivals-only traces).
        let inst = instance(4, 7);
        let mut warm = WarmLprg::new(&inst).unwrap();
        let mut cold = Resolver::Cold;
        let c0 = cold.resolve(&inst).unwrap();
        for step in 0..4 {
            let w = warm.resolve(&inst).unwrap();
            assert_canonical_eq(&inst, &w, &c0, &format!("static step {step}"));
        }
    }

    #[test]
    fn resolvers_agree_without_an_objective_var() {
        // SUM objectives have no auxiliary `z`, so the canonical second
        // stage is skipped entirely (`objective_var() == None`): both
        // resolvers must still work and agree.
        let cfg = PlatformConfig {
            num_clusters: 6,
            connectivity: 0.6,
            ..PlatformConfig::default()
        };
        let inst = ProblemInstance::with_spread_payoffs(
            PlatformGenerator::new(11).generate(&cfg),
            Objective::Sum,
            0.5,
            11 ^ 0x9e37_79b9_7f4a_7c15,
        );
        let mut warm = WarmLprg::new(&inst).unwrap();
        let mut cold = Resolver::Cold;
        let a = warm.resolve(&inst).unwrap();
        let b = cold.resolve(&inst).unwrap();
        assert!(a.validate(&inst).is_ok());
        let (va, vb) = (a.objective_value(&inst), b.objective_value(&inst));
        assert!((va - vb).abs() <= 1e-6 * (1.0 + vb.abs()), "{va} vs {vb}");
    }

    #[test]
    fn warm_resolver_survives_connection_cap_changes_and_outages() {
        let mut inst = instance(9, 5);
        let mut warm = WarmLprg::new(&inst).unwrap();
        let base = warm.resolve(&inst).unwrap();
        assert!(base.validate(&inst).is_ok());
        // Halve every connection cap and churn cluster 0 out.
        for l in inst.platform.links.iter_mut() {
            l.max_connections = (l.max_connections / 2).max(1);
        }
        inst.platform.clusters[0].speed = 0.0;
        inst.platform.clusters[0].local_bw = 0.0;
        let out = warm.resolve(&inst).unwrap();
        assert!(out.validate(&inst).is_ok());
        // Nothing can be computed at the dead cluster.
        for from in inst.platform.cluster_ids() {
            assert_eq!(out.alpha(from, ClusterId(0)), 0.0);
        }
        let mut cold = Resolver::Cold;
        let reference = cold.resolve(&inst).unwrap();
        let (vo, vr) = (out.objective_value(&inst), reference.objective_value(&inst));
        assert!((vo - vr).abs() <= 1e-6 * (1.0 + vr.abs()), "{vo} vs {vr}");
    }

    #[test]
    fn stale_policy_only_rescales() {
        let inst = instance(5, 5);
        let mut policy = StaleScale::new(Resolver::Cold);
        let ctx = PolicyCtx {
            inst: &inst,
            epoch: 0,
            platform_changed: false,
            achieved: 0.0,
            allocated: 0.0,
            backlogged: false,
            current: None,
        };
        let first = policy.decide(&ctx).unwrap().expect("epoch 0 solves");
        // No platform change → keep.
        let keep = policy
            .decide(&PolicyCtx {
                epoch: 1,
                current: Some(&first),
                ..ctx
            })
            .unwrap();
        assert!(keep.is_none());
        // Drifted platform → uniformly scaled version of the initial.
        let mut drifted = inst.clone();
        for c in drifted.platform.clusters.iter_mut() {
            c.speed /= 2.0;
        }
        let scaled = policy
            .decide(&PolicyCtx {
                inst: &drifted,
                epoch: 2,
                platform_changed: true,
                current: Some(&first),
                ..ctx
            })
            .unwrap()
            .expect("rescale on change");
        assert!(scaled.validate(&drifted).is_ok());
        assert_eq!(scaled.beta, first.beta, "stale β never changes");
    }

    #[test]
    fn threshold_policy_triggers_on_degradation_only() {
        let inst = instance(6, 4);
        let mut policy = ThresholdTriggered::new(0.8, Resolver::Cold);
        let ctx = PolicyCtx {
            inst: &inst,
            epoch: 0,
            platform_changed: false,
            achieved: 0.0,
            allocated: 0.0,
            backlogged: true,
            current: None,
        };
        let first = policy.decide(&ctx).unwrap().expect("first epoch solves");
        let healthy = PolicyCtx {
            epoch: 1,
            achieved: 95.0,
            allocated: 100.0,
            current: Some(&first),
            ..ctx
        };
        assert!(policy.decide(&healthy).unwrap().is_none());
        let degraded = PolicyCtx {
            achieved: 40.0,
            ..healthy
        };
        assert!(policy.decide(&degraded).unwrap().is_some());
        // Idle systems never trigger (no meaningful observation).
        let idle = PolicyCtx {
            backlogged: false,
            achieved: 0.0,
            ..healthy
        };
        assert!(policy.decide(&idle).unwrap().is_none());
    }
}
