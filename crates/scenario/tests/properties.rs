//! Property tests for the failure-domain story: random fault storms keep
//! the two simulation cores in event-stream agreement, and crash-at-any-
//! epoch snapshot/restore replays bit-identically on both cores.

use dls_scenario::{
    build_catalog_entry, resume_scenario, run_scenario, run_scenario_resumable, PeriodicResolve,
    PlatformChange, PlatformEvent, Resolver, ResumableRun, Scenario, ScenarioConfig,
    ScenarioSnapshot,
};
use dls_sim::SimEngine;
use proptest::prelude::*;

const K: usize = 4;

/// One random fault incident: a kind, an onset slot and a duration, mapped
/// onto the engine's fault-event vocabulary.
#[derive(Debug, Clone)]
enum Incident {
    CrashAndRejoin {
        cluster: u32,
        at: f64,
        outage: f64,
    },
    Partition {
        cluster: u32,
        at: f64,
        dur: f64,
    },
    Straggler {
        cluster: u32,
        at: f64,
        dur: f64,
        factor: f64,
    },
    LeaveAndRejoin {
        cluster: u32,
        at: f64,
        outage: f64,
    },
}

fn slot() -> impl Strategy<Value = f64> {
    (2u32..12).prop_map(|s| s as f64)
}

fn dur() -> impl Strategy<Value = f64> {
    (1u32..4).prop_map(|s| s as f64)
}

fn arb_incident() -> impl Strategy<Value = Incident> {
    let cluster = || 0u32..K as u32;
    prop_oneof![
        (cluster(), slot(), dur()).prop_map(|(cluster, at, outage)| Incident::CrashAndRejoin {
            cluster,
            at,
            outage
        }),
        (cluster(), slot(), dur()).prop_map(|(cluster, at, dur)| Incident::Partition {
            cluster,
            at,
            dur
        }),
        (cluster(), slot(), dur(), 0.2f64..0.9).prop_map(|(cluster, at, dur, factor)| {
            Incident::Straggler {
                cluster,
                at,
                dur,
                factor,
            }
        }),
        (cluster(), slot(), dur()).prop_map(|(cluster, at, outage)| Incident::LeaveAndRejoin {
            cluster,
            at,
            outage
        }),
    ]
}

/// Replays a random fault storm over the steady catalog workload.
fn storm_scenario(seed: u64, incidents: &[Incident]) -> (dls_core::ProblemInstance, Scenario) {
    let (inst, mut scenario) = build_catalog_entry("steady", K, seed).unwrap();
    for inc in incidents {
        match *inc {
            Incident::CrashAndRejoin {
                cluster,
                at,
                outage,
            } => {
                scenario.platform_events.push(PlatformEvent {
                    time: at,
                    change: PlatformChange::ClusterCrash { cluster },
                });
                scenario.platform_events.push(PlatformEvent {
                    time: at + outage,
                    change: PlatformChange::ClusterJoin { cluster },
                });
            }
            Incident::Partition { cluster, at, dur } => {
                let rest: Vec<u32> = (0..K as u32).filter(|&c| c != cluster).collect();
                scenario.platform_events.push(PlatformEvent {
                    time: at,
                    change: PlatformChange::BackbonePartition {
                        groups: vec![vec![cluster], rest],
                        until: at + dur,
                    },
                });
            }
            Incident::Straggler {
                cluster,
                at,
                dur,
                factor,
            } => {
                scenario.platform_events.push(PlatformEvent {
                    time: at,
                    change: PlatformChange::Straggler {
                        cluster,
                        factor,
                        until: at + dur,
                    },
                });
            }
            Incident::LeaveAndRejoin {
                cluster,
                at,
                outage,
            } => {
                scenario.platform_events.push(PlatformEvent {
                    time: at,
                    change: PlatformChange::ClusterLeave { cluster },
                });
                scenario.platform_events.push(PlatformEvent {
                    time: at + outage,
                    change: PlatformChange::ClusterJoin { cluster },
                });
            }
        }
    }
    scenario.normalise();
    scenario.validate(&inst.platform).expect("storm validates");
    (inst, scenario)
}

proptest! {
    // Each case is a pair of full scenario runs — keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random crash/partition/straggler/churn storms never drive the
    /// incremental core away from the full-recompute oracle: reports and
    /// event streams agree, and the fault log is identical.
    #[test]
    fn fault_storms_keep_engines_in_agreement(
        seed in 0u64..1000,
        incidents in proptest::collection::vec(arb_incident(), 1..5),
    ) {
        let (inst, scenario) = storm_scenario(seed, &incidents);
        let run = |engine| {
            let mut policy = PeriodicResolve::new(Resolver::Cold);
            run_scenario(
                &inst,
                &scenario,
                &mut policy,
                &ScenarioConfig {
                    engine,
                    record_events: true,
                    oracle_check: engine == SimEngine::Incremental,
                    ..ScenarioConfig::default()
                },
            )
            .unwrap()
        };
        let fast = run(SimEngine::Incremental);
        let slow = run(SimEngine::FullRecompute);
        prop_assert!(
            fast.agrees_with(&slow, 1e-6),
            "reports diverged:\n{}\n{}",
            fast.summary(),
            slow.summary()
        );
        if let Some(d) = fast.first_event_divergence(&slow, 1e-6) {
            return Err(TestCaseError::fail(format!(
                "engines diverged at {}",
                d.describe()
            )));
        }
        prop_assert_eq!(fast.fault_records(), slow.fault_records());
    }

    /// Crash-at-any-epoch resilience: interrupting a faulty run at a random
    /// epoch, serialising the snapshot through JSON, and resuming replays
    /// the remainder bit-identically to the uninterrupted run — on both
    /// simulation cores.
    #[test]
    fn snapshot_restore_is_bit_identical_at_any_epoch(
        seed in 0u64..1000,
        interrupt in 1usize..14,
        incidents in proptest::collection::vec(arb_incident(), 0..4),
    ) {
        let (inst, scenario) = storm_scenario(seed, &incidents);
        for engine in [SimEngine::Incremental, SimEngine::FullRecompute] {
            let cfg = ScenarioConfig {
                engine,
                record_events: true,
                ..ScenarioConfig::default()
            };
            let mut uninterrupted = PeriodicResolve::new(Resolver::Cold);
            let mut full = run_scenario(&inst, &scenario, &mut uninterrupted, &cfg).unwrap();
            let mut first = PeriodicResolve::new(Resolver::Cold);
            let snap =
                match run_scenario_resumable(&inst, &scenario, &mut first, &cfg, Some(interrupt))
                    .unwrap()
                {
                    ResumableRun::Interrupted(snap) => snap,
                    // The run finished before the interrupt epoch: the
                    // resumable path IS the full path, nothing to compare.
                    ResumableRun::Finished(report) => {
                        prop_assert_eq!(full.to_json(), report.to_json());
                        continue;
                    }
                };
            let snap = ScenarioSnapshot::from_json(&snap.to_json()).unwrap();
            let mut second = PeriodicResolve::new(Resolver::Cold);
            let mut resumed = resume_scenario(&inst, &scenario, &mut second, &cfg, &snap).unwrap();
            // Wall-clock solve time is the one legitimately non-replayable
            // field.
            full.reschedule_ms = 0.0;
            resumed.reschedule_ms = 0.0;
            prop_assert_eq!(full.to_json(), resumed.to_json(), "engine {:?}", engine);
        }
    }
}
