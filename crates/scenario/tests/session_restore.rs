//! Bit-identity of the warm-policy snapshot/restore path at an awkward
//! seed (distilled from the service recovery bench, where seed 32461
//! first exposed a ulp-level makespan drift after restore).
//!
//! Warm LP contexts carry an incrementally-updated factorisation that a
//! restore necessarily rebuilds from the persisted basis, so taking a
//! checkpoint fires [`ReschedulePolicy::checkpoint_barrier`] on the live
//! side: both the continuing run and any restored replica start their
//! next solve from the identical clean factorisation. The contract is
//! therefore *checkpoint-relative* — a restored run bit-agrees with the
//! run that took the checkpoint (and kept going), not with a
//! hypothetical run that never checkpointed. For cold policies the
//! barrier is a no-op and the two references coincide; that stronger
//! property is covered by the existing cold-resolver snapshot tests.

use dls_scenario::catalog::paper_shape_instance;
use dls_scenario::{
    resume_scenario, run_scenario_resumable, JobSpec, PeriodicResolve, ReschedulePolicy, Resolver,
    ResumableRun, Scenario, ScenarioConfig, ScenarioReport, ScenarioSession,
};
use dls_sim::SimEngine;

fn jobs() -> Vec<JobSpec> {
    let mut out = Vec::new();
    for b in 0..6usize {
        for j in 0..2usize {
            out.push(JobSpec {
                arrival: b as f64 * 10.0 + 1.0 + 3.0 * j as f64,
                origin: ((2 + b + j) % 5) as u32,
                size: 60.0 + 10.0 * ((2 + 2 * b + j) % 5) as f64,
                weight: 1.0,
            });
        }
    }
    out
}

fn warm_policy(inst: &dls_core::ProblemInstance) -> impl ReschedulePolicy {
    PeriodicResolve::new(Resolver::warm(inst).expect("warm resolver builds"))
}

fn scenario() -> Scenario {
    let mut s = Scenario {
        name: "r2".into(),
        period: 10.0,
        jobs: jobs(),
        platform_events: Vec::new(),
    };
    s.normalise();
    s
}

fn cfg() -> ScenarioConfig {
    ScenarioConfig {
        engine: SimEngine::Incremental,
        ..ScenarioConfig::default()
    }
}

/// The run that takes the checkpoint: step to `at_epoch`, snapshot
/// (firing the barrier), continue to completion.
fn checkpointing_reference(
    inst: &dls_core::ProblemInstance,
    at_epoch: usize,
) -> (ScenarioReport, dls_scenario::ScenarioSnapshot) {
    let mut policy = warm_policy(inst);
    let mut session = ScenarioSession::new(inst, scenario(), cfg());
    for _ in 0..at_epoch {
        session.step(&mut policy).expect("reference steps");
    }
    let snap = session.snapshot(&mut policy);
    session.run_to_end(&mut policy).expect("reference finishes");
    (session.into_report(&mut policy), snap)
}

fn canonical(mut r: ScenarioReport) -> String {
    r.reschedule_ms = 0.0;
    r.to_json()
}

#[test]
fn session_restore_bit_agrees_with_the_checkpointing_run() {
    let inst = paper_shape_instance(5, 32461);
    let (reference, snap) = checkpointing_reference(&inst, 2);

    let mut policy = warm_policy(&inst);
    let mut resumed = ScenarioSession::restore(&inst, scenario(), cfg(), &snap, &mut policy)
        .expect("session restores");
    resumed
        .run_to_end(&mut policy)
        .expect("restored run finishes");
    let report = resumed.into_report(&mut policy);

    assert_eq!(
        canonical(report),
        canonical(reference),
        "restored session must replay bit-identically to the run that \
         took the checkpoint"
    );
}

#[test]
fn resumable_run_bit_agrees_with_the_checkpointing_run() {
    // The `run_scenario_resumable` interrupt discards the live run, so its
    // snapshot never needed a barrier — but the resumed replica still must
    // match a session that checkpointed at the same epoch, because both
    // start epoch 2 from a fresh factorisation of the same basis.
    let inst = paper_shape_instance(5, 32461);
    let (reference, _) = checkpointing_reference(&inst, 2);

    let sc = scenario();
    let mut first = warm_policy(&inst);
    let snap = match run_scenario_resumable(&inst, &sc, &mut first, &cfg(), Some(2)).unwrap() {
        ResumableRun::Interrupted(snap) => snap,
        ResumableRun::Finished(_) => panic!("finished before epoch 2"),
    };
    let mut second = warm_policy(&inst);
    let resumed = resume_scenario(&inst, &sc, &mut second, &cfg(), &snap).unwrap();

    assert_eq!(
        canonical(resumed),
        canonical(reference),
        "resume_scenario must replay bit-identically to the run that \
         checkpointed at the interrupt epoch"
    );
}

#[test]
fn checkpoint_barrier_changes_nothing_for_cold_policies() {
    // Snapshots are observationally free for stateless policies: the
    // checkpointing run and the straight-through run coincide exactly.
    let inst = paper_shape_instance(5, 32461);
    let sc = scenario();

    let mut straight = PeriodicResolve::new(Resolver::Cold);
    let mut reference =
        dls_scenario::run_scenario(&inst, &sc, &mut straight, &cfg()).expect("reference runs");
    reference.reschedule_ms = 0.0;

    let mut policy = PeriodicResolve::new(Resolver::Cold);
    let mut session = ScenarioSession::new(&inst, sc, cfg());
    for _ in 0..2 {
        session.step(&mut policy).expect("step");
    }
    let _ = session.snapshot(&mut policy);
    session.run_to_end(&mut policy).expect("finishes");
    let report = session.into_report(&mut policy);

    assert_eq!(
        canonical(report),
        reference.to_json(),
        "a cold checkpointing run must equal the never-checkpointed run"
    );
}
