//! Multi-tenant isolation: N client threads hammer one daemon with
//! interleaved submissions, faults, and advances on their own tenants;
//! every tenant's final report must be bit-for-bit what its timeline
//! produces alone, in-process, on a private engine.

use dls_scenario::{JobSpec, PlatformChange, PlatformEvent};
use dls_service::{Op, RespBody, TenantSpec};
use dls_testkit::service::{canonical_report_json, expected_report, ServiceHarness};

/// Deterministic per-tenant workload: two admission batches (the second
/// strictly after every boundary the first two advances can scan) plus
/// one platform fault between them.
struct TenantPlan {
    name: String,
    spec: TenantSpec,
    batch1: Vec<JobSpec>,
    batch2: Vec<JobSpec>,
    fault: PlatformEvent,
}

fn plan(t: usize) -> TenantPlan {
    let clusters = 3 + t % 3;
    let spec = TenantSpec {
        clusters,
        seed: 100 + t as u64,
        policy: if t.is_multiple_of(2) {
            "periodic".into()
        } else {
            "periodic-cold".into()
        },
        period: 10.0,
        engine: if t.is_multiple_of(3) {
            "full".into()
        } else {
            "incremental".into()
        },
        record_events: t % 2 == 1,
    };
    let job = |arrival: f64, origin: usize, size: f64| JobSpec {
        arrival,
        origin: (origin % clusters) as u32,
        size,
        weight: 1.0,
    };
    let batch1 = vec![
        job(0.0, t, 120.0 + 10.0 * t as f64),
        job(4.5, t + 1, 90.0),
        job(11.0, t + 2, 60.0 + 5.0 * t as f64),
    ];
    // The client advances twice after batch 1, so the scanned boundary
    // is at most 2 * period = 20; everything below lands strictly later.
    let batch2 = vec![job(26.0, t + 1, 80.0), job(31.5, t, 45.0)];
    let fault = PlatformEvent {
        time: 35.0,
        change: PlatformChange::SetSpeed {
            cluster: (t % clusters) as u32,
            speed: 40.0 + 3.0 * t as f64,
        },
    };
    TenantPlan {
        name: format!("tenant-{t}"),
        spec,
        batch1,
        batch2,
        fault,
    }
}

#[test]
fn concurrent_tenants_are_isolated_bit_for_bit() {
    const N: usize = 6;
    // Fewer workers than tenants so pinning actually shares threads.
    let harness = ServiceHarness::start(3);
    let addr = harness.addr();

    let handles: Vec<_> = (0..N)
        .map(|t| {
            std::thread::spawn(move || {
                let p = plan(t);
                let mut c = dls_service::Client::connect(addr).expect("client connects");
                c.expect_ok(Op::CreateTenant {
                    tenant: p.name.clone(),
                    spec: p.spec.clone(),
                })
                .expect("create");
                c.expect_ok(Op::Submit {
                    tenant: p.name.clone(),
                    jobs: p.batch1.clone(),
                })
                .expect("submit batch 1");
                c.expect_ok(Op::Advance {
                    tenant: p.name.clone(),
                    epochs: 2,
                })
                .expect("advance");
                c.expect_ok(Op::Submit {
                    tenant: p.name.clone(),
                    jobs: p.batch2.clone(),
                })
                .expect("submit batch 2");
                c.expect_ok(Op::Fault {
                    tenant: p.name.clone(),
                    event: p.fault.clone(),
                })
                .expect("fault");
                c.expect_ok(Op::Run {
                    tenant: p.name.clone(),
                })
                .expect("run to end");
                let body = c
                    .expect_ok(Op::Query {
                        tenant: p.name.clone(),
                    })
                    .expect("query");
                match body {
                    RespBody::Report { tenant, report } => {
                        assert_eq!(tenant, p.name);
                        (p, report)
                    }
                    other => panic!("query returned {other:?}"),
                }
            })
        })
        .collect();

    for h in handles {
        let (p, daemon_report) = h.join().expect("tenant thread joins");
        let mut jobs = p.batch1.clone();
        jobs.extend(p.batch2.iter().cloned());
        let reference = expected_report(&p.name, &p.spec, &jobs, std::slice::from_ref(&p.fault));
        assert_eq!(
            canonical_report_json(&daemon_report),
            canonical_report_json(&reference),
            "tenant {} diverged from its single-tenant in-process run",
            p.name
        );
        assert_eq!(daemon_report.completed_jobs, jobs.len());
    }

    harness.stop().expect("daemon drains cleanly");
}

#[test]
fn daemon_rejects_cross_tenant_and_malformed_ops() {
    let harness = ServiceHarness::start(2);
    let mut c = harness.client();

    // Unknown tenant.
    let resp = c
        .request(Op::Query {
            tenant: "ghost".into(),
        })
        .expect("request completes");
    assert!(!resp.ok);
    assert!(resp.error.unwrap().contains("ghost"));

    // Invalid tenant name.
    let resp = c
        .request(Op::CreateTenant {
            tenant: "../etc/passwd".into(),
            spec: TenantSpec::default(),
        })
        .expect("request completes");
    assert!(!resp.ok);

    // Duplicate create.
    c.expect_ok(Op::CreateTenant {
        tenant: "solo".into(),
        spec: TenantSpec::default(),
    })
    .expect("create");
    let resp = c
        .request(Op::CreateTenant {
            tenant: "solo".into(),
            spec: TenantSpec::default(),
        })
        .expect("request completes");
    assert!(!resp.ok);
    assert!(resp.error.unwrap().contains("exists"));

    // Inadmissible submission: arrival in already-executed past.
    c.expect_ok(Op::Submit {
        tenant: "solo".into(),
        jobs: vec![JobSpec {
            arrival: 0.0,
            origin: 0,
            size: 50.0,
            weight: 1.0,
        }],
    })
    .expect("submit");
    c.expect_ok(Op::Advance {
        tenant: "solo".into(),
        epochs: 2,
    })
    .expect("advance");
    let resp = c
        .request(Op::Submit {
            tenant: "solo".into(),
            jobs: vec![JobSpec {
                arrival: 0.5,
                origin: 0,
                size: 10.0,
                weight: 1.0,
            }],
        })
        .expect("request completes");
    assert!(!resp.ok, "past-dated submission must be rejected");
    assert!(resp.error.unwrap().contains("admission"));

    harness.stop().expect("daemon drains cleanly");
}

#[test]
fn subscribe_streams_deltas() {
    let harness = ServiceHarness::start(1);
    let mut sub = harness.client();
    let mut driver = harness.client();

    driver
        .expect_ok(Op::CreateTenant {
            tenant: "watched".into(),
            spec: TenantSpec::default(),
        })
        .expect("create");
    sub.expect_ok(Op::Subscribe {
        tenant: "watched".into(),
    })
    .expect("subscribe");
    driver
        .expect_ok(Op::Submit {
            tenant: "watched".into(),
            jobs: vec![JobSpec {
                arrival: 0.0,
                origin: 0,
                size: 100.0,
                weight: 1.0,
            }],
        })
        .expect("submit");
    driver
        .expect_ok(Op::Run {
            tenant: "watched".into(),
        })
        .expect("run");

    let push = sub
        .wait_push(std::time::Duration::from_secs(10))
        .expect("push channel healthy")
        .expect("a delta arrives after the run");
    match push.push {
        dls_service::Push::Delta {
            tenant,
            done,
            completed_jobs,
            ..
        } => {
            assert_eq!(tenant, "watched");
            assert!(done);
            assert_eq!(completed_jobs, 1);
        }
        other => panic!("expected a delta push, got {other:?}"),
    }

    harness.stop().expect("daemon drains cleanly");
}
