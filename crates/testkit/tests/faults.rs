//! Fault-injection coverage: every recovery-ladder rung must be reachable,
//! the warm-LP breakdown path must walk the ladder end to end, and the
//! sim's self-audits must catch injected corruption.

use dls_scenario::{
    build_catalog_entry, run_scenario, PeriodicResolve, RecoveryLadder, RecoveryRung,
    ReschedulePolicy, Resolver, ScenarioConfig,
};
use dls_sim::LiveSim;
use dls_testkit::faults::{
    audit_catches, inject_warm_lp_faults, FaultPlan, FaultStrength, FaultyPolicy, InjectedError,
};

/// Each scripted fault strength selects exactly one ladder rung, and the
/// scenario still completes every job.
#[test]
fn every_ladder_rung_is_reachable() {
    for (strength, expected) in [
        (FaultStrength::Refactors(1), RecoveryRung::Refactor),
        (FaultStrength::NeedsRebuild, RecoveryRung::Rebuild),
        (FaultStrength::Unrecoverable, RecoveryRung::StaleScale),
    ] {
        let (inst, scenario) = build_catalog_entry("steady", 4, 29).unwrap();
        let plan = FaultPlan::new().at(4, InjectedError::NumericalBreakdown, strength);
        let mut policy = RecoveryLadder::new(FaultyPolicy::new(
            PeriodicResolve::new(Resolver::warm(&inst).unwrap()),
            plan,
        ));
        let report =
            run_scenario(&inst, &scenario, &mut policy, &ScenarioConfig::default()).unwrap();
        assert_eq!(
            report.completed_jobs,
            report.jobs,
            "{strength:?}: {}",
            report.summary()
        );
        let recs = report.recovery_records();
        assert_eq!(recs.len(), 1, "{strength:?}: {recs:?}");
        assert_eq!(recs[0].rung, expected, "{strength:?}: {recs:?}");
        assert_eq!(recs[0].epoch, 4, "{strength:?}: {recs:?}");
    }
}

/// Seeded plans are reproducible, and a randomly drawn fault storm is
/// fully absorbed by the ladder: one recovery per planned epoch, no lost
/// jobs.
#[test]
fn seeded_fault_storms_are_deterministic_and_absorbed() {
    let plan = FaultPlan::seeded(97, 15, 4);
    assert_eq!(plan.epochs(), FaultPlan::seeded(97, 15, 4).epochs());
    assert_eq!(plan.epochs().len(), 4, "{:?}", plan.epochs());
    assert!(plan.epochs().iter().all(|&e| (1..15).contains(&e)));

    let (inst, scenario) = build_catalog_entry("steady", 4, 97).unwrap();
    let mut policy = RecoveryLadder::new(FaultyPolicy::new(
        PeriodicResolve::new(Resolver::warm(&inst).unwrap()),
        plan.clone(),
    ));
    let report = run_scenario(&inst, &scenario, &mut policy, &ScenarioConfig::default()).unwrap();
    assert_eq!(report.completed_jobs, report.jobs, "{}", report.summary());
    let rescued: Vec<usize> = report.recovery_records().iter().map(|r| r.epoch).collect();
    assert_eq!(rescued, plan.epochs(), "one rescue per planned fault");
}

/// Real `LpError`s queued inside the persistent warm simplex: one fault is
/// cleared by a refactorise-and-retry; a burst outlasting the retry budget
/// escalates to the rebuild rung. End-to-end through `WarmSimplex::solve`,
/// not the scripted shim.
#[test]
fn warm_lp_fault_bursts_escalate_up_the_ladder() {
    for (burst, expected) in [(1usize, RecoveryRung::Refactor), (3, RecoveryRung::Rebuild)] {
        let (inst, scenario) = build_catalog_entry("steady", 4, 53).unwrap();
        let mut inner = PeriodicResolve::new(Resolver::warm(&inst).unwrap());
        inject_warm_lp_faults(
            &mut inner,
            &vec![dls_lp::LpError::NumericalBreakdown("injected burst"); burst],
        );
        let mut policy = RecoveryLadder::new(inner);
        let report =
            run_scenario(&inst, &scenario, &mut policy, &ScenarioConfig::default()).unwrap();
        assert_eq!(report.completed_jobs, report.jobs, "{}", report.summary());
        let recs = report.recovery_records();
        assert_eq!(recs.len(), 1, "burst {burst}: {recs:?}");
        assert_eq!(recs[0].rung, expected, "burst {burst}: {recs:?}");
        assert!(recs[0].error.contains("injected burst"));
    }
}

/// Outside fault windows the wrapper is transparent: no recoveries, same
/// report as the bare policy (modulo wall-clock timing).
#[test]
fn faulty_policy_is_transparent_between_faults() {
    let (inst, scenario) = build_catalog_entry("steady", 4, 11).unwrap();
    let mut bare = PeriodicResolve::new(Resolver::Cold);
    let mut base = run_scenario(&inst, &scenario, &mut bare, &ScenarioConfig::default()).unwrap();
    let mut wrapped = FaultyPolicy::new(PeriodicResolve::new(Resolver::Cold), FaultPlan::new());
    let mut report =
        run_scenario(&inst, &scenario, &mut wrapped, &ScenarioConfig::default()).unwrap();
    assert_eq!(wrapped.injected(), 0);
    assert!(wrapped.name().starts_with("faulty("));
    base.reschedule_ms = 0.0;
    report.reschedule_ms = 0.0;
    base.policy = String::new();
    report.policy = String::new();
    assert_eq!(base.to_json(), report.to_json());
}

/// The live sim's heap auditor catches both corruption modes — and stays
/// quiet on a healthy sim.
#[test]
fn heap_audit_catches_injected_corruption() {
    assert!(audit_catches(LiveSim::debug_corrupt_heap_phantom));
    assert!(audit_catches(LiveSim::debug_corrupt_heap_dropped));
    assert!(!audit_catches(|_| {}), "healthy sim must pass its audit");
}

/// Mid-batch mutations against a stale flow handle are rejected loudly
/// (an assert), never applied silently: the failure mode a crash-recovery
/// bug would first show up as.
#[test]
fn stale_handle_mutations_are_rejected() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let caught = catch_unwind(AssertUnwindSafe(|| {
        let cfg = dls_sim::LiveConfig::default();
        let mut sim = LiveSim::new(&[10.0, 100.0], &[0.0, 1.0], cfg);
        let ids = sim.add_flows(vec![dls_sim::LiveFlowSpec {
            src: dls_platform::ClusterId(0),
            dst: dls_platform::ClusterId(1),
            cap: f64::INFINITY,
            demand: 0.0,
            parts: vec![dls_sim::ChunkPart {
                job: 0,
                amount: 5.0,
            }],
        }]);
        let retired = sim.retire_flows(&ids);
        assert_eq!(retired.len(), 1);
        // The handle is now stale: constraining it must panic.
        sim.set_flow_constraints(ids[0], 1.0, 1.0);
    }));
    assert!(
        caught.is_err(),
        "stale-handle mutation was applied silently"
    );
}
