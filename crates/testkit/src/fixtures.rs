//! Deterministic platform/problem fixtures.
//!
//! Every fixture is a pure function of its arguments (seeds included), so
//! two test files asking for the same fixture compare the same object.

use dls_core::{Objective, ProblemInstance};
use dls_platform::{Platform, PlatformBuilder, PlatformConfig, PlatformGenerator};

/// The canonical payoff spread and payoff-stream decoupling constant used by
/// seeded fixtures (matches the experiment runner's convention).
pub const PAYOFF_SPREAD: f64 = 0.5;

/// A chain of `n` identical clusters (speed 100, local bandwidth 60) where
/// consecutive clusters are joined by a scarce backbone link (bandwidth 15
/// per connection, at most 3 connections). End-to-end routes are maximally
/// multi-hop: the stress fixture for shared-link budgets (Eq. 7d).
pub fn line_platform(n: usize) -> Platform {
    assert!(n >= 2, "a line needs at least two clusters");
    let mut b = PlatformBuilder::new();
    let c: Vec<_> = (0..n).map(|_| b.add_cluster(100.0, 60.0)).collect();
    for w in c.windows(2) {
        b.connect_clusters(w[0], w[1], 15.0, 3);
    }
    b.build().expect("line platform is well-formed")
}

/// [`line_platform`] wrapped into a MAXMIN instance with the canonical
/// spread payoffs (seed 7, matching the seed tests).
pub fn line_instance(n: usize) -> ProblemInstance {
    ProblemInstance::with_spread_payoffs(line_platform(n), Objective::MaxMin, PAYOFF_SPREAD, 7)
}

/// The small asymmetric pair used across the sim/schedule unit tests:
/// speeds 100/50, local bandwidths 20/30, one backbone link (bw 10, ≤ 2
/// connections).
pub fn two_cluster_platform() -> Platform {
    let mut b = PlatformBuilder::new();
    let c0 = b.add_cluster(100.0, 20.0);
    let c1 = b.add_cluster(50.0, 30.0);
    b.connect_clusters(c0, c1, 10.0, 2);
    b.build().expect("pair platform is well-formed")
}

/// [`two_cluster_platform`] with uniform payoffs.
pub fn two_cluster_instance(objective: Objective) -> ProblemInstance {
    ProblemInstance::uniform(two_cluster_platform(), objective)
}

/// A random platform from the paper's generator, fully determined by
/// `(seed, k, connectivity)`.
pub fn random_platform(seed: u64, k: usize, connectivity: f64) -> Platform {
    let cfg = PlatformConfig {
        num_clusters: k,
        connectivity,
        ..PlatformConfig::default()
    };
    PlatformGenerator::new(seed).generate(&cfg)
}

/// [`random_platform`] wrapped into a uniform-payoff instance.
pub fn random_instance(
    seed: u64,
    k: usize,
    connectivity: f64,
    objective: Objective,
) -> ProblemInstance {
    ProblemInstance::uniform(random_platform(seed, k, connectivity), objective)
}

/// The standard cross-crate instance matrix: four platform shapes (dense
/// small, mid, sparse large, complete) × both objectives, uniform payoffs.
/// This is the spread `tests/pipeline.rs` sweeps.
pub fn instance_matrix() -> Vec<ProblemInstance> {
    let mut out = Vec::new();
    for (seed, k, conn) in [(1u64, 4usize, 0.7), (2, 6, 0.4), (3, 8, 0.2), (4, 5, 1.0)] {
        let p = random_platform(seed, k, conn);
        for objective in [Objective::Sum, Objective::MaxMin] {
            out.push(ProblemInstance::uniform(p.clone(), objective));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let a = line_instance(5);
        let b = line_instance(5);
        assert_eq!(a.payoffs, b.payoffs);
        assert_eq!(a.platform.num_clusters(), b.platform.num_clusters());
        let p1 = random_platform(3, 6, 0.5);
        let p2 = random_platform(3, 6, 0.5);
        assert_eq!(p1.to_json(), p2.to_json());
    }

    #[test]
    fn matrix_covers_both_objectives() {
        let m = instance_matrix();
        assert_eq!(m.len(), 8);
        assert!(m.iter().any(|i| i.objective == Objective::Sum));
        assert!(m.iter().any(|i| i.objective == Objective::MaxMin));
    }
}
