//! Eq. 7 validity and end-to-end execution assertions.

use crate::approx::assert_le_slack;
use dls_core::heuristics::UpperBound;
use dls_core::schedule::ScheduleBuilder;
use dls_core::{Allocation, ProblemInstance};
use dls_sim::{SimConfig, SimReport, Simulator};

/// Panics with every violated Eq. 7 constraint when `alloc` is invalid for
/// `inst`. `what` names the scenario in the failure message.
#[track_caller]
pub fn assert_valid_allocation(inst: &ProblemInstance, alloc: &Allocation, what: &str) {
    if let Err(violations) = alloc.validate(inst) {
        let lines: Vec<String> = violations.iter().map(|v| format!("  - {v}")).collect();
        panic!(
            "{what}: allocation violates Eq. 7 ({} constraint(s)):\n{}",
            violations.len(),
            lines.join("\n")
        );
    }
}

/// Solves the LP relaxation upper bound for `inst`, panicking with context
/// on solver failure. Compute this once per instance and feed it to
/// [`assert_within_bound_of`] when checking several heuristics — each call
/// is a full LP solve.
#[track_caller]
pub fn lp_bound(inst: &ProblemInstance, what: &str) -> f64 {
    UpperBound::default()
        .bound(inst)
        .unwrap_or_else(|e| panic!("{what}: LP bound failed to solve: {e}"))
}

/// Panics unless `alloc`'s objective stays within `slack` (relative, scaled
/// by `1 + bound`) of the LP relaxation bound. Solves the LP itself; in a
/// loop over heuristics prefer [`lp_bound`] + [`assert_within_bound_of`].
#[track_caller]
pub fn assert_within_bound(
    inst: &ProblemInstance,
    alloc: &Allocation,
    slack: f64,
    what: &str,
) -> f64 {
    assert_within_bound_of(inst, alloc, lp_bound(inst, what), slack, what)
}

/// Panics unless `alloc`'s objective stays within `slack` of a precomputed
/// `bound`. Returns the achieved value.
#[track_caller]
pub fn assert_within_bound_of(
    inst: &ProblemInstance,
    alloc: &Allocation,
    bound: f64,
    slack: f64,
    what: &str,
) -> f64 {
    let value = alloc.objective_value(inst);
    assert_le_slack(value, bound, slack, what);
    value
}

/// What [`assert_schedule_executes`] requires of the simulation.
#[derive(Debug, Clone)]
pub struct ExecutionCheck {
    /// Minimum fraction of the predicted throughput (see
    /// [`SimReport::achieves`]).
    pub min_efficiency: f64,
    /// Maximum tolerated transfer lateness (time units).
    pub max_lateness: f64,
    /// Require per-link connection caps to hold at every instant.
    pub connection_caps: bool,
    /// Simulator configuration.
    pub sim: SimConfig,
}

impl Default for ExecutionCheck {
    fn default() -> Self {
        ExecutionCheck {
            min_efficiency: 0.85,
            max_lateness: 1e-6,
            connection_caps: true,
            // Tests always cross-check the incremental allocator against
            // the full `allocate_rates` oracle at every simulation event
            // (divergence beyond 1e-9 relative panics inside the engine).
            sim: SimConfig {
                oracle_check: true,
                ..SimConfig::default()
            },
        }
    }
}

/// Validates `alloc`, reconstructs the periodic schedule, executes it in the
/// simulator, and asserts the whole chain: Eq. 7 validity, schedule
/// validity, throughput efficiency, lateness, and connection caps. Returns
/// the report for further scenario-specific assertions.
#[track_caller]
pub fn assert_schedule_executes(
    inst: &ProblemInstance,
    alloc: &Allocation,
    check: &ExecutionCheck,
    what: &str,
) -> SimReport {
    assert_valid_allocation(inst, alloc, what);
    let schedule = ScheduleBuilder::default()
        .build(inst, alloc)
        .unwrap_or_else(|e| panic!("{what}: schedule reconstruction failed: {e}"));
    schedule
        .validate(inst)
        .unwrap_or_else(|e| panic!("{what}: reconstructed schedule invalid: {e}"));
    let report = Simulator::new(inst).run(&schedule, &check.sim);
    assert!(
        report.achieves(check.min_efficiency),
        "{what}: schedule underperforms: {}",
        report.summary()
    );
    assert!(
        report.max_transfer_lateness <= check.max_lateness,
        "{what}: transfers late by {}",
        report.max_transfer_lateness
    );
    if check.connection_caps {
        assert!(
            report.connection_caps_respected,
            "{what}: connection caps exceeded (peaks {:?})",
            report.peak_connections
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use dls_core::heuristics::{Greedy, Heuristic};
    use dls_core::Objective;

    #[test]
    fn valid_chain_passes() {
        let inst = fixtures::two_cluster_instance(Objective::MaxMin);
        let alloc = Greedy::default().solve(&inst).unwrap();
        assert_valid_allocation(&inst, &alloc, "greedy pair");
        assert_within_bound(&inst, &alloc, 1e-5, "greedy pair");
        assert_schedule_executes(&inst, &alloc, &ExecutionCheck::default(), "greedy pair");
    }

    #[test]
    #[should_panic(expected = "violates Eq. 7")]
    fn invalid_allocation_is_reported() {
        let inst = fixtures::two_cluster_instance(Objective::MaxMin);
        let mut alloc = Allocation::zeros(2);
        // Local compute beyond cluster 0's speed.
        alloc.alpha[0] = 1e6;
        assert_valid_allocation(&inst, &alloc, "overdriven");
    }
}
