//! Driver helpers for end-to-end CLI tests.
//!
//! The binary path comes from Cargo's `CARGO_BIN_EXE_<name>` environment
//! variable, which is only set while compiling the test targets of the
//! package that *owns* the binary — so the path cannot be resolved inside
//! this library crate. The [`dls_cli!`] macro expands `env!(...)` at the
//! caller's compile site instead; the run helpers then take any prepared
//! `Command`.

use std::io::Write as _;
use std::process::{Command, Output, Stdio};

/// Expands to a `std::process::Command` for the `dls-cli` binary. Only
/// usable from test targets of the package that defines the binary (the
/// facade crate's `tests/`).
#[macro_export]
macro_rules! dls_cli {
    () => {
        ::std::process::Command::new(env!("CARGO_BIN_EXE_dls-cli"))
    };
    ($($arg:expr),+ $(,)?) => {{
        let mut cmd = ::std::process::Command::new(env!("CARGO_BIN_EXE_dls-cli"));
        cmd.args([$($arg),+]);
        cmd
    }};
}

/// Runs the command, asserting success, and returns stdout as UTF-8.
#[track_caller]
pub fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("binary spawns");
    assert!(
        out.status.success(),
        "command failed ({}):\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

/// Runs the command with `input` piped to stdin, asserting success, and
/// returns stdout as UTF-8.
#[track_caller]
pub fn run_with_stdin(cmd: &mut Command, input: &str) -> String {
    let mut child = cmd
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("stdin accepts input");
    let out = child.wait_with_output().expect("binary runs");
    assert!(
        out.status.success(),
        "command failed ({}):\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

/// Runs the command, asserting that it exits with a *failure* status, and
/// returns the full output for message checks.
#[track_caller]
pub fn run_expect_fail(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("binary spawns");
    assert!(
        !out.status.success(),
        "command unexpectedly succeeded:\nstdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    out
}

/// Parses JSON text into the vendored `serde` value tree (handy for
/// asserting on CLI JSON output without declaring ad-hoc structs).
#[track_caller]
pub fn parse_json(s: &str) -> serde_json::Value {
    serde_json::from_str_value(s).expect("valid JSON")
}

/// A scratch directory under the target-adjacent temp root, unique per test
/// name, created on first use.
pub fn scratch_dir(test: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dls-testkit-{test}"));
    std::fs::create_dir_all(&dir).expect("scratch dir creatable");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_ok_captures_stdout() {
        let out = run_ok(Command::new("echo").arg("hello"));
        assert_eq!(out.trim(), "hello");
    }

    #[test]
    fn run_expect_fail_accepts_failure() {
        let out = run_expect_fail(&mut Command::new("false"));
        assert!(!out.status.success());
    }

    #[test]
    fn parse_json_roundtrips() {
        let v = parse_json(r#"{"a": [1, 2.5, null]}"#);
        assert!(v.get("a").is_some());
    }
}
