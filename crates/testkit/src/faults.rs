//! Deterministic fault injection for the failure-domain test story.
//!
//! The recovery ladder ([`dls_scenario::RecoveryLadder`]) only earns its
//! keep if every rung is *reachable under test* — a rung nobody can trigger
//! is dead code with a reassuring name. This module provides the scripted
//! failure sources that make each rung fire on demand:
//!
//! - [`FaultPlan`]: a per-epoch schedule of solver faults, either placed
//!   explicitly ([`FaultPlan::at`]) or drawn from a seeded RNG
//!   ([`FaultPlan::seeded`]) so randomised suites stay reproducible;
//! - [`FaultyPolicy`]: wraps any [`ReschedulePolicy`] and raises the
//!   planned fault instead of delegating, clearing it according to the
//!   fault's [`FaultStrength`] — which is exactly what selects the ladder
//!   rung that rescues the epoch;
//! - [`inject_warm_lp_faults`]: queues *real* [`dls_lp::LpError`]s inside a
//!   warm resolver's persistent simplex, for end-to-end coverage of the
//!   numerical-breakdown path (not just the scripted one);
//! - [`audit_catches`]: drives the live-sim heap auditor against an
//!   injected corruption and reports whether it was caught.
//!
//! ```no_run
//! use dls_scenario::{PeriodicResolve, RecoveryLadder, Resolver};
//! use dls_testkit::faults::{FaultPlan, FaultStrength, FaultyPolicy, InjectedError};
//!
//! let plan = FaultPlan::new().at(3, InjectedError::NumericalBreakdown, FaultStrength::Refactors(1));
//! let mut policy = RecoveryLadder::new(FaultyPolicy::new(
//!     PeriodicResolve::new(Resolver::Cold),
//!     plan,
//! ));
//! // run_scenario(..., &mut policy, ...) now fails at epoch 3 and the
//! // ladder's Refactor rung rescues it.
//! ```

use dls_core::{Allocation, ProblemInstance, SolveError};
use dls_lp::LpError;
use dls_scenario::{PolicyCtx, PolicyState, RecoveryLevel, RecoveryRecord, ReschedulePolicy};
use dls_sim::{ChunkPart, LiveConfig, LiveFlowSpec, LiveSim, SimEngine};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// Which recoverable solver error a planned fault raises. All of these
/// satisfy [`dls_scenario::recoverable`], so the ladder engages rather than
/// aborting the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedError {
    /// [`LpError::NumericalBreakdown`].
    NumericalBreakdown,
    /// [`LpError::SingularBasis`].
    SingularBasis,
    /// [`LpError::IterationLimit`].
    IterationLimit,
    /// [`SolveError::UnexpectedStatus`].
    UnexpectedStatus,
}

impl InjectedError {
    /// Materialises the error value this fault raises.
    pub fn raise(self) -> SolveError {
        match self {
            InjectedError::NumericalBreakdown => {
                SolveError::Lp(LpError::NumericalBreakdown("injected fault"))
            }
            InjectedError::SingularBasis => SolveError::Lp(LpError::SingularBasis),
            InjectedError::IterationLimit => {
                SolveError::Lp(LpError::IterationLimit { iterations: 0 })
            }
            InjectedError::UnexpectedStatus => SolveError::UnexpectedStatus("injected fault"),
        }
    }

    fn all() -> [InjectedError; 4] {
        [
            InjectedError::NumericalBreakdown,
            InjectedError::SingularBasis,
            InjectedError::IterationLimit,
            InjectedError::UnexpectedStatus,
        ]
    }
}

/// How stubborn a planned fault is — equivalently, which recovery-ladder
/// rung is the first one able to rescue the epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStrength {
    /// Cleared after `n` successful [`RecoveryLevel::Refactor`] repairs
    /// (or one [`RecoveryLevel::Rebuild`]): with `n` within the ladder's
    /// retry budget, the **Refactor** rung rescues.
    Refactors(u32),
    /// Refactoring never helps; only a [`RecoveryLevel::Rebuild`] clears
    /// it: the **Rebuild** rung rescues.
    NeedsRebuild,
    /// No repair clears it and the policy refuses recovery outright, so
    /// only degraded mode — the **StaleScale** rung — keeps the epoch
    /// alive.
    Unrecoverable,
}

/// A deterministic, per-epoch schedule of solver faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    by_epoch: BTreeMap<usize, (InjectedError, FaultStrength)>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Plans `error` with the given `strength` at `epoch` (replacing any
    /// fault already planned there).
    pub fn at(mut self, epoch: usize, error: InjectedError, strength: FaultStrength) -> Self {
        self.by_epoch.insert(epoch, (error, strength));
        self
    }

    /// Draws `count` distinct fault epochs from `1..epochs` (epoch 0 is
    /// skipped: the StaleScale rung needs an installed allocation to
    /// degrade to) with random errors and *recoverable* strengths, fully
    /// determined by `seed`.
    pub fn seeded(seed: u64, epochs: usize, count: usize) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        let lo = 1usize;
        if epochs <= lo {
            return plan;
        }
        let mut placed = 0;
        let mut tries = 0;
        while placed < count && tries < 16 * count.max(1) {
            tries += 1;
            let epoch = rng.gen_range(lo..epochs);
            if plan.by_epoch.contains_key(&epoch) {
                continue;
            }
            let error = InjectedError::all()[rng.gen_range(0usize..4)];
            let strength = if rng.gen_bool(0.5) {
                FaultStrength::Refactors(rng.gen_range(1u32..=2))
            } else {
                FaultStrength::NeedsRebuild
            };
            plan.by_epoch.insert(epoch, (error, strength));
            placed += 1;
        }
        plan
    }

    /// The planned fault epochs, ascending.
    pub fn epochs(&self) -> Vec<usize> {
        self.by_epoch.keys().copied().collect()
    }

    /// The fault planned at `epoch`, if any.
    pub fn fault_at(&self, epoch: usize) -> Option<(InjectedError, FaultStrength)> {
        self.by_epoch.get(&epoch).copied()
    }
}

/// The active fault a [`FaultyPolicy`] is currently raising.
#[derive(Debug, Clone, Copy)]
struct ActiveFault {
    epoch: usize,
    error: InjectedError,
    strength: FaultStrength,
    refactors_left: u32,
    cleared: bool,
}

/// Wraps a real policy and raises planned faults at their epochs; between
/// faults it is transparent. Repair calls ([`ReschedulePolicy::recover`])
/// are honoured according to the active fault's [`FaultStrength`] *and*
/// forwarded to the wrapped policy, so a warm resolver underneath really
/// does refactorise/rebuild while the script decides when the fault lifts.
#[derive(Debug)]
pub struct FaultyPolicy<P> {
    inner: P,
    plan: FaultPlan,
    active: Option<ActiveFault>,
    injected: u32,
}

impl<P: ReschedulePolicy> FaultyPolicy<P> {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: P, plan: FaultPlan) -> Self {
        FaultyPolicy {
            inner,
            plan,
            active: None,
            injected: 0,
        }
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The wrapped policy, mutably.
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }

    /// How many faults have been raised so far (a fault re-raised across
    /// ladder retries within one epoch counts each time).
    pub fn injected(&self) -> u32 {
        self.injected
    }
}

impl<P: ReschedulePolicy> ReschedulePolicy for FaultyPolicy<P> {
    fn name(&self) -> String {
        format!("faulty({})", self.inner.name())
    }

    fn decide(&mut self, ctx: &PolicyCtx<'_>) -> Result<Option<Allocation>, SolveError> {
        // A fault window is one epoch wide: whatever state it is in, it
        // expires when the engine moves on (the StaleScale rung resolves
        // the epoch *without* clearing the fault).
        if self.active.is_some_and(|a| a.epoch != ctx.epoch) {
            self.active = None;
        }
        if self.active.is_none() {
            if let Some((error, strength)) = self.plan.fault_at(ctx.epoch) {
                self.active = Some(ActiveFault {
                    epoch: ctx.epoch,
                    error,
                    strength,
                    refactors_left: match strength {
                        FaultStrength::Refactors(n) => n,
                        _ => 0,
                    },
                    cleared: false,
                });
            }
        }
        match &self.active {
            Some(a) if !a.cleared => {
                self.injected += 1;
                Err(a.error.raise())
            }
            _ => self.inner.decide(ctx),
        }
    }

    fn recover(&mut self, level: RecoveryLevel, inst: &ProblemInstance) -> bool {
        let Some(a) = self.active.as_mut().filter(|a| !a.cleared) else {
            return self.inner.recover(level, inst);
        };
        let repaired = match (a.strength, level) {
            (FaultStrength::Unrecoverable, _) => false,
            (FaultStrength::Refactors(_), RecoveryLevel::Refactor) => {
                a.refactors_left = a.refactors_left.saturating_sub(1);
                a.cleared = a.refactors_left == 0;
                true
            }
            (FaultStrength::NeedsRebuild, RecoveryLevel::Refactor) => true,
            (_, RecoveryLevel::Rebuild) => {
                a.cleared = true;
                true
            }
        };
        if repaired {
            // Keep the wrapped policy's solver state honest: a rung that
            // "repairs" the script should repair the real resolver too.
            self.inner.recover(level, inst);
        }
        repaired
    }

    fn drain_recovery(&mut self) -> Vec<RecoveryRecord> {
        self.inner.drain_recovery()
    }

    fn export_state(&self) -> PolicyState {
        self.inner.export_state()
    }

    fn import_state(&mut self, state: &PolicyState) {
        self.inner.import_state(state);
    }
}

/// Queues real [`LpError`]s inside a [`dls_scenario::PeriodicResolve`]'s
/// warm resolver: each subsequent warm solve pops one and fails with it,
/// end to end through `WarmSimplex::solve`. Panics when the policy does not
/// carry a warm resolver (there is no simplex to inject into).
pub fn inject_warm_lp_faults(policy: &mut dls_scenario::PeriodicResolve, errors: &[LpError]) {
    let warm = policy
        .resolver_mut()
        .warm_mut()
        .expect("inject_warm_lp_faults needs a warm resolver");
    for e in errors {
        warm.debug_inject_fault(dls_lp::InjectedFault::Solve(e.clone()));
    }
}

/// Builds a minimal two-cluster live sim with one in-flight transfer,
/// applies `corrupt` to it, and reports whether [`LiveSim::audit`] catches
/// the damage. The pre-corruption audit must pass — a helper that flags a
/// healthy sim would prove nothing.
pub fn audit_catches(corrupt: impl FnOnce(&mut LiveSim)) -> bool {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let cfg = LiveConfig {
        engine: SimEngine::Incremental,
        ..LiveConfig::default()
    };
    let mut sim = LiveSim::new(&[10.0, 100.0], &[0.0, 1.0], cfg);
    sim.add_flows(vec![LiveFlowSpec {
        src: dls_platform::ClusterId(0),
        dst: dls_platform::ClusterId(1),
        cap: f64::INFINITY,
        demand: 0.0,
        parts: vec![ChunkPart {
            job: 0,
            amount: 20.0,
        }],
    }]);
    sim.audit("pre-corruption");
    corrupt(&mut sim);
    catch_unwind(AssertUnwindSafe(move || sim.audit("post-corruption"))).is_err()
}
