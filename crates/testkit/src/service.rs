//! In-process harness for the `dls-service` daemon.
//!
//! Spins a [`Server`] on an ephemeral port inside the test process,
//! hands out [`Client`] connections, and shuts the daemon down (with
//! its full drain-and-checkpoint path) on [`ServiceHarness::stop`].
//! Also builds the single-tenant *reference* run — the same spec and
//! timeline executed through plain [`run_scenario`] — so isolation
//! tests can assert a tenant's daemon-side report is bit-identical to
//! what it would have produced alone in-process.

use dls_experiments::PolicyKind;
use dls_scenario::catalog::paper_shape_instance;
use dls_scenario::{
    run_scenario, JobSpec, PlatformEvent, Scenario, ScenarioConfig, ScenarioReport, ScenarioSession,
};
use dls_service::{Client, Server, ServiceConfig, TenantSpec};
use dls_sim::SimEngine;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running in-process daemon plus the knobs tests need.
pub struct ServiceHarness {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<std::io::Result<()>>>,
    restored: usize,
}

impl ServiceHarness {
    /// Binds and runs a daemon on `127.0.0.1:0` with `workers` worker
    /// threads and no checkpointing.
    pub fn start(workers: usize) -> ServiceHarness {
        Self::start_with(workers, None, 0)
    }

    /// Binds and runs a daemon with a checkpoint directory and periodic
    /// checkpoint interval (`0` = only on drain/explicit request).
    pub fn start_with(
        workers: usize,
        checkpoint_dir: Option<PathBuf>,
        checkpoint_every: usize,
    ) -> ServiceHarness {
        let server = Server::bind(ServiceConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            checkpoint_dir,
            checkpoint_every,
        })
        .expect("harness daemon binds an ephemeral port");
        let addr = server.local_addr().expect("bound socket has an address");
        let shutdown = server.shutdown_handle();
        let restored = server.restored_tenants();
        let handle = std::thread::Builder::new()
            .name("dls-service-harness".into())
            .spawn(move || server.run())
            .expect("harness daemon thread spawns");
        ServiceHarness {
            addr,
            shutdown,
            handle: Some(handle),
            restored,
        }
    }

    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Tenants restored from the checkpoint directory at startup.
    pub fn restored_tenants(&self) -> usize {
        self.restored
    }

    /// Opens a fresh client connection.
    pub fn client(&self) -> Client {
        Client::connect(self.addr).expect("harness client connects")
    }

    /// Requests shutdown and joins the daemon thread, propagating its
    /// exit result (the drain path checkpoints every tenant first when a
    /// checkpoint directory is configured).
    pub fn stop(mut self) -> std::io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        match self.handle.take() {
            Some(h) => h.join().expect("harness daemon thread joins"),
            None => Ok(()),
        }
    }
}

impl Drop for ServiceHarness {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Runs the `(spec, jobs, events)` timeline alone, in-process, exactly
/// as the daemon builds it for tenant `name`: paper-shape platform from
/// `(clusters, seed)`, the spec's policy, the spec's engine. The
/// returned report is the bit-for-bit reference for what the daemon
/// must produce for that tenant regardless of its neighbours
/// (`reschedule_ms` excepted — wall-clock is not part of the contract).
pub fn expected_report(
    name: &str,
    spec: &TenantSpec,
    jobs: &[JobSpec],
    events: &[PlatformEvent],
) -> ScenarioReport {
    let inst = paper_shape_instance(spec.clusters, spec.seed);
    let kind = PolicyKind::parse(&spec.policy).expect("reference spec has a known policy");
    let mut policy = kind.build(&inst).expect("reference policy builds");
    let engine = match spec.engine.as_str() {
        "incremental" => SimEngine::Incremental,
        "full" => SimEngine::FullRecompute,
        other => panic!("reference spec has unknown engine `{other}`"),
    };
    let mut jobs = jobs.to_vec();
    jobs.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
    let mut events = events.to_vec();
    events.sort_by(|a, b| a.time.total_cmp(&b.time));
    let scenario = Scenario {
        name: name.to_string(),
        period: spec.period,
        jobs,
        platform_events: events,
    };
    let cfg = ScenarioConfig {
        engine,
        record_events: spec.record_events,
        ..ScenarioConfig::default()
    };
    run_scenario(&inst, &scenario, policy.as_mut(), &cfg).expect("reference run succeeds")
}

/// The bit-for-bit reference for a tenant whose daemon was drained (and
/// checkpointed) after `checkpoint_epochs` epochs, then restarted and run
/// to completion. Taking a checkpoint fires the live policy's
/// [`dls_scenario::ReschedulePolicy::checkpoint_barrier`], which for warm
/// LP contexts realigns the factorisation with what a restore rebuilds —
/// so the reference must itself checkpoint at the same epoch, not merely
/// run the merged timeline straight through ([`expected_report`]).
pub fn expected_report_with_checkpoint(
    name: &str,
    spec: &TenantSpec,
    jobs: &[JobSpec],
    events: &[PlatformEvent],
    checkpoint_epochs: usize,
) -> ScenarioReport {
    let inst = paper_shape_instance(spec.clusters, spec.seed);
    let kind = PolicyKind::parse(&spec.policy).expect("reference spec has a known policy");
    let mut policy = kind.build(&inst).expect("reference policy builds");
    let engine = match spec.engine.as_str() {
        "incremental" => SimEngine::Incremental,
        "full" => SimEngine::FullRecompute,
        other => panic!("reference spec has unknown engine `{other}`"),
    };
    let mut jobs = jobs.to_vec();
    jobs.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
    let mut events = events.to_vec();
    events.sort_by(|a, b| a.time.total_cmp(&b.time));
    let scenario = Scenario {
        name: name.to_string(),
        period: spec.period,
        jobs,
        platform_events: events,
    };
    let cfg = ScenarioConfig {
        engine,
        record_events: spec.record_events,
        ..ScenarioConfig::default()
    };
    let mut session = ScenarioSession::new(&inst, scenario, cfg);
    for _ in 0..checkpoint_epochs {
        session
            .step(policy.as_mut())
            .expect("reference session steps");
    }
    let _ = session.snapshot(policy.as_mut());
    session
        .run_to_end(policy.as_mut())
        .expect("reference session finishes");
    session.into_report(policy.as_mut())
}

/// Serialises a report with `reschedule_ms` zeroed — the canonical
/// bit-identity comparison form (wall-clock timing is measurement, not
/// schedule state).
pub fn canonical_report_json(report: &ScenarioReport) -> String {
    let mut r = report.clone();
    r.reschedule_ms = 0.0;
    r.to_json()
}
