//! Tolerant float comparison helpers.
//!
//! The canonical implementation lives in [`dls_core::approx`] so that
//! non-test crates (notably `dls_sim`, which `dls-testkit` depends on) can
//! share the same scale-relative comparison convention without a dependency
//! cycle. This module re-exports it under the historical testkit path.

pub use dls_core::approx::{assert_close, assert_le_slack, close, rel_err};
