//! Shared cross-crate test harness.
//!
//! Every integration suite in this workspace needs the same four things:
//! deterministic platform/problem fixtures, "is this allocation actually
//! Eq. 7-valid" assertions, tolerant float comparisons, and a driver for the
//! `dls-cli` binary. They live here once so later PRs compose tests instead
//! of re-rolling fixtures per file.
//!
//! ```no_run
//! use dls_testkit::fixtures;
//! use dls_testkit::assertions::assert_valid_allocation;
//! # use dls_core::heuristics::{Greedy, Heuristic};
//!
//! let inst = fixtures::line_instance(5);
//! let alloc = Greedy::default().solve(&inst).unwrap();
//! assert_valid_allocation(&inst, &alloc, "greedy on the line platform");
//! ```

pub mod approx;
pub mod assertions;
pub mod cli;
pub mod faults;
pub mod fixtures;
pub mod service;

pub use approx::{assert_close, assert_le_slack, close, rel_err};
pub use assertions::{
    assert_schedule_executes, assert_valid_allocation, assert_within_bound, assert_within_bound_of,
    lp_bound, ExecutionCheck,
};
pub use cli::{run_expect_fail, run_ok, run_with_stdin};
pub use faults::{
    audit_catches, inject_warm_lp_faults, FaultPlan, FaultStrength, FaultyPolicy, InjectedError,
};
pub use service::{
    canonical_report_json, expected_report, expected_report_with_checkpoint, ServiceHarness,
};
