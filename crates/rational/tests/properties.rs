//! Property-based tests for the exact rational type.

use dls_rational::{approximate_f64, common_period, gcd, lcm, ApproxConfig, Rational};
use proptest::prelude::*;

fn small_rational() -> impl Strategy<Value = Rational> {
    (-10_000i128..10_000, 1i128..10_000).prop_map(|(n, d)| Rational::new(n, d).unwrap())
}

proptest! {
    #[test]
    fn construction_is_reduced(n in -100_000i128..100_000, d in 1i128..100_000) {
        let r = Rational::new(n, d).unwrap();
        prop_assert!(r.denom() > 0);
        prop_assert_eq!(gcd(r.numer().abs(), r.denom()), if r.numer() == 0 { r.denom() } else { 1 });
        // Value preserved exactly: n·den' == num'·d.
        prop_assert_eq!(n * r.denom(), r.numer() * d);
    }

    #[test]
    fn addition_commutes_and_associates(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn multiplication_distributes(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn sub_is_add_inverse(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a - b + b, a);
    }

    #[test]
    fn division_inverts_multiplication(a in small_rational(), b in small_rational()) {
        prop_assume!(!b.is_zero());
        prop_assert_eq!(a / b * b, a);
    }

    #[test]
    fn ordering_matches_f64_for_distinct(a in small_rational(), b in small_rational()) {
        if a < b {
            prop_assert!(a.to_f64() <= b.to_f64());
        }
        if a == b {
            prop_assert_eq!(a.to_f64(), b.to_f64());
        }
    }

    #[test]
    fn floor_ceil_bracket(a in small_rational()) {
        let f = a.floor();
        let c = a.ceil();
        prop_assert!(Rational::from_integer(f) <= a);
        prop_assert!(a <= Rational::from_integer(c));
        prop_assert!(c - f <= 1);
        prop_assert_eq!(Rational::from_integer(f) + a.fract(), a);
    }

    #[test]
    fn lcm_divisible_by_both(a in 1i128..100_000, b in 1i128..100_000) {
        let l = lcm(a, b).unwrap();
        prop_assert_eq!(l % a, 0);
        prop_assert_eq!(l % b, 0);
        prop_assert!(l <= a * b);
    }

    #[test]
    fn approximation_respects_denominator_bound(x in 0.0f64..1000.0, max_den in 1i128..10_000) {
        let cfg = ApproxConfig { max_denominator: max_den, never_exceed: false };
        let r = approximate_f64(x, cfg).unwrap();
        prop_assert!(r.denom() <= max_den);
        // Error is at most 1/den_max (loose bound; best approximation is tighter).
        prop_assert!((r.to_f64() - x).abs() <= 1.0 / max_den as f64 + 1e-9 * (1.0 + x));
    }

    #[test]
    fn approximation_never_exceed_bound_holds(x in 0.0f64..500.0, max_den in 1i128..5_000) {
        let cfg = ApproxConfig { max_denominator: max_den, never_exceed: true };
        let r = approximate_f64(x, cfg).unwrap();
        prop_assert!(r.to_f64() <= x + 1e-12 * (1.0 + x));
        prop_assert!(r >= Rational::ZERO);
    }

    #[test]
    fn floor_to_denominator_properties(a in small_rational(), target in 1i128..10_000) {
        prop_assume!(a >= Rational::ZERO);
        let snapped = a.floor_to_denominator(target).unwrap();
        prop_assert!(snapped <= a);
        // Denominator of the reduced result divides the target.
        prop_assert_eq!(target % snapped.denom(), 0);
        // Within 1/target of the original.
        prop_assert!((a - snapped) < Rational::new(1, target).unwrap());
    }

    #[test]
    fn common_period_divides_out(vals in proptest::collection::vec(small_rational(), 1..8)) {
        if let Some(p) = common_period(vals.iter()) {
            for v in &vals {
                prop_assert_eq!(p % v.denom(), 0);
            }
        }
    }
}

// --- Extreme-denominator and round-trip coverage -------------------------
//
// The rational type is the schedule-reconstruction correctness anchor: a
// panic inside it would take down a whole sweep. These properties pin the
// no-panic guarantee at the edges of the i128 domain, where the naive
// `a*d + c*b` arithmetic would overflow long before the values are
// unrepresentable.

proptest! {
    #[test]
    fn construction_never_panics_on_extreme_denominators(
        n in -i128::MAX..i128::MAX,
        d in 1i128..i128::MAX,
    ) {
        // Must reduce, not panic, for any denominator up to i128::MAX.
        let r = Rational::new(n, d).unwrap();
        prop_assert!(r.denom() >= 1);
        prop_assert_eq!(
            gcd(r.numer().abs(), r.denom()),
            if r.numer() == 0 { r.denom() } else { 1 }
        );
        // Sign lives on the numerator.
        prop_assert_eq!(r.numer() < 0, n < 0 && r.numer() != 0);
    }

    #[test]
    fn checked_ops_never_panic_on_extremes(
        an in -i128::MAX..i128::MAX,
        ad in 1i128..i128::MAX,
        bn in -i128::MAX..i128::MAX,
        bd in 1i128..i128::MAX,
    ) {
        let a = Rational::new(an, ad).unwrap();
        let b = Rational::new(bn, bd).unwrap();
        // Every checked op either yields a reduced result that agrees with
        // f64 arithmetic, or reports overflow — never a panic.
        for (res, expect) in [
            (a.checked_add(&b), a.to_f64() + b.to_f64()),
            (a.checked_sub(&b), a.to_f64() - b.to_f64()),
            (a.checked_mul(&b), a.to_f64() * b.to_f64()),
        ] {
            if let Ok(r) = res {
                let got = r.to_f64();
                prop_assert!(
                    (got - expect).abs() <= 1e-6 * (1.0 + got.abs().max(expect.abs())),
                    "checked result {} disagrees with f64 {}", got, expect
                );
            }
        }
        if !b.is_zero() {
            let _ = a.checked_div(&b); // must not panic either way
        }
    }

    #[test]
    fn reduction_roundtrip_scaling_cancels(
        n in -100_000i128..100_000,
        d in 1i128..100_000,
        scale in 1i128..1_000_000,
    ) {
        // (n·s)/(d·s) reduces to exactly n/d.
        let scaled = Rational::new(n * scale, d * scale).unwrap();
        prop_assert_eq!(scaled, Rational::new(n, d).unwrap());
    }

    #[test]
    fn add_then_sub_roundtrip(a in small_rational(), b in small_rational()) {
        let sum = a.checked_add(&b).unwrap();
        prop_assert_eq!(sum.checked_sub(&b).unwrap(), a);
    }

    #[test]
    fn mul_then_div_roundtrip(a in small_rational(), b in small_rational()) {
        prop_assume!(!b.is_zero());
        let prod = a.checked_mul(&b).unwrap();
        prop_assert_eq!(prod.checked_div(&b).unwrap(), a);
    }
}
