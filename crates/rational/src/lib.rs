#![warn(missing_docs)]

//! Exact rational arithmetic for divisible-load schedule reconstruction.
//!
//! The steady-state schedule of Marchal et al. (IPDPS 2005, §3.2) turns the
//! rational activity variables `α_{k,l} = u_{k,l} / v_{k,l}` into a periodic
//! schedule whose period is `T_p = lcm_{k,l}(v_{k,l})`. This crate provides
//! the exact fraction type used for that reconstruction, together with the
//! continued-fraction machinery that converts the floating-point solutions
//! produced by the LP solver into bounded-denominator fractions.
//!
//! The type is deliberately small (two `i128`s) and panics-free: all
//! operations that can overflow return [`RationalError::Overflow`] through
//! the checked constructors, while the `std::ops` implementations follow the
//! convention of the standard integer types and panic on overflow (they are
//! used on schedule-sized values that are far below the `i128` range).

mod approx;
mod ops;

pub use approx::{approximate_f64, ApproxConfig};

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Errors produced by fallible rational operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RationalError {
    /// A denominator of zero was supplied.
    ZeroDenominator,
    /// An intermediate product or sum exceeded the `i128` range.
    Overflow,
    /// A floating-point input was NaN or infinite.
    NotFinite,
}

impl fmt::Display for RationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RationalError::ZeroDenominator => write!(f, "denominator is zero"),
            RationalError::Overflow => write!(f, "rational arithmetic overflow"),
            RationalError::NotFinite => write!(f, "floating-point value is not finite"),
        }
    }
}

impl std::error::Error for RationalError {}

/// An exact fraction `num / den` with `den > 0`, always stored in lowest
/// terms.
///
/// ```
/// use dls_rational::Rational;
/// let a = Rational::new(3, 4).unwrap();
/// let b = Rational::new(1, 6).unwrap();
/// assert_eq!((a + b).to_string(), "11/12");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rational {
    num: i128,
    den: i128,
}

/// Greatest common divisor of two non-negative integers (binary-free
/// Euclidean version; inputs are small enough that the classic loop wins).
pub fn gcd(mut a: i128, mut b: i128) -> i128 {
    debug_assert!(a >= 0 && b >= 0);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple; returns `None` on overflow.
pub fn lcm(a: i128, b: i128) -> Option<i128> {
    if a == 0 || b == 0 {
        return Some(0);
    }
    let g = gcd(a.abs(), b.abs());
    (a / g).checked_mul(b)
}

impl Rational {
    /// The rational number zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational number one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Builds `num/den`, normalising the sign and reducing to lowest terms.
    pub fn new(num: i128, den: i128) -> Result<Self, RationalError> {
        if den == 0 {
            return Err(RationalError::ZeroDenominator);
        }
        let (mut num, mut den) = (num, den);
        if den < 0 {
            num = num.checked_neg().ok_or(RationalError::Overflow)?;
            den = den.checked_neg().ok_or(RationalError::Overflow)?;
        }
        let g = gcd(num.abs(), den);
        if g > 1 {
            num /= g;
            den /= g;
        }
        Ok(Rational { num, den })
    }

    /// Builds a rational from an integer.
    pub fn from_integer(n: i128) -> Self {
        Rational { num: n, den: 1 }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (always strictly positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// `true` iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// `true` iff the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Nearest `f64` to this rational.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Checked addition.
    pub fn checked_add(&self, rhs: &Rational) -> Result<Rational, RationalError> {
        // a/b + c/d = (a·(l/b) + c·(l/d)) / l with l = lcm(b, d); going
        // through the lcm keeps intermediates as small as possible.
        let l = lcm(self.den, rhs.den).ok_or(RationalError::Overflow)?;
        let left = self
            .num
            .checked_mul(l / self.den)
            .ok_or(RationalError::Overflow)?;
        let right = rhs
            .num
            .checked_mul(l / rhs.den)
            .ok_or(RationalError::Overflow)?;
        let num = left.checked_add(right).ok_or(RationalError::Overflow)?;
        Rational::new(num, l)
    }

    /// Checked subtraction.
    pub fn checked_sub(&self, rhs: &Rational) -> Result<Rational, RationalError> {
        let neg = Rational::new(
            rhs.num.checked_neg().ok_or(RationalError::Overflow)?,
            rhs.den,
        )?;
        self.checked_add(&neg)
    }

    /// Checked multiplication (cross-reduces before multiplying).
    pub fn checked_mul(&self, rhs: &Rational) -> Result<Rational, RationalError> {
        let g1 = gcd(self.num.abs(), rhs.den);
        let g2 = gcd(rhs.num.abs(), self.den);
        let num = (self.num / g1)
            .checked_mul(rhs.num / g2)
            .ok_or(RationalError::Overflow)?;
        let den = (self.den / g2)
            .checked_mul(rhs.den / g1)
            .ok_or(RationalError::Overflow)?;
        Rational::new(num, den)
    }

    /// Checked division.
    pub fn checked_div(&self, rhs: &Rational) -> Result<Rational, RationalError> {
        if rhs.num == 0 {
            return Err(RationalError::ZeroDenominator);
        }
        self.checked_mul(&Rational::new(rhs.den, rhs.num)?)
    }

    /// Largest integer `n` with `n ≤ self`.
    pub fn floor(&self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            (self.num - (self.den - 1)) / self.den
        }
    }

    /// Smallest integer `n` with `n ≥ self`.
    pub fn ceil(&self) -> i128 {
        if self.num >= 0 {
            (self.num + (self.den - 1)) / self.den
        } else {
            self.num / self.den
        }
    }

    /// Fractional part `self − floor(self)`, in `[0, 1)`.
    pub fn fract(&self) -> Rational {
        let f = self.floor();
        // Cannot overflow: |num − f·den| < den.
        Rational {
            num: self.num - f * self.den,
            den: self.den,
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Minimum of two rationals.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Rescales so that the denominator divides `target_den`, rounding the
    /// value **down**. Used when snapping LP solutions onto a common period:
    /// rounding down can only relax the steady-state constraints.
    pub fn floor_to_denominator(&self, target_den: i128) -> Result<Rational, RationalError> {
        if target_den <= 0 {
            return Err(RationalError::ZeroDenominator);
        }
        let scaled = self
            .num
            .checked_mul(target_den)
            .ok_or(RationalError::Overflow)?;
        let q = if scaled >= 0 {
            scaled / self.den
        } else {
            (scaled - (self.den - 1)) / self.den
        };
        Rational::new(q, target_den)
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Compare a/b vs c/d via a·d vs c·b. Both denominators are positive.
        // Use 256-bit-free trick: split through floor comparison first so the
        // products stay within range for schedule-scale values, falling back
        // to f64 only on (astronomically unlikely) overflow.
        match self.num.checked_mul(other.den) {
            Some(lhs) => match other.num.checked_mul(self.den) {
                Some(rhs) => lhs.cmp(&rhs),
                None => self.to_f64().partial_cmp(&other.to_f64()).unwrap(),
            },
            None => self.to_f64().partial_cmp(&other.to_f64()).unwrap(),
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i128> for Rational {
    fn from(n: i128) -> Self {
        Rational::from_integer(n)
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_integer(n as i128)
    }
}

impl From<u32> for Rational {
    fn from(n: u32) -> Self {
        Rational::from_integer(n as i128)
    }
}

/// Least common multiple of the denominators of a sequence of rationals —
/// the schedule period `T_p` of §3.2. Returns `None` on overflow.
pub fn common_period<'a, I: IntoIterator<Item = &'a Rational>>(values: I) -> Option<i128> {
    let mut acc: i128 = 1;
    for v in values {
        acc = lcm(acc, v.denom())?;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation_reduces_and_fixes_sign() {
        let r = Rational::new(6, -4).unwrap();
        assert_eq!(r.numer(), -3);
        assert_eq!(r.denom(), 2);
        assert_eq!(Rational::new(0, -7).unwrap(), Rational::ZERO);
    }

    #[test]
    fn zero_denominator_rejected() {
        assert_eq!(Rational::new(1, 0), Err(RationalError::ZeroDenominator));
    }

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(lcm(4, 6), Some(12));
        assert_eq!(lcm(0, 9), Some(0));
        assert_eq!(lcm(i128::MAX, 2), None);
    }

    #[test]
    fn floor_ceil_fract_negative_values() {
        let r = Rational::new(-7, 2).unwrap();
        assert_eq!(r.floor(), -4);
        assert_eq!(r.ceil(), -3);
        assert_eq!(r.fract(), Rational::new(1, 2).unwrap());

        let p = Rational::new(7, 2).unwrap();
        assert_eq!(p.floor(), 3);
        assert_eq!(p.ceil(), 4);
        assert_eq!(p.fract(), Rational::new(1, 2).unwrap());
    }

    #[test]
    fn ordering_is_exact() {
        let a = Rational::new(1, 3).unwrap();
        let b = Rational::new(333_333_333, 1_000_000_000).unwrap();
        assert!(b < a);
        assert!(a > b);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn checked_ops_reject_overflow() {
        let big = Rational::new(i128::MAX, 1).unwrap();
        assert_eq!(
            big.checked_add(&Rational::ONE),
            Err(RationalError::Overflow)
        );
        assert_eq!(big.checked_mul(&big), Err(RationalError::Overflow));
    }

    #[test]
    fn division_by_zero_rational_rejected() {
        assert_eq!(
            Rational::ONE.checked_div(&Rational::ZERO),
            Err(RationalError::ZeroDenominator)
        );
    }

    #[test]
    fn floor_to_denominator_rounds_down() {
        let r = Rational::new(7, 3).unwrap(); // 2.333…
        let snapped = r.floor_to_denominator(10).unwrap();
        assert_eq!(snapped, Rational::new(23, 10).unwrap());
        assert!(snapped <= r);

        let exact = Rational::new(3, 5).unwrap();
        assert_eq!(exact.floor_to_denominator(10).unwrap(), exact);
    }

    #[test]
    fn common_period_is_lcm_of_denominators() {
        let vals = [
            Rational::new(1, 4).unwrap(),
            Rational::new(5, 6).unwrap(),
            Rational::new(2, 1).unwrap(),
        ];
        assert_eq!(common_period(vals.iter()), Some(12));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Rational::new(4, 2).unwrap().to_string(), "2");
        assert_eq!(Rational::new(-1, 8).unwrap().to_string(), "-1/8");
    }
}
