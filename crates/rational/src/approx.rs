//! Bounded-denominator rational approximation of floating-point values.
//!
//! The LP solver hands back `f64` activity variables; §3.2 of the paper needs
//! them as fractions `u/v` so the schedule period `lcm(v)` stays small. We
//! use the Stern–Brocot / continued-fraction best-approximation algorithm:
//! the returned fraction is the best approximation of the input among all
//! fractions with denominator ≤ `max_denominator`.

use crate::{Rational, RationalError};

/// Configuration for [`approximate_f64`].
#[derive(Debug, Clone, Copy)]
pub struct ApproxConfig {
    /// Largest admissible denominator (≥ 1).
    pub max_denominator: i128,
    /// If `true`, the result is clamped to never exceed the input value
    /// (required when approximating LP solutions: rounding *up* could break
    /// feasibility of the steady-state equations).
    pub never_exceed: bool,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig {
            max_denominator: 1_000_000,
            never_exceed: false,
        }
    }
}

/// Best rational approximation of `x` with denominator ≤
/// `config.max_denominator`, via the continued-fraction expansion with
/// semiconvergent refinement.
///
/// ```
/// use dls_rational::{approximate_f64, ApproxConfig, Rational};
/// let cfg = ApproxConfig { max_denominator: 100, never_exceed: false };
/// assert_eq!(
///     approximate_f64(std::f64::consts::PI, cfg).unwrap(),
///     Rational::new(311, 99).unwrap()
/// );
/// ```
pub fn approximate_f64(x: f64, config: ApproxConfig) -> Result<Rational, RationalError> {
    if !x.is_finite() {
        return Err(RationalError::NotFinite);
    }
    if config.max_denominator < 1 {
        return Err(RationalError::ZeroDenominator);
    }
    let negative = x < 0.0;
    let x_abs = x.abs();

    let approx = stern_brocot(x_abs, config.max_denominator)?;
    let mut result = if negative {
        Rational::new(-approx.numer(), approx.denom())?
    } else {
        approx
    };

    if config.never_exceed && result.to_f64() > x {
        // Step down by one unit of the denominator; exact comparison against
        // the f64 is the best we can do without exact binary-fraction input.
        result = result.checked_sub(&Rational::new(1, result.denom())?)?;
        if result.numer() < 0 && x >= 0.0 {
            result = Rational::ZERO;
        }
    }
    Ok(result)
}

/// Core best-approximation search for non-negative `x`.
fn stern_brocot(x: f64, max_den: i128) -> Result<Rational, RationalError> {
    debug_assert!(x >= 0.0);
    // Continued-fraction expansion maintaining the two previous convergents
    // h/k (current) and h1/k1 (previous).
    let (mut h0, mut k0): (i128, i128) = (0, 1);
    let (mut h1, mut k1): (i128, i128) = (1, 0);
    let mut frac = x;

    loop {
        if frac > i128::MAX as f64 {
            return Err(RationalError::Overflow);
        }
        let a = frac.floor() as i128;
        let h2 = a
            .checked_mul(h1)
            .and_then(|p| p.checked_add(h0))
            .ok_or(RationalError::Overflow)?;
        let k2 = a
            .checked_mul(k1)
            .and_then(|p| p.checked_add(k0))
            .ok_or(RationalError::Overflow)?;

        if k2 > max_den {
            // The full convergent is too big; take the best semiconvergent
            // h1·t + h0 / k1·t + k0 with the largest admissible t ≥ ⌈a/2⌉.
            let t_max = if k1 == 0 { 0 } else { (max_den - k0) / k1 };
            // Semiconvergents with t < ceil(a/2) are never best
            // approximations; with t ≥ ceil(a/2) they always are at least as
            // good as the previous convergent. Compare the candidate against
            // the previous convergent and keep the better one.
            if t_max > 0 {
                let cand = Rational::new(h1 * t_max + h0, k1 * t_max + k0)?;
                let prev = Rational::new(h1, k1.max(1))?;
                let cand_err = (cand.to_f64() - x).abs();
                let prev_err = if k1 == 0 {
                    f64::INFINITY
                } else {
                    (prev.to_f64() - x).abs()
                };
                return Ok(if cand_err <= prev_err { cand } else { prev });
            }
            return Rational::new(h1, k1.max(1));
        }

        h0 = h1;
        k0 = k1;
        h1 = h2;
        k1 = k2;

        let rem = frac - a as f64;
        // Continue expanding only while the remainder is meaningful at f64
        // precision; 1e-12 of slack avoids chasing representation noise.
        if rem.abs() < 1e-12 * (1.0 + x) {
            return Rational::new(h1, k1);
        }
        frac = 1.0 / rem;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_den: i128) -> ApproxConfig {
        ApproxConfig {
            max_denominator: max_den,
            never_exceed: false,
        }
    }

    #[test]
    fn exact_fractions_round_trip() {
        for (n, d) in [(1i128, 3i128), (7, 8), (22, 7), (0, 1), (100, 1)] {
            let x = n as f64 / d as f64;
            let r = approximate_f64(x, cfg(1000)).unwrap();
            assert_eq!(r, Rational::new(n, d).unwrap(), "{n}/{d}");
        }
    }

    #[test]
    fn pi_convergents() {
        let pi = std::f64::consts::PI;
        assert_eq!(
            approximate_f64(pi, cfg(10)).unwrap(),
            Rational::new(22, 7).unwrap()
        );
        assert_eq!(
            approximate_f64(pi, cfg(150)).unwrap(),
            Rational::new(355, 113).unwrap()
        );
    }

    #[test]
    fn negative_values() {
        let r = approximate_f64(-0.5, cfg(10)).unwrap();
        assert_eq!(r, Rational::new(-1, 2).unwrap());
    }

    #[test]
    fn never_exceed_clamps_down() {
        let cfg = ApproxConfig {
            max_denominator: 7,
            never_exceed: true,
        };
        // 1/3 is not representable with den ≤ 7 exactly from f64 noise-free,
        // but best approx is exactly 1/3 (den 3 ≤ 7) → allowed.
        let r = approximate_f64(1.0 / 3.0, cfg).unwrap();
        assert!(r.to_f64() <= 1.0 / 3.0 + 1e-15);

        // π best approx with den ≤ 7 is 22/7 > π → must step down.
        let r = approximate_f64(std::f64::consts::PI, cfg).unwrap();
        assert!(r.to_f64() <= std::f64::consts::PI);
    }

    #[test]
    fn rejects_non_finite() {
        assert_eq!(
            approximate_f64(f64::NAN, cfg(10)),
            Err(RationalError::NotFinite)
        );
        assert_eq!(
            approximate_f64(f64::INFINITY, cfg(10)),
            Err(RationalError::NotFinite)
        );
    }

    #[test]
    fn error_bound_of_best_approximation() {
        // |x − p/q| ≤ 1/(q·max_den) for the best approximation.
        let x = 0.123_456_789;
        let max_den = 1_000;
        let r = approximate_f64(x, cfg(max_den)).unwrap();
        let err = (r.to_f64() - x).abs();
        assert!(err <= 1.0 / (r.denom() as f64 * max_den as f64) + 1e-15);
    }
}
