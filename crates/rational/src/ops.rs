//! Operator implementations for [`Rational`].
//!
//! These mirror the standard integer types: they panic on overflow. All
//! schedule-reconstruction arithmetic goes through the checked methods
//! instead; the operators exist for tests, examples and small exact
//! computations where panicking on a 2^127 overflow is the right behaviour.

use crate::Rational;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        self.checked_add(&rhs).expect("rational addition overflow")
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self.checked_sub(&rhs)
            .expect("rational subtraction overflow")
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        self.checked_mul(&rhs)
            .expect("rational multiplication overflow")
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        self.checked_div(&rhs).expect("rational division failure")
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational::new(-self.numer(), self.denom()).expect("rational negation overflow")
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::ZERO, |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use crate::Rational;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d).unwrap()
    }

    #[test]
    fn field_operations() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(9, 4), r(3, 2));
        assert_eq!(r(2, 3) / r(4, 3), r(1, 2));
        assert_eq!(-r(2, 3), r(-2, 3));
    }

    #[test]
    fn sum_of_iterator() {
        let total: Rational = (1..=4).map(|d| r(1, d)).sum();
        assert_eq!(total, r(25, 12));
    }

    #[test]
    fn assign_ops() {
        let mut x = r(1, 4);
        x += r(1, 4);
        assert_eq!(x, r(1, 2));
        x -= r(1, 3);
        assert_eq!(x, r(1, 6));
    }
}
