//! Property tests for the bandwidth allocator and the simulation engine.

use dls_core::approx::close;
use dls_core::heuristics::{Greedy, Heuristic, Lprg};
use dls_core::schedule::ScheduleBuilder;
use dls_core::{Objective, ProblemInstance};
use dls_platform::{ClusterId, PlatformConfig, PlatformGenerator};
use dls_sim::{
    allocate_rates, BandwidthAllocator, BandwidthModel, ChunkPart, FlowId, FlowSpec, LiveConfig,
    LiveEvent, LiveFlowId, LiveFlowSpec, LiveSim, SimConfig, SimEngine, Simulator,
};
use proptest::prelude::*;

fn arb_flows() -> impl Strategy<Value = (Vec<f64>, Vec<FlowSpec>)> {
    (2usize..6).prop_flat_map(|n_clusters| {
        let caps = proptest::collection::vec(1.0f64..50.0, n_clusters);
        let flows = proptest::collection::vec((0..n_clusters, 1..n_clusters, 0.5f64..30.0), 1..8)
            .prop_map(move |raw| {
                raw.into_iter()
                    .map(|(src, off, cap)| FlowSpec {
                        src: ClusterId(src as u32),
                        dst: ClusterId(((src + off) % n_clusters) as u32),
                        cap,
                        demand: 0.0,
                    })
                    .collect::<Vec<_>>()
            });
        (caps, flows)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rates_respect_links_and_caps((g, flows) in arb_flows()) {
        for model in [BandwidthModel::MaxMinFair, BandwidthModel::EqualSplit] {
            let rates = allocate_rates(&g, &flows, model);
            prop_assert_eq!(rates.len(), flows.len());
            let mut used = vec![0.0f64; g.len()];
            for (r, f) in rates.iter().zip(&flows) {
                prop_assert!(*r >= 0.0);
                prop_assert!(*r <= f.cap + 1e-9);
                used[f.src.index()] += r;
                used[f.dst.index()] += r;
            }
            for (u, cap) in used.iter().zip(&g) {
                prop_assert!(u <= &(cap + 1e-6), "link overdriven: {} > {}", u, cap);
            }
        }
    }

    #[test]
    fn maxmin_is_work_conserving_per_flow((g, flows) in arb_flows()) {
        // Max-min fairness: every flow is either at its cap or crosses a
        // saturated link (the bottleneck argument).
        let rates = allocate_rates(&g, &flows, BandwidthModel::MaxMinFair);
        let mut used = vec![0.0f64; g.len()];
        for (r, f) in rates.iter().zip(&flows) {
            used[f.src.index()] += r;
            used[f.dst.index()] += r;
        }
        for (r, f) in rates.iter().zip(&flows) {
            let capped = *r >= f.cap - 1e-6;
            let src_sat = used[f.src.index()] >= g[f.src.index()] - 1e-6;
            let dst_sat = used[f.dst.index()] >= g[f.dst.index()] - 1e-6;
            prop_assert!(capped || src_sat || dst_sat,
                "flow {:?} rate {} is neither capped nor bottlenecked", f, r);
        }
    }

    #[test]
    fn maxmin_total_dominates_equal_split((g, flows) in arb_flows()) {
        let fair: f64 = allocate_rates(&g, &flows, BandwidthModel::MaxMinFair).iter().sum();
        let naive: f64 = allocate_rates(&g, &flows, BandwidthModel::EqualSplit).iter().sum();
        prop_assert!(fair >= naive - 1e-6);
    }

    #[test]
    fn feasible_reservations_are_always_granted(
        (g, flows) in arb_flows(),
        fractions in proptest::collection::vec(0.0f64..1.0, 8),
    ) {
        // Attach reservations and scale them into per-link feasibility (the
        // situation Eq. 7b/7c certify for schedules): every flow must then
        // receive at least its reservation and links must stay within
        // capacity. (No aggregate-dominance claim here: honoring a
        // reservation on a doubly-congested flow can legitimately cost more
        // total throughput than equal split would achieve — guarantees are
        // bought with aggregate; the dominance property above is the
        // demand-free one.)
        let mut flows: Vec<FlowSpec> = flows
            .iter()
            .enumerate()
            .map(|(i, f)| FlowSpec {
                demand: f.cap.min(50.0) * fractions[i % fractions.len()],
                ..*f
            })
            .collect();
        let mut load = vec![0.0f64; g.len()];
        for f in &flows {
            load[f.src.index()] += f.demand;
            load[f.dst.index()] += f.demand;
        }
        let squeeze = load
            .iter()
            .zip(&g)
            .map(|(&l, &cap)| if l > cap { cap / l } else { 1.0 })
            .fold(1.0f64, f64::min)
            * 0.999;
        for f in &mut flows {
            f.demand *= squeeze;
        }

        let rates = allocate_rates(&g, &flows, BandwidthModel::MaxMinFair);
        let mut used = vec![0.0f64; g.len()];
        for (r, f) in rates.iter().zip(&flows) {
            prop_assert!(*r >= f.demand - 1e-9,
                "reserved {} but got {}", f.demand, r);
            prop_assert!(*r <= f.cap + 1e-9);
            used[f.src.index()] += r;
            used[f.dst.index()] += r;
        }
        for (u, cap) in used.iter().zip(&g) {
            prop_assert!(u <= &(cap + 1e-6), "link overdriven: {} > {}", u, cap);
        }
    }
}

/// One step of a random arrival/completion sequence for the incremental
/// allocator equivalence test.
#[derive(Debug, Clone)]
enum AllocEvent {
    /// `(src, dst_offset, cap_raw, demand_fraction)`; see the strategy for
    /// how the raw values are decoded into caps/demands.
    Add(usize, usize, f64, f64),
    /// Remove the live flow at `index % live.len()`.
    Remove(usize),
}

fn arb_alloc_events() -> impl Strategy<Value = (Vec<f64>, Vec<AllocEvent>)> {
    (2usize..7).prop_flat_map(|n_clusters| {
        let caps = proptest::collection::vec(1.0f64..60.0, n_clusters);
        let add = move || {
            (0..n_clusters, 1..n_clusters, -1.0f64..30.0, -0.25f64..1.25)
                .prop_map(|(s, o, c, d)| AllocEvent::Add(s, o, c, d))
        };
        let events = proptest::collection::vec(
            prop_oneof![add(), add(), (0usize..64).prop_map(AllocEvent::Remove)],
            1..50,
        );
        (caps, events)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole equivalence property: after every arrival/completion in
    /// a random sequence, the incremental allocator's rates match a full
    /// `allocate_rates` recompute within 1e-9 relative — for both sharing
    /// models, including cap-saturated (`demand == cap`), zero-demand, and
    /// uncapped flows.
    #[test]
    fn incremental_allocator_matches_oracle((g, events) in arb_alloc_events()) {
        for model in [BandwidthModel::MaxMinFair, BandwidthModel::EqualSplit] {
            let mut alloc = BandwidthAllocator::new(&g, model);
            let mut live: Vec<FlowId> = Vec::new();
            for (step, ev) in events.iter().enumerate() {
                match *ev {
                    AllocEvent::Add(src, off, cap_raw, demand_frac) => {
                        let dst = (src + off) % g.len();
                        // cap_raw < 0 → uncapped; demand_frac clamps into
                        // [0, cap], hitting 0 and the cap itself with
                        // positive probability (the saturated-reservation
                        // corner).
                        let cap = if cap_raw < 0.0 { f64::INFINITY } else { 0.5 + cap_raw };
                        let demand = (cap.min(30.0) * demand_frac.clamp(0.0, 1.0)).min(cap);
                        live.push(alloc.insert(FlowSpec {
                            src: ClusterId(src as u32),
                            dst: ClusterId(dst as u32),
                            cap,
                            demand,
                        }));
                    }
                    AllocEvent::Remove(i) => {
                        if live.is_empty() {
                            continue;
                        }
                        let i = i % live.len();
                        alloc.remove(live.swap_remove(i));
                    }
                }
                // The shared contract: panics on divergence beyond 1e-9
                // relative (same helper the engine's oracle_check uses).
                alloc.assert_matches_oracle(1e-9, &format!("{model:?} step {step}"));
            }
        }
    }
}

/// One step of a random mutation sequence for the live-engine equivalence
/// tests: arrivals, retirements, and platform updates (local-link capacity,
/// compute speed).
#[derive(Debug, Clone)]
enum LiveOp {
    /// `(src, dst_offset, cap_raw, demand_fraction, payload)`.
    Add(usize, usize, f64, f64, f64),
    /// Retire the live flow at `index % live.len()`.
    Retire(usize),
    /// `(cluster, new_g_raw)` — negative raw means an outage (`g = 0`).
    Capacity(usize, f64),
    /// `(cluster, new_speed)`.
    Speed(usize, f64),
    /// Advance simulation time by this much before the next op.
    Tick(f64),
}

fn arb_live_ops() -> impl Strategy<Value = (Vec<f64>, Vec<f64>, Vec<LiveOp>)> {
    (2usize..6).prop_flat_map(|n| {
        let caps = proptest::collection::vec(1.0f64..50.0, n);
        let speeds = proptest::collection::vec(0.5f64..6.0, n);
        let add = move || {
            (0..n, 1..n, -1.0f64..25.0, 0.0f64..1.0, 0.5f64..20.0)
                .prop_map(|(s, o, c, d, p)| LiveOp::Add(s, o, c, d, p))
        };
        let ops = proptest::collection::vec(
            prop_oneof![
                add(),
                add(),
                (0usize..64).prop_map(LiveOp::Retire),
                ((0..n), -5.0f64..60.0).prop_map(|(l, g)| LiveOp::Capacity(l, g)),
                ((0..n), 0.0f64..8.0).prop_map(|(c, s)| LiveOp::Speed(c, s)),
                (0.05f64..3.0).prop_map(LiveOp::Tick),
            ],
            1..40,
        );
        (caps, speeds, ops)
    })
}

/// Replays `ops` on a [`LiveSim`], returning the observed event log as
/// `(kind, job, time)` triples.
fn replay_live(
    g: &[f64],
    speeds: &[f64],
    ops: &[LiveOp],
    model: BandwidthModel,
    engine: SimEngine,
) -> Vec<(u8, u32, f64)> {
    let mut sim = LiveSim::new(
        g,
        speeds,
        LiveConfig {
            bandwidth_model: model,
            engine,
            // The incremental run cross-checks every mutation/completion
            // batch against a fresh full solve on the mutated platform.
            oracle_check: engine == SimEngine::Incremental,
            ..LiveConfig::default()
        },
    );
    let mut live: Vec<LiveFlowId> = Vec::new();
    let mut log = Vec::new();
    let mut record = |events: &[LiveEvent]| {
        for e in events {
            match *e {
                LiveEvent::Computed { time, job, .. } => log.push((2u8, job, time)),
                LiveEvent::Delivered { time, job, .. } => log.push((1u8, job, time)),
                LiveEvent::FlowDone { .. } => {}
            }
        }
    };
    for (i, op) in ops.iter().enumerate() {
        match *op {
            LiveOp::Add(src, off, cap_raw, demand_frac, payload) => {
                let dst = (src + off) % g.len();
                let cap = if cap_raw < 0.0 {
                    f64::INFINITY
                } else {
                    0.5 + cap_raw
                };
                let demand = (cap.min(20.0) * demand_frac).min(cap);
                live.extend(sim.add_flows(vec![LiveFlowSpec {
                    src: ClusterId(src as u32),
                    dst: ClusterId(dst as u32),
                    cap,
                    demand,
                    parts: vec![ChunkPart {
                        job: i as u32,
                        amount: payload,
                    }],
                }]));
            }
            LiveOp::Retire(idx) => {
                live.retain(|id| sim.is_current(*id));
                if !live.is_empty() {
                    let id = live.swap_remove(idx % live.len());
                    sim.retire_flows(&[id]);
                }
            }
            LiveOp::Capacity(l, g_raw) => {
                sim.update_link_capacity(ClusterId(l as u32), g_raw.max(0.0));
            }
            LiveOp::Speed(c, s) => sim.update_speed(ClusterId(c as u32), s),
            LiveOp::Tick(dt) => {
                let t = sim.now() + dt;
                record(sim.advance_to(t));
            }
        }
    }
    // Drain: restore capacity/speed so stranded work can finish, then run
    // far enough out that everything completes.
    for cidx in 0..g.len() {
        sim.update_link_capacity(ClusterId(cidx as u32), g[cidx].max(1.0));
        sim.update_speed(ClusterId(cidx as u32), speeds[cidx].max(1.0));
    }
    record(sim.advance_to(sim.now() + 10_000.0));
    assert!(sim.idle(), "{engine:?} left work behind");
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The live-mutation equivalence property: after every step of a random
    /// sequence of capacity updates, flow arrivals, and retirements, the
    /// incremental engine's allocation matches a freshly built solve on the
    /// mutated platform (`oracle_check` asserts it inside `replay_live`),
    /// and the whole observed execution matches the retained
    /// full-recompute engine replaying the same timeline — for both
    /// bandwidth models.
    #[test]
    fn live_mutations_match_fresh_engine((g, speeds, ops) in arb_live_ops()) {
        for model in [BandwidthModel::MaxMinFair, BandwidthModel::EqualSplit] {
            let fast = replay_live(&g, &speeds, &ops, model, SimEngine::Incremental);
            let slow = replay_live(&g, &speeds, &ops, model, SimEngine::FullRecompute);
            prop_assert_eq!(fast.len(), slow.len(), "{:?}: event counts differ", model);
            for (a, b) in fast.iter().zip(&slow) {
                prop_assert_eq!(a.0, b.0, "{:?}: event kinds diverged", model);
                prop_assert_eq!(a.1, b.1, "{:?}: event jobs diverged", model);
                prop_assert!(close(a.2, b.2, 1e-6),
                    "{:?}: event times diverged: {} vs {}", model, a.2, b.2);
            }
        }
    }

    /// Pure capacity trajectories — including links driven to zero, held
    /// there, and restored — keep the incremental allocator equal to the
    /// oracle *rate for rate* and *saturation set for saturation set*. The
    /// saturation set is what the dirty-set machinery reasons about
    /// (influence only propagates through saturated links), so agreeing on
    /// the rates while disagreeing on which links are tight would mean the
    /// next event propagates its dirty set differently from the oracle.
    #[test]
    fn capacity_trajectories_preserve_rates_and_saturation_sets(
        (g, _speeds, seed_ops) in arb_live_ops(),
        steps in proptest::collection::vec(
            proptest::collection::vec((0usize..6, -30.0f64..60.0), 1..4),
            1..30,
        ),
    ) {
        for model in [BandwidthModel::MaxMinFair, BandwidthModel::EqualSplit] {
            let mut alloc = BandwidthAllocator::new(&g, model);
            // A fixed flow population drawn from the live-op strategy: the
            // trajectory only moves link capacities.
            for op in &seed_ops {
                if let LiveOp::Add(src, off, cap_raw, demand_frac, _) = *op {
                    let dst = (src + off) % g.len();
                    let cap = if cap_raw < 0.0 { f64::INFINITY } else { 0.5 + cap_raw };
                    alloc.insert(FlowSpec {
                        src: ClusterId(src as u32),
                        dst: ClusterId(dst as u32),
                        cap,
                        demand: (cap.min(20.0) * demand_frac).min(cap),
                    });
                }
            }
            let mut local_bw = g.clone();
            for (step, batch) in steps.iter().enumerate() {
                // Negative raw values map to an outage (`g = 0`), so
                // trajectories regularly pass *through* zero and back.
                let changes: Vec<(usize, f64)> = batch
                    .iter()
                    .map(|&(l, raw)| (l % g.len(), raw.max(0.0)))
                    .collect();
                for &(l, cap) in &changes {
                    local_bw[l] = cap;
                }
                alloc.retune(&changes);

                let live = alloc.live_flows();
                let specs: Vec<FlowSpec> = live.iter().map(|(_, s, _)| *s).collect();
                let oracle = allocate_rates(&local_bw, &specs, model);
                let mut used_inc = vec![0.0f64; g.len()];
                let mut used_ora = vec![0.0f64; g.len()];
                for ((_, spec, rate), want) in live.iter().zip(&oracle) {
                    prop_assert!(close(*rate, *want, 1e-9),
                        "{:?} step {}: rate {} vs oracle {}", model, step, rate, want);
                    for l in [spec.src.index(), spec.dst.index()] {
                        used_inc[l] += *rate;
                        used_ora[l] += *want;
                    }
                }
                for (l, &cap) in local_bw.iter().enumerate() {
                    let sat = |used: f64| used >= cap - 1e-6 * (1.0 + cap);
                    prop_assert_eq!(sat(used_inc[l]), sat(used_ora[l]),
                        "{:?} step {}: saturation of link {} diverged \
                         (incremental used {}, oracle used {}, capacity {})",
                        model, step, l, used_inc[l], used_ora[l], cap);
                }
            }
        }
    }

    /// Random capacity-retune sequences interleaved with arrivals and
    /// removals keep the incremental allocator on the oracle fixpoint.
    #[test]
    fn retune_sequences_match_oracle(
        (g, _speeds, ops) in arb_live_ops(),
    ) {
        for model in [BandwidthModel::MaxMinFair, BandwidthModel::EqualSplit] {
            let mut alloc = BandwidthAllocator::new(&g, model);
            let mut live: Vec<FlowId> = Vec::new();
            for (step, op) in ops.iter().enumerate() {
                match *op {
                    LiveOp::Add(src, off, cap_raw, demand_frac, _) => {
                        let dst = (src + off) % g.len();
                        let cap = if cap_raw < 0.0 { f64::INFINITY } else { 0.5 + cap_raw };
                        live.push(alloc.insert(FlowSpec {
                            src: ClusterId(src as u32),
                            dst: ClusterId(dst as u32),
                            cap,
                            demand: (cap.min(20.0) * demand_frac).min(cap),
                        }));
                    }
                    LiveOp::Retire(i) if !live.is_empty() => {
                        alloc.remove(live.swap_remove(i % live.len()));
                    }
                    LiveOp::Capacity(l, g_raw) => alloc.set_local_bw(l, g_raw.max(0.0)),
                    _ => continue,
                }
                alloc.assert_matches_oracle(1e-9, &format!("{model:?} step {step}"));
            }
        }
    }
}

proptest! {
    // End-to-end simulations are heavier: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn valid_schedules_execute_without_lateness(
        seed in 0u64..500,
        k in 3usize..7,
        conn in 0.2f64..0.9,
        greedy in proptest::bool::ANY,
    ) {
        let cfg = PlatformConfig {
            num_clusters: k,
            connectivity: conn,
            ..PlatformConfig::default()
        };
        let p = PlatformGenerator::new(seed).generate(&cfg);
        let inst = ProblemInstance::uniform(p, Objective::MaxMin);
        let alloc = if greedy {
            Greedy::default().solve(&inst).unwrap()
        } else {
            Lprg::default().solve(&inst).unwrap()
        };
        let schedule = ScheduleBuilder::default().build(&inst, &alloc).unwrap();
        // Every event of the incremental engine is cross-checked against
        // the full allocator (oracle_check panics on divergence).
        let report = Simulator::new(&inst).run(
            &schedule,
            &SimConfig { oracle_check: true, ..SimConfig::default() },
        );
        // Eq. 7c guarantees Σ flow volumes ≤ g·T_p on every local link, and
        // max-min sharing is work-conserving, so every period's flows finish
        // in time.
        prop_assert!(report.max_transfer_lateness <= 1e-6,
            "lateness {}", report.max_transfer_lateness);
        prop_assert!(report.connection_caps_respected);
        prop_assert!(report.achieves(0.9), "{}", report.summary());
        // And the retained slow path observes the same execution.
        let slow = Simulator::new(&inst).run(
            &schedule,
            &SimConfig { engine: SimEngine::FullRecompute, ..SimConfig::default() },
        );
        prop_assert!(close(report.efficiency, slow.efficiency, 1e-6),
            "engines disagree: {} vs {}", report.efficiency, slow.efficiency);
    }
}
