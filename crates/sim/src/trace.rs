//! Structured event traces for cross-engine divergence diagnostics.
//!
//! The incremental core ([`crate::SimEngine::Incremental`]) and the
//! full-recompute oracle ([`crate::SimEngine::FullRecompute`]) must agree
//! not just on end-of-run aggregates but on the *event stream* itself:
//! every delivery and every compute completion, in order, at the same
//! time, with the same payload. This module gives that claim a concrete,
//! serialisable shape:
//!
//! * [`EventRecord`] — one comparable observation. Only
//!   [`crate::LiveEvent::Delivered`] and [`crate::LiveEvent::Computed`]
//!   are recorded: `FlowDone` carries a [`crate::LiveFlowId`] whose slot
//!   assignment is an engine-internal artefact (the two cores reuse slots
//!   in different orders), so flow handles are *not* comparable across
//!   engines while the physical deliveries and completions are.
//! * [`EventLog`] — an ordered trace, recorded by [`crate::LiveSim`] when
//!   [`crate::LiveConfig::record_events`] is set.
//! * [`first_divergence`] — the diagnostic: the first index where two
//!   traces disagree, with both offending records, so a report-level
//!   mismatch can be chased to the exact event that split the timelines.

use dls_core::approx::close;
use serde::{Deserialize, Serialize};

/// The comparable event kinds (see the module docs for why `FlowDone` is
/// excluded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A payload part entered a cluster's compute queue.
    Delivered,
    /// A compute-queue entry was fully processed.
    Computed,
}

/// One recorded simulation observation, comparable across engines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// What happened.
    pub kind: EventKind,
    /// Simulation time it happened at.
    pub time: f64,
    /// Cluster it happened at (delivery destination / executing cluster).
    pub cluster: u32,
    /// Caller-side job tag.
    pub job: u32,
    /// Load units delivered or computed.
    pub amount: f64,
}

/// An ordered trace of [`EventRecord`]s.
pub type EventLog = Vec<EventRecord>;

/// The first point where two event traces disagree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventDivergence {
    /// Index into both traces of the first disagreement.
    pub index: usize,
    /// The left trace's record at `index` (`None` if it ended early).
    pub left: Option<EventRecord>,
    /// The right trace's record at `index` (`None` if it ended early).
    pub right: Option<EventRecord>,
}

impl EventDivergence {
    /// One-line human-readable description for logs and bench reports.
    pub fn describe(&self) -> String {
        let fmt = |r: &Option<EventRecord>| match r {
            Some(e) => format!(
                "{:?}(t={}, cluster={}, job={}, amount={})",
                e.kind, e.time, e.cluster, e.job, e.amount
            ),
            None => "<end of trace>".to_string(),
        };
        format!(
            "event {}: {} vs {}",
            self.index,
            fmt(&self.left),
            fmt(&self.right)
        )
    }
}

/// `true` when two records describe the same physical event: identical
/// kind/cluster/job, and time and amount within `tol` relative.
pub fn records_match(a: &EventRecord, b: &EventRecord, tol: f64) -> bool {
    a.kind == b.kind
        && a.cluster == b.cluster
        && a.job == b.job
        && close(a.time, b.time, tol)
        && close(a.amount, b.amount, tol)
}

/// Returns the first index where the traces disagree (different record, or
/// one trace ending before the other), or `None` when they match
/// end to end.
pub fn first_divergence(a: &[EventRecord], b: &[EventRecord], tol: f64) -> Option<EventDivergence> {
    let n = a.len().max(b.len());
    for i in 0..n {
        match (a.get(i), b.get(i)) {
            (Some(x), Some(y)) if records_match(x, y, tol) => {}
            (x, y) => {
                return Some(EventDivergence {
                    index: i,
                    left: x.copied(),
                    right: y.copied(),
                })
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: EventKind, time: f64, cluster: u32, job: u32, amount: f64) -> EventRecord {
        EventRecord {
            kind,
            time,
            cluster,
            job,
            amount,
        }
    }

    #[test]
    fn identical_traces_have_no_divergence() {
        let a = vec![
            rec(EventKind::Delivered, 1.0, 0, 7, 3.5),
            rec(EventKind::Computed, 2.0, 0, 7, 3.5),
        ];
        assert_eq!(first_divergence(&a, &a, 1e-9), None);
    }

    #[test]
    fn tolerance_absorbs_float_noise_but_not_real_drift() {
        let a = vec![rec(EventKind::Delivered, 1.0, 0, 7, 3.5)];
        let b = vec![rec(EventKind::Delivered, 1.0 + 1e-12, 0, 7, 3.5)];
        assert_eq!(first_divergence(&a, &b, 1e-9), None);
        let c = vec![rec(EventKind::Delivered, 1.01, 0, 7, 3.5)];
        let d = first_divergence(&a, &c, 1e-9).expect("1% drift must be flagged");
        assert_eq!(d.index, 0);
        assert!(d.describe().contains("event 0"));
    }

    #[test]
    fn length_mismatch_is_flagged_at_the_short_end() {
        let a = vec![
            rec(EventKind::Delivered, 1.0, 0, 7, 3.5),
            rec(EventKind::Computed, 2.0, 0, 7, 3.5),
        ];
        let b = vec![rec(EventKind::Delivered, 1.0, 0, 7, 3.5)];
        let d = first_divergence(&a, &b, 1e-9).expect("missing tail event");
        assert_eq!(d.index, 1);
        assert!(d.left.is_some() && d.right.is_none());
        assert!(d.describe().contains("<end of trace>"));
    }

    #[test]
    fn records_round_trip_through_serde() {
        let a = rec(EventKind::Computed, 2.25, 3, 9, 4.5);
        let json = serde_json::to_string(&a).unwrap();
        let back: EventRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
