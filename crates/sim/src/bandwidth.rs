//! Bandwidth sharing on the fluid local links.
//!
//! The platform model gives every flow a hard cap from its backbone
//! connections (`β · min bw`) and routes it across two fluid local links
//! (source egress `g_src`, destination ingress `g_dst`) whose capacity is
//! shared with every other flow touching the same cluster. The reference
//! allocator implements **reservation-aware max-min fairness**:
//!
//! 1. every flow is first granted its *reserved* rate [`FlowSpec::demand`]
//!    (the steady-state rate `α` the Eq. 7 allocation budgeted for it —
//!    constraints 7b/7c guarantee the reservations fit on every local
//!    link);
//! 2. the surplus is then distributed by classical progressive filling
//!    (Bertsekas & Gallager): all unfrozen flow rates rise together; a flow
//!    freezes when it hits its cap or when one of its links saturates.
//!
//! The reservation phase is what makes valid periodic schedules execute on
//! time: pure max-min filling from zero gives every flow on a shared link an
//! *equal* share first, which can starve a flow whose reserved rate sits at
//! its connection cap (it can never catch up later) while a small flow
//! hoards bandwidth it does not need. With `demand = 0` the allocator
//! degenerates to the classical cap-limited max-min water-filling.

use dls_platform::ClusterId;

/// A flow to be rate-allocated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// Source cluster (consumes `g_src` egress).
    pub src: ClusterId,
    /// Destination cluster (consumes `g_dst` ingress).
    pub dst: ClusterId,
    /// Hard per-flow cap `β·minbw` (`f64::INFINITY` for same-router pairs).
    pub cap: f64,
    /// Reserved steady-state rate (`α` from the allocation; `0.0` for
    /// best-effort flows with no reservation).
    pub demand: f64,
}

/// Sharing discipline for the local links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BandwidthModel {
    /// Max-min fair progressive filling (the realistic model).
    MaxMinFair,
    /// Static equal split per link with no redistribution (ablation: wastes
    /// whatever capped flows leave on the table).
    EqualSplit,
}

/// Computes a rate per flow.
///
/// `local_bw[c]` is the capacity `g_c` of cluster `c`'s local link; each
/// flow consumes capacity on `src` and on `dst` (the paper's Eq. 7c counts
/// outgoing plus incoming traffic against the same link).
pub fn allocate_rates(local_bw: &[f64], flows: &[FlowSpec], model: BandwidthModel) -> Vec<f64> {
    match model {
        BandwidthModel::MaxMinFair => max_min_fair(local_bw, flows),
        BandwidthModel::EqualSplit => equal_split(local_bw, flows),
    }
}

fn max_min_fair(local_bw: &[f64], flows: &[FlowSpec]) -> Vec<f64> {
    let n = flows.len();
    let mut rates = vec![0.0f64; n];
    if n == 0 {
        return rates;
    }
    let mut residual: Vec<f64> = local_bw.to_vec();
    let mut frozen = vec![false; n];
    // Flows per link (a flow with src == dst would be a modelling error and
    // is debug-asserted away by the engine).
    let links_of = |f: &FlowSpec| [f.src.index(), f.dst.index()];

    // Phase 1: grant reservations. Valid Eq. 7 allocations keep the summed
    // reservations within every local link; if an (invalid) input
    // oversubscribes a link anyway, scale the floors on that link down
    // proportionally so reservations alone never overdrive a link.
    let floors: Vec<f64> = flows.iter().map(|f| f.demand.max(0.0).min(f.cap)).collect();
    let mut floor_load = vec![0.0f64; local_bw.len()];
    for (f, &fl) in flows.iter().zip(&floors) {
        for l in links_of(f) {
            floor_load[l] += fl;
        }
    }
    let scale: Vec<f64> = floor_load
        .iter()
        .zip(local_bw)
        .map(|(&load, &g)| if load > g { g / load } else { 1.0 })
        .collect();
    for (i, f) in flows.iter().enumerate() {
        let s = links_of(f).iter().map(|&l| scale[l]).fold(1.0, f64::min);
        rates[i] = floors[i] * s;
        for l in links_of(f) {
            residual[l] = (residual[l] - rates[i]).max(0.0);
        }
    }

    // Phase 2: distribute the surplus by progressive filling.
    loop {
        let mut unfrozen_on_link = vec![0usize; local_bw.len()];
        let mut any_unfrozen = false;
        for (i, f) in flows.iter().enumerate() {
            if !frozen[i] {
                any_unfrozen = true;
                for l in links_of(f) {
                    unfrozen_on_link[l] += 1;
                }
            }
        }
        if !any_unfrozen {
            break;
        }
        // The smallest admissible simultaneous increment δ.
        let mut delta = f64::INFINITY;
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            delta = delta.min(f.cap - rates[i]);
            for l in links_of(f) {
                delta = delta.min(residual[l] / unfrozen_on_link[l] as f64);
            }
        }
        if !delta.is_finite() {
            // Every unfrozen flow is uncapped and touches only unsaturated,
            // infinite-capacity links — cannot happen with finite g, but
            // guard against degenerate inputs.
            break;
        }
        let delta = delta.max(0.0);
        // Apply the increment and freeze whoever hit a wall.
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            rates[i] += delta;
            for l in links_of(f) {
                residual[l] -= delta;
            }
        }
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let capped = rates[i] >= f.cap - 1e-12;
            let saturated = links_of(f)
                .iter()
                .any(|&l| residual[l] <= 1e-12 * (1.0 + local_bw[l]));
            if capped || saturated {
                frozen[i] = true;
            }
        }
        if delta <= 1e-15 {
            // Numerical floor: freeze everything touching a saturated link
            // happened above; avoid spinning.
            for (i, f) in flows.iter().enumerate() {
                if !frozen[i] {
                    let stuck = links_of(f).iter().any(|&l| residual[l] <= 1e-12);
                    if stuck {
                        frozen[i] = true;
                    }
                }
            }
        }
    }
    rates
}

/// Naive ablation: a static equal share per link, no reservations, no
/// redistribution of whatever capped flows leave unused.
fn equal_split(local_bw: &[f64], flows: &[FlowSpec]) -> Vec<f64> {
    let mut count = vec![0usize; local_bw.len()];
    for f in flows {
        count[f.src.index()] += 1;
        count[f.dst.index()] += 1;
    }
    flows
        .iter()
        .map(|f| {
            let src_share = local_bw[f.src.index()] / count[f.src.index()].max(1) as f64;
            let dst_share = local_bw[f.dst.index()] / count[f.dst.index()].max(1) as f64;
            f.cap.min(src_share).min(dst_share)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ClusterId {
        ClusterId(i)
    }

    fn flow(src: u32, dst: u32, cap: f64) -> FlowSpec {
        FlowSpec {
            src: c(src),
            dst: c(dst),
            cap,
            demand: 0.0,
        }
    }

    fn reserved(src: u32, dst: u32, cap: f64, demand: f64) -> FlowSpec {
        FlowSpec {
            demand,
            ..flow(src, dst, cap)
        }
    }

    #[test]
    fn reservations_are_honored_before_fair_share() {
        // The LPRR starvation shape: link g_0 = 60 carries four flows whose
        // reservation equals their cap (15) plus one small reserved flow.
        // Pure max-min would give every flow 12 and the capped flows could
        // never recover; reservations must pre-empt fairness.
        let flows = [
            reserved(0, 1, 15.0, 15.0),
            reserved(0, 2, 15.0, 15.0),
            reserved(0, 3, 15.0, 15.0),
            reserved(0, 4, 15.0, 12.9),
            reserved(5, 0, 15.0, 1.02),
        ];
        let g = [60.0, 100.0, 100.0, 100.0, 100.0, 100.0];
        let rates = allocate_rates(&g, &flows, BandwidthModel::MaxMinFair);
        for (r, f) in rates.iter().zip(&flows) {
            assert!(
                *r >= f.demand - 1e-9,
                "flow {f:?} got {r} < reservation {}",
                f.demand
            );
            assert!(*r <= f.cap + 1e-9);
        }
        // Work conservation: the surplus 60 − 58.92 goes to unfrozen flows.
        let used: f64 = rates.iter().sum();
        assert!(used <= 60.0 + 1e-9);
        assert!(used >= 60.0 - 1e-9, "surplus left on the table: {used}");
    }

    #[test]
    fn oversubscribed_reservations_scale_down_per_link() {
        // Invalid input: reservations alone exceed g_0 = 10. Floors must be
        // scaled so no link is overdriven, and filling still tops rates up
        // to the (scaled) feasible point.
        let flows = [reserved(0, 1, 20.0, 12.0), reserved(0, 2, 20.0, 8.0)];
        let g = [10.0, 100.0, 100.0];
        let rates = allocate_rates(&g, &flows, BandwidthModel::MaxMinFair);
        let used: f64 = rates.iter().sum();
        assert!(used <= 10.0 + 1e-9, "link overdriven: {used}");
        for r in &rates {
            assert!(*r > 0.0);
        }
    }

    #[test]
    fn zero_demand_matches_classical_maxmin() {
        // demand = 0 everywhere degenerates to the old behaviour.
        let rates = allocate_rates(
            &[10.0, 100.0, 100.0],
            &[flow(0, 1, 2.0), flow(0, 2, f64::INFINITY)],
            BandwidthModel::MaxMinFair,
        );
        assert!((rates[0] - 2.0).abs() < 1e-9);
        assert!((rates[1] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn single_flow_takes_minimum() {
        let rates = allocate_rates(
            &[10.0, 4.0],
            &[flow(0, 1, 100.0)],
            BandwidthModel::MaxMinFair,
        );
        assert_eq!(rates, vec![4.0]);
        let rates = allocate_rates(&[10.0, 4.0], &[flow(0, 1, 2.5)], BandwidthModel::MaxMinFair);
        assert_eq!(rates, vec![2.5]);
    }

    #[test]
    fn two_flows_share_source_fairly() {
        // g_0 = 10 shared by two uncapped flows to distinct wide sinks.
        let rates = allocate_rates(
            &[10.0, 100.0, 100.0],
            &[flow(0, 1, f64::INFINITY), flow(0, 2, f64::INFINITY)],
            BandwidthModel::MaxMinFair,
        );
        assert!((rates[0] - 5.0).abs() < 1e-9);
        assert!((rates[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn capped_flow_releases_capacity_to_the_other() {
        // Same as above but flow 0 capped at 2: flow 1 should get 8.
        let rates = allocate_rates(
            &[10.0, 100.0, 100.0],
            &[flow(0, 1, 2.0), flow(0, 2, f64::INFINITY)],
            BandwidthModel::MaxMinFair,
        );
        assert!((rates[0] - 2.0).abs() < 1e-9);
        assert!((rates[1] - 8.0).abs() < 1e-9, "rates {rates:?}");
        // The equal-split ablation wastes the released share.
        let naive = allocate_rates(
            &[10.0, 100.0, 100.0],
            &[flow(0, 1, 2.0), flow(0, 2, f64::INFINITY)],
            BandwidthModel::EqualSplit,
        );
        assert!((naive[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn incoming_and_outgoing_share_one_link() {
        // Cluster 0 both sends and receives: both flows cross g_0 = 6.
        let rates = allocate_rates(
            &[6.0, 100.0, 100.0],
            &[flow(0, 1, f64::INFINITY), flow(2, 0, f64::INFINITY)],
            BandwidthModel::MaxMinFair,
        );
        assert!((rates[0] - 3.0).abs() < 1e-9);
        assert!((rates[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn rates_never_violate_links_or_caps() {
        // Randomised consistency check.
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        for _ in 0..200 {
            let n_clusters = rng.gen_range(2..6);
            let g: Vec<f64> = (0..n_clusters).map(|_| rng.gen_range(1.0..50.0)).collect();
            let n_flows = rng.gen_range(1..8);
            let flows: Vec<FlowSpec> = (0..n_flows)
                .map(|_| {
                    let src = rng.gen_range(0..n_clusters);
                    let mut dst = rng.gen_range(0..n_clusters);
                    if dst == src {
                        dst = (dst + 1) % n_clusters;
                    }
                    flow(src as u32, dst as u32, rng.gen_range(0.5..30.0))
                })
                .collect();
            for model in [BandwidthModel::MaxMinFair, BandwidthModel::EqualSplit] {
                let rates = allocate_rates(&g, &flows, model);
                let mut used = vec![0.0f64; n_clusters];
                for (r, f) in rates.iter().zip(&flows) {
                    assert!(*r >= 0.0);
                    assert!(*r <= f.cap + 1e-9);
                    used[f.src.index()] += r;
                    used[f.dst.index()] += r;
                }
                for (u, cap) in used.iter().zip(&g) {
                    assert!(u <= &(cap + 1e-6), "link overdriven: {u} > {cap}");
                }
            }
        }
    }

    #[test]
    fn maxmin_dominates_equal_split_in_total() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            let g: Vec<f64> = (0..4).map(|_| rng.gen_range(5.0..40.0)).collect();
            let flows: Vec<FlowSpec> = (0..5)
                .map(|_| {
                    let src = rng.gen_range(0..4usize);
                    let dst = (src + rng.gen_range(1..4)) % 4;
                    flow(src as u32, dst as u32, rng.gen_range(1.0..20.0))
                })
                .collect();
            let fair: f64 = allocate_rates(&g, &flows, BandwidthModel::MaxMinFair)
                .iter()
                .sum();
            let naive: f64 = allocate_rates(&g, &flows, BandwidthModel::EqualSplit)
                .iter()
                .sum();
            assert!(fair >= naive - 1e-6, "fair {fair} < naive {naive}");
        }
    }

    #[test]
    fn empty_flow_list() {
        assert!(allocate_rates(&[5.0], &[], BandwidthModel::MaxMinFair).is_empty());
    }
}
