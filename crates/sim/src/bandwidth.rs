//! Bandwidth sharing on the fluid local links.
//!
//! The platform model gives every flow a hard cap from its backbone
//! connections (`β · min bw`) and routes it across two fluid local links
//! (source egress `g_src`, destination ingress `g_dst`) whose capacity is
//! shared with every other flow touching the same cluster. The reference
//! allocator implements **reservation-aware max-min fairness**:
//!
//! 1. every flow is first granted its *reserved* rate [`FlowSpec::demand`]
//!    (the steady-state rate `α` the Eq. 7 allocation budgeted for it —
//!    constraints 7b/7c guarantee the reservations fit on every local
//!    link);
//! 2. the surplus is then distributed by classical progressive filling
//!    (Bertsekas & Gallager): all unfrozen flow rates rise together; a flow
//!    freezes when it hits its cap or when one of its links saturates.
//!
//! The reservation phase is what makes valid periodic schedules execute on
//! time: pure max-min filling from zero gives every flow on a shared link an
//! *equal* share first, which can starve a flow whose reserved rate sits at
//! its connection cap (it can never catch up later) while a small flow
//! hoards bandwidth it does not need. With `demand = 0` the allocator
//! degenerates to the classical cap-limited max-min water-filling.

use dls_platform::ClusterId;
use serde::{Deserialize, Serialize};

/// A flow to be rate-allocated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// Source cluster (consumes `g_src` egress).
    pub src: ClusterId,
    /// Destination cluster (consumes `g_dst` ingress).
    pub dst: ClusterId,
    /// Hard per-flow cap `β·minbw` (`f64::INFINITY` for same-router pairs).
    pub cap: f64,
    /// Reserved steady-state rate (`α` from the allocation; `0.0` for
    /// best-effort flows with no reservation).
    pub demand: f64,
}

/// Sharing discipline for the local links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BandwidthModel {
    /// Max-min fair progressive filling (the realistic model).
    MaxMinFair,
    /// Static equal split per link with no redistribution (ablation: wastes
    /// whatever capped flows leave on the table).
    EqualSplit,
}

/// Computes a rate per flow.
///
/// `local_bw[c]` is the capacity `g_c` of cluster `c`'s local link; each
/// flow consumes capacity on `src` and on `dst` (the paper's Eq. 7c counts
/// outgoing plus incoming traffic against the same link).
pub fn allocate_rates(local_bw: &[f64], flows: &[FlowSpec], model: BandwidthModel) -> Vec<f64> {
    match model {
        BandwidthModel::MaxMinFair => max_min_fair(local_bw, flows),
        BandwidthModel::EqualSplit => equal_split(local_bw, flows),
    }
}

/// Freeze tolerance shared by the oracle and the incremental allocator: a
/// link counts as saturated (and a flow as capped) when the slack drops
/// below `SAT_TOL · (1 + scale)`.
const SAT_TOL: f64 = 1e-12;

/// Progressive-filling increment below which the loop switches to the
/// stuck-flow freeze path (shared by both allocators).
const DELTA_FLOOR: f64 = 1e-15;

fn max_min_fair(local_bw: &[f64], flows: &[FlowSpec]) -> Vec<f64> {
    let n = flows.len();
    let mut rates = vec![0.0f64; n];
    if n == 0 {
        return rates;
    }
    let mut residual: Vec<f64> = local_bw.to_vec();
    let mut frozen = vec![false; n];
    // Flows per link (a flow with src == dst would be a modelling error and
    // is debug-asserted away by the engine).
    let links_of = |f: &FlowSpec| [f.src.index(), f.dst.index()];

    // Phase 1: grant reservations. Valid Eq. 7 allocations keep the summed
    // reservations within every local link; if an (invalid) input
    // oversubscribes a link anyway, scale the floors on that link down
    // proportionally so reservations alone never overdrive a link.
    let floors: Vec<f64> = flows.iter().map(|f| f.demand.max(0.0).min(f.cap)).collect();
    let mut floor_load = vec![0.0f64; local_bw.len()];
    for (f, &fl) in flows.iter().zip(&floors) {
        for l in links_of(f) {
            floor_load[l] += fl;
        }
    }
    let scale: Vec<f64> = floor_load
        .iter()
        .zip(local_bw)
        .map(|(&load, &g)| if load > g { g / load } else { 1.0 })
        .collect();
    for (i, f) in flows.iter().enumerate() {
        let s = links_of(f).iter().map(|&l| scale[l]).fold(1.0, f64::min);
        rates[i] = floors[i] * s;
        for l in links_of(f) {
            residual[l] = (residual[l] - rates[i]).max(0.0);
        }
    }

    // Phase 2: distribute the surplus by progressive filling.
    loop {
        let mut unfrozen_on_link = vec![0usize; local_bw.len()];
        let mut any_unfrozen = false;
        for (i, f) in flows.iter().enumerate() {
            if !frozen[i] {
                any_unfrozen = true;
                for l in links_of(f) {
                    unfrozen_on_link[l] += 1;
                }
            }
        }
        if !any_unfrozen {
            break;
        }
        // The smallest admissible simultaneous increment δ.
        let mut delta = f64::INFINITY;
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            delta = delta.min(f.cap - rates[i]);
            for l in links_of(f) {
                delta = delta.min(residual[l] / unfrozen_on_link[l] as f64);
            }
        }
        if !delta.is_finite() {
            // Every unfrozen flow is uncapped and touches only unsaturated,
            // infinite-capacity links — cannot happen with finite g, but
            // guard against degenerate inputs.
            break;
        }
        let delta = delta.max(0.0);
        // Apply the increment and freeze whoever hit a wall.
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            rates[i] += delta;
            for l in links_of(f) {
                residual[l] -= delta;
            }
        }
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let capped = rates[i] >= f.cap - SAT_TOL;
            let saturated = links_of(f)
                .iter()
                .any(|&l| residual[l] <= SAT_TOL * (1.0 + local_bw[l]));
            if capped || saturated {
                frozen[i] = true;
            }
        }
        if delta <= DELTA_FLOOR {
            // Numerical floor: freeze everything touching a saturated link
            // happened above; avoid spinning.
            for (i, f) in flows.iter().enumerate() {
                if !frozen[i] {
                    let stuck = links_of(f).iter().any(|&l| residual[l] <= SAT_TOL);
                    if stuck {
                        frozen[i] = true;
                    }
                }
            }
        }
    }
    rates
}

/// Naive ablation: a static equal share per link, no reservations, no
/// redistribution of whatever capped flows leave unused.
fn equal_split(local_bw: &[f64], flows: &[FlowSpec]) -> Vec<f64> {
    let mut count = vec![0usize; local_bw.len()];
    for f in flows {
        count[f.src.index()] += 1;
        count[f.dst.index()] += 1;
    }
    flows
        .iter()
        .map(|f| {
            let src_share = local_bw[f.src.index()] / count[f.src.index()].max(1) as f64;
            let dst_share = local_bw[f.dst.index()] / count[f.dst.index()].max(1) as f64;
            f.cap.min(src_share).min(dst_share)
        })
        .collect()
}

/// Stable handle to a flow tracked by a [`BandwidthAllocator`].
///
/// Slots are reused after removal; the generation counter makes stale
/// handles detectable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId {
    slot: u32,
    gen: u32,
}

impl FlowId {
    /// Dense slot index, stable while the flow is live (reused afterwards).
    /// Useful for slot-indexed side tables; bound it by
    /// [`BandwidthAllocator::slots`].
    pub fn index(self) -> usize {
        self.slot as usize
    }

    /// Decomposes the handle for snapshot serialisation (crate-internal).
    pub(crate) fn to_parts(self) -> (u32, u32) {
        (self.slot, self.gen)
    }

    /// Rebuilds a handle from snapshot parts (crate-internal).
    pub(crate) fn of_parts(slot: u32, gen: u32) -> FlowId {
        FlowId { slot, gen }
    }
}

/// One slot's spec in an [`AllocatorState`]. The per-flow cap is
/// `Option`-encoded because `f64::INFINITY` (same-router pairs) does not
/// survive a JSON round trip: `None` means "uncapped".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct SpecState {
    src: u32,
    dst: u32,
    cap: Option<f64>,
    demand: f64,
}

impl SpecState {
    fn of(spec: &FlowSpec) -> SpecState {
        SpecState {
            src: spec.src.0,
            dst: spec.dst.0,
            cap: if spec.cap.is_finite() {
                Some(spec.cap)
            } else {
                None
            },
            demand: spec.demand,
        }
    }

    fn to_spec(self) -> FlowSpec {
        FlowSpec {
            src: ClusterId(self.src),
            dst: ClusterId(self.dst),
            cap: self.cap.unwrap_or(f64::INFINITY),
            demand: self.demand,
        }
    }
}

/// Serialisable persistent state of a [`BandwidthAllocator`], captured by
/// [`BandwidthAllocator::snapshot`] and rebuilt by
/// [`BandwidthAllocator::from_state`].
///
/// Only the path-dependent persistent state is stored — slot assignments,
/// generations, the free list, per-link membership *order* (summation
/// order matters bit-for-bit), and the current rates. Scratch buffers are
/// rebuilt empty; the sharing model is supplied at restore time by the
/// caller's config.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocatorState {
    local_bw: Vec<f64>,
    specs: Vec<SpecState>,
    rates: Vec<f64>,
    live: Vec<bool>,
    gen: Vec<u32>,
    free: Vec<u32>,
    link_flows: Vec<Vec<u32>>,
}

/// Stateful, incremental version of [`allocate_rates`].
///
/// The full allocator recomputes every rate from scratch at every event —
/// `O(F)` per event even when a single flow changed. This allocator keeps
/// the current allocation and, on arrival/completion, recomputes only the
/// **dirty set**: flows transitively sharing a *saturated* local link with
/// the changed flows. All other rates are provably unchanged:
///
/// * a link that is unsaturated in both the old and the new allocation
///   never freezes a flow during progressive filling, so it transmits no
///   influence between the flows crossing it;
/// * therefore influence propagates from a changed flow only through links
///   that are saturated before the change (grown eagerly) or become
///   saturated after it (detected by a post-solve check that expands the
///   dirty set and re-solves — the loop terminates because the dirty set
///   grows monotonically);
/// * reservation floors are scaled per link exactly like the oracle's
///   phase 1; a link whose floor load crosses its capacity marks all its
///   flows dirty, so scaling changes never leak to clean flows.
///
/// Within the dirty subproblem the allocator runs the *same* two-phase
/// algorithm as [`allocate_rates`] (floors, then progressive filling with
/// identical freeze tolerances) against the residual capacity left by the
/// clean flows, so the fixpoint it converges to is the oracle's — the
/// equivalence is asserted by property tests and, when
/// [`crate::SimConfig::oracle_check`] is set, at every simulation event.
#[derive(Debug, Clone)]
pub struct BandwidthAllocator {
    model: BandwidthModel,
    local_bw: Vec<f64>,
    // Slot-indexed flow state.
    specs: Vec<FlowSpec>,
    rates: Vec<f64>,
    live: Vec<bool>,
    gen: Vec<u32>,
    free: Vec<u32>,
    n_live: usize,
    /// Per local link, the slots of the flows crossing it.
    link_flows: Vec<Vec<u32>>,
    /// Flows (including freshly added ones) whose rate changed in the last
    /// [`BandwidthAllocator::update`].
    changed: Vec<FlowId>,
    // --- scratch, slot-indexed ---
    dirty_mark: Vec<bool>,
    added_mark: Vec<bool>,
    old_rates: Vec<f64>,
    frozen: Vec<bool>,
    // --- scratch, link-indexed ---
    affected: Vec<bool>,
    used_old: Vec<f64>,
    used_old_valid: Vec<bool>,
    avail: Vec<f64>,
    scale: Vec<f64>,
    unfrozen: Vec<usize>,
    touch_mark: Vec<bool>,
    mchanged_mark: Vec<bool>,
    removed_used: Vec<f64>,
    removed_floor: Vec<f64>,
    added_floor: Vec<f64>,
    // --- scratch lists ---
    dirty: Vec<u32>,
    touched: Vec<u32>,
    mchanged: Vec<u32>,
    work: Vec<u32>,
}

impl BandwidthAllocator {
    /// Creates an empty allocator over the given local-link capacities.
    pub fn new(local_bw: &[f64], model: BandwidthModel) -> Self {
        let nl = local_bw.len();
        BandwidthAllocator {
            model,
            local_bw: local_bw.to_vec(),
            specs: Vec::new(),
            rates: Vec::new(),
            live: Vec::new(),
            gen: Vec::new(),
            free: Vec::new(),
            n_live: 0,
            link_flows: vec![Vec::new(); nl],
            changed: Vec::new(),
            dirty_mark: Vec::new(),
            added_mark: Vec::new(),
            old_rates: Vec::new(),
            frozen: Vec::new(),
            affected: vec![false; nl],
            used_old: vec![0.0; nl],
            used_old_valid: vec![false; nl],
            avail: vec![0.0; nl],
            scale: vec![1.0; nl],
            unfrozen: vec![0; nl],
            touch_mark: vec![false; nl],
            mchanged_mark: vec![false; nl],
            removed_used: vec![0.0; nl],
            removed_floor: vec![0.0; nl],
            added_floor: vec![0.0; nl],
            dirty: Vec::new(),
            touched: Vec::new(),
            mchanged: Vec::new(),
            work: Vec::new(),
        }
    }

    /// Number of live flows.
    pub fn len(&self) -> usize {
        self.n_live
    }

    /// `true` when no flow is live.
    pub fn is_empty(&self) -> bool {
        self.n_live == 0
    }

    /// Upper bound (exclusive) on [`FlowId::index`] of any live flow.
    pub fn slots(&self) -> usize {
        self.specs.len()
    }

    /// The sharing discipline this allocator implements.
    pub fn model(&self) -> BandwidthModel {
        self.model
    }

    /// Current rate of a live flow.
    pub fn rate(&self, id: FlowId) -> f64 {
        debug_assert!(self.is_current(id), "stale FlowId");
        self.rates[id.slot as usize]
    }

    /// Spec of a live flow.
    pub fn spec(&self, id: FlowId) -> &FlowSpec {
        debug_assert!(self.is_current(id), "stale FlowId");
        &self.specs[id.slot as usize]
    }

    /// `true` iff `id` refers to a currently live flow.
    pub fn is_current(&self, id: FlowId) -> bool {
        let s = id.slot as usize;
        s < self.specs.len() && self.live[s] && self.gen[s] == id.gen
    }

    /// Flows whose rate changed during the last [`BandwidthAllocator::update`]
    /// (freshly added flows are reported through the update's `new_ids`).
    pub fn changed(&self) -> &[FlowId] {
        &self.changed
    }

    /// Live flows in slot order: `(id, spec, rate)`. Intended for oracle
    /// cross-checks and diagnostics — `O(slots)`.
    pub fn live_flows(&self) -> Vec<(FlowId, FlowSpec, f64)> {
        (0..self.specs.len())
            .filter(|&s| self.live[s])
            .map(|s| {
                (
                    FlowId {
                        slot: s as u32,
                        gen: self.gen[s],
                    },
                    self.specs[s],
                    self.rates[s],
                )
            })
            .collect()
    }

    /// Panics unless every live flow's rate matches a fresh
    /// [`allocate_rates`] solve within `tol` relative — the single
    /// equivalence contract shared by the engine's
    /// [`crate::SimConfig::oracle_check`], the unit tests, and the property
    /// tests. `O(F)` plus a full solve; not for hot paths.
    #[track_caller]
    pub fn assert_matches_oracle(&self, tol: f64, context: &str) {
        let live = self.live_flows();
        let specs: Vec<FlowSpec> = live.iter().map(|(_, s, _)| *s).collect();
        let oracle = allocate_rates(&self.local_bw, &specs, self.model);
        for (i, ((id, spec, rate), want)) in live.iter().zip(&oracle).enumerate() {
            assert!(
                dls_core::approx::close(*rate, *want, tol),
                "{context}: flow {i} ({spec:?}, {id:?}) has incremental rate {rate}, \
                 the full oracle says {want}"
            );
        }
    }

    /// Adds one flow; returns its handle. See [`BandwidthAllocator::update`].
    pub fn insert(&mut self, spec: FlowSpec) -> FlowId {
        let mut ids = Vec::with_capacity(1);
        self.update(&[], std::slice::from_ref(&spec), &mut ids);
        ids[0]
    }

    /// Removes one flow, returning its spec. See
    /// [`BandwidthAllocator::update`].
    pub fn remove(&mut self, id: FlowId) -> FlowSpec {
        let spec = *self.spec(id);
        let mut ids = Vec::new();
        self.update(std::slice::from_ref(&id), &[], &mut ids);
        spec
    }

    /// Applies a batch of removals and additions and reallocates the dirty
    /// set in one pass. Handles for the added flows are written to
    /// `new_ids` (cleared first, in `additions` order); flows whose rate
    /// changed are afterwards available from
    /// [`BandwidthAllocator::changed`].
    pub fn update(
        &mut self,
        removals: &[FlowId],
        additions: &[FlowSpec],
        new_ids: &mut Vec<FlowId>,
    ) {
        self.changed.clear();
        new_ids.clear();
        if removals.is_empty() && additions.is_empty() {
            return;
        }

        // --- removals ---
        for &id in removals {
            assert!(self.is_current(id), "removal of a stale FlowId");
            let s = id.slot as usize;
            let spec = self.specs[s];
            let floor = raw_floor(&spec);
            for l in [spec.src.index(), spec.dst.index()] {
                self.mark_membership_changed(l);
                self.removed_used[l] += self.rates[s];
                self.removed_floor[l] += floor;
                let pos = self.link_flows[l]
                    .iter()
                    .position(|&x| x == id.slot)
                    .expect("flow registered on its link");
                self.link_flows[l].swap_remove(pos);
            }
            self.live[s] = false;
            self.gen[s] = self.gen[s].wrapping_add(1);
            self.rates[s] = 0.0;
            self.free.push(id.slot);
            self.n_live -= 1;
        }

        // --- additions ---
        for spec in additions {
            debug_assert!(
                spec.src != spec.dst,
                "flow with src == dst is a modelling error"
            );
            let s = match self.free.pop() {
                Some(s) => s as usize,
                None => {
                    self.specs.push(FlowSpec {
                        src: ClusterId(0),
                        dst: ClusterId(0),
                        cap: 0.0,
                        demand: 0.0,
                    });
                    self.rates.push(0.0);
                    self.live.push(false);
                    self.gen.push(0);
                    self.dirty_mark.push(false);
                    self.added_mark.push(false);
                    self.old_rates.push(0.0);
                    self.frozen.push(false);
                    self.specs.len() - 1
                }
            };
            self.specs[s] = *spec;
            self.live[s] = true;
            self.rates[s] = 0.0;
            self.added_mark[s] = true;
            self.n_live += 1;
            let floor = raw_floor(spec);
            for l in [spec.src.index(), spec.dst.index()] {
                self.mark_membership_changed(l);
                self.added_floor[l] += floor;
                self.link_flows[l].push(s as u32);
            }
            new_ids.push(FlowId {
                slot: s as u32,
                gen: self.gen[s],
            });
            // Added flows seed the dirty set.
            self.make_dirty(s);
        }

        if self.n_live > 0 {
            match self.model {
                BandwidthModel::MaxMinFair => self.reallocate_maxmin(),
                BandwidthModel::EqualSplit => self.reallocate_equal_split(),
            }
        }

        self.finish_update();
    }

    /// Changes the capacity of one local link and incrementally
    /// re-allocates. See [`BandwidthAllocator::retune`].
    pub fn set_local_bw(&mut self, link: usize, g: f64) {
        self.retune(&[(link, g)]);
    }

    /// Applies a batch of local-link capacity changes `(link, new_g)` and
    /// re-allocates the dirty set in one pass: every flow crossing a
    /// re-tuned link is re-solved (for max-min, together with everything
    /// transitively coupled through links that were saturated under the old
    /// allocation, exactly like [`BandwidthAllocator::update`]), while
    /// provably-unaffected rates stay untouched. Flows whose rate changed
    /// are afterwards available from [`BandwidthAllocator::changed`].
    ///
    /// This is the capacity half of the live-mutation API: platform drift
    /// (`g_k` rising or falling, down to a churn outage at `g_k = 0`)
    /// becomes one incremental event instead of a fresh engine build.
    pub fn retune(&mut self, changes: &[(usize, f64)]) {
        self.changed.clear();
        if changes.is_empty() {
            return;
        }
        for &(l, g) in changes {
            assert!(
                g >= 0.0 && g.is_finite(),
                "local-link capacity must be finite and non-negative, got {g}"
            );
            // Affect the link while its *old* saturation snapshot is still
            // the one influence propagation sees; the whole population
            // re-solves under the new capacity either way.
            self.affect(l);
            self.local_bw[l] = g;
        }
        if self.n_live > 0 {
            match self.model {
                BandwidthModel::MaxMinFair => {
                    self.grow_from_work();
                    loop {
                        self.solve_dirty_subproblem();
                        if !self.expand_newly_saturated() {
                            break;
                        }
                        self.grow_from_work();
                    }
                }
                BandwidthModel::EqualSplit => {
                    self.work.clear();
                    self.recompute_equal_split_dirty();
                }
            }
        }
        self.finish_update();
    }

    /// Applies a batch of per-flow constraint changes `(id, new_cap,
    /// new_demand)` and re-allocates the dirty set in one pass, exactly
    /// like [`BandwidthAllocator::retune`] does for link capacities.
    ///
    /// This is the per-flow half of the live-mutation API: a backbone
    /// partition stalls a flow (`cap = 0`) and the heal restores it, a
    /// straggler degrades it, all without churning the flow's slot or
    /// handle. Both links of every reshaped flow are conservatively pulled
    /// into the dirty set (their whole populations re-solve — reservation
    /// scaling on those links may shift), and influence propagates further
    /// only through links saturated under the old allocation.
    pub fn reshape(&mut self, changes: &[(FlowId, f64, f64)]) {
        self.changed.clear();
        if changes.is_empty() {
            return;
        }
        for &(id, cap, demand) in changes {
            assert!(self.is_current(id), "reshape of a stale FlowId");
            assert!(
                cap >= 0.0 && !cap.is_nan(),
                "per-flow cap must be non-negative, got {cap}"
            );
            assert!(
                demand >= 0.0 && demand.is_finite(),
                "per-flow demand must be finite and non-negative, got {demand}"
            );
            let s = id.slot as usize;
            let spec = self.specs[s];
            // Affect both links while the *old* saturation snapshot is
            // still the one influence propagation sees.
            self.affect(spec.src.index());
            self.affect(spec.dst.index());
            self.specs[s].cap = cap;
            self.specs[s].demand = demand;
        }
        if self.n_live > 0 {
            match self.model {
                BandwidthModel::MaxMinFair => {
                    self.grow_from_work();
                    loop {
                        self.solve_dirty_subproblem();
                        if !self.expand_newly_saturated() {
                            break;
                        }
                        self.grow_from_work();
                    }
                }
                BandwidthModel::EqualSplit => {
                    self.work.clear();
                    self.recompute_equal_split_dirty();
                }
            }
        }
        self.finish_update();
    }

    /// Captures the persistent state for failover snapshots. Must be
    /// called between updates (scratch state is transient and not saved);
    /// [`BandwidthAllocator::from_state`] rebuilds an allocator that
    /// behaves bit-identically from this point on.
    pub fn snapshot(&self) -> AllocatorState {
        AllocatorState {
            local_bw: self.local_bw.clone(),
            specs: self.specs.iter().map(SpecState::of).collect(),
            rates: self.rates.clone(),
            live: self.live.clone(),
            gen: self.gen.clone(),
            free: self.free.clone(),
            link_flows: self.link_flows.clone(),
        }
    }

    /// Rebuilds an allocator from a [`BandwidthAllocator::snapshot`] under
    /// the given sharing model (the model is config, not state).
    pub fn from_state(state: &AllocatorState, model: BandwidthModel) -> Self {
        let mut alloc = BandwidthAllocator::new(&state.local_bw, model);
        alloc.specs = state.specs.iter().map(|s| s.to_spec()).collect();
        alloc.rates = state.rates.clone();
        alloc.live = state.live.clone();
        alloc.gen = state.gen.clone();
        alloc.free = state.free.clone();
        alloc.link_flows = state.link_flows.clone();
        alloc.n_live = state.live.iter().filter(|&&l| l).count();
        let slots = alloc.specs.len();
        alloc.dirty_mark = vec![false; slots];
        alloc.added_mark = vec![false; slots];
        alloc.old_rates = vec![0.0; slots];
        alloc.frozen = vec![false; slots];
        alloc
    }

    /// Reports rate changes and resets the per-update scratch state (the
    /// shared tail of [`BandwidthAllocator::update`] and
    /// [`BandwidthAllocator::retune`]).
    fn finish_update(&mut self) {
        for i in 0..self.dirty.len() {
            let s = self.dirty[i] as usize;
            self.dirty_mark[s] = false;
            self.frozen[s] = false;
            let added = std::mem::replace(&mut self.added_mark[s], false);
            if self.live[s] && !added && self.rates[s] != self.old_rates[s] {
                self.changed.push(FlowId {
                    slot: s as u32,
                    gen: self.gen[s],
                });
            }
        }
        self.dirty.clear();
        self.work.clear();
        for i in 0..self.touched.len() {
            let l = self.touched[i] as usize;
            self.affected[l] = false;
            self.used_old_valid[l] = false;
            self.touch_mark[l] = false;
        }
        self.touched.clear();
        for i in 0..self.mchanged.len() {
            let l = self.mchanged[i] as usize;
            self.mchanged_mark[l] = false;
            self.removed_used[l] = 0.0;
            self.removed_floor[l] = 0.0;
            self.added_floor[l] = 0.0;
        }
        self.mchanged.clear();
    }

    fn mark_membership_changed(&mut self, l: usize) {
        if !self.mchanged_mark[l] {
            self.mchanged_mark[l] = true;
            self.mchanged.push(l as u32);
        }
        self.touch(l);
    }

    fn touch(&mut self, l: usize) {
        if !self.touch_mark[l] {
            self.touch_mark[l] = true;
            self.touched.push(l as u32);
        }
    }

    /// Marks a slot dirty, snapshotting its pre-update rate, and queues it
    /// for saturation-driven growth.
    fn make_dirty(&mut self, s: usize) {
        if !self.dirty_mark[s] {
            self.dirty_mark[s] = true;
            self.old_rates[s] = self.rates[s];
            self.dirty.push(s as u32);
            self.work.push(s as u32);
        }
    }

    /// Link usage under the *old* allocation (pre-update rates, including
    /// flows removed by this update), lazily computed and cached.
    fn used_old(&mut self, l: usize) -> f64 {
        if !self.used_old_valid[l] {
            let mut u = self.removed_used[l];
            for &s in &self.link_flows[l] {
                let s = s as usize;
                u += if self.dirty_mark[s] {
                    self.old_rates[s]
                } else {
                    self.rates[s]
                };
            }
            self.used_old[l] = u;
            self.used_old_valid[l] = true;
            self.touch(l);
        }
        self.used_old[l]
    }

    fn saturated_old(&mut self, l: usize) -> bool {
        let g = self.local_bw[l];
        self.used_old(l) >= g - SAT_TOL * (1.0 + g)
    }

    /// Marks every flow on `l` dirty (the link's whole population will be
    /// re-solved).
    fn affect(&mut self, l: usize) {
        if !self.affected[l] {
            self.affected[l] = true;
            self.touch(l);
            let flows = std::mem::take(&mut self.link_flows[l]);
            for &s in &flows {
                self.make_dirty(s as usize);
            }
            self.link_flows[l] = flows;
        }
    }

    /// Drains the grow worklist: every dirty flow pulls in the full
    /// population of any of its links that was saturated under the old
    /// allocation (influence propagates through saturated links only).
    fn grow_from_work(&mut self) {
        while let Some(s) = self.work.pop() {
            let s = s as usize;
            let spec = self.specs[s];
            for l in [spec.src.index(), spec.dst.index()] {
                self.touch(l);
                if !self.affected[l] && self.saturated_old(l) {
                    self.affect(l);
                }
            }
        }
    }

    fn reallocate_maxmin(&mut self) {
        // Seed the dirty set from the links whose membership changed:
        // reservation-scaling changes and old saturation both require the
        // link's whole population in the subproblem.
        for i in 0..self.mchanged.len() {
            let l = self.mchanged[i] as usize;
            let g = self.local_bw[l];
            let floor_new: f64 = self.link_flows[l]
                .iter()
                .map(|&s| raw_floor(&self.specs[s as usize]))
                .sum();
            let floor_old = floor_new - self.added_floor[l] + self.removed_floor[l];
            if floor_new > g || floor_old > g || self.saturated_old(l) {
                self.affect(l);
            }
        }
        self.grow_from_work();

        loop {
            self.solve_dirty_subproblem();
            if !self.expand_newly_saturated() {
                break;
            }
            self.grow_from_work();
        }
    }

    /// One run of the oracle's two-phase algorithm restricted to the dirty
    /// flows, against the residual capacity left by the clean flows.
    fn solve_dirty_subproblem(&mut self) {
        // Residual capacity and reservation scaling per touched link. The
        // scale uses the *raw* floor load of every flow on the link, exactly
        // like the oracle's phase 1 (clean flows' scaled floors are already
        // embedded in their unchanged rates).
        for i in 0..self.touched.len() {
            let l = self.touched[i] as usize;
            let g = self.local_bw[l];
            let mut avail = g;
            let mut floor_load = 0.0;
            for &s in &self.link_flows[l] {
                let s = s as usize;
                floor_load += raw_floor(&self.specs[s]);
                if !self.dirty_mark[s] {
                    avail -= self.rates[s];
                }
            }
            self.avail[l] = avail.max(0.0);
            self.scale[l] = if floor_load > g { g / floor_load } else { 1.0 };
        }

        // Phase 1: grant (scaled) reservations to the dirty flows.
        for i in 0..self.dirty.len() {
            let s = self.dirty[i] as usize;
            self.frozen[s] = false;
            let spec = self.specs[s];
            let links = [spec.src.index(), spec.dst.index()];
            let sc = self.scale[links[0]].min(self.scale[links[1]]);
            let floor = raw_floor(&spec) * sc;
            self.rates[s] = floor;
            for l in links {
                self.avail[l] = (self.avail[l] - floor).max(0.0);
            }
        }

        // Phase 2: progressive filling over the dirty flows.
        loop {
            for i in 0..self.touched.len() {
                self.unfrozen[self.touched[i] as usize] = 0;
            }
            let mut any_unfrozen = false;
            for i in 0..self.dirty.len() {
                let s = self.dirty[i] as usize;
                if !self.frozen[s] {
                    any_unfrozen = true;
                    let spec = self.specs[s];
                    self.unfrozen[spec.src.index()] += 1;
                    self.unfrozen[spec.dst.index()] += 1;
                }
            }
            if !any_unfrozen {
                break;
            }
            let mut delta = f64::INFINITY;
            for i in 0..self.dirty.len() {
                let s = self.dirty[i] as usize;
                if self.frozen[s] {
                    continue;
                }
                let spec = self.specs[s];
                delta = delta.min(spec.cap - self.rates[s]);
                for l in [spec.src.index(), spec.dst.index()] {
                    delta = delta.min(self.avail[l] / self.unfrozen[l] as f64);
                }
            }
            if !delta.is_finite() {
                break;
            }
            let delta = delta.max(0.0);
            for i in 0..self.dirty.len() {
                let s = self.dirty[i] as usize;
                if self.frozen[s] {
                    continue;
                }
                self.rates[s] += delta;
                let spec = self.specs[s];
                for l in [spec.src.index(), spec.dst.index()] {
                    self.avail[l] -= delta;
                }
            }
            for i in 0..self.dirty.len() {
                let s = self.dirty[i] as usize;
                if self.frozen[s] {
                    continue;
                }
                let spec = self.specs[s];
                let capped = self.rates[s] >= spec.cap - SAT_TOL;
                let saturated = [spec.src.index(), spec.dst.index()]
                    .iter()
                    .any(|&l| self.avail[l] <= SAT_TOL * (1.0 + self.local_bw[l]));
                if capped || saturated {
                    self.frozen[s] = true;
                }
            }
            if delta <= DELTA_FLOOR {
                for i in 0..self.dirty.len() {
                    let s = self.dirty[i] as usize;
                    if !self.frozen[s] {
                        let spec = self.specs[s];
                        let stuck = [spec.src.index(), spec.dst.index()]
                            .iter()
                            .any(|&l| self.avail[l] <= SAT_TOL);
                        if stuck {
                            self.frozen[s] = true;
                        }
                    }
                }
            }
        }
    }

    /// Post-solve consistency check: a boundary link (dirty and clean flows
    /// mixed) that the subproblem saturated imposes a constraint the clean
    /// flows were allocated without — pull its population into the dirty
    /// set and signal a re-solve.
    fn expand_newly_saturated(&mut self) -> bool {
        let mut expanded = false;
        for i in 0..self.touched.len() {
            let l = self.touched[i] as usize;
            if self.affected[l] {
                continue;
            }
            let g = self.local_bw[l];
            let used: f64 = self.link_flows[l]
                .iter()
                .map(|&s| self.rates[s as usize])
                .sum();
            if used >= g - SAT_TOL * (1.0 + g) {
                let has_clean = self.link_flows[l]
                    .iter()
                    .any(|&s| !self.dirty_mark[s as usize]);
                if has_clean {
                    self.affect(l);
                    expanded = true;
                } else {
                    // All flows already dirty: the subproblem handles this
                    // link; no need to recheck it next round.
                    self.affected[l] = true;
                }
            }
        }
        expanded
    }

    /// Equal-split rates depend only on per-link populations, so exactly
    /// the flows on membership-changed links are dirty.
    fn reallocate_equal_split(&mut self) {
        for i in 0..self.mchanged.len() {
            let l = self.mchanged[i] as usize;
            self.affect(l);
        }
        self.work.clear();
        self.recompute_equal_split_dirty();
    }

    /// Recomputes equal-split rates for the current dirty set.
    fn recompute_equal_split_dirty(&mut self) {
        for i in 0..self.dirty.len() {
            let s = self.dirty[i] as usize;
            let spec = self.specs[s];
            let src = spec.src.index();
            let dst = spec.dst.index();
            let src_share = self.local_bw[src] / self.link_flows[src].len().max(1) as f64;
            let dst_share = self.local_bw[dst] / self.link_flows[dst].len().max(1) as f64;
            self.rates[s] = spec.cap.min(src_share).min(dst_share);
        }
    }
}

/// Reservation floor before per-link scaling, matching the oracle.
fn raw_floor(spec: &FlowSpec) -> f64 {
    spec.demand.max(0.0).min(spec.cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ClusterId {
        ClusterId(i)
    }

    fn flow(src: u32, dst: u32, cap: f64) -> FlowSpec {
        FlowSpec {
            src: c(src),
            dst: c(dst),
            cap,
            demand: 0.0,
        }
    }

    fn reserved(src: u32, dst: u32, cap: f64, demand: f64) -> FlowSpec {
        FlowSpec {
            demand,
            ..flow(src, dst, cap)
        }
    }

    #[test]
    fn reservations_are_honored_before_fair_share() {
        // The LPRR starvation shape: link g_0 = 60 carries four flows whose
        // reservation equals their cap (15) plus one small reserved flow.
        // Pure max-min would give every flow 12 and the capped flows could
        // never recover; reservations must pre-empt fairness.
        let flows = [
            reserved(0, 1, 15.0, 15.0),
            reserved(0, 2, 15.0, 15.0),
            reserved(0, 3, 15.0, 15.0),
            reserved(0, 4, 15.0, 12.9),
            reserved(5, 0, 15.0, 1.02),
        ];
        let g = [60.0, 100.0, 100.0, 100.0, 100.0, 100.0];
        let rates = allocate_rates(&g, &flows, BandwidthModel::MaxMinFair);
        for (r, f) in rates.iter().zip(&flows) {
            assert!(
                *r >= f.demand - 1e-9,
                "flow {f:?} got {r} < reservation {}",
                f.demand
            );
            assert!(*r <= f.cap + 1e-9);
        }
        // Work conservation: the surplus 60 − 58.92 goes to unfrozen flows.
        let used: f64 = rates.iter().sum();
        assert!(used <= 60.0 + 1e-9);
        assert!(used >= 60.0 - 1e-9, "surplus left on the table: {used}");
    }

    #[test]
    fn oversubscribed_reservations_scale_down_per_link() {
        // Invalid input: reservations alone exceed g_0 = 10. Floors must be
        // scaled so no link is overdriven, and filling still tops rates up
        // to the (scaled) feasible point.
        let flows = [reserved(0, 1, 20.0, 12.0), reserved(0, 2, 20.0, 8.0)];
        let g = [10.0, 100.0, 100.0];
        let rates = allocate_rates(&g, &flows, BandwidthModel::MaxMinFair);
        let used: f64 = rates.iter().sum();
        assert!(used <= 10.0 + 1e-9, "link overdriven: {used}");
        for r in &rates {
            assert!(*r > 0.0);
        }
    }

    #[test]
    fn zero_demand_matches_classical_maxmin() {
        // demand = 0 everywhere degenerates to the old behaviour.
        let rates = allocate_rates(
            &[10.0, 100.0, 100.0],
            &[flow(0, 1, 2.0), flow(0, 2, f64::INFINITY)],
            BandwidthModel::MaxMinFair,
        );
        assert!((rates[0] - 2.0).abs() < 1e-9);
        assert!((rates[1] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn single_flow_takes_minimum() {
        let rates = allocate_rates(
            &[10.0, 4.0],
            &[flow(0, 1, 100.0)],
            BandwidthModel::MaxMinFair,
        );
        assert_eq!(rates, vec![4.0]);
        let rates = allocate_rates(&[10.0, 4.0], &[flow(0, 1, 2.5)], BandwidthModel::MaxMinFair);
        assert_eq!(rates, vec![2.5]);
    }

    #[test]
    fn two_flows_share_source_fairly() {
        // g_0 = 10 shared by two uncapped flows to distinct wide sinks.
        let rates = allocate_rates(
            &[10.0, 100.0, 100.0],
            &[flow(0, 1, f64::INFINITY), flow(0, 2, f64::INFINITY)],
            BandwidthModel::MaxMinFair,
        );
        assert!((rates[0] - 5.0).abs() < 1e-9);
        assert!((rates[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn capped_flow_releases_capacity_to_the_other() {
        // Same as above but flow 0 capped at 2: flow 1 should get 8.
        let rates = allocate_rates(
            &[10.0, 100.0, 100.0],
            &[flow(0, 1, 2.0), flow(0, 2, f64::INFINITY)],
            BandwidthModel::MaxMinFair,
        );
        assert!((rates[0] - 2.0).abs() < 1e-9);
        assert!((rates[1] - 8.0).abs() < 1e-9, "rates {rates:?}");
        // The equal-split ablation wastes the released share.
        let naive = allocate_rates(
            &[10.0, 100.0, 100.0],
            &[flow(0, 1, 2.0), flow(0, 2, f64::INFINITY)],
            BandwidthModel::EqualSplit,
        );
        assert!((naive[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn incoming_and_outgoing_share_one_link() {
        // Cluster 0 both sends and receives: both flows cross g_0 = 6.
        let rates = allocate_rates(
            &[6.0, 100.0, 100.0],
            &[flow(0, 1, f64::INFINITY), flow(2, 0, f64::INFINITY)],
            BandwidthModel::MaxMinFair,
        );
        assert!((rates[0] - 3.0).abs() < 1e-9);
        assert!((rates[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn rates_never_violate_links_or_caps() {
        // Randomised consistency check.
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        for _ in 0..200 {
            let n_clusters = rng.gen_range(2..6);
            let g: Vec<f64> = (0..n_clusters).map(|_| rng.gen_range(1.0..50.0)).collect();
            let n_flows = rng.gen_range(1..8);
            let flows: Vec<FlowSpec> = (0..n_flows)
                .map(|_| {
                    let src = rng.gen_range(0..n_clusters);
                    let mut dst = rng.gen_range(0..n_clusters);
                    if dst == src {
                        dst = (dst + 1) % n_clusters;
                    }
                    flow(src as u32, dst as u32, rng.gen_range(0.5..30.0))
                })
                .collect();
            for model in [BandwidthModel::MaxMinFair, BandwidthModel::EqualSplit] {
                let rates = allocate_rates(&g, &flows, model);
                let mut used = vec![0.0f64; n_clusters];
                for (r, f) in rates.iter().zip(&flows) {
                    assert!(*r >= 0.0);
                    assert!(*r <= f.cap + 1e-9);
                    used[f.src.index()] += r;
                    used[f.dst.index()] += r;
                }
                for (u, cap) in used.iter().zip(&g) {
                    assert!(u <= &(cap + 1e-6), "link overdriven: {u} > {cap}");
                }
            }
        }
    }

    #[test]
    fn maxmin_dominates_equal_split_in_total() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            let g: Vec<f64> = (0..4).map(|_| rng.gen_range(5.0..40.0)).collect();
            let flows: Vec<FlowSpec> = (0..5)
                .map(|_| {
                    let src = rng.gen_range(0..4usize);
                    let dst = (src + rng.gen_range(1..4)) % 4;
                    flow(src as u32, dst as u32, rng.gen_range(1.0..20.0))
                })
                .collect();
            let fair: f64 = allocate_rates(&g, &flows, BandwidthModel::MaxMinFair)
                .iter()
                .sum();
            let naive: f64 = allocate_rates(&g, &flows, BandwidthModel::EqualSplit)
                .iter()
                .sum();
            assert!(fair >= naive - 1e-6, "fair {fair} < naive {naive}");
        }
    }

    #[test]
    fn empty_flow_list() {
        assert!(allocate_rates(&[5.0], &[], BandwidthModel::MaxMinFair).is_empty());
    }

    #[test]
    fn incremental_tracks_oracle_through_insert_remove_sequence() {
        let g = [60.0, 25.0, 100.0, 40.0, 10.0, 100.0];
        for model in [BandwidthModel::MaxMinFair, BandwidthModel::EqualSplit] {
            let mut alloc = BandwidthAllocator::new(&g, model);
            let mut ids = Vec::new();
            let specs = [
                reserved(0, 1, 15.0, 15.0),
                reserved(0, 2, 15.0, 12.9),
                flow(0, 3, f64::INFINITY),
                reserved(5, 0, 15.0, 1.02),
                flow(1, 4, 8.0),
                reserved(2, 3, 30.0, 0.0),
                flow(4, 5, 2.0),
                reserved(3, 0, 6.0, 3.0),
            ];
            for s in specs {
                ids.push(alloc.insert(s));
                alloc.assert_matches_oracle(1e-9, "after insert");
            }
            // Remove in an interleaved order, checking after every event.
            for &i in &[3usize, 0, 5, 1, 7, 2, 6, 4] {
                alloc.remove(ids[i]);
                alloc.assert_matches_oracle(1e-9, "after remove");
            }
            assert!(alloc.is_empty());
        }
    }

    #[test]
    fn batched_update_matches_oracle() {
        let g = [30.0, 30.0, 30.0, 30.0];
        let mut alloc = BandwidthAllocator::new(&g, BandwidthModel::MaxMinFair);
        let mut ids = Vec::new();
        alloc.update(
            &[],
            &[
                reserved(0, 1, 10.0, 10.0),
                reserved(1, 2, 10.0, 5.0),
                flow(2, 3, f64::INFINITY),
            ],
            &mut ids,
        );
        alloc.assert_matches_oracle(1e-9, "after batch insert");
        // One boundary-style event: two completions plus two arrivals.
        let remove = [ids[0], ids[2]];
        let mut new_ids = Vec::new();
        alloc.update(
            &remove,
            &[reserved(3, 0, 20.0, 4.0), flow(0, 2, 7.0)],
            &mut new_ids,
        );
        assert_eq!(new_ids.len(), 2);
        alloc.assert_matches_oracle(1e-9, "after batch update");
    }

    #[test]
    fn arrival_on_idle_link_leaves_unrelated_rates_untouched() {
        // Flows on clusters {0,1} and {2,3} share nothing: an arrival in one
        // component must not even be reported as changed in the other.
        let g = [10.0, 10.0, 10.0, 10.0];
        let mut alloc = BandwidthAllocator::new(&g, BandwidthModel::MaxMinFair);
        let a = alloc.insert(flow(0, 1, f64::INFINITY));
        let before = alloc.rate(a);
        let _b = alloc.insert(flow(2, 3, f64::INFINITY));
        assert_eq!(alloc.rate(a), before);
        assert!(alloc.changed().is_empty(), "disjoint flow reported dirty");
        alloc.assert_matches_oracle(1e-9, "disjoint components");
    }

    #[test]
    fn newly_saturated_boundary_link_expands_dirty_set() {
        // Flow A (0→1, cap 8) alone on g_0 = 10: rate 8, link unsaturated.
        // Flow B (0→2, reservation 5) arrives: the true allocation saturates
        // g_0 and A must drop to 5 — the post-solve expansion path.
        let g = [10.0, 100.0, 100.0];
        let mut alloc = BandwidthAllocator::new(&g, BandwidthModel::MaxMinFair);
        let a = alloc.insert(flow(0, 1, 8.0));
        assert!((alloc.rate(a) - 8.0).abs() < 1e-9);
        let b = alloc.insert(reserved(0, 2, 5.0, 5.0));
        alloc.assert_matches_oracle(1e-9, "after saturating arrival");
        assert!(
            (alloc.rate(a) - 5.0).abs() < 1e-9,
            "A got {}",
            alloc.rate(a)
        );
        assert!((alloc.rate(b) - 5.0).abs() < 1e-9);
        assert_eq!(alloc.changed(), &[a]);
        // And the release on B's completion restores A.
        alloc.remove(b);
        assert!((alloc.rate(a) - 8.0).abs() < 1e-9);
        alloc.assert_matches_oracle(1e-9, "after release");
    }

    #[test]
    fn retune_reallocates_the_affected_link() {
        // Two uncapped flows share g_0 = 10 → 5 each; raising g_0 to 30
        // must lift both, shrinking it to 4 must squeeze both to 2.
        let g = [10.0, 100.0, 100.0];
        let mut alloc = BandwidthAllocator::new(&g, BandwidthModel::MaxMinFair);
        let a = alloc.insert(flow(0, 1, f64::INFINITY));
        let b = alloc.insert(flow(0, 2, f64::INFINITY));
        alloc.set_local_bw(0, 30.0);
        alloc.assert_matches_oracle(1e-9, "after raise");
        assert!((alloc.rate(a) - 15.0).abs() < 1e-9);
        assert!((alloc.rate(b) - 15.0).abs() < 1e-9);
        assert_eq!(alloc.changed().len(), 2);
        alloc.set_local_bw(0, 4.0);
        alloc.assert_matches_oracle(1e-9, "after shrink");
        assert!((alloc.rate(a) - 2.0).abs() < 1e-9);
        assert!((alloc.rate(b) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn retune_to_zero_models_a_churn_outage() {
        let g = [10.0, 100.0, 100.0];
        for model in [BandwidthModel::MaxMinFair, BandwidthModel::EqualSplit] {
            let mut alloc = BandwidthAllocator::new(&g, model);
            let a = alloc.insert(reserved(0, 1, 8.0, 3.0));
            let b = alloc.insert(flow(2, 1, 5.0));
            alloc.set_local_bw(0, 0.0);
            alloc.assert_matches_oracle(1e-9, "outage");
            assert_eq!(alloc.rate(a), 0.0);
            assert!(alloc.rate(b) > 0.0, "unaffected flow survived the outage");
            alloc.set_local_bw(0, 10.0);
            alloc.assert_matches_oracle(1e-9, "restore");
            assert!(alloc.rate(a) > 0.0);
        }
    }

    #[test]
    fn retune_leaves_disjoint_components_untouched() {
        let g = [10.0, 10.0, 10.0, 10.0];
        let mut alloc = BandwidthAllocator::new(&g, BandwidthModel::MaxMinFair);
        let _a = alloc.insert(flow(0, 1, f64::INFINITY));
        let b = alloc.insert(flow(2, 3, f64::INFINITY));
        alloc.retune(&[(0, 7.5)]);
        alloc.assert_matches_oracle(1e-9, "after retune");
        // The {2,3} component shares no link with {0,1}: not even reported.
        assert!(!alloc.changed().contains(&b));
    }

    #[test]
    fn retune_propagates_through_saturated_links() {
        // A (0→1, uncapped) and B (1→2, uncapped) couple through g_1 = 10:
        // each gets 5. Raising g_0 alone cannot help A (g_1 binds), but
        // shrinking g_0 to 3 frees g_1 capacity that must flow to B.
        let g = [10.0, 10.0, 100.0];
        let mut alloc = BandwidthAllocator::new(&g, BandwidthModel::MaxMinFair);
        let a = alloc.insert(flow(0, 1, f64::INFINITY));
        let b = alloc.insert(flow(1, 2, f64::INFINITY));
        assert!((alloc.rate(a) - 5.0).abs() < 1e-9);
        alloc.set_local_bw(0, 3.0);
        alloc.assert_matches_oracle(1e-9, "after coupled shrink");
        assert!((alloc.rate(a) - 3.0).abs() < 1e-9);
        assert!(
            (alloc.rate(b) - 7.0).abs() < 1e-9,
            "B got {}",
            alloc.rate(b)
        );
    }

    #[test]
    fn randomized_retune_sequences_match_oracle() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(23);
        for model in [BandwidthModel::MaxMinFair, BandwidthModel::EqualSplit] {
            for trial in 0..25 {
                let n_clusters = rng.gen_range(2..6);
                let g: Vec<f64> = (0..n_clusters).map(|_| rng.gen_range(1.0..60.0)).collect();
                let mut alloc = BandwidthAllocator::new(&g, model);
                let mut live: Vec<FlowId> = Vec::new();
                for step in 0..50 {
                    match rng.gen_range(0..10) {
                        0..=4 => {
                            let src = rng.gen_range(0..n_clusters);
                            let mut dst = rng.gen_range(0..n_clusters);
                            if dst == src {
                                dst = (dst + 1) % n_clusters;
                            }
                            live.push(alloc.insert(FlowSpec {
                                src: c(src as u32),
                                dst: c(dst as u32),
                                cap: rng.gen_range(0.5..30.0),
                                demand: rng.gen_range(0.0..8.0),
                            }));
                        }
                        5..=6 if !live.is_empty() => {
                            let i = rng.gen_range(0..live.len());
                            alloc.remove(live.swap_remove(i));
                        }
                        _ => {
                            let l = rng.gen_range(0..n_clusters);
                            let g_new = if rng.gen_bool(0.1) {
                                0.0
                            } else {
                                rng.gen_range(0.5..80.0)
                            };
                            alloc.set_local_bw(l, g_new);
                        }
                    }
                    alloc.assert_matches_oracle(
                        1e-9,
                        &format!("{model:?} retune trial {trial} step {step}"),
                    );
                }
            }
        }
    }

    #[test]
    fn reshape_stall_and_heal_match_oracle() {
        // A partition-shaped sequence: cap drops to zero (stall), the freed
        // capacity flows to the other flow, and the heal restores it.
        let g = [10.0, 100.0, 100.0];
        for model in [BandwidthModel::MaxMinFair, BandwidthModel::EqualSplit] {
            let mut alloc = BandwidthAllocator::new(&g, model);
            let a = alloc.insert(reserved(0, 1, 8.0, 3.0));
            let b = alloc.insert(flow(0, 2, f64::INFINITY));
            alloc.reshape(&[(a, 0.0, 0.0)]);
            alloc.assert_matches_oracle(1e-9, "stall");
            assert_eq!(alloc.rate(a), 0.0);
            if model == BandwidthModel::MaxMinFair {
                assert!(
                    (alloc.rate(b) - 10.0).abs() < 1e-9,
                    "b got {}",
                    alloc.rate(b)
                );
            }
            alloc.reshape(&[(a, 8.0, 3.0)]);
            alloc.assert_matches_oracle(1e-9, "heal");
            assert!(alloc.rate(a) >= 3.0 - 1e-9);
        }
    }

    #[test]
    fn randomized_reshape_sequences_match_oracle() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);
        for model in [BandwidthModel::MaxMinFair, BandwidthModel::EqualSplit] {
            for trial in 0..25 {
                let n_clusters = rng.gen_range(2..6);
                let g: Vec<f64> = (0..n_clusters).map(|_| rng.gen_range(1.0..60.0)).collect();
                let mut alloc = BandwidthAllocator::new(&g, model);
                let mut live: Vec<FlowId> = Vec::new();
                for step in 0..50 {
                    match rng.gen_range(0..10) {
                        0..=3 => {
                            let src = rng.gen_range(0..n_clusters);
                            let mut dst = rng.gen_range(0..n_clusters);
                            if dst == src {
                                dst = (dst + 1) % n_clusters;
                            }
                            live.push(alloc.insert(FlowSpec {
                                src: c(src as u32),
                                dst: c(dst as u32),
                                cap: rng.gen_range(0.5..30.0),
                                demand: rng.gen_range(0.0..8.0),
                            }));
                        }
                        4..=5 if !live.is_empty() => {
                            let i = rng.gen_range(0..live.len());
                            alloc.remove(live.swap_remove(i));
                        }
                        _ if !live.is_empty() => {
                            let i = rng.gen_range(0..live.len());
                            let cap = if rng.gen_bool(0.25) {
                                0.0
                            } else {
                                rng.gen_range(0.5..30.0)
                            };
                            let demand = rng.gen_range(0.0..8.0f64).min(cap);
                            alloc.reshape(&[(live[i], cap, demand)]);
                        }
                        _ => {}
                    }
                    alloc.assert_matches_oracle(
                        1e-9,
                        &format!("{model:?} reshape trial {trial} step {step}"),
                    );
                }
            }
        }
    }

    #[test]
    fn snapshot_restore_is_bit_identical_forward() {
        use rand::{Rng, SeedableRng};
        // Drive an allocator, snapshot it, then feed both copies the same
        // op sequence: every rate must agree bit for bit (the incremental
        // solve is path-dependent, so the snapshot must capture slot
        // layout, free list, and per-link membership order exactly).
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(57);
        let g = [25.0, 40.0, 10.0, 60.0];
        let mut alloc = BandwidthAllocator::new(&g, BandwidthModel::MaxMinFair);
        let mut live: Vec<FlowId> = Vec::new();
        let step = |alloc: &mut BandwidthAllocator,
                    live: &mut Vec<FlowId>,
                    rng: &mut rand_chacha::ChaCha8Rng| {
            match rng.gen_range(0..8) {
                0..=3 => {
                    let src = rng.gen_range(0..4);
                    let dst = (src + rng.gen_range(1..4)) % 4;
                    live.push(alloc.insert(FlowSpec {
                        src: c(src as u32),
                        dst: c(dst as u32),
                        cap: rng.gen_range(0.5..30.0),
                        demand: rng.gen_range(0.0..8.0),
                    }));
                }
                4..=5 if !live.is_empty() => {
                    let i = rng.gen_range(0..live.len());
                    alloc.remove(live.swap_remove(i));
                }
                _ => {
                    let l = rng.gen_range(0..4usize);
                    alloc.set_local_bw(l, rng.gen_range(0.5..80.0));
                }
            }
        };
        for _ in 0..40 {
            step(&mut alloc, &mut live, &mut rng);
        }
        let state = alloc.snapshot();
        let mut restored = BandwidthAllocator::from_state(&state, BandwidthModel::MaxMinFair);
        let mut live2 = live.clone();
        let mut rng2 = rng.clone();
        for i in 0..40 {
            step(&mut alloc, &mut live, &mut rng);
            step(&mut restored, &mut live2, &mut rng2);
            assert_eq!(live, live2, "handle streams diverged at step {i}");
            for (&id, &id2) in live.iter().zip(&live2) {
                assert_eq!(
                    alloc.rate(id).to_bits(),
                    restored.rate(id2).to_bits(),
                    "rates diverged at step {i}"
                );
            }
        }
    }

    #[test]
    fn randomized_event_sequences_match_oracle() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        for model in [BandwidthModel::MaxMinFair, BandwidthModel::EqualSplit] {
            for trial in 0..40 {
                let n_clusters = rng.gen_range(2..7);
                let g: Vec<f64> = (0..n_clusters).map(|_| rng.gen_range(1.0..60.0)).collect();
                let mut alloc = BandwidthAllocator::new(&g, model);
                let mut live: Vec<FlowId> = Vec::new();
                for step in 0..60 {
                    let add = live.is_empty() || rng.gen_bool(0.55);
                    if add {
                        let src = rng.gen_range(0..n_clusters);
                        let mut dst = rng.gen_range(0..n_clusters);
                        if dst == src {
                            dst = (dst + 1) % n_clusters;
                        }
                        let cap = if rng.gen_bool(0.2) {
                            f64::INFINITY
                        } else {
                            rng.gen_range(0.5..30.0)
                        };
                        let demand = if rng.gen_bool(0.4) {
                            0.0
                        } else {
                            rng.gen_range(0.0..10.0)
                        };
                        live.push(alloc.insert(FlowSpec {
                            src: c(src as u32),
                            dst: c(dst as u32),
                            cap,
                            demand,
                        }));
                    } else {
                        let i = rng.gen_range(0..live.len());
                        alloc.remove(live.swap_remove(i));
                    }
                    alloc.assert_matches_oracle(
                        1e-9,
                        &format!("{model:?} trial {trial} step {step}"),
                    );
                }
            }
        }
    }
}
