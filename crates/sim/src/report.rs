//! Simulation results.

use serde::{Deserialize, Serialize};

/// One recorded simulation event (collected when
/// [`crate::SimConfig::record_trace`] is set).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A new period began at `time`.
    PeriodStart {
        /// Simulation time.
        time: f64,
        /// Period index.
        period: usize,
    },
    /// A transfer began (all flows of a period start at its boundary).
    FlowStart {
        /// Simulation time.
        time: f64,
        /// Source cluster index.
        from: u32,
        /// Destination cluster index.
        to: u32,
        /// Transfer size (load units).
        amount: f64,
    },
    /// A transfer completed.
    FlowEnd {
        /// Simulation time.
        time: f64,
        /// Source cluster index.
        from: u32,
        /// Destination cluster index.
        to: u32,
        /// Completion time minus the period deadline (≤ 0 means on time).
        lateness: f64,
    },
}

/// Outcome of executing a periodic schedule on the simulated platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Periods simulated.
    pub periods: usize,
    /// Period length `T_p` (time units).
    pub period_length: f64,
    /// Per-application throughput promised by the schedule.
    pub predicted: Vec<f64>,
    /// Per-application throughput measured in the post-warm-up window.
    pub measured: Vec<f64>,
    /// `Σ measured / Σ predicted` (1.0 for an empty schedule).
    pub efficiency: f64,
    /// Worst transfer tardiness beyond its period deadline (time units;
    /// 0 means every flow of period `p` finished by `(p+1)·T_p`).
    pub max_transfer_lateness: f64,
    /// Worst compute backlog observed at a period boundary, expressed as
    /// drain time in time units (0 means queues clear every period).
    pub max_compute_backlog: f64,
    /// Peak simultaneous connections observed per backbone link.
    pub peak_connections: Vec<u64>,
    /// `true` iff peak connections never exceeded any `max-connect`.
    pub connection_caps_respected: bool,
    /// Mean utilisation of each cluster's local link over the horizon
    /// (carried traffic / `g_k`·horizon, counting both directions).
    pub local_link_utilization: Vec<f64>,
    /// Discrete events processed (period boundaries + completion instants).
    /// Deterministic for a fixed schedule and configuration — the perf
    /// harness uses it to confirm both engines simulated the same workload.
    pub events: u64,
    /// Event trace (empty unless `SimConfig::record_trace`).
    pub trace: Vec<TraceEvent>,
}

impl SimReport {
    /// One-paragraph human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "simulated {} periods of length {}: efficiency {:.4}, \
             max transfer lateness {:.4}, max compute backlog {:.4}, \
             connection caps respected: {}",
            self.periods,
            self.period_length,
            self.efficiency,
            self.max_transfer_lateness,
            self.max_compute_backlog,
            self.connection_caps_respected,
        )
    }

    /// `true` iff the schedule executed at at least `threshold` of its
    /// promised aggregate throughput.
    pub fn achieves(&self, threshold: f64) -> bool {
        self.efficiency >= threshold
    }
}
