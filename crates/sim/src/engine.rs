//! The event-driven simulation engine.
//!
//! Time advances from event to event; events are period boundaries and flow
//! completions. Between events everything is fluid: flows progress at the
//! rates computed by the bandwidth allocator, clusters drain their work
//! queues at their speed.
//!
//! Two engines share the same fluid semantics and reporting:
//!
//! * [`SimEngine::Incremental`] (the default) keeps a stateful
//!   [`BandwidthAllocator`] that re-solves only the dirty set of flows at
//!   each event, schedules completions in an indexed binary heap with lazy
//!   invalidation, and advances per-flow state lazily — event cost scales
//!   with the number of *affected* flows, not with the total flow count;
//! * [`SimEngine::FullRecompute`] is the reference slow path: a full
//!   [`allocate_rates`] solve plus linear next-completion and completion
//!   sweeps at every event. It is retained as the cross-check oracle and as
//!   the baseline the `dls-bench` perf harness times the fast engine
//!   against.
//!
//! Routes and per-transfer flow specs are compiled once per `run` into a
//! flat arena, so period boundaries re-use them instead of re-walking
//! `Platform::route` and allocating a fresh `Vec` per transfer.

use crate::bandwidth::{allocate_rates, BandwidthAllocator, BandwidthModel, FlowId, FlowSpec};
use crate::report::SimReport;
use dls_core::approx::close;
use dls_core::schedule::PeriodicSchedule;
use dls_core::ProblemInstance;
use std::collections::{BinaryHeap, VecDeque};

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Periods to simulate (the measurement window excludes `warmup`).
    pub periods: usize,
    /// Periods excluded from throughput measurement (pipeline fill).
    pub warmup: usize,
    /// Local-link sharing discipline.
    pub bandwidth_model: BandwidthModel,
    /// Record a [`crate::report::TraceEvent`] log (off by default — traces
    /// grow linearly with flows × periods).
    pub record_trace: bool,
    /// Which simulation core executes the schedule.
    pub engine: SimEngine,
    /// Cross-check the incremental allocator against a full
    /// [`allocate_rates`] solve after every event, panicking on divergence
    /// beyond 1e-9 relative. Expensive (`O(F)` per event) — meant for tests;
    /// ignored by [`SimEngine::FullRecompute`].
    pub oracle_check: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            periods: 10,
            warmup: 2,
            bandwidth_model: BandwidthModel::MaxMinFair,
            record_trace: false,
            engine: SimEngine::Incremental,
            oracle_check: false,
        }
    }
}

/// Selects the simulation core (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEngine {
    /// Dirty-set bandwidth re-allocation + completion heap (fast, default).
    Incremental,
    /// Full re-allocation and linear scans at every event (reference).
    FullRecompute,
}

/// The simulator: binds a problem instance (for platform capacities).
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    inst: &'a ProblemInstance,
}

/// One transfer of the periodic schedule, compiled for fast spawning.
#[derive(Debug, Clone)]
struct CompiledTransfer {
    spec: FlowSpec,
    amount: f64,
    connections: u32,
    /// `route_arena[start..end]` is the transfer's backbone-link index list.
    route: (u32, u32),
}

/// Per-run compilation of the schedule: routes resolved once, flow specs
/// precomputed, local tasks flattened.
#[derive(Debug)]
struct CompiledSchedule {
    transfers: Vec<CompiledTransfer>,
    route_arena: Vec<u32>,
    /// `(cluster, app, amount)` of purely local compute tasks.
    local_tasks: Vec<(usize, usize, f64)>,
}

impl CompiledSchedule {
    fn compile(inst: &ProblemInstance, schedule: &PeriodicSchedule) -> Self {
        let p = &inst.platform;
        let tp = schedule.period as f64;
        let mut transfers = Vec::with_capacity(schedule.transfers.len());
        let mut route_arena = Vec::new();
        for tr in &schedule.transfers {
            let cap = match p.route_bottleneck_bw(tr.from, tr.to) {
                Some(bw) if bw.is_finite() => tr.connections as f64 * bw,
                Some(_) => f64::INFINITY,
                None => continue, // validated schedules never hit this
            };
            let start = route_arena.len() as u32;
            if let Some(route) = p.route(tr.from, tr.to) {
                route_arena.extend(route.iter().map(|l| l.index() as u32));
            }
            let end = route_arena.len() as u32;
            transfers.push(CompiledTransfer {
                spec: FlowSpec {
                    src: tr.from,
                    dst: tr.to,
                    cap,
                    // The Eq. 7 reservation: this flow's share of its local
                    // links, budgeted by 7b/7c.
                    demand: tr.amount as f64 / tp,
                },
                amount: tr.amount as f64,
                connections: tr.connections,
                route: (start, end),
            });
        }
        let local_tasks = schedule
            .compute_tasks
            .iter()
            .filter(|task| task.app == task.cluster)
            .map(|task| (task.cluster.index(), task.app.index(), task.amount as f64))
            .collect();
        CompiledSchedule {
            transfers,
            route_arena,
            local_tasks,
        }
    }

    fn route(&self, tr: &CompiledTransfer) -> &[u32] {
        &self.route_arena[tr.route.0 as usize..tr.route.1 as usize]
    }
}

/// Mutable observation state shared by both engine cores.
struct SimState {
    queues: Vec<VecDeque<(usize, f64)>>,
    completed: Vec<f64>,
    completed_at_warmup: Vec<f64>,
    warmup_snapshotted: bool,
    max_lateness: f64,
    max_backlog: f64,
    conn_now: Vec<i64>,
    conn_peak: Vec<i64>,
    carried: Vec<f64>,
    trace: Vec<crate::report::TraceEvent>,
    events: u64,
}

impl SimState {
    fn new(n: usize, n_links: usize) -> Self {
        SimState {
            queues: vec![VecDeque::new(); n],
            completed: vec![0.0; n],
            completed_at_warmup: vec![0.0; n],
            warmup_snapshotted: false,
            max_lateness: 0.0,
            max_backlog: 0.0,
            conn_now: vec![0; n_links],
            conn_peak: vec![0; n_links],
            carried: vec![0.0; n],
            trace: Vec::new(),
            events: 0,
        }
    }

    fn snapshot_warmup_if_due(&mut self, t: f64, warmup_t: f64) {
        if !self.warmup_snapshotted && t >= warmup_t {
            self.completed_at_warmup.copy_from_slice(&self.completed);
            self.warmup_snapshotted = true;
        }
    }

    fn record_backlog(&mut self, speeds: &[f64]) {
        for (queue, &s) in self.queues.iter().zip(speeds) {
            let pending: f64 = queue.iter().map(|(_, w)| w).sum();
            if s > 0.0 {
                self.max_backlog = self.max_backlog.max(pending / s);
            }
        }
    }

    fn drain_all(&mut self, speeds: &[f64], dt: f64) {
        for (queue, &s) in self.queues.iter_mut().zip(speeds) {
            drain_queue(queue, s * dt, &mut self.completed);
        }
    }

    /// Final analytic drain once no flow remains and no period will spawn.
    fn drain_to_completion(&mut self, speeds: &[f64]) {
        for (queue, &s) in self.queues.iter_mut().zip(speeds) {
            let pending: f64 = queue.iter().map(|(_, w)| w).sum();
            if s > 0.0 && pending > 0.0 {
                self.max_backlog = self.max_backlog.max(pending / s);
            }
            drain_queue(queue, f64::INFINITY, &mut self.completed);
        }
    }
}

/// Per-flow engine state for the incremental core (slot-aligned with the
/// allocator; `None` marks a free slot).
#[derive(Debug, Clone)]
struct EngFlow {
    id: FlowId,
    transfer: u32,
    chunk: f64,
    remaining: f64,
    /// Simulation time `remaining` was last materialised at.
    last_t: f64,
    rate: f64,
    spawn_period: usize,
}

/// Min-heap entry keyed on projected completion time; entries are lazily
/// invalidated by bumping the slot's version when the rate changes. Shared
/// with the live-mutation engine ([`crate::live`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct HeapEntry {
    pub(crate) time: f64,
    pub(crate) slot: u32,
    pub(crate) version: u64,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest time.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.slot.cmp(&self.slot))
            .then_with(|| other.version.cmp(&self.version))
    }
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for `inst`'s platform.
    pub fn new(inst: &'a ProblemInstance) -> Self {
        Simulator { inst }
    }

    /// Executes `schedule` for `config.periods` periods.
    pub fn run(&self, schedule: &PeriodicSchedule, config: &SimConfig) -> SimReport {
        match config.engine {
            SimEngine::Incremental => self.run_incremental(schedule, config),
            SimEngine::FullRecompute => self.run_full(schedule, config),
        }
    }

    fn run_incremental(&self, schedule: &PeriodicSchedule, config: &SimConfig) -> SimReport {
        let p = &self.inst.platform;
        let n = p.num_clusters();
        let tp = schedule.period as f64;
        let local_bw: Vec<f64> = p.clusters.iter().map(|c| c.local_bw).collect();
        let speeds: Vec<f64> = p.clusters.iter().map(|c| c.speed).collect();
        let horizon = config.periods as f64 * tp;
        let warmup_t = (config.warmup.min(config.periods.saturating_sub(1))) as f64 * tp;
        let drain_horizon = horizon + 20.0 * tp;
        // A rate below this is "stalled": scale-relative so huge-bandwidth
        // platforms don't schedule completions astronomically far out while
        // tiny platforms still make progress.
        let bw_scale = local_bw.iter().fold(0.0f64, |a, &b| a.max(b));
        let rate_eps = 1e-15 * (1.0 + bw_scale);

        let compiled = CompiledSchedule::compile(self.inst, schedule);
        let mut state = SimState::new(n, p.links.len());
        let mut alloc = BandwidthAllocator::new(&local_bw, config.bandwidth_model);
        let mut flows: Vec<Option<EngFlow>> = Vec::new();
        let mut versions: Vec<u64> = Vec::new();
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
        let mut live_count = 0usize;

        let mut removals: Vec<FlowId> = Vec::new();
        let mut additions: Vec<FlowSpec> = Vec::new();
        let mut added_transfers: Vec<u32> = Vec::new();
        let mut new_ids: Vec<FlowId> = Vec::new();

        let mut t = 0.0f64;
        let mut next_period = 0usize;

        loop {
            // --- determine the next event time ---
            let boundary = if next_period <= config.periods {
                next_period as f64 * tp
            } else {
                f64::INFINITY
            };
            let next_completion = loop {
                match heap.peek() {
                    None => break f64::INFINITY,
                    Some(e) => {
                        let s = e.slot as usize;
                        if flows[s].is_some() && versions[s] == e.version {
                            break e.time;
                        }
                        heap.pop(); // lazily dropped stale entry
                    }
                }
            };
            let t_next = boundary.min(next_completion);
            if !t_next.is_finite() || t_next > drain_horizon {
                break;
            }

            // --- advance the fluid compute queues (flows advance lazily) ---
            let dt = (t_next - t).max(0.0);
            if dt > 0.0 {
                state.drain_all(&speeds, dt);
            }
            t = t_next;
            state.events += 1;
            state.snapshot_warmup_if_due(t, warmup_t);

            removals.clear();
            additions.clear();
            added_transfers.clear();

            // --- flow completions due now ---
            while let Some(e) = heap.peek() {
                let s = e.slot as usize;
                if flows[s].is_none() || versions[s] != e.version {
                    heap.pop();
                    continue;
                }
                if e.time > t && !close(e.time, t, 1e-12) {
                    break;
                }
                heap.pop();
                let f = flows[s].take().expect("validated above");
                live_count -= 1;
                let seg = (t - f.last_t).max(0.0);
                state.carried[f.id_src(&compiled)] += f.rate * seg;
                state.carried[f.id_dst(&compiled)] += f.rate * seg;
                let tr = &compiled.transfers[f.transfer as usize];
                // Deliver the full chunk (any leftover is size-relative dust).
                state.queues[tr.spec.dst.index()].push_back((tr.spec.src.index(), f.chunk));
                let deadline = (f.spawn_period + 1) as f64 * tp;
                state.max_lateness = state.max_lateness.max(t - deadline);
                for &l in compiled.route(tr) {
                    state.conn_now[l as usize] -= tr.connections as i64;
                }
                if config.record_trace {
                    state.trace.push(crate::report::TraceEvent::FlowEnd {
                        time: t,
                        from: tr.spec.src.0,
                        to: tr.spec.dst.0,
                        lateness: t - deadline,
                    });
                }
                removals.push(f.id);
            }

            // --- period boundary ---
            let spawn_period = next_period;
            if next_period <= config.periods && close(t, boundary, 1e-9) {
                state.record_backlog(&speeds);
                if config.record_trace && next_period < config.periods {
                    state.trace.push(crate::report::TraceEvent::PeriodStart {
                        time: t,
                        period: next_period,
                    });
                }
                if next_period < config.periods {
                    for &(cluster, app, amount) in &compiled.local_tasks {
                        state.queues[cluster].push_back((app, amount));
                    }
                    for (ti, tr) in compiled.transfers.iter().enumerate() {
                        for &l in compiled.route(tr) {
                            let l = l as usize;
                            state.conn_now[l] += tr.connections as i64;
                            state.conn_peak[l] = state.conn_peak[l].max(state.conn_now[l]);
                        }
                        if config.record_trace {
                            state.trace.push(crate::report::TraceEvent::FlowStart {
                                time: t,
                                from: tr.spec.src.0,
                                to: tr.spec.dst.0,
                                amount: tr.amount,
                            });
                        }
                        additions.push(tr.spec);
                        added_transfers.push(ti as u32);
                    }
                }
                next_period += 1;
            }

            // --- incremental rate re-allocation over the dirty set ---
            if !removals.is_empty() || !additions.is_empty() {
                alloc.update(&removals, &additions, &mut new_ids);
                while flows.len() < alloc.slots() {
                    flows.push(None);
                    versions.push(0);
                }
                for (id, &ti) in new_ids.iter().zip(&added_transfers) {
                    let s = id.index();
                    let tr = &compiled.transfers[ti as usize];
                    let rate = alloc.rate(*id);
                    versions[s] += 1;
                    flows[s] = Some(EngFlow {
                        id: *id,
                        transfer: ti,
                        chunk: tr.amount,
                        remaining: tr.amount,
                        last_t: t,
                        rate,
                        spawn_period,
                    });
                    live_count += 1;
                    if rate > rate_eps {
                        heap.push(HeapEntry {
                            time: t + tr.amount / rate,
                            slot: s as u32,
                            version: versions[s],
                        });
                    }
                }
                for &id in alloc.changed() {
                    let s = id.index();
                    let f = flows[s].as_mut().expect("changed flow is live");
                    let seg = (t - f.last_t).max(0.0);
                    if seg > 0.0 {
                        let tr = &compiled.transfers[f.transfer as usize];
                        state.carried[tr.spec.src.index()] += f.rate * seg;
                        state.carried[tr.spec.dst.index()] += f.rate * seg;
                        f.remaining -= f.rate * seg;
                    }
                    f.last_t = t;
                    f.rate = alloc.rate(id);
                    versions[s] += 1;
                    if f.rate > rate_eps {
                        heap.push(HeapEntry {
                            time: t + f.remaining.max(0.0) / f.rate,
                            slot: s as u32,
                            version: versions[s],
                        });
                    }
                }
                if config.oracle_check {
                    alloc.assert_matches_oracle(1e-9, &format!("oracle_check at t = {t}"));
                }
            }

            if live_count == 0 && next_period > config.periods {
                state.drain_to_completion(&speeds);
                break;
            }
        }

        // Attribute the carried traffic of flows still live at the horizon.
        for f in flows.iter().flatten() {
            let seg = (t - f.last_t).max(0.0);
            let tr = &compiled.transfers[f.transfer as usize];
            state.carried[tr.spec.src.index()] += f.rate * seg;
            state.carried[tr.spec.dst.index()] += f.rate * seg;
        }

        self.finish_report(schedule, config, state, &local_bw, horizon, warmup_t)
    }

    /// The retained reference engine: full re-allocation and linear scans at
    /// every event (the "slow algorithm" the incremental core is
    /// cross-checked and benchmarked against).
    fn run_full(&self, schedule: &PeriodicSchedule, config: &SimConfig) -> SimReport {
        let p = &self.inst.platform;
        let n = p.num_clusters();
        let tp = schedule.period as f64;
        let local_bw: Vec<f64> = p.clusters.iter().map(|c| c.local_bw).collect();
        let speeds: Vec<f64> = p.clusters.iter().map(|c| c.speed).collect();
        let horizon = config.periods as f64 * tp;
        let warmup_t = (config.warmup.min(config.periods.saturating_sub(1))) as f64 * tp;
        let drain_horizon = horizon + 20.0 * tp;
        let bw_scale = local_bw.iter().fold(0.0f64, |a, &b| a.max(b));
        let rate_eps = 1e-15 * (1.0 + bw_scale);

        let compiled = CompiledSchedule::compile(self.inst, schedule);
        let mut state = SimState::new(n, p.links.len());

        struct ActiveFlow {
            transfer: u32,
            chunk: f64,
            remaining: f64,
            spawn_period: usize,
        }
        let mut flows: Vec<ActiveFlow> = Vec::new();
        let mut rates: Vec<f64> = Vec::new();
        let mut t = 0.0f64;
        let mut next_period = 0usize;

        loop {
            let boundary = if next_period <= config.periods {
                next_period as f64 * tp
            } else {
                f64::INFINITY
            };
            let mut next_completion = f64::INFINITY;
            for (f, &r) in flows.iter().zip(&rates) {
                if r > rate_eps {
                    next_completion = next_completion.min(t + f.remaining / r);
                }
            }
            let t_next = boundary.min(next_completion);
            if !t_next.is_finite() || t_next > drain_horizon {
                break;
            }
            let dt = (t_next - t).max(0.0);

            if dt > 0.0 {
                for (f, &r) in flows.iter_mut().zip(&rates) {
                    f.remaining -= r * dt;
                    let tr = &compiled.transfers[f.transfer as usize];
                    state.carried[tr.spec.src.index()] += r * dt;
                    state.carried[tr.spec.dst.index()] += r * dt;
                }
                state.drain_all(&speeds, dt);
            }
            t = t_next;
            state.events += 1;
            state.snapshot_warmup_if_due(t, warmup_t);

            // --- flow completions (linear sweep) ---
            let mut i = 0;
            while i < flows.len() {
                // Relative threshold: a reserved-rate flow finishes exactly
                // at the period boundary, so the fluid arithmetic may leave
                // size-proportional dust.
                if flows[i].remaining <= 1e-9 * (1.0 + flows[i].chunk) {
                    let f = flows.swap_remove(i);
                    rates.swap_remove(i);
                    let tr = &compiled.transfers[f.transfer as usize];
                    state.queues[tr.spec.dst.index()].push_back((tr.spec.src.index(), f.chunk));
                    let deadline = (f.spawn_period + 1) as f64 * tp;
                    state.max_lateness = state.max_lateness.max(t - deadline);
                    for &l in compiled.route(tr) {
                        state.conn_now[l as usize] -= tr.connections as i64;
                    }
                    if config.record_trace {
                        state.trace.push(crate::report::TraceEvent::FlowEnd {
                            time: t,
                            from: tr.spec.src.0,
                            to: tr.spec.dst.0,
                            lateness: t - deadline,
                        });
                    }
                } else {
                    i += 1;
                }
            }

            // --- period boundary ---
            if next_period <= config.periods && close(t, boundary, 1e-9) {
                state.record_backlog(&speeds);
                if config.record_trace && next_period < config.periods {
                    state.trace.push(crate::report::TraceEvent::PeriodStart {
                        time: t,
                        period: next_period,
                    });
                }
                if next_period < config.periods {
                    for &(cluster, app, amount) in &compiled.local_tasks {
                        state.queues[cluster].push_back((app, amount));
                    }
                    for (ti, tr) in compiled.transfers.iter().enumerate() {
                        for &l in compiled.route(tr) {
                            let l = l as usize;
                            state.conn_now[l] += tr.connections as i64;
                            state.conn_peak[l] = state.conn_peak[l].max(state.conn_now[l]);
                        }
                        if config.record_trace {
                            state.trace.push(crate::report::TraceEvent::FlowStart {
                                time: t,
                                from: tr.spec.src.0,
                                to: tr.spec.dst.0,
                                amount: tr.amount,
                            });
                        }
                        flows.push(ActiveFlow {
                            transfer: ti as u32,
                            chunk: tr.amount,
                            remaining: tr.amount,
                            spawn_period: next_period,
                        });
                    }
                }
                next_period += 1;
            }

            // --- full rate recompute ---
            let specs: Vec<FlowSpec> = flows
                .iter()
                .map(|f| compiled.transfers[f.transfer as usize].spec)
                .collect();
            rates = allocate_rates(&local_bw, &specs, config.bandwidth_model);

            if flows.is_empty() && next_period > config.periods {
                state.drain_to_completion(&speeds);
                break;
            }
        }

        self.finish_report(schedule, config, state, &local_bw, horizon, warmup_t)
    }

    fn finish_report(
        &self,
        schedule: &PeriodicSchedule,
        config: &SimConfig,
        state: SimState,
        local_bw: &[f64],
        horizon: f64,
        warmup_t: f64,
    ) -> SimReport {
        let p = &self.inst.platform;
        let predicted = schedule.throughputs();
        let window = (horizon - warmup_t).max(1e-12);
        // Measured over the window, but never counting the analytic drain
        // beyond the horizon twice: completed was last updated at ≥ horizon;
        // for simplicity the drain tail attributes to the window, which
        // keeps steady-state throughput measurable even when the final
        // period's compute spills slightly past the horizon.
        let measured: Vec<f64> = state
            .completed
            .iter()
            .zip(&state.completed_at_warmup)
            .map(|(c, w)| ((c - w) / window).max(0.0))
            .collect();
        let predicted_total: f64 = predicted.iter().sum();
        let measured_total: f64 = measured.iter().sum();
        let efficiency = if predicted_total > 0.0 {
            measured_total / predicted_total
        } else {
            1.0
        };
        let caps_ok = state
            .conn_peak
            .iter()
            .zip(&p.links)
            .all(|(&peak, link)| peak <= link.max_connections as i64);
        let local_link_utilization: Vec<f64> = state
            .carried
            .iter()
            .zip(local_bw)
            .map(|(&bytes, &g)| {
                if g > 0.0 && horizon > 0.0 {
                    (bytes / (g * horizon)).min(1.0)
                } else {
                    0.0
                }
            })
            .collect();

        SimReport {
            periods: config.periods,
            period_length: schedule.period as f64,
            predicted,
            measured,
            efficiency,
            max_transfer_lateness: state.max_lateness.max(0.0),
            max_compute_backlog: state.max_backlog,
            peak_connections: state.conn_peak.iter().map(|&x| x.max(0) as u64).collect(),
            connection_caps_respected: caps_ok,
            local_link_utilization,
            events: state.events,
            trace: state.trace,
        }
    }
}

impl EngFlow {
    fn id_src(&self, compiled: &CompiledSchedule) -> usize {
        compiled.transfers[self.transfer as usize].spec.src.index()
    }
    fn id_dst(&self, compiled: &CompiledSchedule) -> usize {
        compiled.transfers[self.transfer as usize].spec.dst.index()
    }
}

/// Drains up to `capacity` load units from a cluster's FIFO work queue,
/// crediting per-application completion counters.
fn drain_queue(queue: &mut VecDeque<(usize, f64)>, mut capacity: f64, completed: &mut [f64]) {
    while capacity > 0.0 {
        let Some((app, amount)) = queue.front_mut() else {
            break;
        };
        if *amount <= capacity {
            completed[*app] += *amount;
            capacity -= *amount;
            queue.pop_front();
        } else {
            *amount -= capacity;
            completed[*app] += capacity;
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_core::heuristics::{Greedy, Heuristic, Lprg};
    use dls_core::schedule::ScheduleBuilder;
    use dls_core::Objective;
    use dls_platform::{PlatformBuilder, PlatformConfig, PlatformGenerator};

    fn two_cluster() -> ProblemInstance {
        let mut b = PlatformBuilder::new();
        let c0 = b.add_cluster(100.0, 20.0);
        let c1 = b.add_cluster(50.0, 30.0);
        b.connect_clusters(c0, c1, 10.0, 2);
        ProblemInstance::uniform(b.build().unwrap(), Objective::MaxMin)
    }

    fn checked_config() -> SimConfig {
        SimConfig {
            oracle_check: true,
            ..SimConfig::default()
        }
    }

    #[test]
    fn local_only_schedule_achieves_full_throughput() {
        let mut b = PlatformBuilder::new();
        b.add_cluster(100.0, 10.0);
        b.add_cluster(60.0, 10.0);
        let inst = ProblemInstance::uniform(b.build().unwrap(), Objective::Sum);
        let alloc = Greedy::default().solve(&inst).unwrap();
        let schedule = ScheduleBuilder::default().build(&inst, &alloc).unwrap();
        let report = Simulator::new(&inst).run(&schedule, &checked_config());
        assert!(report.achieves(0.999), "{}", report.summary());
        assert_eq!(report.max_transfer_lateness, 0.0);
        assert!(report.connection_caps_respected);
    }

    #[test]
    fn transfer_schedule_executes_on_time() {
        let inst = two_cluster();
        let alloc = Lprg::default().solve(&inst).unwrap();
        let schedule = ScheduleBuilder::default().build(&inst, &alloc).unwrap();
        let report = Simulator::new(&inst).run(&schedule, &checked_config());
        // Valid allocations keep Σ flows ≤ g on every local link, so
        // max-min fair sharing finishes every flow within its period.
        assert!(
            report.max_transfer_lateness <= 1e-6,
            "lateness {}",
            report.max_transfer_lateness
        );
        assert!(report.achieves(0.95), "{}", report.summary());
        assert!(report.connection_caps_respected);
    }

    #[test]
    fn random_platform_schedules_execute() {
        for seed in 0..8 {
            let cfg = PlatformConfig {
                num_clusters: 5,
                connectivity: 0.6,
                ..PlatformConfig::default()
            };
            let p = PlatformGenerator::new(seed).generate(&cfg);
            let inst = ProblemInstance::uniform(p, Objective::MaxMin);
            let alloc = Lprg::default().solve(&inst).unwrap();
            let schedule = ScheduleBuilder::default().build(&inst, &alloc).unwrap();
            let report = Simulator::new(&inst).run(&schedule, &checked_config());
            assert!(report.achieves(0.9), "seed {seed}: {}", report.summary());
            assert!(report.connection_caps_respected, "seed {seed}");
        }
    }

    #[test]
    fn engines_agree_on_reports() {
        for seed in 0..6 {
            let cfg = PlatformConfig {
                num_clusters: 6,
                connectivity: 0.5,
                ..PlatformConfig::default()
            };
            let p = PlatformGenerator::new(seed).generate(&cfg);
            let inst = ProblemInstance::uniform(p, Objective::MaxMin);
            let alloc = Lprg::default().solve(&inst).unwrap();
            let schedule = ScheduleBuilder::default().build(&inst, &alloc).unwrap();
            for model in [BandwidthModel::MaxMinFair, BandwidthModel::EqualSplit] {
                let fast = Simulator::new(&inst).run(
                    &schedule,
                    &SimConfig {
                        bandwidth_model: model,
                        oracle_check: true,
                        ..SimConfig::default()
                    },
                );
                let slow = Simulator::new(&inst).run(
                    &schedule,
                    &SimConfig {
                        bandwidth_model: model,
                        engine: SimEngine::FullRecompute,
                        ..SimConfig::default()
                    },
                );
                assert!(
                    close(fast.efficiency, slow.efficiency, 1e-6),
                    "seed {seed} {model:?}: efficiency {} vs {}",
                    fast.efficiency,
                    slow.efficiency
                );
                assert!(
                    close(fast.max_transfer_lateness, slow.max_transfer_lateness, 1e-6),
                    "seed {seed} {model:?}: lateness {} vs {}",
                    fast.max_transfer_lateness,
                    slow.max_transfer_lateness
                );
                assert_eq!(fast.peak_connections, slow.peak_connections);
                for (a, b) in fast.measured.iter().zip(&slow.measured) {
                    assert!(close(*a, *b, 1e-6), "measured {a} vs {b}");
                }
                for (a, b) in fast
                    .local_link_utilization
                    .iter()
                    .zip(&slow.local_link_utilization)
                {
                    assert!(close(*a, *b, 1e-6), "utilisation {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn equal_split_ablation_never_beats_maxmin() {
        let inst = two_cluster();
        let alloc = Lprg::default().solve(&inst).unwrap();
        let schedule = ScheduleBuilder::default().build(&inst, &alloc).unwrap();
        let fair = Simulator::new(&inst).run(&schedule, &SimConfig::default());
        let naive = Simulator::new(&inst).run(
            &schedule,
            &SimConfig {
                bandwidth_model: BandwidthModel::EqualSplit,
                ..SimConfig::default()
            },
        );
        assert!(fair.efficiency >= naive.efficiency - 1e-9);
    }

    #[test]
    fn trace_records_period_and_flow_events() {
        let inst = two_cluster();
        let alloc = Lprg::default().solve(&inst).unwrap();
        let schedule = ScheduleBuilder::default().build(&inst, &alloc).unwrap();
        let cfg = SimConfig {
            periods: 3,
            warmup: 1,
            record_trace: true,
            ..SimConfig::default()
        };
        let report = Simulator::new(&inst).run(&schedule, &cfg);
        use crate::report::TraceEvent;
        let periods = report
            .trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::PeriodStart { .. }))
            .count();
        assert_eq!(periods, 3);
        let starts = report
            .trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::FlowStart { .. }))
            .count();
        let ends = report
            .trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::FlowEnd { .. }))
            .count();
        assert_eq!(starts, schedule.transfers.len() * 3);
        assert_eq!(ends, starts, "every flow completes");
        // Trace off by default.
        let silent = Simulator::new(&inst).run(&schedule, &SimConfig::default());
        assert!(silent.trace.is_empty());
    }

    #[test]
    fn link_utilization_is_reported() {
        let inst = two_cluster();
        let alloc = Lprg::default().solve(&inst).unwrap();
        let schedule = ScheduleBuilder::default().build(&inst, &alloc).unwrap();
        let report = Simulator::new(&inst).run(&schedule, &SimConfig::default());
        assert_eq!(report.local_link_utilization.len(), 2);
        for u in &report.local_link_utilization {
            assert!((0.0..=1.0).contains(u), "utilisation {u}");
        }
        // The MAXMIN solution on this asymmetric pair ships work, so the
        // links are actually used.
        assert!(report.local_link_utilization.iter().any(|&u| u > 0.1));
    }

    #[test]
    fn empty_schedule_reports_unit_efficiency() {
        let inst = two_cluster();
        let alloc = dls_core::Allocation::zeros(2);
        let schedule = ScheduleBuilder::default().build(&inst, &alloc).unwrap();
        let report = Simulator::new(&inst).run(&schedule, &SimConfig::default());
        assert_eq!(report.efficiency, 1.0);
        assert_eq!(report.max_transfer_lateness, 0.0);
    }

    #[test]
    fn event_counts_are_reported_and_deterministic() {
        let inst = two_cluster();
        let alloc = Lprg::default().solve(&inst).unwrap();
        let schedule = ScheduleBuilder::default().build(&inst, &alloc).unwrap();
        let a = Simulator::new(&inst).run(&schedule, &SimConfig::default());
        let b = Simulator::new(&inst).run(&schedule, &SimConfig::default());
        assert!(a.events > 0);
        assert_eq!(a.events, b.events);
    }
}
