//! The event-driven simulation engine.
//!
//! Time advances from event to event; events are period boundaries and flow
//! completions. Between events everything is fluid: flows progress at the
//! rates computed by the bandwidth allocator, clusters drain their work
//! queues at their speed. Flow rates are recomputed at every event (arrival
//! or completion), giving the work-conserving behaviour of real transport
//! protocols over shared links.

use crate::bandwidth::{allocate_rates, BandwidthModel, FlowSpec};
use crate::report::SimReport;
use dls_core::schedule::PeriodicSchedule;
use dls_core::ProblemInstance;
use std::collections::VecDeque;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Periods to simulate (the measurement window excludes `warmup`).
    pub periods: usize,
    /// Periods excluded from throughput measurement (pipeline fill).
    pub warmup: usize,
    /// Local-link sharing discipline.
    pub bandwidth_model: BandwidthModel,
    /// Record a [`crate::report::TraceEvent`] log (off by default — traces
    /// grow linearly with flows × periods).
    pub record_trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            periods: 10,
            warmup: 2,
            bandwidth_model: BandwidthModel::MaxMinFair,
            record_trace: false,
        }
    }
}

/// The simulator: binds a problem instance (for platform capacities).
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    inst: &'a ProblemInstance,
}

#[derive(Debug)]
struct ActiveFlow {
    spec: FlowSpec,
    app: usize,
    /// Original transfer size (delivered in full at completion).
    chunk: f64,
    remaining: f64,
    spawn_period: usize,
    connections: u32,
    route_links: Vec<usize>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for `inst`'s platform.
    pub fn new(inst: &'a ProblemInstance) -> Self {
        Simulator { inst }
    }

    /// Executes `schedule` for `config.periods` periods.
    pub fn run(&self, schedule: &PeriodicSchedule, config: &SimConfig) -> SimReport {
        let p = &self.inst.platform;
        let n = p.num_clusters();
        let tp = schedule.period as f64;
        let local_bw: Vec<f64> = p.clusters.iter().map(|c| c.local_bw).collect();
        let speeds: Vec<f64> = p.clusters.iter().map(|c| c.speed).collect();
        let horizon = config.periods as f64 * tp;
        let warmup_t = (config.warmup.min(config.periods.saturating_sub(1))) as f64 * tp;

        // Work queues (FIFO of (app, load)) and completed-work accounting.
        let mut queues: Vec<VecDeque<(usize, f64)>> = vec![VecDeque::new(); n];
        let mut completed = vec![0.0f64; n]; // per app, total
        let mut completed_at_warmup = vec![0.0f64; n];
        let mut warmup_snapshotted = false;

        let mut flows: Vec<ActiveFlow> = Vec::new();
        let mut rates: Vec<f64> = Vec::new();
        let mut t = 0.0f64;
        let mut next_period = 0usize;
        let mut max_lateness = 0.0f64;
        let mut max_backlog = 0.0f64;
        let mut conn_now = vec![0i64; p.links.len()];
        let mut conn_peak = vec![0i64; p.links.len()];
        let mut carried = vec![0.0f64; n]; // traffic through each local link
        let mut trace = Vec::new();

        // Drain limit: let late flows and queues finish, but never loop
        // forever on a zero-rate flow.
        let drain_horizon = horizon + 20.0 * tp;

        loop {
            // --- determine next event time ---
            let boundary = if next_period <= config.periods {
                next_period as f64 * tp
            } else {
                f64::INFINITY
            };
            let mut next_completion = f64::INFINITY;
            for (f, &r) in flows.iter().zip(&rates) {
                if r > 1e-15 {
                    next_completion = next_completion.min(t + f.remaining / r);
                }
            }
            let t_next = boundary.min(next_completion);
            if !t_next.is_finite() || t_next > drain_horizon {
                break;
            }
            let dt = (t_next - t).max(0.0);

            // --- advance fluid state over dt ---
            if dt > 0.0 {
                for (f, &r) in flows.iter_mut().zip(&rates) {
                    f.remaining -= r * dt;
                    carried[f.spec.src.index()] += r * dt;
                    carried[f.spec.dst.index()] += r * dt;
                }
                for c in 0..n {
                    drain_queue(&mut queues[c], speeds[c] * dt, &mut completed);
                }
            }
            t = t_next;

            // Snapshot completed work when crossing the warm-up boundary.
            if !warmup_snapshotted && t >= warmup_t {
                completed_at_warmup.copy_from_slice(&completed);
                warmup_snapshotted = true;
            }

            // --- flow completions ---
            let mut i = 0;
            while i < flows.len() {
                // Relative threshold: a reserved-rate flow finishes exactly
                // at the period boundary, so the fluid arithmetic may leave
                // size-proportional dust.
                if flows[i].remaining <= 1e-9 * (1.0 + flows[i].chunk) {
                    let f = flows.swap_remove(i);
                    // Deliver the full chunk to the destination's queue
                    // (remaining is ≤ 1e-9·(1 + chunk) dust — size-relative,
                    // so mass conservation error stays ~1e-9 of the chunk).
                    queues[f.spec.dst.index()].push_back((f.app, f.chunk));
                    let deadline = (f.spawn_period + 1) as f64 * tp;
                    max_lateness = max_lateness.max(t - deadline);
                    for &l in &f.route_links {
                        conn_now[l] -= f.connections as i64;
                    }
                    if config.record_trace {
                        trace.push(crate::report::TraceEvent::FlowEnd {
                            time: t,
                            from: f.spec.src.0,
                            to: f.spec.dst.0,
                            lateness: t - deadline,
                        });
                    }
                } else {
                    i += 1;
                }
            }

            // --- period boundary ---
            if (t - boundary).abs() < 1e-9 && next_period <= config.periods {
                // Record compute backlog before new work arrives.
                for c in 0..n {
                    let pending: f64 = queues[c].iter().map(|(_, w)| w).sum();
                    if speeds[c] > 0.0 {
                        max_backlog = max_backlog.max(pending / speeds[c]);
                    }
                }
                if config.record_trace && next_period < config.periods {
                    trace.push(crate::report::TraceEvent::PeriodStart {
                        time: t,
                        period: next_period,
                    });
                }
                if next_period < config.periods {
                    // Local work is available immediately.
                    for task in &schedule.compute_tasks {
                        if task.app == task.cluster {
                            queues[task.cluster.index()]
                                .push_back((task.app.index(), task.amount as f64));
                        }
                    }
                    // Transfers spawn as flows.
                    for tr in &schedule.transfers {
                        let cap = match p.route_bottleneck_bw(tr.from, tr.to) {
                            Some(bw) if bw.is_finite() => tr.connections as f64 * bw,
                            Some(_) => f64::INFINITY,
                            None => continue, // validated schedules never hit this
                        };
                        let route_links: Vec<usize> = p
                            .route(tr.from, tr.to)
                            .map(|r| r.iter().map(|l| l.index()).collect())
                            .unwrap_or_default();
                        for &l in &route_links {
                            conn_now[l] += tr.connections as i64;
                            conn_peak[l] = conn_peak[l].max(conn_now[l]);
                        }
                        if config.record_trace {
                            trace.push(crate::report::TraceEvent::FlowStart {
                                time: t,
                                from: tr.from.0,
                                to: tr.to.0,
                                amount: tr.amount as f64,
                            });
                        }
                        flows.push(ActiveFlow {
                            spec: FlowSpec {
                                src: tr.from,
                                dst: tr.to,
                                cap,
                                // The Eq. 7 reservation: this flow's share of
                                // its local links, budgeted by 7b/7c.
                                demand: tr.amount as f64 / tp,
                            },
                            app: tr.from.index(),
                            chunk: tr.amount as f64,
                            remaining: tr.amount as f64,
                            spawn_period: next_period,
                            connections: tr.connections,
                            route_links,
                        });
                    }
                }
                next_period += 1;
            }

            // --- recompute rates ---
            let specs: Vec<FlowSpec> = flows.iter().map(|f| f.spec).collect();
            rates = allocate_rates(&local_bw, &specs, config.bandwidth_model);

            if flows.is_empty() && next_period > config.periods {
                // Drain remaining queues analytically and stop.
                for c in 0..n {
                    let pending: f64 = queues[c].iter().map(|(_, w)| w).sum();
                    if speeds[c] > 0.0 && pending > 0.0 {
                        max_backlog = max_backlog.max(pending / speeds[c]);
                    }
                    drain_queue(&mut queues[c], f64::INFINITY, &mut completed);
                }
                break;
            }
        }

        // --- measurement ---
        let predicted = schedule.throughputs();
        let window = (horizon - warmup_t).max(1e-12);
        // Measured over the window, but never counting the analytic drain
        // beyond the horizon twice: completed was last updated at ≥ horizon;
        // for simplicity the drain tail attributes to the window, which
        // keeps steady-state throughput measurable even when the final
        // period's compute spills slightly past the horizon.
        let measured: Vec<f64> = completed
            .iter()
            .zip(&completed_at_warmup)
            .map(|(c, w)| ((c - w) / window).max(0.0))
            .collect();
        // Scale: the window contains (periods − warmup) spawn periods but
        // the pipeline delivers remote work one period late; predicted
        // totals are the fair comparison baseline.
        let predicted_total: f64 = predicted.iter().sum();
        let measured_total: f64 = measured.iter().sum();
        let efficiency = if predicted_total > 0.0 {
            measured_total / predicted_total
        } else {
            1.0
        };
        let caps_ok = conn_peak
            .iter()
            .zip(&p.links)
            .all(|(&peak, link)| peak <= link.max_connections as i64);
        let local_link_utilization: Vec<f64> = carried
            .iter()
            .zip(&local_bw)
            .map(|(&bytes, &g)| {
                if g > 0.0 && horizon > 0.0 {
                    (bytes / (g * horizon)).min(1.0)
                } else {
                    0.0
                }
            })
            .collect();

        SimReport {
            periods: config.periods,
            period_length: tp,
            predicted,
            measured,
            efficiency,
            max_transfer_lateness: max_lateness.max(0.0),
            max_compute_backlog: max_backlog,
            peak_connections: conn_peak.iter().map(|&x| x.max(0) as u64).collect(),
            connection_caps_respected: caps_ok,
            local_link_utilization,
            trace,
        }
    }
}

/// Drains up to `capacity` load units from a cluster's FIFO work queue,
/// crediting per-application completion counters.
fn drain_queue(queue: &mut VecDeque<(usize, f64)>, mut capacity: f64, completed: &mut [f64]) {
    while capacity > 0.0 {
        let Some((app, amount)) = queue.front_mut() else {
            break;
        };
        if *amount <= capacity {
            completed[*app] += *amount;
            capacity -= *amount;
            queue.pop_front();
        } else {
            *amount -= capacity;
            completed[*app] += capacity;
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_core::heuristics::{Greedy, Heuristic, Lprg};
    use dls_core::schedule::ScheduleBuilder;
    use dls_core::Objective;
    use dls_platform::{PlatformBuilder, PlatformConfig, PlatformGenerator};

    fn two_cluster() -> ProblemInstance {
        let mut b = PlatformBuilder::new();
        let c0 = b.add_cluster(100.0, 20.0);
        let c1 = b.add_cluster(50.0, 30.0);
        b.connect_clusters(c0, c1, 10.0, 2);
        ProblemInstance::uniform(b.build().unwrap(), Objective::MaxMin)
    }

    #[test]
    fn local_only_schedule_achieves_full_throughput() {
        let mut b = PlatformBuilder::new();
        b.add_cluster(100.0, 10.0);
        b.add_cluster(60.0, 10.0);
        let inst = ProblemInstance::uniform(b.build().unwrap(), Objective::Sum);
        let alloc = Greedy::default().solve(&inst).unwrap();
        let schedule = ScheduleBuilder::default().build(&inst, &alloc).unwrap();
        let report = Simulator::new(&inst).run(&schedule, &SimConfig::default());
        assert!(report.achieves(0.999), "{}", report.summary());
        assert_eq!(report.max_transfer_lateness, 0.0);
        assert!(report.connection_caps_respected);
    }

    #[test]
    fn transfer_schedule_executes_on_time() {
        let inst = two_cluster();
        let alloc = Lprg::default().solve(&inst).unwrap();
        let schedule = ScheduleBuilder::default().build(&inst, &alloc).unwrap();
        let report = Simulator::new(&inst).run(&schedule, &SimConfig::default());
        // Valid allocations keep Σ flows ≤ g on every local link, so
        // max-min fair sharing finishes every flow within its period.
        assert!(
            report.max_transfer_lateness <= 1e-6,
            "lateness {}",
            report.max_transfer_lateness
        );
        assert!(report.achieves(0.95), "{}", report.summary());
        assert!(report.connection_caps_respected);
    }

    #[test]
    fn random_platform_schedules_execute() {
        for seed in 0..8 {
            let cfg = PlatformConfig {
                num_clusters: 5,
                connectivity: 0.6,
                ..PlatformConfig::default()
            };
            let p = PlatformGenerator::new(seed).generate(&cfg);
            let inst = ProblemInstance::uniform(p, Objective::MaxMin);
            let alloc = Lprg::default().solve(&inst).unwrap();
            let schedule = ScheduleBuilder::default().build(&inst, &alloc).unwrap();
            let report = Simulator::new(&inst).run(&schedule, &SimConfig::default());
            assert!(report.achieves(0.9), "seed {seed}: {}", report.summary());
            assert!(report.connection_caps_respected, "seed {seed}");
        }
    }

    #[test]
    fn equal_split_ablation_never_beats_maxmin() {
        let inst = two_cluster();
        let alloc = Lprg::default().solve(&inst).unwrap();
        let schedule = ScheduleBuilder::default().build(&inst, &alloc).unwrap();
        let fair = Simulator::new(&inst).run(&schedule, &SimConfig::default());
        let naive = Simulator::new(&inst).run(
            &schedule,
            &SimConfig {
                bandwidth_model: BandwidthModel::EqualSplit,
                ..SimConfig::default()
            },
        );
        assert!(fair.efficiency >= naive.efficiency - 1e-9);
    }

    #[test]
    fn trace_records_period_and_flow_events() {
        let inst = two_cluster();
        let alloc = Lprg::default().solve(&inst).unwrap();
        let schedule = ScheduleBuilder::default().build(&inst, &alloc).unwrap();
        let cfg = SimConfig {
            periods: 3,
            warmup: 1,
            record_trace: true,
            ..SimConfig::default()
        };
        let report = Simulator::new(&inst).run(&schedule, &cfg);
        use crate::report::TraceEvent;
        let periods = report
            .trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::PeriodStart { .. }))
            .count();
        assert_eq!(periods, 3);
        let starts = report
            .trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::FlowStart { .. }))
            .count();
        let ends = report
            .trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::FlowEnd { .. }))
            .count();
        assert_eq!(starts, schedule.transfers.len() * 3);
        assert_eq!(ends, starts, "every flow completes");
        // Trace off by default.
        let silent = Simulator::new(&inst).run(&schedule, &SimConfig::default());
        assert!(silent.trace.is_empty());
    }

    #[test]
    fn link_utilization_is_reported() {
        let inst = two_cluster();
        let alloc = Lprg::default().solve(&inst).unwrap();
        let schedule = ScheduleBuilder::default().build(&inst, &alloc).unwrap();
        let report = Simulator::new(&inst).run(&schedule, &SimConfig::default());
        assert_eq!(report.local_link_utilization.len(), 2);
        for u in &report.local_link_utilization {
            assert!((0.0..=1.0).contains(u), "utilisation {u}");
        }
        // The MAXMIN solution on this asymmetric pair ships work, so the
        // links are actually used.
        assert!(report.local_link_utilization.iter().any(|&u| u > 0.1));
    }

    #[test]
    fn empty_schedule_reports_unit_efficiency() {
        let inst = two_cluster();
        let alloc = dls_core::Allocation::zeros(2);
        let schedule = ScheduleBuilder::default().build(&inst, &alloc).unwrap();
        let report = Simulator::new(&inst).run(&schedule, &SimConfig::default());
        assert_eq!(report.efficiency, 1.0);
        assert_eq!(report.max_transfer_lateness, 0.0);
    }
}
