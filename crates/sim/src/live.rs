//! The live-mutation simulation engine: an *online* fluid core for
//! scenarios where flows arrive continuously and the platform itself
//! changes mid-flight.
//!
//! The periodic engine ([`crate::engine::Simulator`]) replays a fixed
//! [`dls_core::schedule::PeriodicSchedule`] on a fixed platform. [`LiveSim`]
//! instead exposes the simulation core as a first-class mutable object:
//!
//! * [`LiveSim::add_flows`] / [`LiveSim::retire_flows`] — transfers appear
//!   and disappear at arbitrary times, each carrying a payload split into
//!   per-job [`ChunkPart`]s delivered store-and-forward on completion;
//! * [`LiveSim::update_link_capacity`] — local-link capacities drift (down
//!   to a churn outage at `g = 0`), feeding the dirty-set
//!   [`BandwidthAllocator::retune`] path so only the affected flows are
//!   re-solved;
//! * [`LiveSim::update_speed`] — cluster compute speeds drift, re-timing
//!   the FIFO work queues;
//! * [`LiveSim::enqueue_compute`] — locally-processed work enters a
//!   cluster's queue directly;
//! * [`LiveSim::advance_to`] — time advances event to event (flow
//!   completions and queue-entry completions), returning the
//!   [`LiveEvent`]s that fired.
//!
//! Exactly like the periodic engine, two cores share the same fluid
//! semantics: [`SimEngine::Incremental`] (dirty-set re-allocation, a
//! completion heap with lazy invalidation, lazy per-flow materialisation)
//! and the retained [`SimEngine::FullRecompute`] reference (full
//! [`allocate_rates`] solve plus linear scans at every event) — the slow
//! path doubles as the cross-check oracle and as the baseline the
//! `dls-bench` scenario harness times the fast path against. With
//! [`LiveConfig::oracle_check`] set, every mutation and completion batch on
//! the incremental core is verified against a fresh full solve.

use crate::bandwidth::{
    allocate_rates, AllocatorState, BandwidthAllocator, BandwidthModel, FlowId, FlowSpec,
};
use crate::engine::HeapEntry;
use crate::trace::{EventKind, EventRecord};
use crate::SimEngine;
use dls_core::approx::close;
use dls_platform::ClusterId;
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, VecDeque};

/// Configuration for [`LiveSim`].
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Local-link sharing discipline.
    pub bandwidth_model: BandwidthModel,
    /// Which simulation core executes the timeline.
    pub engine: SimEngine,
    /// Cross-check the incremental core against the full oracle after
    /// every mutation and completion batch, panicking on divergence beyond
    /// 1e-9 relative. Two invariants are asserted: per-flow rates match a
    /// fresh [`allocate_rates`] solve, and the completion heap's next due
    /// time matches a full scan's projection (so lazy invalidation can
    /// never silently drop or misplace a completion). Expensive — meant
    /// for tests; ignored by [`SimEngine::FullRecompute`].
    pub oracle_check: bool,
    /// Record every [`LiveEvent::Delivered`] / [`LiveEvent::Computed`] as
    /// an [`EventRecord`] in [`LiveSim::event_log`], for cross-engine
    /// stream comparison via [`crate::trace::first_divergence`].
    pub record_events: bool,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            bandwidth_model: BandwidthModel::MaxMinFair,
            engine: SimEngine::Incremental,
            oracle_check: false,
            record_events: false,
        }
    }
}

/// One `(job, amount)` share of a flow's payload or of a compute-queue
/// entry. Parts are delivered (and later computed) in order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChunkPart {
    /// Caller-side job tag (opaque to the engine).
    pub job: u32,
    /// Load units.
    pub amount: f64,
}

/// A transfer to spawn: `Σ parts` load units shipped `src → dst` under the
/// §2 sharing model.
#[derive(Debug, Clone)]
pub struct LiveFlowSpec {
    /// Source cluster (consumes `g_src` egress).
    pub src: ClusterId,
    /// Destination cluster (consumes `g_dst` ingress).
    pub dst: ClusterId,
    /// Hard per-flow cap `β·minbw` (`f64::INFINITY` for same-router pairs).
    pub cap: f64,
    /// Reserved steady-state rate (the allocation's `α_{k,l}` share).
    pub demand: f64,
    /// Per-job payload breakdown; the flow delivers `Σ parts` units to
    /// `dst`'s compute queue, store-and-forward, on completion.
    pub parts: Vec<ChunkPart>,
}

/// Stable handle to a flow tracked by a [`LiveSim`]. Slots are reused after
/// completion/retirement; the generation counter makes stale handles
/// detectable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LiveFlowId {
    slot: u32,
    gen: u32,
}

impl LiveFlowId {
    /// Packs the handle into one `u64` for snapshot serialisation (the
    /// slot/generation split is an engine-internal detail).
    pub fn to_raw(self) -> u64 {
        (u64::from(self.slot) << 32) | u64::from(self.gen)
    }

    /// Rebuilds a handle packed by [`LiveFlowId::to_raw`].
    pub fn from_raw(raw: u64) -> LiveFlowId {
        LiveFlowId {
            slot: (raw >> 32) as u32,
            gen: raw as u32,
        }
    }
}

/// What was abandoned when a flow was retired mid-transfer: the *original*
/// parts (store-and-forward semantics — an interrupted transfer delivers
/// nothing, so in-flight progress is forfeited and the caller re-queues the
/// full payload).
#[derive(Debug, Clone)]
pub struct RetiredFlow {
    /// Source cluster of the retired flow.
    pub src: ClusterId,
    /// Destination cluster of the retired flow.
    pub dst: ClusterId,
    /// The flow's original per-job payload breakdown.
    pub parts: Vec<ChunkPart>,
    /// Load units already shipped at retirement time. Forfeited under
    /// store-and-forward semantics — reported so a crash can account the
    /// transfer progress it destroyed.
    pub shipped: f64,
}

/// A compute-queue entry drained by [`LiveSim::purge_queue`] (a cluster
/// crash): the work is *lost*, not paused, so the caller re-dispatches the
/// original amount and accounts the destroyed progress.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PurgedEntry {
    /// Caller-side job tag.
    pub job: u32,
    /// Load units still unprocessed at the purge.
    pub remaining: f64,
    /// The entry's original size.
    pub original: f64,
}

/// An observation emitted by [`LiveSim::advance_to`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LiveEvent {
    /// A flow finished: emitted once, before its `Delivered` parts.
    FlowDone {
        /// Completion time.
        time: f64,
        /// The finished flow (its handle is now stale).
        id: LiveFlowId,
    },
    /// One payload part entered `dst`'s compute queue.
    Delivered {
        /// Delivery time.
        time: f64,
        /// Receiving cluster.
        dst: ClusterId,
        /// Job tag of the part.
        job: u32,
        /// Load units delivered.
        amount: f64,
    },
    /// One compute-queue entry was fully processed.
    Computed {
        /// Completion time.
        time: f64,
        /// Executing cluster.
        cluster: ClusterId,
        /// Job tag of the entry.
        job: u32,
        /// Load units processed (the entry's full original amount).
        amount: f64,
    },
}

/// Per-flow engine state (slot-aligned with the allocator in incremental
/// mode).
#[derive(Debug, Clone)]
struct LiveFlow {
    spec: FlowSpec,
    parts: Vec<ChunkPart>,
    payload: f64,
    remaining: f64,
    /// Simulation time `remaining` was last materialised at.
    last_t: f64,
    rate: f64,
    /// Allocator handle (incremental core only).
    alloc_id: Option<FlowId>,
}

/// A compute-queue entry: `(job, remaining, original)`.
#[derive(Debug, Clone, Copy)]
struct QueueEntry {
    job: u32,
    remaining: f64,
    original: f64,
}

/// The live-mutation engine. See the module docs.
#[derive(Debug)]
pub struct LiveSim {
    cfg: LiveConfig,
    local_bw: Vec<f64>,
    speeds: Vec<f64>,
    t: f64,
    // --- flow store, slot-indexed (allocator slots in incremental mode) ---
    flows: Vec<Option<LiveFlow>>,
    gen: Vec<u32>,
    n_live: usize,
    // --- incremental core ---
    alloc: BandwidthAllocator,
    versions: Vec<u64>,
    heap: BinaryHeap<HeapEntry>,
    // --- full-recompute core ---
    free: Vec<u32>,
    rates_stale: bool,
    // --- compute queues ---
    queues: Vec<VecDeque<QueueEntry>>,
    // --- scratch / observation ---
    events: Vec<LiveEvent>,
    event_log: Vec<EventRecord>,
    changed_scratch: Vec<FlowId>,
    processed: u64,
    rate_eps: f64,
}

impl LiveSim {
    /// Creates an idle engine over clusters with the given local-link
    /// capacities and compute speeds (`local_bw.len() == speeds.len()`).
    pub fn new(local_bw: &[f64], speeds: &[f64], cfg: LiveConfig) -> Self {
        assert_eq!(
            local_bw.len(),
            speeds.len(),
            "one local link and one speed per cluster"
        );
        let alloc = BandwidthAllocator::new(local_bw, cfg.bandwidth_model);
        let n = local_bw.len();
        let mut sim = LiveSim {
            cfg,
            local_bw: local_bw.to_vec(),
            speeds: speeds.to_vec(),
            t: 0.0,
            flows: Vec::new(),
            gen: Vec::new(),
            n_live: 0,
            alloc,
            versions: Vec::new(),
            heap: BinaryHeap::new(),
            free: Vec::new(),
            rates_stale: false,
            queues: vec![VecDeque::new(); n],
            events: Vec::new(),
            event_log: Vec::new(),
            changed_scratch: Vec::new(),
            processed: 0,
            rate_eps: 0.0,
        };
        sim.refresh_rate_eps();
        sim
    }

    /// Current simulation time.
    pub fn now(&self) -> f64 {
        self.t
    }

    /// Number of live flows.
    pub fn live_flows(&self) -> usize {
        self.n_live
    }

    /// `true` when nothing is in flight: no live flow and every compute
    /// queue empty.
    pub fn idle(&self) -> bool {
        self.n_live == 0 && self.queues.iter().all(VecDeque::is_empty)
    }

    /// Events processed so far (completions, deliveries, compute
    /// finishes).
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// The recorded event trace (empty unless
    /// [`LiveConfig::record_events`] is set).
    pub fn event_log(&self) -> &[EventRecord] {
        &self.event_log
    }

    /// `true` iff `id` refers to a currently live flow.
    pub fn is_current(&self, id: LiveFlowId) -> bool {
        let s = id.slot as usize;
        s < self.flows.len() && self.flows[s].is_some() && self.gen[s] == id.gen
    }

    /// Pending (queued, not yet processed) compute work at a cluster.
    pub fn queued_work(&self, cluster: ClusterId) -> f64 {
        self.queues[cluster.index()]
            .iter()
            .map(|e| e.remaining)
            .sum()
    }

    fn refresh_rate_eps(&mut self) {
        // A rate below this is "stalled": scale-relative so huge-bandwidth
        // platforms don't schedule completions astronomically far out.
        let bw_scale = self.local_bw.iter().fold(0.0f64, |a, &b| a.max(b));
        self.rate_eps = 1e-15 * (1.0 + bw_scale);
    }

    fn ensure_slots(&mut self, n: usize) {
        while self.flows.len() < n {
            self.flows.push(None);
            self.gen.push(0);
            self.versions.push(0);
        }
    }

    /// Spawns a batch of flows at the current time; returns their handles
    /// (in `specs` order). Zero-payload flows complete at the next
    /// [`LiveSim::advance_to`] step.
    pub fn add_flows(&mut self, specs: Vec<LiveFlowSpec>) -> Vec<LiveFlowId> {
        let mut out = Vec::with_capacity(specs.len());
        match self.cfg.engine {
            SimEngine::Incremental => {
                let additions: Vec<FlowSpec> = specs
                    .iter()
                    .map(|s| FlowSpec {
                        src: s.src,
                        dst: s.dst,
                        cap: s.cap,
                        demand: s.demand,
                    })
                    .collect();
                let mut new_ids = Vec::new();
                self.alloc.update(&[], &additions, &mut new_ids);
                self.ensure_slots(self.alloc.slots());
                for (spec, id) in specs.into_iter().zip(&new_ids) {
                    let s = id.index();
                    let payload: f64 = spec.parts.iter().map(|p| p.amount).sum();
                    let rate = self.alloc.rate(*id);
                    let flow_spec = *self.alloc.spec(*id);
                    self.gen[s] = self.gen[s].wrapping_add(1);
                    self.versions[s] += 1;
                    self.flows[s] = Some(LiveFlow {
                        spec: flow_spec,
                        parts: spec.parts,
                        payload,
                        remaining: payload,
                        last_t: self.t,
                        rate,
                        alloc_id: Some(*id),
                    });
                    self.n_live += 1;
                    if rate > self.rate_eps {
                        self.heap.push(HeapEntry {
                            time: self.t + payload / rate,
                            slot: s as u32,
                            version: self.versions[s],
                        });
                    }
                    out.push(LiveFlowId {
                        slot: s as u32,
                        gen: self.gen[s],
                    });
                }
                self.apply_changed_rates();
                self.maybe_oracle_check("add_flows");
            }
            SimEngine::FullRecompute => {
                for spec in specs {
                    let s = match self.free.pop() {
                        Some(s) => s as usize,
                        None => {
                            self.ensure_slots(self.flows.len() + 1);
                            self.flows.len() - 1
                        }
                    };
                    let payload: f64 = spec.parts.iter().map(|p| p.amount).sum();
                    self.gen[s] = self.gen[s].wrapping_add(1);
                    self.flows[s] = Some(LiveFlow {
                        spec: FlowSpec {
                            src: spec.src,
                            dst: spec.dst,
                            cap: spec.cap,
                            demand: spec.demand,
                        },
                        parts: spec.parts,
                        payload,
                        remaining: payload,
                        last_t: self.t,
                        rate: 0.0,
                        alloc_id: None,
                    });
                    self.n_live += 1;
                    out.push(LiveFlowId {
                        slot: s as u32,
                        gen: self.gen[s],
                    });
                }
                self.rates_stale = true;
            }
        }
        out
    }

    /// Retires live flows mid-transfer (e.g. a churned destination),
    /// returning what they were carrying so the caller can re-queue it.
    /// Stale handles are ignored.
    pub fn retire_flows(&mut self, ids: &[LiveFlowId]) -> Vec<RetiredFlow> {
        let mut retired = Vec::new();
        let mut removals: Vec<FlowId> = Vec::new();
        for &id in ids {
            if !self.is_current(id) {
                continue;
            }
            let s = id.slot as usize;
            let f = self.flows[s].take().expect("validated current");
            self.n_live -= 1;
            self.gen[s] = self.gen[s].wrapping_add(1);
            match self.cfg.engine {
                SimEngine::Incremental => {
                    self.versions[s] += 1;
                    removals.push(f.alloc_id.expect("incremental flows carry an id"));
                }
                SimEngine::FullRecompute => {
                    self.free.push(s as u32);
                    self.rates_stale = true;
                }
            }
            let seg = (self.t - f.last_t).max(0.0);
            let remaining_now = (f.remaining - f.rate * seg).clamp(0.0, f.payload);
            retired.push(RetiredFlow {
                src: f.spec.src,
                dst: f.spec.dst,
                parts: f.parts,
                shipped: f.payload - remaining_now,
            });
        }
        if !removals.is_empty() {
            let mut scratch = Vec::new();
            self.alloc.update(&removals, &[], &mut scratch);
            self.apply_changed_rates();
            self.maybe_oracle_check("retire_flows");
        }
        retired
    }

    /// Changes the local-link capacity `g` of one cluster at the current
    /// time. Rates of the affected flows adjust immediately.
    pub fn update_link_capacity(&mut self, cluster: ClusterId, g: f64) {
        // Validate on both engines, so the reference core fails fast on the
        // same inputs the incremental allocator would reject.
        assert!(
            g >= 0.0 && g.is_finite(),
            "local-link capacity must be finite and non-negative, got {g}"
        );
        let l = cluster.index();
        self.local_bw[l] = g;
        self.refresh_rate_eps();
        match self.cfg.engine {
            SimEngine::Incremental => {
                self.alloc.set_local_bw(l, g);
                self.apply_changed_rates();
                self.maybe_oracle_check("update_link_capacity");
            }
            SimEngine::FullRecompute => self.rates_stale = true,
        }
    }

    /// Changes a cluster's compute speed at the current time (queues are
    /// already drained up to now, so the change is purely forward-looking).
    pub fn update_speed(&mut self, cluster: ClusterId, speed: f64) {
        assert!(
            speed >= 0.0 && speed.is_finite(),
            "speed must be finite and non-negative, got {speed}"
        );
        self.speeds[cluster.index()] = speed;
    }

    /// Pushes locally-sourced work straight into a cluster's compute queue
    /// (the `α_{k,k}` share of an allocation — no network involved).
    /// Zero/negative amounts are ignored.
    pub fn enqueue_compute(&mut self, cluster: ClusterId, job: u32, amount: f64) {
        if amount > 0.0 {
            self.queues[cluster.index()].push_back(QueueEntry {
                job,
                remaining: amount,
                original: amount,
            });
        }
    }

    /// Drains a cluster's compute queue without processing it — the crash
    /// semantics: queued work is lost, not paused. Returns the drained
    /// entries so the caller can account destroyed progress
    /// (`original − remaining`) and re-dispatch the original amounts.
    pub fn purge_queue(&mut self, cluster: ClusterId) -> Vec<PurgedEntry> {
        self.queues[cluster.index()]
            .drain(..)
            .map(|e| PurgedEntry {
                job: e.job,
                remaining: e.remaining,
                original: e.original,
            })
            .collect()
    }

    /// Replaces a live flow's constraint pair `(cap, demand)` in place,
    /// without churning its slot or its delivered-payload state. Rates of
    /// the affected flows adjust immediately.
    ///
    /// This is how a backbone partition stalls an in-flight transfer
    /// (`cap = 0, demand = 0`) and how the heal restores it: the flow keeps
    /// its shipped progress, unlike a retire/re-add cycle which forfeits
    /// it under store-and-forward semantics.
    pub fn set_flow_constraints(&mut self, id: LiveFlowId, cap: f64, demand: f64) {
        assert!(self.is_current(id), "set_flow_constraints on a stale id");
        let s = id.slot as usize;
        match self.cfg.engine {
            SimEngine::Incremental => {
                let aid = self.flows[s]
                    .as_ref()
                    .expect("validated current")
                    .alloc_id
                    .expect("incremental flows carry an id");
                self.alloc.reshape(&[(aid, cap, demand)]);
                let f = self.flows[s].as_mut().expect("validated current");
                f.spec.cap = cap;
                f.spec.demand = demand;
                self.apply_changed_rates();
                self.maybe_oracle_check("set_flow_constraints");
            }
            SimEngine::FullRecompute => {
                let f = self.flows[s].as_mut().expect("validated current");
                f.spec.cap = cap;
                f.spec.demand = demand;
                self.rates_stale = true;
            }
        }
    }

    /// Advances simulation time to `t_end`, processing every flow
    /// completion and compute finish on the way, and returns the events
    /// that fired (valid until the next `&mut self` call).
    pub fn advance_to(&mut self, t_end: f64) -> &[LiveEvent] {
        assert!(
            t_end >= self.t - 1e-12,
            "time cannot flow backwards: {} -> {t_end}",
            self.t
        );
        self.events.clear();
        loop {
            if self.cfg.engine == SimEngine::FullRecompute && self.rates_stale {
                self.refresh_full_rates();
            }
            let tq = self.next_queue_completion();
            let tf = match self.cfg.engine {
                SimEngine::Incremental => self.next_heap_completion(),
                SimEngine::FullRecompute => self.next_scan_completion(),
            };
            let te = tq.min(tf);
            if !te.is_finite() || te > t_end {
                let dt = (t_end - self.t).max(0.0);
                if dt > 0.0 {
                    self.drain_queues(dt, t_end);
                    if self.cfg.engine == SimEngine::FullRecompute {
                        self.materialise_full(dt);
                    }
                }
                self.t = t_end;
                return &self.events;
            }
            let dt = (te - self.t).max(0.0);
            if dt > 0.0 {
                self.drain_queues(dt, te);
                if self.cfg.engine == SimEngine::FullRecompute {
                    self.materialise_full(dt);
                }
            }
            self.t = te;
            match self.cfg.engine {
                SimEngine::Incremental => self.complete_due_incremental(),
                SimEngine::FullRecompute => self.complete_due_full(),
            }
        }
    }

    // --- incremental core -------------------------------------------------

    /// Folds the allocator's changed-rate report into the flow table and
    /// reschedules their completions.
    fn apply_changed_rates(&mut self) {
        self.changed_scratch.clear();
        self.changed_scratch.extend_from_slice(self.alloc.changed());
        for i in 0..self.changed_scratch.len() {
            let id = self.changed_scratch[i];
            let s = id.index();
            let f = self.flows[s].as_mut().expect("changed flow is live");
            let seg = (self.t - f.last_t).max(0.0);
            if seg > 0.0 {
                f.remaining -= f.rate * seg;
            }
            f.last_t = self.t;
            f.rate = self.alloc.rate(id);
            self.versions[s] += 1;
            if f.rate > self.rate_eps {
                self.heap.push(HeapEntry {
                    time: self.t + f.remaining.max(0.0) / f.rate,
                    slot: s as u32,
                    version: self.versions[s],
                });
            }
        }
    }

    fn maybe_oracle_check(&mut self, context: &str) {
        if !self.cfg.oracle_check {
            return;
        }
        self.audit(context);
    }

    /// Forces the oracle cross-check once, regardless of
    /// [`LiveConfig::oracle_check`]: every incremental rate must match a
    /// fresh full solve, and the completion heap's next due time must match
    /// a full scan's projection. Panics on divergence — the hook the
    /// fault-injection tests use to prove corruption is *caught*, and a
    /// no-op on [`SimEngine::FullRecompute`] (it has no fast-path state to
    /// audit).
    pub fn audit(&mut self, context: &str) {
        if self.cfg.engine != SimEngine::Incremental {
            return;
        }
        self.alloc.assert_matches_oracle(
            1e-9,
            &format!("live oracle_check ({context}) at t = {}", self.t),
        );
        // Completion-schedule audit: the heap's next due time (after lazy
        // invalidation) must equal a full scan's projection from each
        // flow's materialised state. A stale-but-undetected or dropped
        // heap entry would silently reorder the event stream; catch it at
        // the mutation that caused it, not at the divergent completion.
        let heap_next = self.next_heap_completion();
        let mut scan_next = f64::INFINITY;
        for f in self.flows.iter().flatten() {
            if f.rate > self.rate_eps {
                scan_next = scan_next.min(f.last_t + f.remaining.max(0.0) / f.rate);
            }
        }
        assert!(
            (heap_next.is_infinite() && scan_next.is_infinite())
                || close(heap_next, scan_next, 1e-9),
            "live oracle_check ({context}) at t = {}: heap next completion \
             {heap_next} != scan projection {scan_next}",
            self.t
        );
    }

    /// Corrupts the completion heap with a phantom *valid-version* entry at
    /// a wrong time, simulating a scheduling bug. [`LiveSim::audit`] must
    /// catch it. Test-only; incremental core with a live flow required.
    #[doc(hidden)]
    pub fn debug_corrupt_heap_phantom(&mut self) {
        assert_eq!(self.cfg.engine, SimEngine::Incremental);
        let s = (0..self.flows.len())
            .find(|&s| self.flows[s].is_some())
            .expect("a live flow to corrupt");
        self.heap.push(HeapEntry {
            time: self.t - 1.0,
            slot: s as u32,
            version: self.versions[s],
        });
    }

    /// Corrupts the completion heap by bumping a live flow's version
    /// *without* re-inserting an entry — its completion is silently
    /// dropped. [`LiveSim::audit`] must catch it. Test-only.
    #[doc(hidden)]
    pub fn debug_corrupt_heap_dropped(&mut self) {
        assert_eq!(self.cfg.engine, SimEngine::Incremental);
        let s = (0..self.flows.len())
            .find(|&s| {
                self.flows[s]
                    .as_ref()
                    .is_some_and(|f| f.rate > self.rate_eps)
            })
            .expect("a progressing flow to corrupt");
        self.versions[s] += 1;
    }

    /// Earliest valid heap completion (stale entries lazily dropped).
    fn next_heap_completion(&mut self) -> f64 {
        loop {
            match self.heap.peek() {
                None => return f64::INFINITY,
                Some(e) => {
                    let s = e.slot as usize;
                    if self.flows[s].is_some() && self.versions[s] == e.version {
                        return e.time;
                    }
                    self.heap.pop();
                }
            }
        }
    }

    fn complete_due_incremental(&mut self) {
        let mut removals: Vec<FlowId> = Vec::new();
        while let Some(e) = self.heap.peek() {
            let s = e.slot as usize;
            if self.flows[s].is_none() || self.versions[s] != e.version {
                self.heap.pop();
                continue;
            }
            if e.time > self.t && !close(e.time, self.t, 1e-12) {
                break;
            }
            self.heap.pop();
            let f = self.flows[s].take().expect("validated above");
            self.n_live -= 1;
            self.processed += 1;
            self.events.push(LiveEvent::FlowDone {
                time: self.t,
                id: LiveFlowId {
                    slot: s as u32,
                    gen: self.gen[s],
                },
            });
            self.gen[s] = self.gen[s].wrapping_add(1);
            self.deliver(f.spec.dst, &f.parts);
            removals.push(f.alloc_id.expect("incremental flows carry an id"));
        }
        if !removals.is_empty() {
            let mut scratch = Vec::new();
            self.alloc.update(&removals, &[], &mut scratch);
            self.apply_changed_rates();
            self.maybe_oracle_check("completions");
        }
    }

    // --- full-recompute core ----------------------------------------------

    fn refresh_full_rates(&mut self) {
        // The honest slow path: one full oracle solve over every live flow.
        let live: Vec<usize> = (0..self.flows.len())
            .filter(|&s| self.flows[s].is_some())
            .collect();
        let specs: Vec<FlowSpec> = live
            .iter()
            .map(|&s| self.flows[s].as_ref().unwrap().spec)
            .collect();
        let rates = allocate_rates(&self.local_bw, &specs, self.cfg.bandwidth_model);
        for (&s, &r) in live.iter().zip(&rates) {
            self.flows[s].as_mut().unwrap().rate = r;
        }
        self.rates_stale = false;
    }

    fn next_scan_completion(&self) -> f64 {
        let mut next = f64::INFINITY;
        for f in self.flows.iter().flatten() {
            if f.rate > self.rate_eps {
                next = next.min(self.t + f.remaining.max(0.0) / f.rate);
            }
        }
        next
    }

    fn materialise_full(&mut self, dt: f64) {
        for f in self.flows.iter_mut().flatten() {
            f.remaining -= f.rate * dt;
            f.last_t = self.t + dt;
        }
    }

    fn complete_due_full(&mut self) {
        let mut any = false;
        for s in 0..self.flows.len() {
            let done = match &self.flows[s] {
                // Relative threshold: fluid arithmetic leaves
                // size-proportional dust at the projected completion time.
                Some(f) => f.remaining <= 1e-9 * (1.0 + f.payload),
                None => false,
            };
            if done {
                let f = self.flows[s].take().expect("checked above");
                self.n_live -= 1;
                self.processed += 1;
                self.events.push(LiveEvent::FlowDone {
                    time: self.t,
                    id: LiveFlowId {
                        slot: s as u32,
                        gen: self.gen[s],
                    },
                });
                self.gen[s] = self.gen[s].wrapping_add(1);
                self.free.push(s as u32);
                self.deliver(f.spec.dst, &f.parts);
                any = true;
            }
        }
        if any {
            self.rates_stale = true;
        }
    }

    // --- shared fluid machinery -------------------------------------------

    fn deliver(&mut self, dst: ClusterId, parts: &[ChunkPart]) {
        for p in parts {
            if p.amount <= 0.0 {
                continue;
            }
            self.events.push(LiveEvent::Delivered {
                time: self.t,
                dst,
                job: p.job,
                amount: p.amount,
            });
            if self.cfg.record_events {
                self.event_log.push(EventRecord {
                    kind: EventKind::Delivered,
                    time: self.t,
                    cluster: dst.0,
                    job: p.job,
                    amount: p.amount,
                });
            }
            self.queues[dst.index()].push_back(QueueEntry {
                job: p.job,
                remaining: p.amount,
                original: p.amount,
            });
        }
    }

    /// Earliest completion of any queue's *head* entry.
    fn next_queue_completion(&self) -> f64 {
        let mut next = f64::INFINITY;
        for (queue, &s) in self.queues.iter().zip(&self.speeds) {
            if s > 0.0 {
                if let Some(head) = queue.front() {
                    next = next.min(self.t + head.remaining / s);
                }
            }
        }
        next
    }

    /// Drains every queue by `speed · dt`, emitting [`LiveEvent::Computed`]
    /// (with full original credit) for entries that finish at `t_event`.
    fn drain_queues(&mut self, dt: f64, t_event: f64) {
        for (c, (queue, &s)) in self.queues.iter_mut().zip(&self.speeds).enumerate() {
            if s <= 0.0 || queue.is_empty() {
                continue;
            }
            let mut capacity = s * dt;
            while capacity > 0.0 {
                let Some(head) = queue.front_mut() else {
                    break;
                };
                if head.remaining <= capacity + 1e-9 * (1.0 + head.original) {
                    capacity -= head.remaining;
                    let entry = queue.pop_front().expect("front exists");
                    self.processed += 1;
                    self.events.push(LiveEvent::Computed {
                        time: t_event,
                        cluster: ClusterId(c as u32),
                        job: entry.job,
                        amount: entry.original,
                    });
                    if self.cfg.record_events {
                        self.event_log.push(EventRecord {
                            kind: EventKind::Computed,
                            time: t_event,
                            cluster: c as u32,
                            job: entry.job,
                            amount: entry.original,
                        });
                    }
                } else {
                    head.remaining -= capacity;
                    break;
                }
            }
        }
    }
    // --- snapshot / restore -----------------------------------------------

    /// Captures the full engine state for failover. Must be taken *between*
    /// [`LiveSim::advance_to`] calls (the per-advance event scratch is
    /// transient and not saved). [`LiveSim::restore`] rebuilds an engine
    /// that behaves **bit-identically** from this point on: the snapshot
    /// preserves slot layout, generations, the free list, the allocator's
    /// per-link membership order, exact flow materialisation state, and the
    /// completion heap's entry multiset (its strict total order makes the
    /// rebuilt pop sequence identical regardless of internal layout).
    pub fn snapshot(&self) -> LiveSnapshot {
        let mut heap: Vec<HeapEntryState> = self
            .heap
            .iter()
            .map(|e| HeapEntryState {
                time: e.time,
                slot: e.slot,
                version: e.version,
            })
            .collect();
        // Deterministic serialisation order (BinaryHeap iteration is not).
        heap.sort_by(|a, b| {
            a.time
                .total_cmp(&b.time)
                .then(a.slot.cmp(&b.slot))
                .then(a.version.cmp(&b.version))
        });
        LiveSnapshot {
            version: LIVE_SNAPSHOT_VERSION,
            t: self.t,
            local_bw: self.local_bw.clone(),
            speeds: self.speeds.clone(),
            flows: self
                .flows
                .iter()
                .map(|slot| slot.as_ref().map(FlowState::of))
                .collect(),
            gen: self.gen.clone(),
            versions: self.versions.clone(),
            heap,
            free: self.free.clone(),
            rates_stale: self.rates_stale,
            queues: self
                .queues
                .iter()
                .map(|q| {
                    q.iter()
                        .map(|e| QueueEntryState {
                            job: e.job,
                            remaining: e.remaining,
                            original: e.original,
                        })
                        .collect()
                })
                .collect(),
            processed: self.processed,
            event_log: self.event_log.clone(),
            alloc: self.alloc.snapshot(),
        }
    }

    /// Rebuilds an engine from a [`LiveSim::snapshot`]. `cfg` must use the
    /// same engine core and bandwidth model the snapshot was taken under
    /// (they are config, not state — a snapshot does not pin the observer
    /// knobs `oracle_check`/`record_events`).
    pub fn restore(cfg: LiveConfig, snap: &LiveSnapshot) -> LiveSim {
        assert_eq!(
            snap.version, LIVE_SNAPSHOT_VERSION,
            "unsupported LiveSnapshot version {}",
            snap.version
        );
        let flows: Vec<Option<LiveFlow>> = snap
            .flows
            .iter()
            .map(|slot| slot.as_ref().map(FlowState::to_flow))
            .collect();
        let n_live = flows.iter().filter(|f| f.is_some()).count();
        let mut sim = LiveSim {
            cfg: cfg.clone(),
            local_bw: snap.local_bw.clone(),
            speeds: snap.speeds.clone(),
            t: snap.t,
            flows,
            gen: snap.gen.clone(),
            n_live,
            alloc: BandwidthAllocator::from_state(&snap.alloc, cfg.bandwidth_model),
            versions: snap.versions.clone(),
            heap: snap
                .heap
                .iter()
                .map(|e| HeapEntry {
                    time: e.time,
                    slot: e.slot,
                    version: e.version,
                })
                .collect(),
            free: snap.free.clone(),
            rates_stale: snap.rates_stale,
            queues: snap
                .queues
                .iter()
                .map(|q| {
                    q.iter()
                        .map(|e| QueueEntry {
                            job: e.job,
                            remaining: e.remaining,
                            original: e.original,
                        })
                        .collect()
                })
                .collect(),
            events: Vec::new(),
            event_log: snap.event_log.clone(),
            changed_scratch: Vec::new(),
            processed: snap.processed,
            rate_eps: 0.0,
        };
        sim.refresh_rate_eps();
        sim
    }
}

/// Wire version written into every [`LiveSnapshot`]; restore rejects
/// anything else.
pub const LIVE_SNAPSHOT_VERSION: u32 = 1;

/// One occupied flow slot in a [`LiveSnapshot`]. The per-flow cap is
/// `Option`-encoded (`None` = uncapped) because `f64::INFINITY` does not
/// survive a JSON round trip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FlowState {
    src: u32,
    dst: u32,
    cap: Option<f64>,
    demand: f64,
    parts: Vec<ChunkPart>,
    payload: f64,
    remaining: f64,
    last_t: f64,
    rate: f64,
    alloc_slot: Option<u32>,
    alloc_gen: Option<u32>,
}

impl FlowState {
    fn of(f: &LiveFlow) -> FlowState {
        let (alloc_slot, alloc_gen) = match f.alloc_id {
            Some(id) => {
                let (s, g) = id.to_parts();
                (Some(s), Some(g))
            }
            None => (None, None),
        };
        FlowState {
            src: f.spec.src.0,
            dst: f.spec.dst.0,
            cap: if f.spec.cap.is_finite() {
                Some(f.spec.cap)
            } else {
                None
            },
            demand: f.spec.demand,
            parts: f.parts.clone(),
            payload: f.payload,
            remaining: f.remaining,
            last_t: f.last_t,
            rate: f.rate,
            alloc_slot,
            alloc_gen,
        }
    }

    fn to_flow(&self) -> LiveFlow {
        LiveFlow {
            spec: FlowSpec {
                src: ClusterId(self.src),
                dst: ClusterId(self.dst),
                cap: self.cap.unwrap_or(f64::INFINITY),
                demand: self.demand,
            },
            parts: self.parts.clone(),
            payload: self.payload,
            remaining: self.remaining,
            last_t: self.last_t,
            rate: self.rate,
            alloc_id: match (self.alloc_slot, self.alloc_gen) {
                (Some(s), Some(g)) => Some(FlowId::of_parts(s, g)),
                _ => None,
            },
        }
    }
}

/// One completion-heap entry in a [`LiveSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct HeapEntryState {
    time: f64,
    slot: u32,
    version: u64,
}

/// One compute-queue entry in a [`LiveSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct QueueEntryState {
    job: u32,
    remaining: f64,
    original: f64,
}

/// Serialisable full state of a [`LiveSim`], captured by
/// [`LiveSim::snapshot`] and rebuilt by [`LiveSim::restore`]. See the
/// snapshot method for the bit-identity contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveSnapshot {
    /// Wire version ([`LIVE_SNAPSHOT_VERSION`]).
    pub version: u32,
    t: f64,
    local_bw: Vec<f64>,
    speeds: Vec<f64>,
    flows: Vec<Option<FlowState>>,
    gen: Vec<u32>,
    versions: Vec<u64>,
    heap: Vec<HeapEntryState>,
    free: Vec<u32>,
    rates_stale: bool,
    queues: Vec<Vec<QueueEntryState>>,
    processed: u64,
    event_log: Vec<EventRecord>,
    alloc: AllocatorState,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ClusterId {
        ClusterId(i)
    }

    fn part(job: u32, amount: f64) -> ChunkPart {
        ChunkPart { job, amount }
    }

    fn flow(src: u32, dst: u32, cap: f64, demand: f64, parts: Vec<ChunkPart>) -> LiveFlowSpec {
        LiveFlowSpec {
            src: c(src),
            dst: c(dst),
            cap,
            demand,
            parts,
        }
    }

    fn checked(engine: SimEngine) -> LiveConfig {
        LiveConfig {
            engine,
            oracle_check: true,
            ..LiveConfig::default()
        }
    }

    #[test]
    fn single_flow_delivers_then_computes() {
        let mut sim = LiveSim::new(&[10.0, 10.0], &[0.0, 2.0], checked(SimEngine::Incremental));
        // 20 units over a 10-wide path: delivery at t = 2; compute at 2 + 10.
        sim.add_flows(vec![flow(0, 1, f64::INFINITY, 0.0, vec![part(7, 20.0)])]);
        let events = sim.advance_to(20.0).to_vec();
        assert_eq!(events.len(), 3);
        assert!(matches!(events[0], LiveEvent::FlowDone { time, .. } if (time - 2.0).abs() < 1e-9));
        assert!(
            matches!(events[1], LiveEvent::Delivered { job: 7, amount, .. } if (amount - 20.0).abs() < 1e-12)
        );
        assert!(
            matches!(events[2], LiveEvent::Computed { time, job: 7, amount, .. }
                if (time - 12.0).abs() < 1e-9 && (amount - 20.0).abs() < 1e-12)
        );
        assert!(sim.idle());
    }

    #[test]
    fn capacity_update_retimes_in_flight_transfers() {
        let mut sim = LiveSim::new(&[10.0, 100.0], &[0.0, 0.0], checked(SimEngine::Incremental));
        let ids = sim.add_flows(vec![flow(0, 1, f64::INFINITY, 0.0, vec![part(0, 20.0)])]);
        sim.advance_to(1.0); // 10 units shipped
        sim.update_link_capacity(c(0), 5.0); // remaining 10 at rate 5
        let events = sim.advance_to(10.0).to_vec();
        assert!(
            matches!(events[0], LiveEvent::FlowDone { time, .. } if (time - 3.0).abs() < 1e-9),
            "{events:?}"
        );
        assert!(sim.live_flows() == 0);
        assert!(!sim.is_current(ids[0]));
    }

    #[test]
    fn outage_stalls_and_restore_revives() {
        let mut sim = LiveSim::new(&[10.0, 100.0], &[0.0, 0.0], checked(SimEngine::Incremental));
        sim.add_flows(vec![flow(0, 1, f64::INFINITY, 0.0, vec![part(0, 10.0)])]);
        sim.advance_to(0.5);
        sim.update_link_capacity(c(0), 0.0);
        assert!(sim.advance_to(50.0).is_empty(), "stalled flow completed");
        sim.update_link_capacity(c(0), 10.0);
        let events = sim.advance_to(51.0).to_vec();
        assert!(
            matches!(events[0], LiveEvent::FlowDone { time, .. } if (time - 50.5).abs() < 1e-9),
            "{events:?}"
        );
    }

    #[test]
    fn retire_returns_original_parts() {
        let mut sim = LiveSim::new(&[10.0, 100.0], &[0.0, 1.0], checked(SimEngine::Incremental));
        let ids = sim.add_flows(vec![flow(
            0,
            1,
            f64::INFINITY,
            0.0,
            vec![part(1, 15.0), part(2, 5.0)],
        )]);
        sim.advance_to(1.0);
        let retired = sim.retire_flows(&ids);
        assert_eq!(retired.len(), 1);
        assert_eq!(retired[0].parts, vec![part(1, 15.0), part(2, 5.0)]);
        assert!(sim.idle());
        // Stale handles are ignored.
        assert!(sim.retire_flows(&ids).is_empty());
    }

    #[test]
    fn speed_update_retimes_compute() {
        let mut sim = LiveSim::new(&[10.0, 10.0], &[1.0, 1.0], LiveConfig::default());
        sim.enqueue_compute(c(0), 3, 10.0);
        sim.advance_to(2.0); // 8 left at speed 1
        sim.update_speed(c(0), 4.0);
        let events = sim.advance_to(10.0).to_vec();
        assert!(
            matches!(events[0], LiveEvent::Computed { time, job: 3, .. } if (time - 4.0).abs() < 1e-9),
            "{events:?}"
        );
    }

    #[test]
    fn engines_agree_on_event_times() {
        use rand::{Rng, SeedableRng};
        for model in [BandwidthModel::MaxMinFair, BandwidthModel::EqualSplit] {
            let mut logs: Vec<Vec<(u8, u32, f64)>> = Vec::new();
            let mut traces: Vec<Vec<EventRecord>> = Vec::new();
            for engine in [SimEngine::Incremental, SimEngine::FullRecompute] {
                let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
                let g = [20.0, 15.0, 30.0, 25.0];
                let speeds = [4.0, 3.0, 5.0, 2.0];
                let mut sim = LiveSim::new(
                    &g,
                    &speeds,
                    LiveConfig {
                        bandwidth_model: model,
                        engine,
                        oracle_check: engine == SimEngine::Incremental,
                        record_events: true,
                    },
                );
                let mut log = Vec::new();
                for step in 0..30u32 {
                    let t = step as f64 * 0.7;
                    for e in sim.advance_to(t) {
                        match *e {
                            LiveEvent::Computed { time, job, .. } => log.push((2u8, job, time)),
                            LiveEvent::Delivered { time, job, .. } => log.push((1u8, job, time)),
                            LiveEvent::FlowDone { .. } => {}
                        }
                    }
                    // A deterministic mutation mix.
                    if step % 3 == 0 {
                        let src = rng.gen_range(0..4u32);
                        let dst = (src + rng.gen_range(1..4u32)) % 4;
                        sim.add_flows(vec![flow(
                            src,
                            dst,
                            rng.gen_range(2.0..20.0),
                            rng.gen_range(0.0..3.0),
                            vec![part(step, rng.gen_range(1.0..12.0))],
                        )]);
                    }
                    if step % 7 == 0 {
                        let l = rng.gen_range(0..4usize);
                        sim.update_link_capacity(ClusterId(l as u32), rng.gen_range(5.0..40.0));
                    }
                    if step % 11 == 0 {
                        let cl = rng.gen_range(0..4usize);
                        sim.update_speed(ClusterId(cl as u32), rng.gen_range(1.0..6.0));
                    }
                }
                for e in sim.advance_to(120.0) {
                    match *e {
                        LiveEvent::Computed { time, job, .. } => log.push((2u8, job, time)),
                        LiveEvent::Delivered { time, job, .. } => log.push((1u8, job, time)),
                        LiveEvent::FlowDone { .. } => {}
                    }
                }
                assert!(sim.idle(), "{engine:?} left work behind");
                logs.push(log);
                traces.push(sim.event_log().to_vec());
            }
            let (fast, slow) = (&logs[0], &logs[1]);
            assert_eq!(fast.len(), slow.len(), "{model:?}: event counts differ");
            for (a, b) in fast.iter().zip(slow) {
                assert_eq!(a.0, b.0, "{model:?}: event kinds diverged");
                assert_eq!(a.1, b.1, "{model:?}: event jobs diverged");
                assert!(
                    close(a.2, b.2, 1e-6),
                    "{model:?}: event times diverged: {} vs {}",
                    a.2,
                    b.2
                );
            }
            // The structured trace must agree too — and pinpoint nothing.
            if let Some(d) = crate::trace::first_divergence(&traces[0], &traces[1], 1e-6) {
                panic!("{model:?}: engines diverged at {}", d.describe());
            }
        }
    }

    #[test]
    fn retire_reports_shipped_progress() {
        let mut sim = LiveSim::new(&[10.0, 100.0], &[0.0, 1.0], checked(SimEngine::Incremental));
        let ids = sim.add_flows(vec![flow(0, 1, f64::INFINITY, 0.0, vec![part(1, 20.0)])]);
        sim.advance_to(1.0); // 10 of 20 shipped
        let retired = sim.retire_flows(&ids);
        assert!(
            (retired[0].shipped - 10.0).abs() < 1e-9,
            "shipped {}",
            retired[0].shipped
        );
    }

    #[test]
    fn purge_queue_returns_lost_work() {
        let mut sim = LiveSim::new(&[10.0, 10.0], &[1.0, 1.0], LiveConfig::default());
        sim.enqueue_compute(c(0), 3, 10.0);
        sim.enqueue_compute(c(0), 4, 5.0);
        sim.advance_to(2.0); // 8 left on the head entry
        let purged = sim.purge_queue(c(0));
        assert_eq!(purged.len(), 2);
        assert!((purged[0].remaining - 8.0).abs() < 1e-9);
        assert_eq!(purged[0].original, 10.0);
        assert_eq!(purged[1].remaining, 5.0);
        assert!(sim.idle());
        assert!(sim.advance_to(50.0).is_empty(), "purged work completed");
    }

    #[test]
    fn flow_constraint_stall_and_heal_keeps_progress() {
        // Unlike retire/re-add, a cap = 0 stall keeps shipped progress: 10
        // of 20 shipped at the stall, so the heal finishes 1 s later.
        for engine in [SimEngine::Incremental, SimEngine::FullRecompute] {
            let mut sim = LiveSim::new(&[10.0, 100.0], &[0.0, 0.0], checked(engine));
            let ids = sim.add_flows(vec![flow(0, 1, f64::INFINITY, 0.0, vec![part(0, 20.0)])]);
            sim.advance_to(1.0);
            sim.set_flow_constraints(ids[0], 0.0, 0.0);
            assert!(
                sim.advance_to(5.0).is_empty(),
                "{engine:?}: stalled flow moved"
            );
            sim.set_flow_constraints(ids[0], f64::INFINITY, 0.0);
            let events = sim.advance_to(10.0).to_vec();
            assert!(
                matches!(events[0], LiveEvent::FlowDone { time, .. } if (time - 6.0).abs() < 1e-9),
                "{engine:?}: {events:?}"
            );
        }
    }

    #[test]
    fn audit_catches_injected_heap_corruption() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        for corrupt in [
            LiveSim::debug_corrupt_heap_phantom as fn(&mut LiveSim),
            LiveSim::debug_corrupt_heap_dropped,
        ] {
            let mut sim =
                LiveSim::new(&[10.0, 100.0], &[0.0, 1.0], checked(SimEngine::Incremental));
            sim.add_flows(vec![flow(0, 1, f64::INFINITY, 0.0, vec![part(0, 20.0)])]);
            sim.audit("clean"); // must pass before the corruption
            corrupt(&mut sim);
            let caught = catch_unwind(AssertUnwindSafe(|| sim.audit("corrupted")));
            assert!(caught.is_err(), "audit missed the injected corruption");
        }
    }

    #[test]
    fn snapshot_restore_replays_bit_identically() {
        use rand::{Rng, SeedableRng};
        // Drive a sim to t = 10, snapshot (through JSON), and replay the
        // same deterministic tail on both copies: the event streams and
        // final state must agree bit for bit.
        for engine in [SimEngine::Incremental, SimEngine::FullRecompute] {
            let cfg = LiveConfig {
                record_events: true,
                ..checked(engine)
            };
            let mut sim = LiveSim::new(
                &[20.0, 15.0, 30.0, 25.0],
                &[4.0, 3.0, 5.0, 2.0],
                cfg.clone(),
            );
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
            let drive = |sim: &mut LiveSim, rng: &mut rand_chacha::ChaCha8Rng, from: u32| {
                for step in from..from + 14 {
                    sim.advance_to(step as f64 * 0.7);
                    let src = rng.gen_range(0..4u32);
                    let dst = (src + rng.gen_range(1..4u32)) % 4;
                    sim.add_flows(vec![flow(
                        src,
                        dst,
                        rng.gen_range(2.0..20.0),
                        rng.gen_range(0.0..3.0),
                        vec![part(step, rng.gen_range(1.0..12.0))],
                    )]);
                    if step % 5 == 0 {
                        let l = rng.gen_range(0..4usize);
                        sim.update_link_capacity(ClusterId(l as u32), rng.gen_range(5.0..40.0));
                    }
                }
                sim.advance_to(from as f64 * 0.7 + 50.0);
            };
            drive(&mut sim, &mut rng, 0);
            let json = serde_json::to_string(&sim.snapshot()).unwrap();
            let snap: LiveSnapshot = serde_json::from_str(&json).unwrap();
            let mut restored = LiveSim::restore(cfg, &snap);
            let mut rng2 = rng.clone();
            drive(&mut sim, &mut rng, 100);
            drive(&mut restored, &mut rng2, 100);
            assert!(sim.idle() && restored.idle());
            let (a, b) = (sim.event_log(), restored.event_log());
            assert_eq!(a.len(), b.len(), "{engine:?}: event counts differ");
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.kind, y.kind, "{engine:?}");
                assert_eq!(
                    x.time.to_bits(),
                    y.time.to_bits(),
                    "{engine:?}: times differ"
                );
                assert_eq!(x.job, y.job, "{engine:?}");
                assert_eq!(x.amount.to_bits(), y.amount.to_bits(), "{engine:?}");
            }
        }
    }

    #[test]
    fn zero_payload_flow_completes_immediately() {
        for engine in [SimEngine::Incremental, SimEngine::FullRecompute] {
            let mut sim = LiveSim::new(&[10.0, 10.0], &[1.0, 1.0], checked(engine));
            sim.add_flows(vec![flow(0, 1, 5.0, 0.0, vec![])]);
            let events = sim.advance_to(0.1).to_vec();
            assert!(
                matches!(events[0], LiveEvent::FlowDone { .. }),
                "{engine:?}: {events:?}"
            );
            assert!(sim.idle());
        }
    }
}
