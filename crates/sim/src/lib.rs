#![warn(missing_docs)]

//! # dls-sim — executing periodic schedules under the §2 network model
//!
//! The steady-state equations promise a throughput; this crate checks that
//! the promise survives contact with an actual execution. It implements an
//! event-driven fluid simulator for the paper's platform model:
//!
//! * every transfer `C^k → C^l` of a period becomes a **flow** whose rate is
//!   capped by its connections (`β_{k,l} · min bw(l_i)` — each backbone
//!   connection is granted its fixed per-connection bandwidth, the paper's
//!   wide-area TCP model) and shaped by **max-min fair sharing** of the two
//!   fluid local links it crosses (progressive filling, recomputed at every
//!   flow arrival/completion);
//! * every cluster is a fluid processor draining a work queue at speed
//!   `s_k`: local load is enqueued at the start of its period, remote load
//!   when its flow completes (the paper's one-period pipeline);
//! * the engine advances from event to event (period boundaries, flow
//!   completions) over a configurable horizon and reports measured per-
//!   application throughput, transfer lateness, and peak per-link connection
//!   usage — so a valid allocation can be certified *executable*, not just
//!   arithmetically consistent.
//!
//! An intentionally naive [`BandwidthModel::EqualSplit`] allocator is
//! included as an ablation: it grants each flow a static equal share with no
//! redistribution, which wastes the capacity max-min fairness reclaims and
//! shows up as lateness in the report.

pub mod bandwidth;
pub mod engine;
pub mod live;
pub mod report;
pub mod trace;

pub use bandwidth::{
    allocate_rates, AllocatorState, BandwidthAllocator, BandwidthModel, FlowId, FlowSpec,
};
pub use engine::{SimConfig, SimEngine, Simulator};
pub use live::{
    ChunkPart, LiveConfig, LiveEvent, LiveFlowId, LiveFlowSpec, LiveSim, LiveSnapshot, PurgedEntry,
    RetiredFlow, LIVE_SNAPSHOT_VERSION,
};
pub use report::SimReport;
pub use trace::{first_divergence, EventDivergence, EventKind, EventLog, EventRecord};
