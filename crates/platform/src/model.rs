//! The immutable, validated platform model.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a cluster (`C^k` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClusterId(pub u32);

impl ClusterId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Index of a router (nodes of the inter-cluster graph `G_ic = (R, B)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RouterId(pub u32);

impl RouterId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a backbone link (edges of `G_ic`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A cluster collapsed to its equivalent processor (§2): cumulated speed
/// `s_k` and local-link capacity `g_k`, attached to a router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Cumulated computing speed `s_k` (load units per time unit).
    pub speed: f64,
    /// Local serial-link capacity `g_k` (load units per time unit), shared
    /// by all incoming and outgoing traffic of the cluster.
    pub local_bw: f64,
    /// Router this cluster's front-end is attached to.
    pub router: RouterId,
}

/// A backbone (wide-area) link with the paper's bandwidth-sharing model:
/// every connection gets `bw_per_connection`, up to `max_connections`
/// simultaneously open connections.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackboneLink {
    /// One endpoint.
    pub from: RouterId,
    /// Other endpoint (links are bidirectional; `max_connections` counts
    /// connections in both directions, as in the paper).
    pub to: RouterId,
    /// Bandwidth granted to each connection, `bw(l)`.
    pub bw_per_connection: f64,
    /// Maximum simultaneously open connections, `max-connect(l)`.
    pub max_connections: u32,
}

impl BackboneLink {
    /// `true` iff the link touches `router`.
    pub fn touches(&self, router: RouterId) -> bool {
        self.from == router || self.to == router
    }

    /// The opposite endpoint, or `None` if `router` is not an endpoint.
    pub fn opposite(&self, router: RouterId) -> Option<RouterId> {
        if self.from == router {
            Some(self.to)
        } else if self.to == router {
            Some(self.from)
        } else {
            None
        }
    }
}

/// Validation failures for [`Platform::validate`].
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field meanings are given per variant
pub enum PlatformError {
    /// A cluster references a router outside the router range.
    BadRouter { cluster: usize },
    /// A link endpoint is outside the router range.
    BadLinkEndpoint { link: usize },
    /// A speed/bandwidth value is non-finite or negative.
    BadNumeric { what: &'static str, index: usize },
    /// A stored route is not a path between the two clusters' routers.
    BrokenRoute {
        from: usize,
        to: usize,
        detail: String,
    },
    /// A route was stored for a cluster pair outside the range.
    BadRoutePair,
    /// The platform has no clusters.
    Empty,
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::BadRouter { cluster } => {
                write!(f, "cluster {cluster} references an unknown router")
            }
            PlatformError::BadLinkEndpoint { link } => {
                write!(f, "backbone link {link} has an unknown endpoint")
            }
            PlatformError::BadNumeric { what, index } => {
                write!(f, "{what} {index} has a non-finite or negative value")
            }
            PlatformError::BrokenRoute { from, to, detail } => {
                write!(f, "route C{from}→C{to} is not a valid path: {detail}")
            }
            PlatformError::BadRoutePair => write!(f, "route stored for out-of-range clusters"),
            PlatformError::Empty => write!(f, "platform has no clusters"),
        }
    }
}

impl std::error::Error for PlatformError {}

/// The validated platform: clusters, routers, backbone links and the fixed
/// routing table `L_{k,l}`.
///
/// Construct through [`crate::PlatformBuilder`] or
/// [`crate::PlatformGenerator`]; direct field construction is possible for
/// serde round-trips, after which [`Platform::validate`] should be called.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Platform {
    /// Number of routers (`|R|`); routers carry no attributes beyond their
    /// identity, matching the paper.
    pub num_routers: usize,
    /// Clusters, indexed by [`ClusterId`].
    pub clusters: Vec<Cluster>,
    /// Backbone links, indexed by [`LinkId`].
    pub links: Vec<BackboneLink>,
    /// Routing table: `routes[k * K + l]` is the ordered backbone-link list
    /// `L_{k,l}`, or `None` when `C^l` is unreachable from `C^k` (the graph
    /// is not assumed connected). Diagonal entries are `None`.
    pub routes: Vec<Option<Vec<LinkId>>>,
}

impl Platform {
    /// Number of clusters `K`.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// All cluster ids, in order.
    pub fn cluster_ids(&self) -> impl Iterator<Item = ClusterId> {
        (0..self.clusters.len() as u32).map(ClusterId)
    }

    /// All link ids, in order.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> {
        (0..self.links.len() as u32).map(LinkId)
    }

    /// Cluster accessor.
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id.index()]
    }

    /// Link accessor.
    pub fn link(&self, id: LinkId) -> &BackboneLink {
        &self.links[id.index()]
    }

    /// The fixed route `L_{from,to}`, or `None` if unreachable (or
    /// `from == to`, which needs no network).
    pub fn route(&self, from: ClusterId, to: ClusterId) -> Option<&[LinkId]> {
        let k = self.clusters.len();
        self.routes[from.index() * k + to.index()].as_deref()
    }

    /// Bandwidth available to **one** connection from `from` to `to`:
    /// `min_{l ∈ L_{from,to}} bw(l)` (the paper's `g_{k,l}`). `None` when no
    /// route exists.
    pub fn route_bottleneck_bw(&self, from: ClusterId, to: ClusterId) -> Option<f64> {
        self.route(from, to).map(|links| {
            links
                .iter()
                .map(|l| self.links[l.index()].bw_per_connection)
                .fold(f64::INFINITY, f64::min)
        })
    }

    /// Maximum number of connections a *single new* transfer could open
    /// along the route if it had the route to itself: `min max-connect`.
    pub fn route_max_connections(&self, from: ClusterId, to: ClusterId) -> Option<u32> {
        self.route(from, to).map(|links| {
            links
                .iter()
                .map(|l| self.links[l.index()].max_connections)
                .min()
                .unwrap_or(u32::MAX)
        })
    }

    /// Ordered cluster pairs `(k, l)`, `k ≠ l`, that have a route — exactly
    /// the pairs for which `α_{k,l}` / `β_{k,l}` variables exist.
    pub fn routed_pairs(&self) -> Vec<(ClusterId, ClusterId)> {
        let mut out = Vec::new();
        for from in self.cluster_ids() {
            for to in self.cluster_ids() {
                if from != to && self.route(from, to).is_some() {
                    out.push((from, to));
                }
            }
        }
        out
    }

    /// Full structural validation (used by the builder and after
    /// deserialisation).
    pub fn validate(&self) -> Result<(), PlatformError> {
        if self.clusters.is_empty() {
            return Err(PlatformError::Empty);
        }
        for (i, c) in self.clusters.iter().enumerate() {
            if c.router.index() >= self.num_routers {
                return Err(PlatformError::BadRouter { cluster: i });
            }
            if !c.speed.is_finite() || c.speed < 0.0 {
                return Err(PlatformError::BadNumeric {
                    what: "cluster speed",
                    index: i,
                });
            }
            if !c.local_bw.is_finite() || c.local_bw < 0.0 {
                return Err(PlatformError::BadNumeric {
                    what: "cluster local_bw",
                    index: i,
                });
            }
        }
        for (i, l) in self.links.iter().enumerate() {
            if l.from.index() >= self.num_routers || l.to.index() >= self.num_routers {
                return Err(PlatformError::BadLinkEndpoint { link: i });
            }
            if !l.bw_per_connection.is_finite() || l.bw_per_connection < 0.0 {
                return Err(PlatformError::BadNumeric {
                    what: "link bw_per_connection",
                    index: i,
                });
            }
        }
        let k = self.clusters.len();
        if self.routes.len() != k * k {
            return Err(PlatformError::BadRoutePair);
        }
        for from in 0..k {
            for to in 0..k {
                if let Some(route) = &self.routes[from * k + to] {
                    self.check_route_path(from, to, route)?;
                }
            }
        }
        Ok(())
    }

    fn check_route_path(
        &self,
        from: usize,
        to: usize,
        route: &[LinkId],
    ) -> Result<(), PlatformError> {
        let broken = |detail: String| PlatformError::BrokenRoute { from, to, detail };
        if from == to {
            return Err(broken("self-route stored".into()));
        }
        if route.is_empty() {
            // Two clusters may share a router; an empty route is legal then.
            if self.clusters[from].router == self.clusters[to].router {
                return Ok(());
            }
            return Err(broken("empty route between distinct routers".into()));
        }
        let mut here = self.clusters[from].router;
        for (pos, lid) in route.iter().enumerate() {
            let link = self
                .links
                .get(lid.index())
                .ok_or_else(|| broken(format!("unknown link at position {pos}")))?;
            here = link
                .opposite(here)
                .ok_or_else(|| broken(format!("link {pos} does not touch router {here:?}")))?;
        }
        if here != self.clusters[to].router {
            return Err(broken("path does not end at the destination router".into()));
        }
        Ok(())
    }

    /// Serialises the platform to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("platform serialisation cannot fail")
    }

    /// Parses a platform from JSON and validates it.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let p: Platform = serde_json::from_str(s).map_err(|e| e.to_string())?;
        p.validate().map_err(|e| e.to_string())?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlatformBuilder;

    fn triangle() -> Platform {
        let mut b = PlatformBuilder::new();
        let c0 = b.add_cluster(100.0, 50.0);
        let c1 = b.add_cluster(200.0, 40.0);
        let c2 = b.add_cluster(50.0, 30.0);
        b.connect_clusters(c0, c1, 10.0, 4);
        b.connect_clusters(c1, c2, 20.0, 2);
        b.connect_clusters(c0, c2, 5.0, 8);
        b.build().unwrap()
    }

    #[test]
    fn accessors() {
        let p = triangle();
        assert_eq!(p.num_clusters(), 3);
        assert_eq!(p.cluster(ClusterId(1)).speed, 200.0);
        assert_eq!(p.route(ClusterId(0), ClusterId(1)).unwrap().len(), 1);
        assert_eq!(p.route(ClusterId(0), ClusterId(0)), None);
        assert_eq!(p.route_bottleneck_bw(ClusterId(0), ClusterId(2)), Some(5.0));
        assert_eq!(p.route_max_connections(ClusterId(0), ClusterId(1)), Some(4));
        assert_eq!(p.routed_pairs().len(), 6);
    }

    #[test]
    fn json_round_trip() {
        let p = triangle();
        let json = p.to_json();
        let q = Platform::from_json(&json).unwrap();
        assert_eq!(q.num_clusters(), p.num_clusters());
        assert_eq!(q.links.len(), p.links.len());
        assert_eq!(
            q.route(ClusterId(2), ClusterId(0)),
            p.route(ClusterId(2), ClusterId(0))
        );
    }

    #[test]
    fn validation_catches_bad_router() {
        let mut p = triangle();
        p.clusters[0].router = RouterId(99);
        assert!(matches!(
            p.validate(),
            Err(PlatformError::BadRouter { cluster: 0 })
        ));
    }

    #[test]
    fn validation_catches_broken_route() {
        let mut p = triangle();
        let k = p.num_clusters();
        // Replace route C0→C1 with a link that doesn't touch C0's router.
        p.routes[1] = Some(vec![LinkId(1)]);
        let _ = k;
        assert!(matches!(
            p.validate(),
            Err(PlatformError::BrokenRoute { from: 0, to: 1, .. })
        ));
    }

    #[test]
    fn validation_catches_negative_speed() {
        let mut p = triangle();
        p.clusters[1].speed = -1.0;
        assert!(matches!(
            p.validate(),
            Err(PlatformError::BadNumeric {
                what: "cluster speed",
                index: 1
            })
        ));
    }

    #[test]
    fn link_helpers() {
        let l = BackboneLink {
            from: RouterId(0),
            to: RouterId(1),
            bw_per_connection: 1.0,
            max_connections: 1,
        };
        assert!(l.touches(RouterId(0)));
        assert!(!l.touches(RouterId(2)));
        assert_eq!(l.opposite(RouterId(1)), Some(RouterId(0)));
        assert_eq!(l.opposite(RouterId(5)), None);
    }
}
