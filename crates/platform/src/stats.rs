//! Descriptive statistics of a platform, used by the experiment reports.

use crate::model::Platform;
use serde::{Deserialize, Serialize};

/// Summary statistics of a [`Platform`] topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformStats {
    /// Number of clusters `K`.
    pub num_clusters: usize,
    /// Number of routers `|R|`.
    pub num_routers: usize,
    /// Number of backbone links `|B|`.
    pub num_links: usize,
    /// Ordered cluster pairs with a route, over `K(K−1)`.
    pub reachable_fraction: f64,
    /// Mean route length (hops) over routed pairs.
    pub mean_route_len: f64,
    /// Maximum route length (hops).
    pub max_route_len: usize,
    /// Mean per-connection bottleneck bandwidth over routed pairs.
    pub mean_bottleneck_bw: f64,
    /// Total computing speed `Σ s_k`.
    pub total_speed: f64,
    /// Total local-link capacity `Σ g_k`.
    pub total_local_bw: f64,
}

impl PlatformStats {
    /// Computes statistics for `platform`.
    pub fn compute(platform: &Platform) -> Self {
        let k = platform.num_clusters();
        let pairs = platform.routed_pairs();
        let mut total_len = 0usize;
        let mut max_len = 0usize;
        let mut total_bw = 0.0f64;
        let mut finite_bw_pairs = 0usize;
        for &(a, b) in &pairs {
            let route = platform.route(a, b).expect("routed pair has a route");
            total_len += route.len();
            max_len = max_len.max(route.len());
            let bw = platform
                .route_bottleneck_bw(a, b)
                .expect("routed pair has a bottleneck");
            if bw.is_finite() {
                total_bw += bw;
                finite_bw_pairs += 1;
            }
        }
        let n_pairs = pairs.len();
        PlatformStats {
            num_clusters: k,
            num_routers: platform.num_routers,
            num_links: platform.links.len(),
            reachable_fraction: if k > 1 {
                n_pairs as f64 / (k * (k - 1)) as f64
            } else {
                0.0
            },
            mean_route_len: if n_pairs > 0 {
                total_len as f64 / n_pairs as f64
            } else {
                0.0
            },
            max_route_len: max_len,
            mean_bottleneck_bw: if finite_bw_pairs > 0 {
                total_bw / finite_bw_pairs as f64
            } else {
                0.0
            },
            total_speed: platform.clusters.iter().map(|c| c.speed).sum(),
            total_local_bw: platform.clusters.iter().map(|c| c.local_bw).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlatformBuilder;
    use crate::generator::{PlatformConfig, PlatformGenerator};

    #[test]
    fn line_topology_stats() {
        let mut b = PlatformBuilder::new();
        let c0 = b.add_cluster(100.0, 10.0);
        let c1 = b.add_cluster(50.0, 20.0);
        let c2 = b.add_cluster(25.0, 30.0);
        b.connect_clusters(c0, c1, 5.0, 3);
        b.connect_clusters(c1, c2, 7.0, 3);
        let p = b.build().unwrap();
        let s = PlatformStats::compute(&p);
        assert_eq!(s.num_clusters, 3);
        assert_eq!(s.num_links, 2);
        assert_eq!(s.reachable_fraction, 1.0);
        // Routes: 0↔1 (1 hop), 1↔2 (1 hop), 0↔2 (2 hops) → mean 8/6.
        assert!((s.mean_route_len - 8.0 / 6.0).abs() < 1e-12);
        assert_eq!(s.max_route_len, 2);
        assert_eq!(s.total_speed, 175.0);
        assert_eq!(s.total_local_bw, 60.0);
    }

    #[test]
    fn dense_random_platform_is_fully_reachable() {
        let cfg = PlatformConfig {
            num_clusters: 12,
            connectivity: 1.0,
            ..PlatformConfig::default()
        };
        let p = PlatformGenerator::new(5).generate(&cfg);
        let s = PlatformStats::compute(&p);
        assert_eq!(s.reachable_fraction, 1.0);
        assert_eq!(s.mean_route_len, 1.0);
    }

    #[test]
    fn empty_connectivity_platform() {
        let cfg = PlatformConfig {
            num_clusters: 4,
            connectivity: 0.0,
            ..PlatformConfig::default()
        };
        let p = PlatformGenerator::new(5).generate(&cfg);
        let s = PlatformStats::compute(&p);
        assert_eq!(s.reachable_fraction, 0.0);
        assert_eq!(s.num_links, 0);
    }
}
