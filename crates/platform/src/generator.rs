//! Random platform generation following the paper's experimental setup (§6).
//!
//! The paper instantiates random platforms from six parameters (Table 1):
//! the number of clusters `K`, the probability `connectivity` that any two
//! clusters are connected by a backbone link, a `heterogeneity` ratio, and
//! the mean values of the local-link capacity `g`, the per-connection
//! backbone bandwidth `bw` and the backbone connection cap `maxcon`.
//! `g`, `bw` and `maxcon` are drawn uniformly from
//! `mean · (1 − heterogeneity)` to `mean · (1 + heterogeneity)`; computing
//! speed is fixed at 100 because only relative values matter for a periodic
//! schedule.

use crate::builder::PlatformBuilder;
use crate::model::{Platform, RouterId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters describing one random-platform distribution (a single cell of
/// Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Number of clusters `K`.
    pub num_clusters: usize,
    /// Probability that any two clusters are directly connected.
    pub connectivity: f64,
    /// Relative spread of `g`, `bw`, `maxcon` around their means.
    pub heterogeneity: f64,
    /// Mean local-link capacity `g`.
    pub mean_local_bw: f64,
    /// Mean per-connection backbone bandwidth `bw`.
    pub mean_backbone_bw: f64,
    /// Mean backbone connection cap `maxcon`.
    pub mean_max_connections: f64,
    /// Cluster computing speed (fixed at 100 in the paper).
    pub speed: f64,
    /// Number of relay routers inserted by splitting random backbone links
    /// (models the intermediate routers of Figure 2; 0 in the paper's
    /// sweep).
    pub relay_routers: usize,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            num_clusters: 10,
            connectivity: 0.4,
            heterogeneity: 0.4,
            mean_local_bw: 250.0,
            mean_backbone_bw: 50.0,
            mean_max_connections: 30.0,
            speed: 100.0,
            relay_routers: 0,
        }
    }
}

/// Deterministic random platform generator (seeded ChaCha8).
#[derive(Debug, Clone)]
pub struct PlatformGenerator {
    rng: ChaCha8Rng,
}

impl PlatformGenerator {
    /// Creates a generator from a seed; equal seeds yield equal platforms.
    pub fn new(seed: u64) -> Self {
        PlatformGenerator {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Samples `mean · U[1−h, 1+h]`.
    fn spread(&mut self, mean: f64, heterogeneity: f64) -> f64 {
        let lo = mean * (1.0 - heterogeneity);
        let hi = mean * (1.0 + heterogeneity);
        if hi <= lo {
            return lo.max(0.0);
        }
        self.rng.gen_range(lo..hi).max(0.0)
    }

    /// Generates one platform from `config`.
    pub fn generate(&mut self, config: &PlatformConfig) -> Platform {
        let mut b = PlatformBuilder::new();
        let k = config.num_clusters;
        let clusters: Vec<_> = (0..k)
            .map(|_| {
                let g = self.spread(config.mean_local_bw, config.heterogeneity);
                b.add_cluster(config.speed, g)
            })
            .collect();

        // Backbone links: each unordered cluster pair independently with
        // probability `connectivity`.
        let mut link_count = 0usize;
        for i in 0..k {
            for j in i + 1..k {
                if self.rng.gen_bool(config.connectivity.clamp(0.0, 1.0)) {
                    let bw = self.spread(config.mean_backbone_bw, config.heterogeneity);
                    let maxcon = self
                        .spread(config.mean_max_connections, config.heterogeneity)
                        .round()
                        .max(1.0) as u32;
                    b.connect_clusters(clusters[i], clusters[j], bw, maxcon);
                    link_count += 1;
                }
            }
        }

        let _ = link_count;
        let mut platform = b.build().expect("generated platform is always valid");
        // Optional relay routers (Figure 2 shows intermediate routers not
        // attached to any cluster): split random links through fresh relays
        // and recompute routing.
        if config.relay_routers > 0 {
            platform = insert_relays(platform, config.relay_routers, &mut self.rng);
        }
        platform
    }
}

/// Splits `n` random backbone links with relay routers (each split replaces
/// one link by two links of identical characteristics through a new router)
/// and recomputes all routes.
fn insert_relays(platform: Platform, n: usize, rng: &mut ChaCha8Rng) -> Platform {
    let mut b = PlatformBuilder::new();
    let mut links = platform.links.clone();
    for _ in 0..n {
        if links.is_empty() {
            break;
        }
        let idx = rng.gen_range(0..links.len());
        let old = links[idx].clone();
        // Relay ids are assigned densely after the original routers once all
        // splits are known; until then each relay gets a unique marker id
        // counting down from u32::MAX.
        let relay = RouterId(u32::MAX - links.len() as u32);
        let second = crate::model::BackboneLink {
            from: relay,
            to: old.to,
            bw_per_connection: old.bw_per_connection,
            max_connections: old.max_connections,
        };
        links[idx] = crate::model::BackboneLink {
            from: old.from,
            to: relay,
            bw_per_connection: old.bw_per_connection,
            max_connections: old.max_connections,
        };
        links.push(second);
    }
    // Renumber marker routers densely after the originals.
    let mut next = platform.num_routers as u32;
    let mut mapping = std::collections::HashMap::new();
    for l in &mut links {
        for r in [&mut l.from, &mut l.to] {
            if r.index() >= platform.num_routers {
                let id = *mapping.entry(r.0).or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                });
                *r = RouterId(id);
            }
        }
    }
    // Rebuild with identical clusters and the new link set.
    for _ in 0..next {
        b.add_router();
    }
    for c in &platform.clusters {
        b.add_cluster_at(c.speed, c.local_bw, c.router);
    }
    for l in &links {
        b.add_backbone(l.from, l.to, l.bw_per_connection, l.max_connections);
    }
    b.build().expect("relay-split platform is always valid")
}

/// The full Table 1 parameter grid of the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParameterGrid {
    /// Values of `K` (paper: 5, 15, …, 95).
    pub num_clusters: Vec<usize>,
    /// Values of `connectivity` (paper: 0.1, 0.2, …, 0.8).
    pub connectivity: Vec<f64>,
    /// Values of `heterogeneity` (paper: 0.2, 0.4, 0.6, 0.8).
    pub heterogeneity: Vec<f64>,
    /// Mean `g` values (paper: 50, 250, 350, 450).
    pub mean_local_bw: Vec<f64>,
    /// Mean `bw` values (paper: 10, 20, …, 90).
    pub mean_backbone_bw: Vec<f64>,
    /// Mean `maxcon` values (paper: 5, 15, …, 95).
    pub mean_max_connections: Vec<f64>,
    /// Random platforms generated per grid cell (paper: 10).
    pub replicates: usize,
}

impl ParameterGrid {
    /// The exact grid of Table 1. Note: the paper reports "269,835 different
    /// platform configurations", which is smaller than the nominal product
    /// of the Table 1 ranges at 10 replicates per cell (1 152 000); the
    /// sweep was evidently partial. We keep the full grid definition here
    /// and let the experiment presets subsample it.
    pub fn paper() -> Self {
        ParameterGrid {
            num_clusters: (5..=95).step_by(10).collect(),
            connectivity: (1..=8).map(|i| i as f64 / 10.0).collect(),
            heterogeneity: vec![0.2, 0.4, 0.6, 0.8],
            mean_local_bw: vec![50.0, 250.0, 350.0, 450.0],
            mean_backbone_bw: (1..=9).map(|i| (i * 10) as f64).collect(),
            mean_max_connections: (0..=9).map(|i| (5 + i * 10) as f64).collect(),
            replicates: 10,
        }
    }

    /// Number of grid cells (excluding replicates).
    pub fn num_cells(&self) -> usize {
        self.num_clusters.len()
            * self.connectivity.len()
            * self.heterogeneity.len()
            * self.mean_local_bw.len()
            * self.mean_backbone_bw.len()
            * self.mean_max_connections.len()
    }

    /// Iterates over every configuration in the grid, in a deterministic
    /// order, `replicates` times each.
    pub fn configs(&self) -> impl Iterator<Item = PlatformConfig> + '_ {
        self.cell_configs()
            .flat_map(move |c| std::iter::repeat_n(c, self.replicates))
    }

    /// Iterates over one configuration per grid cell.
    pub fn cell_configs(&self) -> impl Iterator<Item = PlatformConfig> + '_ {
        self.num_clusters.iter().flat_map(move |&k| {
            self.connectivity.iter().flat_map(move |&conn| {
                self.heterogeneity.iter().flat_map(move |&het| {
                    self.mean_local_bw.iter().flat_map(move |&g| {
                        self.mean_backbone_bw.iter().flat_map(move |&bw| {
                            self.mean_max_connections
                                .iter()
                                .map(move |&mc| PlatformConfig {
                                    num_clusters: k,
                                    connectivity: conn,
                                    heterogeneity: het,
                                    mean_local_bw: g,
                                    mean_backbone_bw: bw,
                                    mean_max_connections: mc,
                                    speed: 100.0,
                                    relay_routers: 0,
                                })
                        })
                    })
                })
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = PlatformConfig::default();
        let p1 = PlatformGenerator::new(42).generate(&cfg);
        let p2 = PlatformGenerator::new(42).generate(&cfg);
        assert_eq!(p1.to_json(), p2.to_json());
        let p3 = PlatformGenerator::new(43).generate(&cfg);
        assert_ne!(p1.to_json(), p3.to_json());
    }

    #[test]
    fn respects_cluster_count_and_speed() {
        let cfg = PlatformConfig {
            num_clusters: 17,
            speed: 100.0,
            ..PlatformConfig::default()
        };
        let p = PlatformGenerator::new(1).generate(&cfg);
        assert_eq!(p.num_clusters(), 17);
        assert!(p.clusters.iter().all(|c| c.speed == 100.0));
    }

    #[test]
    fn heterogeneity_bounds_hold() {
        let cfg = PlatformConfig {
            num_clusters: 30,
            connectivity: 0.5,
            heterogeneity: 0.4,
            mean_local_bw: 250.0,
            mean_backbone_bw: 50.0,
            mean_max_connections: 30.0,
            ..PlatformConfig::default()
        };
        let p = PlatformGenerator::new(7).generate(&cfg);
        for c in &p.clusters {
            assert!(c.local_bw >= 150.0 - 1e-9 && c.local_bw <= 350.0 + 1e-9);
        }
        for l in &p.links {
            assert!(l.bw_per_connection >= 30.0 - 1e-9 && l.bw_per_connection <= 70.0 + 1e-9);
            assert!(l.max_connections >= 18 && l.max_connections <= 42);
        }
    }

    #[test]
    fn connectivity_extremes() {
        let full = PlatformConfig {
            num_clusters: 8,
            connectivity: 1.0,
            ..PlatformConfig::default()
        };
        let p = PlatformGenerator::new(3).generate(&full);
        assert_eq!(p.links.len(), 8 * 7 / 2);
        assert_eq!(p.routed_pairs().len(), 8 * 7);

        let none = PlatformConfig {
            num_clusters: 8,
            connectivity: 0.0,
            ..PlatformConfig::default()
        };
        let p = PlatformGenerator::new(3).generate(&none);
        assert!(p.links.is_empty());
        assert!(p.routed_pairs().is_empty());
    }

    #[test]
    fn relay_routers_preserve_reachability() {
        let cfg = PlatformConfig {
            num_clusters: 6,
            connectivity: 1.0,
            relay_routers: 5,
            ..PlatformConfig::default()
        };
        let p = PlatformGenerator::new(11).generate(&cfg);
        // All pairs still reachable, now possibly through relays.
        assert_eq!(p.routed_pairs().len(), 6 * 5);
        assert!(p.num_routers > 6);
        p.validate().unwrap();
    }

    #[test]
    fn paper_grid_shape() {
        let g = ParameterGrid::paper();
        assert_eq!(g.num_clusters.len(), 10);
        assert_eq!(g.connectivity.len(), 8);
        assert_eq!(g.heterogeneity.len(), 4);
        assert_eq!(g.mean_local_bw.len(), 4);
        assert_eq!(g.mean_backbone_bw.len(), 9);
        assert_eq!(g.mean_max_connections.len(), 10);
        assert_eq!(g.num_cells(), 10 * 8 * 4 * 4 * 9 * 10);
        assert_eq!(g.num_cells() * g.replicates, 1_152_000);
        assert_eq!(g.cell_configs().count(), g.num_cells());
    }
}
