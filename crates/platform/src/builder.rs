//! Construction of arbitrary platform topologies with automatic routing.

use crate::model::{BackboneLink, Cluster, ClusterId, LinkId, Platform, PlatformError, RouterId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Builder for [`Platform`].
///
/// Routes that are not supplied explicitly via [`PlatformBuilder::set_route`]
/// are computed by a fewest-hops shortest path over the backbone graph,
/// breaking ties in favour of the widest bottleneck (largest minimum
/// per-connection bandwidth), then deterministically by router index.
#[derive(Debug, Default, Clone)]
pub struct PlatformBuilder {
    clusters: Vec<Cluster>,
    num_routers: usize,
    links: Vec<BackboneLink>,
    explicit_routes: Vec<(ClusterId, ClusterId, Vec<LinkId>)>,
}

impl PlatformBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a standalone router and returns its id.
    pub fn add_router(&mut self) -> RouterId {
        let id = RouterId(self.num_routers as u32);
        self.num_routers += 1;
        id
    }

    /// Adds a cluster with its own dedicated router.
    pub fn add_cluster(&mut self, speed: f64, local_bw: f64) -> ClusterId {
        let router = self.add_router();
        self.add_cluster_at(speed, local_bw, router)
    }

    /// Adds a cluster attached to an existing router.
    pub fn add_cluster_at(&mut self, speed: f64, local_bw: f64, router: RouterId) -> ClusterId {
        let id = ClusterId(self.clusters.len() as u32);
        self.clusters.push(Cluster {
            speed,
            local_bw,
            router,
        });
        id
    }

    /// Adds a backbone link between two routers.
    pub fn add_backbone(
        &mut self,
        from: RouterId,
        to: RouterId,
        bw_per_connection: f64,
        max_connections: u32,
    ) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(BackboneLink {
            from,
            to,
            bw_per_connection,
            max_connections,
        });
        id
    }

    /// Convenience: backbone link directly between two clusters' routers.
    pub fn connect_clusters(
        &mut self,
        a: ClusterId,
        b: ClusterId,
        bw_per_connection: f64,
        max_connections: u32,
    ) -> LinkId {
        let ra = self.clusters[a.index()].router;
        let rb = self.clusters[b.index()].router;
        self.add_backbone(ra, rb, bw_per_connection, max_connections)
    }

    /// Pins the route `L_{from,to}` explicitly (one direction only; set both
    /// directions if both are wanted). Overrides the automatic shortest
    /// path.
    pub fn set_route(&mut self, from: ClusterId, to: ClusterId, links: Vec<LinkId>) {
        self.explicit_routes.push((from, to, links));
    }

    /// Router a previously added cluster is attached to.
    pub fn cluster_router(&self, cluster: ClusterId) -> RouterId {
        self.clusters[cluster.index()].router
    }

    /// Number of routers added so far.
    pub fn num_routers(&self) -> usize {
        self.num_routers
    }

    /// Number of clusters added so far.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Finalises and validates the platform.
    pub fn build(self) -> Result<Platform, PlatformError> {
        let k = self.clusters.len();
        let mut routes: Vec<Option<Vec<LinkId>>> = vec![None; k * k];

        // Adjacency: router → [(neighbour, link)].
        let mut adj: Vec<Vec<(RouterId, LinkId)>> = vec![Vec::new(); self.num_routers];
        for (i, l) in self.links.iter().enumerate() {
            let lid = LinkId(i as u32);
            adj[l.from.index()].push((l.to, lid));
            adj[l.to.index()].push((l.from, lid));
        }

        // One Dijkstra per *source router* that hosts at least one cluster.
        let mut src_routers: Vec<RouterId> = self.clusters.iter().map(|c| c.router).collect();
        src_routers.sort_unstable();
        src_routers.dedup();

        for &src in &src_routers {
            let tree = shortest_paths(src, &adj, &self.links, self.num_routers);
            for from in 0..k {
                if self.clusters[from].router != src {
                    continue;
                }
                for to in 0..k {
                    if from == to {
                        continue;
                    }
                    let dst = self.clusters[to].router;
                    if let Some(path) = tree.path_to(dst) {
                        routes[from * k + to] = Some(path);
                    }
                }
            }
        }

        for (from, to, links) in self.explicit_routes {
            if from.index() >= k || to.index() >= k {
                return Err(PlatformError::BadRoutePair);
            }
            routes[from.index() * k + to.index()] = Some(links);
        }

        let platform = Platform {
            num_routers: self.num_routers,
            clusters: self.clusters,
            links: self.links,
            routes,
        };
        platform.validate()?;
        Ok(platform)
    }
}

/// Dijkstra label: fewest hops, then widest bottleneck.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Label {
    hops: u32,
    bottleneck: f64,
}

impl Label {
    fn better_than(&self, other: &Label) -> bool {
        self.hops < other.hops
            || (self.hops == other.hops && self.bottleneck > other.bottleneck + 1e-12)
    }
}

struct HeapItem {
    label: Label,
    router: RouterId,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert hops so fewer hops pop first;
        // larger bottleneck pops first; smaller router index breaks ties.
        other
            .label
            .hops
            .cmp(&self.label.hops)
            .then_with(|| self.label.bottleneck.total_cmp(&other.label.bottleneck))
            .then_with(|| other.router.cmp(&self.router))
    }
}

struct PathTree {
    /// Per router: predecessor `(router, link)` on the best path, if
    /// reached.
    pred: Vec<Option<(RouterId, LinkId)>>,
    reached: Vec<bool>,
    src: RouterId,
}

impl PathTree {
    fn path_to(&self, dst: RouterId) -> Option<Vec<LinkId>> {
        if !self.reached[dst.index()] {
            return None;
        }
        let mut path = Vec::new();
        let mut here = dst;
        while here != self.src {
            let (prev, link) = self.pred[here.index()].expect("reached router has predecessor");
            path.push(link);
            here = prev;
        }
        path.reverse();
        Some(path)
    }
}

fn shortest_paths(
    src: RouterId,
    adj: &[Vec<(RouterId, LinkId)>],
    links: &[BackboneLink],
    num_routers: usize,
) -> PathTree {
    let mut best: Vec<Option<Label>> = vec![None; num_routers];
    let mut pred: Vec<Option<(RouterId, LinkId)>> = vec![None; num_routers];
    let mut done = vec![false; num_routers];
    let mut heap = BinaryHeap::new();
    best[src.index()] = Some(Label {
        hops: 0,
        bottleneck: f64::INFINITY,
    });
    heap.push(HeapItem {
        label: best[src.index()].unwrap(),
        router: src,
    });

    while let Some(HeapItem { label, router }) = heap.pop() {
        if done[router.index()] {
            continue;
        }
        done[router.index()] = true;
        for &(next, lid) in &adj[router.index()] {
            if done[next.index()] {
                continue;
            }
            let link = &links[lid.index()];
            let cand = Label {
                hops: label.hops + 1,
                bottleneck: label.bottleneck.min(link.bw_per_connection),
            };
            let improves = match &best[next.index()] {
                None => true,
                Some(cur) => cand.better_than(cur),
            };
            if improves {
                best[next.index()] = Some(cand);
                pred[next.index()] = Some((router, lid));
                heap.push(HeapItem {
                    label: cand,
                    router: next,
                });
            }
        }
    }

    PathTree {
        pred,
        reached: best.iter().map(|b| b.is_some()).collect(),
        src,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_topology_routes_through_middle() {
        // C0 — C1 — C2 in a line: route C0→C2 must use both links.
        let mut b = PlatformBuilder::new();
        let c0 = b.add_cluster(100.0, 10.0);
        let c1 = b.add_cluster(100.0, 10.0);
        let c2 = b.add_cluster(100.0, 10.0);
        let l01 = b.connect_clusters(c0, c1, 5.0, 3);
        let l12 = b.connect_clusters(c1, c2, 7.0, 3);
        let p = b.build().unwrap();
        assert_eq!(p.route(c0, c2).unwrap(), &[l01, l12]);
        assert_eq!(p.route(c2, c0).unwrap(), &[l12, l01]);
        assert_eq!(p.route_bottleneck_bw(c0, c2), Some(5.0));
    }

    #[test]
    fn disconnected_clusters_have_no_route() {
        let mut b = PlatformBuilder::new();
        let c0 = b.add_cluster(100.0, 10.0);
        let c1 = b.add_cluster(100.0, 10.0);
        let p = b.build().unwrap();
        assert_eq!(p.route(c0, c1), None);
        assert!(p.routed_pairs().is_empty());
    }

    #[test]
    fn fewest_hops_wins_over_wider_path() {
        // Direct narrow link vs two-hop wide path: fewest hops is chosen.
        let mut b = PlatformBuilder::new();
        let c0 = b.add_cluster(100.0, 10.0);
        let c1 = b.add_cluster(100.0, 10.0);
        let relay = b.add_router();
        let direct = b.connect_clusters(c0, c1, 1.0, 1);
        b.add_backbone(RouterId(0), relay, 100.0, 9);
        b.add_backbone(relay, RouterId(1), 100.0, 9);
        let p = b.build().unwrap();
        assert_eq!(p.route(c0, c1).unwrap(), &[direct]);
    }

    #[test]
    fn bottleneck_breaks_hop_ties() {
        // Two parallel direct links: the wider one is chosen.
        let mut b = PlatformBuilder::new();
        let c0 = b.add_cluster(100.0, 10.0);
        let c1 = b.add_cluster(100.0, 10.0);
        let _narrow = b.connect_clusters(c0, c1, 2.0, 1);
        let wide = b.connect_clusters(c0, c1, 9.0, 1);
        let p = b.build().unwrap();
        assert_eq!(p.route(c0, c1).unwrap(), &[wide]);
    }

    #[test]
    fn explicit_route_overrides_shortest_path() {
        let mut b = PlatformBuilder::new();
        let c0 = b.add_cluster(100.0, 10.0);
        let c1 = b.add_cluster(100.0, 10.0);
        let direct = b.connect_clusters(c0, c1, 5.0, 1);
        let relay = b.add_router();
        let la = b.add_backbone(RouterId(0), relay, 3.0, 2);
        let lb = b.add_backbone(relay, RouterId(1), 3.0, 2);
        b.set_route(c0, c1, vec![la, lb]);
        let p = b.build().unwrap();
        assert_eq!(p.route(c0, c1).unwrap(), &[la, lb]);
        // Reverse direction still uses the shortest path.
        assert_eq!(p.route(c1, c0).unwrap(), &[direct]);
    }

    #[test]
    fn clusters_on_same_router_get_empty_route() {
        let mut b = PlatformBuilder::new();
        let r = b.add_router();
        let c0 = b.add_cluster_at(100.0, 10.0, r);
        let c1 = b.add_cluster_at(100.0, 10.0, r);
        let p = b.build().unwrap();
        let route = p.route(c0, c1).unwrap();
        assert!(route.is_empty());
        assert_eq!(p.route_bottleneck_bw(c0, c1), Some(f64::INFINITY));
    }

    #[test]
    fn invalid_explicit_route_rejected() {
        let mut b = PlatformBuilder::new();
        let c0 = b.add_cluster(100.0, 10.0);
        let c1 = b.add_cluster(100.0, 10.0);
        let c2 = b.add_cluster(100.0, 10.0);
        let _l01 = b.connect_clusters(c0, c1, 5.0, 1);
        let l12 = b.connect_clusters(c1, c2, 5.0, 1);
        // l12 does not touch C0's router.
        b.set_route(c0, c1, vec![l12]);
        assert!(matches!(
            b.build(),
            Err(PlatformError::BrokenRoute { from: 0, to: 1, .. })
        ));
    }
}
