//! Graphviz (DOT) export of platform topologies.
//!
//! `dot -Tsvg platform.dot -o platform.svg` renders the cluster/router/
//! backbone structure of Figure 1 for any [`Platform`], with capacities on
//! the labels. Handy when debugging generated topologies or documenting a
//! deployment.

use crate::model::Platform;
use std::fmt::Write as _;

/// Renders the platform as a Graphviz `graph` (undirected).
///
/// * clusters: boxes labelled `C{k} s=…, g=…`, connected to their router by
///   a bold edge (the local link);
/// * routers: small circles `R{i}`;
/// * backbone links: edges labelled `bw×maxcon`.
pub fn to_dot(platform: &Platform) -> String {
    let mut out = String::from("graph platform {\n  layout=neato;\n  overlap=false;\n");
    for (i, c) in platform.clusters.iter().enumerate() {
        let _ = writeln!(
            out,
            "  c{i} [shape=box, style=filled, fillcolor=lightblue, \
             label=\"C{i}\\ns={:.0} g={:.0}\"];",
            c.speed, c.local_bw
        );
    }
    for r in 0..platform.num_routers {
        let _ = writeln!(
            out,
            "  r{r} [shape=circle, width=0.25, fixedsize=true, label=\"R{r}\"];"
        );
    }
    for (i, c) in platform.clusters.iter().enumerate() {
        let _ = writeln!(out, "  c{i} -- r{} [style=bold];", c.router.index());
    }
    for l in &platform.links {
        let _ = writeln!(
            out,
            "  r{} -- r{} [label=\"{:.0}x{}\"];",
            l.from.index(),
            l.to.index(),
            l.bw_per_connection,
            l.max_connections
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlatformBuilder;
    use crate::generator::{PlatformConfig, PlatformGenerator};

    #[test]
    fn dot_contains_every_element() {
        let mut b = PlatformBuilder::new();
        let c0 = b.add_cluster(100.0, 50.0);
        let c1 = b.add_cluster(200.0, 25.0);
        b.connect_clusters(c0, c1, 10.0, 4);
        let dot = to_dot(&b.build().unwrap());
        assert!(dot.starts_with("graph platform {"));
        assert!(dot.contains("c0 [shape=box"));
        assert!(dot.contains("s=100 g=50"));
        assert!(dot.contains("c1 -- r1"));
        assert!(dot.contains("label=\"10x4\""));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_scales_to_generated_platforms() {
        let cfg = PlatformConfig {
            num_clusters: 12,
            connectivity: 0.5,
            ..PlatformConfig::default()
        };
        let p = PlatformGenerator::new(1).generate(&cfg);
        let dot = to_dot(&p);
        // One node line per cluster and per router, one edge per link plus
        // one local-link edge per cluster.
        assert_eq!(dot.matches("shape=box").count(), 12);
        assert_eq!(dot.matches("shape=circle").count(), p.num_routers);
        assert_eq!(dot.matches(" -- ").count(), p.links.len() + 12);
    }
}
