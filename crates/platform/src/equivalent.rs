//! Cluster → equivalent-processor reduction from divisible-load theory.
//!
//! §2 of the paper collapses every cluster to a single processor: *“It is
//! known that `C^k_master` and the leaf processors are together ‘equivalent’
//! to a single processor whose speed `s_k` can be determined by classical
//! formulas from divisible load theory”* (citing Robertazzi's processor
//! equivalence, Bataineh et al.'s bus/tree closed forms and Banino et al.'s
//! steady-state master–worker results), and likewise for tree-structured
//! local networks.
//!
//! This module implements the collapse for steady-state throughput, in the
//! two classical communication models:
//!
//! * **Bounded multiport** ([`EquivalentModel::BoundedMultiport`]) — the
//!   front-end can drive all workers concurrently; each worker `i` is
//!   limited by its link `min(bw_i, s_i)` and the front-end's aggregate
//!   egress `B` caps the total shipped work. This matches this paper's own
//!   fluid local-link model and is the default.
//! * **One-port** ([`EquivalentModel::OnePort`]) — the front-end serialises
//!   communication: worker `i` occupies the port for a fraction `α_i/bw_i`
//!   of each time unit, so `Σ α_i/bw_i ≤ 1`. The optimal policy is the
//!   classical bandwidth-ordered greedy (serve fastest links first), as in
//!   Banino et al. / Beaumont et al.
//!
//! Trees reduce bottom-up: a subtree's equivalent speed becomes the worker
//! speed its parent sees.

use serde::{Deserialize, Serialize};

/// A leaf worker inside a cluster: its computing speed and the bandwidth of
/// its private link to the front-end (or to its parent, for trees).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Worker {
    /// Computing speed (load units per time unit).
    pub speed: f64,
    /// Link bandwidth from the parent (load units per time unit).
    pub link_bw: f64,
}

/// Communication capability of a front-end processor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EquivalentModel {
    /// Concurrent sends, with an aggregate egress cap (`f64::INFINITY` for
    /// uncapped).
    BoundedMultiport {
        /// Total outgoing bandwidth of the front-end.
        egress: f64,
    },
    /// Serialised sends: at most one worker receives at a time (fluidly,
    /// `Σ α_i / bw_i ≤ 1`).
    OnePort,
}

/// Steady-state equivalent speed of a star: front-end of speed
/// `master_speed` plus `workers`, under `model`.
///
/// The returned value is the maximum sustainable load per time unit,
/// suitable as the `s_k` of a collapsed [`crate::Cluster`].
///
/// ```
/// use dls_platform::equivalent::{star_equivalent_speed, EquivalentModel, Worker};
/// let workers = [
///     Worker { speed: 10.0, link_bw: 5.0 },   // link-bound → 5
///     Worker { speed: 3.0, link_bw: 8.0 },    // cpu-bound  → 3
/// ];
/// let s = star_equivalent_speed(2.0, &workers,
///     EquivalentModel::BoundedMultiport { egress: f64::INFINITY });
/// assert_eq!(s, 10.0); // 2 + 5 + 3
/// ```
pub fn star_equivalent_speed(master_speed: f64, workers: &[Worker], model: EquivalentModel) -> f64 {
    match model {
        EquivalentModel::BoundedMultiport { egress } => {
            // Each worker sustains min(speed, link); the total shipped work
            // cannot exceed the egress cap; the master adds its own speed.
            let shipped: f64 = workers
                .iter()
                .map(|w| w.speed.min(w.link_bw))
                .sum::<f64>()
                .min(egress);
            master_speed + shipped
        }
        EquivalentModel::OnePort => {
            // Serve workers in decreasing link bandwidth; worker i can absorb
            // α_i ≤ speed_i but costs α_i/bw_i of port time. Classical
            // exchange argument: saturating faster links first is optimal.
            let mut ws: Vec<&Worker> = workers.iter().collect();
            ws.sort_by(|a, b| b.link_bw.total_cmp(&a.link_bw));
            let mut port_left = 1.0f64;
            let mut total = master_speed;
            for w in ws {
                if port_left <= 0.0 || w.link_bw <= 0.0 {
                    break;
                }
                // Shipping α takes α/bw port time; the most we can ship is
                // min(speed, port_left·bw).
                let alpha = w.speed.min(port_left * w.link_bw);
                total += alpha;
                port_left -= alpha / w.link_bw;
            }
            total
        }
    }
}

/// A tree-structured local network: a node computes at `speed` and reaches
/// its children over their respective `link_bw`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeNode {
    /// Computing speed of this node.
    pub speed: f64,
    /// Children with the bandwidth of the link leading to them.
    pub children: Vec<(f64, TreeNode)>,
}

impl TreeNode {
    /// A leaf node.
    pub fn leaf(speed: f64) -> Self {
        TreeNode {
            speed,
            children: Vec::new(),
        }
    }

    /// Equivalent steady-state speed of the subtree rooted here, under
    /// `model` applied at every internal node (Bataineh/Barlas-style
    /// bottom-up collapse: each child subtree first reduces to an
    /// equivalent worker, then the node reduces as a star).
    pub fn equivalent_speed(&self, model: EquivalentModel) -> f64 {
        let workers: Vec<Worker> = self
            .children
            .iter()
            .map(|(bw, child)| Worker {
                speed: child.equivalent_speed(model),
                link_bw: *bw,
            })
            .collect();
        star_equivalent_speed(self.speed, &workers, model)
    }

    /// Number of processors in the subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(|(_, c)| c.size()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MP_INF: EquivalentModel = EquivalentModel::BoundedMultiport {
        egress: f64::INFINITY,
    };

    #[test]
    fn multiport_sums_minima() {
        let ws = [
            Worker {
                speed: 4.0,
                link_bw: 10.0,
            },
            Worker {
                speed: 9.0,
                link_bw: 2.0,
            },
        ];
        assert_eq!(star_equivalent_speed(1.0, &ws, MP_INF), 1.0 + 4.0 + 2.0);
    }

    #[test]
    fn multiport_egress_caps_total() {
        let ws = [
            Worker {
                speed: 10.0,
                link_bw: 10.0,
            },
            Worker {
                speed: 10.0,
                link_bw: 10.0,
            },
        ];
        let s = star_equivalent_speed(3.0, &ws, EquivalentModel::BoundedMultiport { egress: 12.0 });
        assert_eq!(s, 3.0 + 12.0);
    }

    #[test]
    fn oneport_serialises_port_time() {
        // Two workers, both cpu speed 6, links 12 and 4.
        // Fast link first: ship 6, uses 0.5 port. Remaining 0.5 port on
        // bw 4 ships 2. Total = master 0 + 6 + 2 = 8.
        let ws = [
            Worker {
                speed: 6.0,
                link_bw: 12.0,
            },
            Worker {
                speed: 6.0,
                link_bw: 4.0,
            },
        ];
        let s = star_equivalent_speed(0.0, &ws, EquivalentModel::OnePort);
        assert!((s - 8.0).abs() < 1e-12);
    }

    #[test]
    fn oneport_never_exceeds_multiport() {
        let ws = [
            Worker {
                speed: 5.0,
                link_bw: 3.0,
            },
            Worker {
                speed: 2.0,
                link_bw: 9.0,
            },
            Worker {
                speed: 7.0,
                link_bw: 1.0,
            },
        ];
        let one = star_equivalent_speed(2.0, &ws, EquivalentModel::OnePort);
        let multi = star_equivalent_speed(2.0, &ws, MP_INF);
        assert!(one <= multi + 1e-12);
    }

    #[test]
    fn zero_bandwidth_worker_contributes_nothing() {
        let ws = [Worker {
            speed: 100.0,
            link_bw: 0.0,
        }];
        assert_eq!(star_equivalent_speed(1.0, &ws, MP_INF), 1.0);
        assert_eq!(
            star_equivalent_speed(1.0, &ws, EquivalentModel::OnePort),
            1.0
        );
    }

    #[test]
    fn tree_reduces_bottom_up() {
        // root(1) ─8→ mid(2) ─3→ leaf(10)
        // leaf equivalent: 10; mid as star: 2 + min(10, 3) = 5;
        // root: 1 + min(5, 8) = 6.
        let tree = TreeNode {
            speed: 1.0,
            children: vec![(
                8.0,
                TreeNode {
                    speed: 2.0,
                    children: vec![(3.0, TreeNode::leaf(10.0))],
                },
            )],
        };
        assert_eq!(tree.equivalent_speed(MP_INF), 6.0);
        assert_eq!(tree.size(), 3);
    }

    #[test]
    fn star_is_special_case_of_tree() {
        let workers = [
            Worker {
                speed: 4.0,
                link_bw: 2.0,
            },
            Worker {
                speed: 1.0,
                link_bw: 9.0,
            },
        ];
        let tree = TreeNode {
            speed: 3.0,
            children: workers
                .iter()
                .map(|w| (w.link_bw, TreeNode::leaf(w.speed)))
                .collect(),
        };
        assert_eq!(
            tree.equivalent_speed(MP_INF),
            star_equivalent_speed(3.0, &workers, MP_INF)
        );
    }
}
