#![warn(missing_docs)]

//! # dls-platform — the realistic Grid platform model of §2
//!
//! The paper models a large-scale platform as a collection of `K` clusters
//! scattered over the internet:
//!
//! * every cluster `C^k` is collapsed — by classical divisible-load-theory
//!   equivalence results — to a single *equivalent processor* of cumulated
//!   speed `s_k` (the collapse itself is implemented in [`equivalent`]);
//! * the cluster's front-end reaches its site router through a **local
//!   link** of capacity `g_k`, shared fluidly by all flows entering and
//!   leaving the cluster;
//! * routers are interconnected by an arbitrary graph of **backbone
//!   links**; a backbone link `l` grants *each* connection a fixed bandwidth
//!   `bw(l)` — the wide-area TCP sharing behaviour exploited by GridFTP-style
//!   parallel streams — up to a cap of `max-connect(l)` simultaneous
//!   connections;
//! * routing between clusters is **fixed**: `L_{k,l}` is an ordered list of
//!   backbone links (computed here by fewest-hops shortest paths with a
//!   widest-bottleneck tie-break, or supplied explicitly).
//!
//! [`Platform`] is the immutable validated model, [`PlatformBuilder`]
//! constructs arbitrary topologies, and [`generator`] samples the random
//! platforms of the paper's evaluation (Table 1 parameter grid).
//!
//! ```
//! use dls_platform::PlatformBuilder;
//!
//! let mut b = PlatformBuilder::new();
//! let c0 = b.add_cluster(100.0, 50.0);   // speed s_0, local link g_0
//! let c1 = b.add_cluster(200.0, 40.0);
//! b.connect_clusters(c0, c1, 10.0, 4);   // bw per connection, max-connect
//! let p = b.build().unwrap();
//! assert_eq!(p.route(c0, c1).unwrap().len(), 1);
//! assert_eq!(p.route_bottleneck_bw(c0, c1), Some(10.0));
//! ```

pub mod builder;
pub mod dot;
pub mod equivalent;
pub mod generator;
pub mod model;
pub mod stats;

pub use builder::PlatformBuilder;
pub use dot::to_dot;
pub use equivalent::{star_equivalent_speed, EquivalentModel, TreeNode, Worker};
pub use generator::{ParameterGrid, PlatformConfig, PlatformGenerator};
pub use model::{BackboneLink, Cluster, ClusterId, LinkId, Platform, PlatformError, RouterId};
pub use stats::PlatformStats;
