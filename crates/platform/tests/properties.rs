//! Property tests for platform generation, routing and statistics.

use dls_platform::{Platform, PlatformConfig, PlatformGenerator, PlatformStats};
use proptest::prelude::*;
use std::collections::VecDeque;

fn arb_config() -> impl Strategy<Value = PlatformConfig> {
    (
        2usize..20,
        0.0f64..=1.0,
        prop_oneof![Just(0.2), Just(0.4), Just(0.6), Just(0.8)],
        10.0f64..500.0,
        5.0f64..100.0,
        2.0f64..100.0,
        0usize..4,
    )
        .prop_map(|(k, conn, het, g, bw, mc, relays)| PlatformConfig {
            num_clusters: k,
            connectivity: conn,
            heterogeneity: het,
            mean_local_bw: g,
            mean_backbone_bw: bw,
            mean_max_connections: mc,
            speed: 100.0,
            relay_routers: relays,
        })
}

/// Reference BFS hop-distance between two routers, ignoring tie-breaks.
fn bfs_hops(p: &Platform, from: usize, to: usize) -> Option<usize> {
    let src = p.clusters[from].router;
    let dst = p.clusters[to].router;
    let mut dist = vec![usize::MAX; p.num_routers];
    let mut q = VecDeque::new();
    dist[src.index()] = 0;
    q.push_back(src);
    while let Some(r) = q.pop_front() {
        for l in &p.links {
            if let Some(next) = l.opposite(r) {
                if dist[next.index()] == usize::MAX {
                    dist[next.index()] = dist[r.index()] + 1;
                    q.push_back(next);
                }
            }
        }
    }
    (dist[dst.index()] != usize::MAX).then_some(dist[dst.index()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_platforms_validate(cfg in arb_config(), seed in 0u64..1000) {
        let p = PlatformGenerator::new(seed).generate(&cfg);
        prop_assert!(p.validate().is_ok());
        prop_assert_eq!(p.num_clusters(), cfg.num_clusters);
    }

    #[test]
    fn route_existence_is_symmetric(cfg in arb_config(), seed in 0u64..1000) {
        let p = PlatformGenerator::new(seed).generate(&cfg);
        for a in p.cluster_ids() {
            for b in p.cluster_ids() {
                if a != b {
                    prop_assert_eq!(
                        p.route(a, b).is_some(),
                        p.route(b, a).is_some(),
                        "asymmetric reachability {}↔{}", a, b
                    );
                }
            }
        }
    }

    #[test]
    fn routes_are_minimum_hop(cfg in arb_config(), seed in 0u64..1000) {
        let p = PlatformGenerator::new(seed).generate(&cfg);
        let k = p.num_clusters();
        for from in 0..k {
            for to in 0..k {
                if from == to { continue; }
                let stored = p.route(
                    dls_platform::ClusterId(from as u32),
                    dls_platform::ClusterId(to as u32),
                );
                match bfs_hops(&p, from, to) {
                    None => prop_assert!(stored.is_none()),
                    Some(h) => {
                        let stored = stored.expect("reachable pair must have a route");
                        prop_assert_eq!(stored.len(), h,
                            "route C{}→C{} has {} hops, BFS found {}",
                            from, to, stored.len(), h);
                    }
                }
            }
        }
    }

    #[test]
    fn json_round_trip_preserves_routes(cfg in arb_config(), seed in 0u64..1000) {
        let p = PlatformGenerator::new(seed).generate(&cfg);
        let q = Platform::from_json(&p.to_json()).unwrap();
        prop_assert_eq!(p.routes, q.routes);
        prop_assert_eq!(p.links.len(), q.links.len());
    }

    #[test]
    fn stats_are_within_bounds(cfg in arb_config(), seed in 0u64..1000) {
        let p = PlatformGenerator::new(seed).generate(&cfg);
        let s = PlatformStats::compute(&p);
        prop_assert!((0.0..=1.0).contains(&s.reachable_fraction));
        prop_assert!(s.mean_route_len >= 0.0);
        prop_assert!(s.max_route_len <= p.num_routers.max(1));
        prop_assert!((s.total_speed - 100.0 * cfg.num_clusters as f64).abs() < 1e-9);
    }

    #[test]
    fn relay_routers_do_not_change_reachability(
        k in 3usize..10, seed in 0u64..500, relays in 1usize..6,
    ) {
        let base = PlatformConfig {
            num_clusters: k,
            connectivity: 0.7,
            relay_routers: 0,
            ..PlatformConfig::default()
        };
        let with_relays = PlatformConfig { relay_routers: relays, ..base.clone() };
        // Same seed: identical base topology before relay insertion (relay
        // randomness is drawn after the topology stream).
        let p0 = PlatformGenerator::new(seed).generate(&base);
        let p1 = PlatformGenerator::new(seed).generate(&with_relays);
        prop_assert_eq!(
            p0.routed_pairs().len(),
            p1.routed_pairs().len(),
            "relay insertion changed reachability"
        );
    }
}
