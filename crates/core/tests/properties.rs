//! Property tests for the scheduling core: every heuristic must produce a
//! valid allocation on arbitrary random platforms, dominance relations must
//! hold, and schedule reconstruction must preserve feasibility.

use dls_core::heuristics::{ExactMilp, Greedy, Heuristic, Lpr, Lprg, Lprr, UpperBound};
use dls_core::schedule::ScheduleBuilder;
use dls_core::{adaptive, LpFormulation, Objective, ProblemInstance};
use dls_lp::{solve_auto, RevisedSimplex, Status, WarmSimplex};
use dls_platform::{ClusterId, PlatformConfig, PlatformGenerator};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

#[derive(Debug, Clone)]
struct ArbInstance {
    inst: ProblemInstance,
    seed: u64,
}

fn arb_instance(max_k: usize) -> impl Strategy<Value = ArbInstance> {
    (
        2usize..=max_k,
        0.0f64..=1.0,
        prop_oneof![Just(0.2), Just(0.4), Just(0.6), Just(0.8)],
        prop_oneof![Just(50.0), Just(250.0), Just(450.0)],
        10.0f64..90.0,
        2.0f64..40.0,
        0u64..10_000,
        prop_oneof![Just(Objective::Sum), Just(Objective::MaxMin)],
        0.0f64..1.0, // fraction of zero-payoff apps
    )
        .prop_map(|(k, conn, het, g, bw, mc, seed, objective, zero_frac)| {
            let cfg = PlatformConfig {
                num_clusters: k,
                connectivity: conn,
                heterogeneity: het,
                mean_local_bw: g,
                mean_backbone_bw: bw,
                mean_max_connections: mc,
                speed: 100.0,
                relay_routers: 0,
            };
            let platform = PlatformGenerator::new(seed).generate(&cfg);
            // Deterministic payoff pattern with some zero-payoff apps,
            // but always at least one active application.
            let payoffs: Vec<f64> = (0..k)
                .map(|i| {
                    if i > 0 && (i as f64 / k as f64) < zero_frac {
                        0.0
                    } else {
                        1.0 + (i % 3) as f64
                    }
                })
                .collect();
            let inst = ProblemInstance::new(platform, payoffs, objective).unwrap();
            ArbInstance { inst, seed }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn greedy_always_valid(a in arb_instance(10)) {
        let alloc = Greedy::default().solve(&a.inst).unwrap();
        prop_assert!(alloc.validate(&a.inst).is_ok(), "{:?}", alloc.violations(&a.inst));
    }

    #[test]
    fn lpr_and_lprg_always_valid_and_ordered(a in arb_instance(8)) {
        let lpr = Lpr::default().solve(&a.inst).unwrap();
        let lprg = Lprg::default().solve(&a.inst).unwrap();
        prop_assert!(lpr.validate(&a.inst).is_ok(), "{:?}", lpr.violations(&a.inst));
        prop_assert!(lprg.validate(&a.inst).is_ok(), "{:?}", lprg.violations(&a.inst));
        let (v_lpr, v_lprg) = (lpr.objective_value(&a.inst), lprg.objective_value(&a.inst));
        prop_assert!(v_lprg >= v_lpr - 1e-6 * (1.0 + v_lpr.abs()),
            "LPRG {v_lprg} < LPR {v_lpr}");
    }

    #[test]
    fn all_heuristics_below_upper_bound(a in arb_instance(7)) {
        let ub = UpperBound::default().bound(&a.inst).unwrap();
        let g = Greedy::default().solve(&a.inst).unwrap().objective_value(&a.inst);
        let lprg = Lprg::default().solve(&a.inst).unwrap().objective_value(&a.inst);
        let slack = 1e-5 * (1.0 + ub.abs());
        prop_assert!(g <= ub + slack, "G {g} above LP bound {ub}");
        prop_assert!(lprg <= ub + slack, "LPRG {lprg} above LP bound {ub}");
    }

    #[test]
    fn lprr_valid_and_bounded(a in arb_instance(5)) {
        let alloc = Lprr::new(a.seed).solve(&a.inst).unwrap();
        prop_assert!(alloc.validate(&a.inst).is_ok(), "{:?}", alloc.violations(&a.inst));
        let ub = UpperBound::default().bound(&a.inst).unwrap();
        let v = alloc.objective_value(&a.inst);
        prop_assert!(v <= ub + 1e-5 * (1.0 + ub.abs()), "LPRR {v} above bound {ub}");
    }

    #[test]
    fn schedules_reconstruct_for_every_heuristic(a in arb_instance(6)) {
        let builder = ScheduleBuilder::default();
        for alloc in [
            Greedy::default().solve(&a.inst).unwrap(),
            Lprg::default().solve(&a.inst).unwrap(),
        ] {
            let s = builder.build(&a.inst, &alloc).unwrap();
            prop_assert!(s.validate(&a.inst).is_ok());
            // Per-app throughput loss bounded by K/D.
            let bound = a.inst.num_apps() as f64 / builder.denominator as f64;
            for (orig, rec) in alloc.throughputs().iter().zip(s.throughputs()) {
                prop_assert!(orig - rec >= -1e-9);
                prop_assert!(orig - rec <= bound + 1e-9, "loss {}", orig - rec);
            }
        }
    }

    #[test]
    fn scale_to_fit_always_valid(a in arb_instance(7), factor in 0.3f64..1.0) {
        let alloc = Greedy::default().solve(&a.inst).unwrap();
        // Shrink the platform and refit.
        let mut harsher = a.inst.clone();
        for c in harsher.platform.clusters.iter_mut() {
            c.speed *= factor;
            c.local_bw *= factor;
        }
        let (scaled, gamma) = adaptive::scale_to_fit(&alloc, &harsher);
        prop_assert!((0.0..=1.0).contains(&gamma));
        prop_assert!(scaled.validate(&harsher).is_ok(), "{:?}", scaled.violations(&harsher));
        prop_assert!(gamma >= factor - 1e-9, "gamma {gamma} below uniform factor {factor}");
    }
}

/// Replays a random LPRR-style pin sequence through the warm pipeline
/// (`relaxation_warm` + `pin_beta` deltas + `WarmSimplex`) and asserts that
/// every warm solve matches a cold `relaxation_with_fixed` rebuild: same
/// status, same objective, and a basic solution feasible for the patched
/// model. The same budget discipline as `Lprr` keeps every step feasible.
fn replay_pins_warm_vs_cold(inst: &ProblemInstance, seed: u64, max_pins: usize) {
    let p = &inst.platform;
    let k = p.num_clusters();
    let mut f = LpFormulation::relaxation_warm(inst).unwrap();
    let mut warm = WarmSimplex::new(f.model.clone(), RevisedSimplex::default()).unwrap();
    warm.check_against_cold = true; // internal same-model oracle
    let mut fixed: Vec<Option<u32>> = vec![None; k * k];
    let mut budgets: Vec<i64> = p.links.iter().map(|l| l.max_connections as i64).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut pinnable: Vec<(ClusterId, ClusterId)> = Vec::new();
    for from in p.cluster_ids() {
        for to in p.cluster_ids() {
            if from != to
                && p.route_bottleneck_bw(from, to)
                    .is_some_and(|bw| bw.is_finite())
            {
                pinnable.push((from, to));
            }
        }
    }

    for _ in 0..=max_pins {
        // Warm solve vs cold rebuild of the fixed-β relaxation.
        let sol = warm.solve().unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!(
            warm.model().check_feasible(&sol.values, 1e-6).is_ok(),
            "{:?}",
            warm.model().check_feasible(&sol.values, 1e-6)
        );
        let cold_f = LpFormulation::relaxation_with_fixed(inst, &fixed).unwrap();
        let cold = solve_auto(&cold_f.model).unwrap();
        assert_eq!(cold.status, Status::Optimal);
        assert!(
            (sol.objective - cold.objective).abs() <= 1e-5 * (1.0 + cold.objective.abs()),
            "warm {} vs cold {} after {} pins",
            sol.objective,
            cold.objective,
            fixed.iter().flatten().count()
        );

        if pinnable.is_empty() {
            break;
        }
        let (from, to) = pinnable.swap_remove(rng.gen_range(0..pinnable.len()));
        let route = p.route(from, to).expect("pinnable pair has a route");
        let budget = route
            .iter()
            .map(|l| budgets[l.index()])
            .min()
            .unwrap_or(0)
            .max(0);
        let v = rng.gen_range(0..=budget.min(3)) as u32;
        fixed[from.index() * k + to.index()] = Some(v);
        for l in route {
            budgets[l.index()] -= v as i64;
        }
        let delta = f.pin_beta(inst, from, to, v).unwrap();
        warm.set_var_bounds(delta.var, delta.lo, delta.up).unwrap();
        for &(con, var) in &delta.coef_zeroed {
            warm.set_coefficient(con, var, 0.0).unwrap();
        }
        for &(con, rhs) in &delta.rhs {
            warm.set_rhs(con, rhs).unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn lprr_pin_replay_warm_matches_cold(a in arb_instance(6), seed in 0u64..10_000) {
        // `arb_instance` draws both steady-state models (SUM and MAXMIN)
        // and heterogeneous platform shapes.
        replay_pins_warm_vs_cold(&a.inst, seed, 12);
    }

    #[test]
    fn lprr_pin_replay_with_relay_routers(
        k in 3usize..6,
        relays in 1usize..3,
        seed in 0u64..10_000,
        objective in prop_oneof![Just(Objective::Sum), Just(Objective::MaxMin)],
    ) {
        // Relay-router platforms have multi-hop routes, so one pin touches
        // several (7d) rows at once.
        let cfg = PlatformConfig {
            num_clusters: k,
            connectivity: 0.5,
            relay_routers: relays,
            ..PlatformConfig::default()
        };
        let platform = PlatformGenerator::new(seed).generate(&cfg);
        let inst = ProblemInstance::uniform(platform, objective);
        replay_pins_warm_vs_cold(&inst, seed ^ 0xdead_beef, 10);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `scale_to_fit`: on any drifted platform, the γ-scaled allocation is
    /// always feasible, γ stays in [0, 1], and an undrifted platform keeps
    /// γ = 1 (the allocation untouched).
    #[test]
    fn scale_to_fit_is_always_feasible(
        a in arb_instance(8),
        speed_f in proptest::collection::vec(0.0f64..3.0, 8),
        local_f in proptest::collection::vec(0.05f64..3.0, 8),
        bw_f in proptest::collection::vec(0.05f64..3.0, 16),
        conn_f in proptest::collection::vec(0.0f64..2.0, 16),
    ) {
        let alloc = Greedy::default().solve(&a.inst).unwrap();

        // Identity: no drift → γ = 1 (up to the float noise of ratios that
        // sit exactly at capacity) and the allocation survives as-is.
        let (same, gamma) = adaptive::scale_to_fit(&alloc, &a.inst);
        prop_assert!((gamma - 1.0).abs() < 1e-9, "undrifted γ = {gamma}");
        prop_assert_eq!(&same.beta, &alloc.beta);
        for (s, o) in same.alpha.iter().zip(&alloc.alpha) {
            prop_assert!((s - o).abs() <= 1e-9 * (1.0 + o.abs()));
        }

        // Arbitrary multiplicative drift, including outright outages
        // (speed factor 0) and connection-cap cuts.
        let mut drifted = a.inst.clone();
        for (i, c) in drifted.platform.clusters.iter_mut().enumerate() {
            c.speed *= speed_f[i % speed_f.len()];
            c.local_bw *= local_f[i % local_f.len()];
        }
        for (i, l) in drifted.platform.links.iter_mut().enumerate() {
            l.bw_per_connection *= bw_f[i % bw_f.len()];
            l.max_connections =
                ((l.max_connections as f64) * conn_f[i % conn_f.len()]) as u32;
        }
        let (scaled, gamma) = adaptive::scale_to_fit(&alloc, &drifted);
        prop_assert!((0.0..=1.0).contains(&gamma), "γ = {gamma}");
        prop_assert!(scaled.validate(&drifted).is_ok(),
            "γ = {gamma} left violations: {:?}", scaled.violations(&drifted));
        // Either the whole allocation was dropped (the unscalable (7d)
        // gate failed), or the scaling is exactly uniform on α with β
        // untouched.
        if scaled.beta == alloc.beta {
            for (s, o) in scaled.alpha.iter().zip(&alloc.alpha) {
                prop_assert!((s - gamma * o).abs() <= 1e-12 * (1.0 + o.abs()));
            }
        } else {
            prop_assert_eq!(&scaled, &dls_core::Allocation::zeros(a.inst.num_apps()));
            prop_assert_eq!(gamma, 0.0);
        }
    }
}

proptest! {
    // The exact solver is expensive: fewer, smaller cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn exact_dominates_heuristics(a in arb_instance(4)) {
        let exact = ExactMilp::default().solve(&a.inst).unwrap();
        prop_assert!(exact.validate(&a.inst).is_ok());
        let opt = exact.objective_value(&a.inst);
        let ub = UpperBound::default().bound(&a.inst).unwrap();
        prop_assert!(opt <= ub + 1e-5 * (1.0 + ub.abs()));
        for h in [&Greedy::default() as &dyn Heuristic, &Lprg::default()] {
            let v = h.solve(&a.inst).unwrap().objective_value(&a.inst);
            prop_assert!(v <= opt + 1e-5 * (1.0 + opt.abs()),
                "{} {v} beats exact {opt}", h.name());
        }
    }
}
