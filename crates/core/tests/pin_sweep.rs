//! Bit-identity and cross-engine tests for the parallel pin sweep and the
//! sparse-vs-dense LPRR replay (ISSUE 9 satellite coverage).

use dls_core::heuristics::{Heuristic, Lprr};
use dls_core::{Objective, ProblemInstance};
use dls_lp::Engine;
use dls_platform::{PlatformConfig, PlatformGenerator};
use proptest::prelude::*;

fn instance(seed: u64, k: usize, connectivity: f64, objective: Objective) -> ProblemInstance {
    let cfg = PlatformConfig {
        num_clusters: k,
        connectivity,
        ..PlatformConfig::default()
    };
    let p = PlatformGenerator::new(seed).generate(&cfg);
    ProblemInstance::uniform(p, objective)
}

/// `a` and `b` must be the same f64 bit for bit (NaN-safe).
fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tentpole invariant: the sharded sweep is bit-identical to the
    /// sequential sweep — probe objectives, winner, and the canonical
    /// stage-2 vertex — for any thread count and probe cap.
    #[test]
    fn sharded_sweep_bit_identical_to_sequential(
        seed in 0u64..64,
        k in 4usize..7,
        threads in 2usize..5,
        max_probes in prop_oneof![Just(0usize), Just(5usize), Just(64usize)],
        maxmin in proptest::bool::ANY,
    ) {
        let objective = if maxmin { Objective::MaxMin } else { Objective::Sum };
        let inst = instance(seed, k, 0.6, objective);
        let sequential = Lprr { threads: 1, ..Lprr::new(seed) }
            .pin_sweep(&inst, max_probes)
            .unwrap();
        let sharded = Lprr { threads, ..Lprr::new(seed) }
            .pin_sweep(&inst, max_probes)
            .unwrap();

        prop_assert_eq!(sequential.probes.len(), sharded.probes.len());
        for (s, p) in sequential.probes.iter().zip(&sharded.probes) {
            prop_assert_eq!(s.from, p.from);
            prop_assert_eq!(s.to, p.to);
            prop_assert_eq!(s.v, p.v);
            prop_assert!(
                bits_eq(s.objective, p.objective),
                "probe ({:?}→{:?}): {} vs {}", s.from, s.to, s.objective, p.objective
            );
        }
        prop_assert_eq!(sequential.best, sharded.best);
        prop_assert!(bits_eq(sequential.base_objective, sharded.base_objective));
        prop_assert!(bits_eq(sequential.best_objective, sharded.best_objective));
        prop_assert_eq!(sequential.stage2_values.len(), sharded.stage2_values.len());
        for (i, (a, b)) in sequential
            .stage2_values
            .iter()
            .zip(&sharded.stage2_values)
            .enumerate()
        {
            prop_assert!(bits_eq(*a, *b), "stage-2 value {i}: {a} vs {b}");
        }
    }

    /// Satellite invariant: replaying LPRR with the warm pipeline over the
    /// sparse-capable solver agrees with the cold dense-engine reference on
    /// both objectives — same seed, same rounding draws, same allocation
    /// objective (the LP optima agree, so the pinned sequences coincide).
    #[test]
    fn warm_sparse_replay_matches_cold_dense(seed in 0u64..24, maxmin in proptest::bool::ANY) {
        let objective = if maxmin { Objective::MaxMin } else { Objective::Sum };
        let inst = instance(seed, 5, 0.6, objective);
        let warm = Lprr { oracle_check: true, ..Lprr::new(seed) }
            .solve(&inst)
            .unwrap();
        let cold_dense = Lprr {
            engine: Some(Engine::Dense),
            ..Lprr::cold(seed)
        }
        .solve(&inst)
        .unwrap();
        prop_assert!(warm.validate(&inst).is_ok());
        prop_assert!(cold_dense.validate(&inst).is_ok());
        let (a, b) = (warm.objective_value(&inst), cold_dense.objective_value(&inst));
        prop_assert!(
            (a - b).abs() <= 1e-6 * (1.0 + b.abs()),
            "warm {a} vs cold dense {b}"
        );
    }
}

/// The sweep runs (and stays deterministic) when `threads` exceeds both the
/// core count and the probe count, and `resolved_threads` honours the knob.
#[test]
fn sweep_thread_resolution_and_oversubscription() {
    let lprr = Lprr::new(7);
    assert!(lprr.resolved_threads() >= 1);
    assert_eq!(
        Lprr {
            threads: 3,
            ..Lprr::new(7)
        }
        .resolved_threads(),
        3
    );

    let inst = instance(7, 4, 0.7, Objective::MaxMin);
    let few = Lprr {
        threads: 1,
        ..Lprr::new(7)
    }
    .pin_sweep(&inst, 3)
    .unwrap();
    let many = Lprr {
        threads: 16,
        ..Lprr::new(7)
    }
    .pin_sweep(&inst, 3)
    .unwrap();
    assert_eq!(few.probes.len(), many.probes.len());
    assert!(few.probes.len() <= 3);
    assert_eq!(few.best, many.best);
    for (a, b) in few.probes.iter().zip(&many.probes) {
        assert!(bits_eq(a.objective, b.objective));
    }
}
