//! Classical single-load divisible-load theory baselines.
//!
//! The paper builds on two decades of divisible-load theory (its refs
//! [15, 30, 6]): a *single* load `W` distributed from a master over a
//! heterogeneous star, one-port communication, workers computing after
//! fully receiving their chunk, no latencies. This module implements the
//! classical closed forms so the steady-state scheduler can be compared
//! against its intellectual baseline:
//!
//! * [`one_round_makespan`] — the optimal single-round distribution for a
//!   *fixed* activation order (all participating workers finish
//!   simultaneously — the DLT optimality principle);
//! * [`optimal_order`] — the classical result that serving faster *links*
//!   first is optimal (bandwidth-ordered activation);
//! * [`multi_round_makespan`] — an `M`-installment evaluation that overlaps
//!   communication with computation, showing why multi-round schedules beat
//!   single-round ones on communication-bound platforms (and steady-state
//!   scheduling — the paper's regime — is the `M → ∞` limit).
//!
//! Everything here is cross-validated against the LP solver in the tests:
//! the one-round closed form must match the LP `min T` formulation of the
//! same scheduling problem to machine precision.

use crate::error::SolveError;
use dls_lp::{solve_auto, ConstraintOp, Model, Sense, Status};
use dls_platform::Worker;
use serde::{Deserialize, Serialize};

/// Result of a single-load distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Distribution {
    /// Load chunk per worker, in activation order (index into the worker
    /// slice passed in).
    pub chunks: Vec<f64>,
    /// Load kept by the master (0 when the master does not compute).
    pub master_chunk: f64,
    /// Completion time of the whole load.
    pub makespan: f64,
}

/// Optimal one-round chunk sizes for a **fixed activation order**: the
/// master sends `chunks[i]` to `workers[order[i]]` sequentially (one-port);
/// every participating worker finishes at the makespan (DLT optimality
/// principle). A master with `master_speed > 0` computes for the entire
/// makespan. Workers that would only lengthen the schedule receive zero.
pub fn one_round_makespan(
    load: f64,
    master_speed: f64,
    workers: &[Worker],
    order: &[usize],
) -> Distribution {
    assert!(load >= 0.0 && load.is_finite());
    assert_eq!(order.len(), workers.len(), "order must permute the workers");

    // α_i = c_i·T with the recurrences derived from
    //   T = Σ_{j<i} α_j/b_j + α_i·(1/b_i + 1/w_i):
    //   c_i = (1 − σ_i) / (1/b_i + 1/w_i),   σ_{i+1} = σ_i + c_i/b_i,
    // where σ_i·T is the time the port is busy before worker i's send.
    // The master contributes c_m = master_speed.
    let mut coeffs = vec![0.0f64; workers.len()];
    let mut sigma = 0.0f64; // fraction of T the port is busy so far
    let mut total_rate = master_speed.max(0.0);
    for &wi in order {
        let w = &workers[wi];
        if w.link_bw <= 0.0 || w.speed <= 0.0 || sigma >= 1.0 {
            continue; // cannot participate
        }
        let cost = 1.0 / w.link_bw + 1.0 / w.speed;
        let c = (1.0 - sigma) / cost;
        coeffs[wi] = c;
        sigma += c / w.link_bw;
        total_rate += c;
    }
    if total_rate <= 0.0 {
        return Distribution {
            chunks: vec![0.0; workers.len()],
            master_chunk: 0.0,
            makespan: if load > 0.0 { f64::INFINITY } else { 0.0 },
        };
    }
    let makespan = load / total_rate;
    Distribution {
        chunks: coeffs.iter().map(|c| c * makespan).collect(),
        master_chunk: master_speed.max(0.0) * makespan,
        makespan,
    }
}

/// The classical optimal activation order for the latency-free one-port
/// star: **decreasing link bandwidth** (ties broken by higher speed, then
/// index, for determinism).
pub fn optimal_order(workers: &[Worker]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..workers.len()).collect();
    order.sort_by(|&a, &b| {
        workers[b]
            .link_bw
            .total_cmp(&workers[a].link_bw)
            .then(workers[b].speed.total_cmp(&workers[a].speed))
            .then(a.cmp(&b))
    });
    order
}

/// Convenience: optimal one-round distribution (optimal order + closed
/// form).
pub fn one_round_optimal(load: f64, master_speed: f64, workers: &[Worker]) -> Distribution {
    one_round_makespan(load, master_speed, workers, &optimal_order(workers))
}

/// Makespan of an `M`-installment schedule that splits the load into `M`
/// equal rounds distributed with the one-round fractions: communication of
/// round `r+1` overlaps computation of round `r`. Exact discrete-event
/// evaluation (not a closed form — the classical literature derives those
/// only for special cases).
pub fn multi_round_makespan(
    load: f64,
    master_speed: f64,
    workers: &[Worker],
    rounds: usize,
) -> f64 {
    assert!(rounds >= 1);
    let base = one_round_optimal(load / rounds as f64, 0.0, workers);
    if !base.makespan.is_finite() {
        // No worker can participate: the master does everything (or the
        // load is stuck).
        return if master_speed > 0.0 {
            load / master_speed
        } else {
            f64::INFINITY
        };
    }
    let order = optimal_order(workers);
    // Per-round chunk per worker (constant across rounds).
    let chunks = &base.chunks;

    // One-port master: sends proceed round-robin over rounds, in activation
    // order within each round. Worker compute queues drain FIFO.
    let mut port_free = 0.0f64;
    let mut worker_free = vec![0.0f64; workers.len()];
    let mut worker_done = vec![0.0f64; workers.len()];
    for _ in 0..rounds {
        for &wi in &order {
            let chunk = chunks[wi];
            if chunk <= 0.0 {
                continue;
            }
            let w = &workers[wi];
            let send_end = port_free + chunk / w.link_bw;
            port_free = send_end;
            let start = send_end.max(worker_free[wi]);
            let end = start + chunk / w.speed;
            worker_free[wi] = end;
            worker_done[wi] = end;
        }
    }
    let workers_done = worker_done.iter().cloned().fold(0.0f64, f64::max);
    if master_speed > 0.0 {
        // The master computes its share concurrently; balance what it keeps
        // so that it finishes at the workers' makespan, never before the
        // workers' share is fixed. Simplest consistent model: master keeps
        // m = master_speed·T, workers process load − m in time T(load − m)
        // which is proportional to load − m. Solve the 1-D fixed point.
        let worker_rate = (load - 0.0) / workers_done.max(1e-300); // load per time
        let t = load / (worker_rate + master_speed);
        return t;
    }
    workers_done
}

/// LP cross-check: the one-round fixed-order problem as `min T`, solved
/// with the workspace simplex (used by tests; public because it doubles as
/// an example of posing makespan problems with `dls-lp`).
pub fn one_round_makespan_lp(
    load: f64,
    master_speed: f64,
    workers: &[Worker],
    order: &[usize],
) -> Result<Distribution, SolveError> {
    let mut m = Model::new(Sense::Minimize);
    let t = m.add_var("T", 0.0, f64::INFINITY);
    m.set_objective_coef(t, 1.0);
    let alphas: Vec<_> = (0..workers.len())
        .map(|i| m.add_var(format!("a{i}"), 0.0, f64::INFINITY))
        .collect();
    let master = m.add_var("a_master", 0.0, f64::INFINITY);

    // Master computes at most master_speed·T.
    m.add_constraint(
        vec![(master, 1.0), (t, -master_speed.max(0.0))],
        ConstraintOp::Le,
        0.0,
    );
    // Sequential sends: finish_i = Σ_{j≤i} α_j/b_j + α_i/w_i ≤ T.
    let mut prefix: Vec<(dls_lp::VarId, f64)> = Vec::new();
    for &wi in order {
        let w = &workers[wi];
        if w.link_bw <= 0.0 || w.speed <= 0.0 {
            m.set_bounds(alphas[wi], 0.0, 0.0);
            continue;
        }
        prefix.push((alphas[wi], 1.0 / w.link_bw));
        let mut row = prefix.clone();
        row.push((alphas[wi], 1.0 / w.speed));
        row.push((t, -1.0));
        m.add_constraint(row, ConstraintOp::Le, 0.0);
    }
    // All load distributed.
    let mut total: Vec<(dls_lp::VarId, f64)> = alphas.iter().map(|&a| (a, 1.0)).collect();
    total.push((master, 1.0));
    m.add_constraint(total, ConstraintOp::Eq, load);

    let sol = solve_auto(&m)?;
    match sol.status {
        Status::Optimal => Ok(Distribution {
            chunks: alphas.iter().map(|&a| sol[a].max(0.0)).collect(),
            master_chunk: sol[master].max(0.0),
            makespan: sol[t],
        }),
        Status::Infeasible => Err(SolveError::UnexpectedStatus("infeasible")),
        Status::Unbounded => Err(SolveError::UnexpectedStatus("unbounded")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(speed: f64, bw: f64) -> Worker {
        Worker { speed, link_bw: bw }
    }

    #[test]
    fn single_worker_closed_form() {
        // W = 10, b = 5, s = 10: T = 10·(1/5 + 1/10) = 3.
        let d = one_round_optimal(10.0, 0.0, &[w(10.0, 5.0)]);
        assert!((d.makespan - 3.0).abs() < 1e-12);
        assert!((d.chunks[0] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn identical_workers_split_unevenly_due_to_port() {
        // Two identical workers: the first activated computes more (it
        // starts earlier) — the signature of one-port DLT.
        let ws = [w(10.0, 10.0), w(10.0, 10.0)];
        let d = one_round_optimal(30.0, 0.0, &ws);
        assert!(d.chunks[0] > d.chunks[1]);
        assert!((d.chunks.iter().sum::<f64>() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn master_computes_its_share() {
        let ws = [w(10.0, 5.0)];
        let with = one_round_optimal(10.0, 10.0, &ws);
        let without = one_round_optimal(10.0, 0.0, &ws);
        assert!(with.makespan < without.makespan);
        assert!(with.master_chunk > 0.0);
        assert!(
            (with.master_chunk + with.chunks[0] - 10.0).abs() < 1e-9,
            "load conserved"
        );
    }

    #[test]
    fn closed_form_matches_lp() {
        let cases: Vec<Vec<Worker>> = vec![
            vec![w(10.0, 5.0)],
            vec![w(10.0, 10.0), w(20.0, 5.0), w(5.0, 30.0)],
            vec![w(1.0, 100.0), w(100.0, 1.0)],
            vec![w(7.0, 3.0), w(7.0, 3.0), w(7.0, 3.0), w(7.0, 3.0)],
        ];
        for ws in cases {
            let order = optimal_order(&ws);
            for master in [0.0, 4.0] {
                let cf = one_round_makespan(17.0, master, &ws, &order);
                let lp = one_round_makespan_lp(17.0, master, &ws, &order).unwrap();
                assert!(
                    (cf.makespan - lp.makespan).abs() < 1e-7 * (1.0 + cf.makespan),
                    "closed form {} vs LP {} ({ws:?}, master {master})",
                    cf.makespan,
                    lp.makespan
                );
            }
        }
    }

    #[test]
    fn bandwidth_order_is_optimal() {
        // Check all 3! activation orders on an asymmetric star: none beats
        // the bandwidth-descending one.
        let ws = [w(5.0, 2.0), w(5.0, 20.0), w(5.0, 7.0)];
        let best = one_round_optimal(40.0, 0.0, &ws).makespan;
        let perms: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for p in perms {
            let t = one_round_makespan(40.0, 0.0, &ws, &p).makespan;
            assert!(
                best <= t + 1e-9,
                "order {p:?} gives {t}, better than bandwidth order {best}"
            );
        }
    }

    #[test]
    fn zero_bandwidth_workers_excluded() {
        let ws = [w(10.0, 0.0), w(10.0, 5.0)];
        let d = one_round_optimal(10.0, 0.0, &ws);
        assert_eq!(d.chunks[0], 0.0);
        assert!(d.chunks[1] > 0.0);
        assert!(d.makespan.is_finite());
    }

    #[test]
    fn no_participants_infinite_makespan() {
        let d = one_round_optimal(10.0, 0.0, &[w(0.0, 5.0)]);
        assert!(d.makespan.is_infinite());
        assert_eq!(one_round_optimal(0.0, 0.0, &[w(0.0, 5.0)]).makespan, 0.0);
    }

    #[test]
    fn multi_round_beats_single_round_when_comm_bound() {
        // Slow link, fast worker: pipelining rounds hides communication.
        let ws = [w(50.0, 5.0), w(50.0, 5.0)];
        let one = multi_round_makespan(100.0, 0.0, &ws, 1);
        let four = multi_round_makespan(100.0, 0.0, &ws, 4);
        let sixteen = multi_round_makespan(100.0, 0.0, &ws, 16);
        assert!(four < one, "4 rounds {four} not better than 1 round {one}");
        assert!(sixteen <= four + 1e-9);
        // Lower bound: pure communication time of the whole load on the
        // shared port.
        let comm = 100.0 / 5.0 / 2.0;
        assert!(sixteen >= comm - 1e-9);
    }

    #[test]
    fn multi_round_single_round_consistency() {
        // M = 1 must agree with the closed form (no master).
        let ws = [w(10.0, 10.0), w(20.0, 5.0)];
        let cf = one_round_optimal(60.0, 0.0, &ws).makespan;
        let mr = multi_round_makespan(60.0, 0.0, &ws, 1);
        assert!((cf - mr).abs() < 1e-9, "closed form {cf} vs evaluator {mr}");
    }
}
