//! Error type for the scheduling layer.

use dls_lp::LpError;
use std::fmt;

/// Errors surfaced while solving a steady-state scheduling problem.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field meanings are given per variant
pub enum SolveError {
    /// The underlying LP/MILP solver failed (numerical trouble or budget).
    Lp(LpError),
    /// The relaxation reported infeasible/unbounded, which cannot happen for
    /// a well-formed instance (α = 0 is always feasible and throughput is
    /// bounded by `Σ s_k`) — indicates numerical breakdown.
    UnexpectedStatus(&'static str),
    /// Payoff vector length differs from the number of clusters.
    PayoffMismatch { clusters: usize, payoffs: usize },
    /// The produced allocation failed validation (internal bug guard).
    InvalidAllocation(String),
    /// An incremental β pin was rejected (unpinnable route, double pin, or a
    /// formulation built without warm-start support).
    BadPin(&'static str),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Lp(e) => write!(f, "LP solver error: {e}"),
            SolveError::UnexpectedStatus(s) => {
                write!(f, "unexpected LP status for a steady-state instance: {s}")
            }
            SolveError::PayoffMismatch { clusters, payoffs } => {
                write!(f, "{payoffs} payoffs supplied for {clusters} clusters")
            }
            SolveError::InvalidAllocation(why) => {
                write!(f, "heuristic produced an invalid allocation: {why}")
            }
            SolveError::BadPin(why) => {
                write!(f, "cannot pin β on this formulation: {why}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

impl From<LpError> for SolveError {
    fn from(e: LpError) -> Self {
        SolveError::Lp(e)
    }
}
