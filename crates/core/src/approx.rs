//! Tolerant float comparison helpers.
//!
//! The workspace convention for comparing an achieved objective against an
//! LP bound — and, in the simulator, event times against period boundaries —
//! is a *relative* slack scaled by `1 + max(|a|, |b|)` (so the tolerance
//! neither vanishes near zero nor explodes for large values). These helpers
//! centralise that convention; `dls-testkit` re-exports them for tests.

/// Combined absolute/relative closeness: `|a − b| ≤ tol · (1 + max(|a|,|b|))`.
pub fn close(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        return true; // covers ±∞ and exact hits
    }
    if !a.is_finite() || !b.is_finite() {
        return false; // NaN, or exactly one infinity
    }
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

/// Relative error `|a − b| / (1 + max(|a|, |b|))`.
pub fn rel_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / (1.0 + a.abs().max(b.abs()))
}

/// Panics unless [`close`]`(a, b, tol)`.
#[track_caller]
pub fn assert_close(a: f64, b: f64, tol: f64) {
    assert!(
        close(a, b, tol),
        "values differ: {a} vs {b} (rel err {}, tol {tol})",
        rel_err(a, b)
    );
}

/// Panics unless `value ≤ limit + slack · (1 + |limit|)` — the workspace's
/// standard "achieved objective must not exceed the LP bound" comparison.
#[track_caller]
pub fn assert_le_slack(value: f64, limit: f64, slack: f64, what: &str) {
    assert!(
        value <= limit + slack * (1.0 + limit.abs()),
        "{what}: {value} exceeds {limit} (slack {slack})"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_handles_scales_and_infinities() {
        assert!(close(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!close(1.0, 1.1, 1e-9));
        assert!(close(f64::INFINITY, f64::INFINITY, 1e-9));
        assert!(!close(f64::INFINITY, 1.0, 1e-9));
        assert!(close(1e12, 1e12 * (1.0 + 1e-10), 1e-9));
        assert!(close(0.0, 1e-12, 1e-9));
    }

    #[test]
    fn le_slack_accepts_dust_overrun() {
        assert_le_slack(10.0 + 1e-9, 10.0, 1e-6, "dusty bound");
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn le_slack_rejects_real_overrun() {
        assert_le_slack(10.1, 10.0, 1e-6, "real overrun");
    }
}
