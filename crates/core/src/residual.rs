//! Residual platform capacities — the mutable state consumed by the greedy
//! heuristic (either from a fresh platform, or from what an LP-rounded
//! allocation left over, for LPRG).

use crate::allocation::Allocation;
use dls_platform::{ClusterId, Platform};

/// Remaining `s_k`, `g_k` and per-link connection budgets.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualPlatform {
    /// Residual computing speed per cluster.
    pub speed: Vec<f64>,
    /// Residual local-link capacity per cluster.
    pub local_bw: Vec<f64>,
    /// Residual connection count per backbone link (signed to surface
    /// accounting bugs in debug builds; never negative after clamping).
    pub conn_left: Vec<i64>,
}

impl ResidualPlatform {
    /// Full capacities of a fresh platform.
    pub fn full(p: &Platform) -> Self {
        ResidualPlatform {
            speed: p.clusters.iter().map(|c| c.speed).collect(),
            local_bw: p.clusters.iter().map(|c| c.local_bw).collect(),
            conn_left: p.links.iter().map(|l| l.max_connections as i64).collect(),
        }
    }

    /// Capacities left after `alloc` (clamped at zero against rounding
    /// noise).
    pub fn after(p: &Platform, alloc: &Allocation) -> Self {
        let mut r = Self::full(p);
        for from in p.cluster_ids() {
            for to in p.cluster_ids() {
                let a = alloc.alpha(from, to);
                if a != 0.0 {
                    r.speed[to.index()] -= a;
                    if from != to {
                        r.local_bw[from.index()] -= a;
                        r.local_bw[to.index()] -= a;
                    }
                }
                let b = alloc.beta(from, to);
                if b > 0 && from != to {
                    if let Some(route) = p.route(from, to) {
                        for l in route {
                            r.conn_left[l.index()] -= b as i64;
                        }
                    }
                }
            }
        }
        for v in r.speed.iter_mut().chain(r.local_bw.iter_mut()) {
            if *v < 0.0 {
                debug_assert!(*v > -1e-6, "allocation overshoots capacity by {v}");
                *v = 0.0;
            }
        }
        for c in r.conn_left.iter_mut() {
            debug_assert!(*c >= 0, "allocation overshoots connection budget");
            if *c < 0 {
                *c = 0;
            }
        }
        r
    }

    /// `true` iff one more connection can be opened on every link of the
    /// route `from → to` (trivially true for empty same-router routes).
    pub fn route_open(&self, p: &Platform, from: ClusterId, to: ClusterId) -> bool {
        match p.route(from, to) {
            None => false,
            Some(route) => route.iter().all(|l| self.conn_left[l.index()] >= 1),
        }
    }

    /// Consumes one connection on every link of the route.
    pub fn consume_connection(&mut self, p: &Platform, from: ClusterId, to: ClusterId) {
        if let Some(route) = p.route(from, to) {
            for l in route {
                self.conn_left[l.index()] -= 1;
                debug_assert!(self.conn_left[l.index()] >= 0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Objective, ProblemInstance};
    use dls_platform::PlatformBuilder;

    fn setup() -> (ProblemInstance, ClusterId, ClusterId) {
        let mut b = PlatformBuilder::new();
        let c0 = b.add_cluster(100.0, 20.0);
        let c1 = b.add_cluster(50.0, 30.0);
        b.connect_clusters(c0, c1, 10.0, 2);
        (
            ProblemInstance::uniform(b.build().unwrap(), Objective::Sum),
            c0,
            c1,
        )
    }

    #[test]
    fn full_capacities() {
        let (inst, ..) = setup();
        let r = ResidualPlatform::full(&inst.platform);
        assert_eq!(r.speed, vec![100.0, 50.0]);
        assert_eq!(r.local_bw, vec![20.0, 30.0]);
        assert_eq!(r.conn_left, vec![2]);
    }

    #[test]
    fn after_subtracts_usage() {
        let (inst, c0, c1) = setup();
        let mut a = Allocation::zeros(2);
        a.add_alpha(c0, c0, 60.0);
        a.add_alpha(c0, c1, 10.0);
        a.add_beta(c0, c1, 1);
        let r = ResidualPlatform::after(&inst.platform, &a);
        assert_eq!(r.speed, vec![40.0, 40.0]);
        assert_eq!(r.local_bw, vec![10.0, 20.0]);
        assert_eq!(r.conn_left, vec![1]);
    }

    #[test]
    fn route_open_and_consume() {
        let (inst, c0, c1) = setup();
        let mut r = ResidualPlatform::full(&inst.platform);
        assert!(r.route_open(&inst.platform, c0, c1));
        r.consume_connection(&inst.platform, c0, c1);
        r.consume_connection(&inst.platform, c1, c0);
        assert!(!r.route_open(&inst.platform, c0, c1));
        assert!(!r.route_open(&inst.platform, c1, c0));
    }
}
