//! Problem instances: a platform plus per-application payoffs and an
//! objective.

use crate::error::SolveError;
use dls_platform::{ClusterId, Platform};
use serde::{Deserialize, Serialize};

/// The two objective functions of §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Maximise the total payoff `Σ_k π_k·α_k` (Eq. 5).
    Sum,
    /// Maximise the minimum payoff `min_k π_k·α_k` over applications with
    /// `π_k > 0` (Eq. 6, MAX-MIN fairness). Applications with zero payoff
    /// are excluded from the min — the paper itself sets `π_k = 0` for
    /// clusters that "do not wish to execute" an application, which only
    /// makes sense if they do not drag the min to zero.
    MaxMin,
}

/// A steady-state scheduling instance: `K` divisible-load applications, one
/// originating at each cluster, with payoff factors `π_k` quantifying their
/// relative worth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProblemInstance {
    /// The platform (clusters, links, routing).
    pub platform: Platform,
    /// Payoff factor `π_k` per application (`len == K`, all ≥ 0).
    pub payoffs: Vec<f64>,
    /// Objective function to optimise.
    pub objective: Objective,
}

impl ProblemInstance {
    /// Builds an instance, validating the payoff vector.
    pub fn new(
        platform: Platform,
        payoffs: Vec<f64>,
        objective: Objective,
    ) -> Result<Self, SolveError> {
        if payoffs.len() != platform.num_clusters() {
            return Err(SolveError::PayoffMismatch {
                clusters: platform.num_clusters(),
                payoffs: payoffs.len(),
            });
        }
        Ok(ProblemInstance {
            platform,
            payoffs,
            objective,
        })
    }

    /// Instance with uniform payoffs `π_k = 1`.
    ///
    /// Note for experiment design: with uniform payoffs **and** the paper's
    /// equal cluster speeds, both objectives are degenerate — every
    /// application can saturate its own cluster locally, so the SUM optimum
    /// is `Σ s_k` and the MAXMIN optimum is `min_k s_k`, both achievable
    /// with no network traffic at all. The evaluation harness therefore
    /// samples heterogeneous payoffs (see
    /// [`ProblemInstance::with_spread_payoffs`]), which makes transfers
    /// essential and reproduces the paper's observed heuristic gaps.
    pub fn uniform(platform: Platform, objective: Objective) -> Self {
        let payoffs = vec![1.0; platform.num_clusters()];
        ProblemInstance {
            platform,
            payoffs,
            objective,
        }
    }

    /// Instance with payoffs drawn i.i.d. from `U[1 − spread, 1 + spread]`
    /// (seeded, deterministic). `spread = 0` reduces to
    /// [`ProblemInstance::uniform`].
    pub fn with_spread_payoffs(
        platform: Platform,
        objective: Objective,
        spread: f64,
        seed: u64,
    ) -> Self {
        use rand::{Rng, SeedableRng};
        let spread = spread.clamp(0.0, 0.999);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let payoffs = (0..platform.num_clusters())
            .map(|_| {
                if spread == 0.0 {
                    1.0
                } else {
                    rng.gen_range(1.0 - spread..1.0 + spread)
                }
            })
            .collect();
        ProblemInstance {
            platform,
            payoffs,
            objective,
        }
    }

    /// Number of applications `K` (one per cluster).
    pub fn num_apps(&self) -> usize {
        self.platform.num_clusters()
    }

    /// Payoff of application `k`.
    pub fn payoff(&self, k: ClusterId) -> f64 {
        self.payoffs[k.index()]
    }

    /// Applications that take part in the objective (`π_k > 0`).
    pub fn active_apps(&self) -> impl Iterator<Item = ClusterId> + '_ {
        self.platform
            .cluster_ids()
            .filter(move |k| self.payoffs[k.index()] > 0.0)
    }

    /// Objective value of per-application throughputs `α_k` under this
    /// instance's objective and payoffs.
    pub fn objective_of_throughputs(&self, throughputs: &[f64]) -> f64 {
        debug_assert_eq!(throughputs.len(), self.num_apps());
        match self.objective {
            Objective::Sum => self
                .payoffs
                .iter()
                .zip(throughputs)
                .map(|(p, a)| p * a)
                .sum(),
            Objective::MaxMin => self
                .payoffs
                .iter()
                .zip(throughputs)
                .filter(|(p, _)| **p > 0.0)
                .map(|(p, a)| p * a)
                .fold(f64::INFINITY, f64::min)
                .min(f64::INFINITY),
        }
    }

    /// Same instance with the other objective (convenience for experiments
    /// that evaluate both SUM and MAXMIN on one platform).
    pub fn with_objective(&self, objective: Objective) -> Self {
        ProblemInstance {
            platform: self.platform.clone(),
            payoffs: self.payoffs.clone(),
            objective,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_platform::{PlatformBuilder, PlatformConfig, PlatformGenerator};

    fn platform3() -> Platform {
        let mut b = PlatformBuilder::new();
        let c0 = b.add_cluster(100.0, 50.0);
        let c1 = b.add_cluster(100.0, 50.0);
        b.add_cluster(100.0, 50.0);
        b.connect_clusters(c0, c1, 10.0, 5);
        b.build().unwrap()
    }

    #[test]
    fn payoff_length_checked() {
        let p = platform3();
        assert!(ProblemInstance::new(p.clone(), vec![1.0, 2.0], Objective::Sum).is_err());
        assert!(ProblemInstance::new(p, vec![1.0; 3], Objective::Sum).is_ok());
    }

    #[test]
    fn uniform_payoffs() {
        let inst = ProblemInstance::uniform(platform3(), Objective::MaxMin);
        assert_eq!(inst.payoffs, vec![1.0; 3]);
        assert_eq!(inst.num_apps(), 3);
        assert_eq!(inst.active_apps().count(), 3);
    }

    #[test]
    fn zero_payoff_apps_excluded_from_maxmin() {
        let p = platform3();
        let inst = ProblemInstance::new(p, vec![1.0, 0.0, 2.0], Objective::MaxMin).unwrap();
        assert_eq!(inst.active_apps().count(), 2);
        // App 1 has throughput 0 but payoff 0 → objective is min(3·1, 4·2).
        assert_eq!(inst.objective_of_throughputs(&[3.0, 0.0, 4.0]), 3.0);
    }

    #[test]
    fn sum_objective_weights_throughputs() {
        let inst = ProblemInstance::new(platform3(), vec![1.0, 2.0, 0.5], Objective::Sum).unwrap();
        assert_eq!(inst.objective_of_throughputs(&[1.0, 1.0, 4.0]), 5.0);
    }

    #[test]
    fn works_on_generated_platforms() {
        let p = PlatformGenerator::new(1).generate(&PlatformConfig::default());
        let inst = ProblemInstance::uniform(p, Objective::Sum);
        assert!(inst.num_apps() > 0);
    }
}
