//! Adaptive re-scheduling across epochs of resource drift.
//!
//! The paper motivates steady-state scheduling with *adaptability* (§1,
//! point (iii)): because the schedule is periodic and cheap to recompute,
//! observed resource variations can be folded into the next period's
//! optimisation. This module simulates exactly that scenario: platform
//! capacities drift epoch by epoch (multiplicative random walk on speeds,
//! local links and backbone bandwidths), and we compare
//!
//! * **adaptive** — re-solving the heuristic on the drifted platform each
//!   epoch, against
//! * **stale** — keeping the epoch-0 allocation and shrinking it uniformly
//!   until it becomes feasible again ([`scale_to_fit`]).
//!
//! The ratio of the two quantifies how much periodic re-optimisation buys.

use crate::allocation::Allocation;
use crate::error::SolveError;
use crate::heuristics::Heuristic;
use crate::problem::ProblemInstance;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Multiplicative random-walk drift configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Per-epoch relative drift of cluster speeds (uniform ±).
    pub speed_drift: f64,
    /// Per-epoch relative drift of local-link capacities.
    pub local_bw_drift: f64,
    /// Per-epoch relative drift of backbone per-connection bandwidths.
    pub backbone_bw_drift: f64,
    /// Capacities never fall below this fraction of their original value.
    pub floor_fraction: f64,
    /// Capacities never exceed this multiple of their original value.
    pub ceil_fraction: f64,
    /// Number of epochs to simulate.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            speed_drift: 0.15,
            local_bw_drift: 0.15,
            backbone_bw_drift: 0.15,
            floor_fraction: 0.2,
            ceil_fraction: 3.0,
            epochs: 10,
            seed: 0,
        }
    }
}

/// Outcome of one drift epoch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochResult {
    /// Epoch index (0 = initial platform).
    pub epoch: usize,
    /// Objective achieved by re-solving on the drifted platform.
    pub adaptive_objective: f64,
    /// Objective achieved by uniformly shrinking the epoch-0 allocation.
    pub stale_objective: f64,
    /// The shrink factor γ applied to the stale allocation.
    pub stale_gamma: f64,
}

/// Largest `γ ∈ [0, 1]` such that `γ·alloc` (α scaled, β unchanged) is valid
/// on `inst`, together with the scaled allocation. All Eq. 7 constraints are
/// linear in α, so γ is a simple minimum of capacity ratios; the connection
/// budget (7d) does not scale and is treated as a hard feasibility gate:
/// if the drifted platform cannot host the stale β (a connection cap
/// dropped below the open-connection count, or a route vanished), *nothing*
/// of the stale allocation survives — the result is the empty allocation
/// with `γ = 0`, so the returned allocation is always valid.
pub fn scale_to_fit(alloc: &Allocation, inst: &ProblemInstance) -> (Allocation, f64) {
    let p = &inst.platform;
    let k = alloc.k;
    let mut gamma: f64 = 1.0;

    // (7d): β is not scalable — if the drifted platform cannot host the
    // connections (only possible if maxcon changed), nothing fits: keeping
    // β while γ·α → 0 would still over-subscribe the link, so the whole
    // allocation is dropped.
    let mut link_use = vec![0u64; p.links.len()];
    let mut connections_feasible = true;
    for from in p.cluster_ids() {
        for to in p.cluster_ids() {
            let b = alloc.beta(from, to);
            if b > 0 && from != to {
                if let Some(route) = p.route(from, to) {
                    for l in route {
                        link_use[l.index()] += b as u64;
                    }
                } else {
                    connections_feasible = false;
                }
            }
        }
    }
    for (i, &used) in link_use.iter().enumerate() {
        if used > p.links[i].max_connections as u64 {
            connections_feasible = false;
        }
    }
    if !connections_feasible {
        return (Allocation::zeros(k), 0.0);
    }

    // (7b) compute.
    for c in p.cluster_ids() {
        let used: f64 = p.cluster_ids().map(|f| alloc.alpha(f, c)).sum();
        if used > 0.0 {
            gamma = gamma.min(p.cluster(c).speed / used);
        }
    }
    // (7c) local links.
    for c in p.cluster_ids() {
        let used: f64 = p
            .cluster_ids()
            .filter(|&l| l != c)
            .map(|l| alloc.alpha(c, l) + alloc.alpha(l, c))
            .sum();
        if used > 0.0 {
            gamma = gamma.min(p.cluster(c).local_bw / used);
        }
    }
    // (7e) route bandwidth.
    for from in p.cluster_ids() {
        for to in p.cluster_ids() {
            if from == to {
                continue;
            }
            let a = alloc.alpha(from, to);
            if a <= 0.0 {
                continue;
            }
            match p.route_bottleneck_bw(from, to) {
                Some(bw) if bw.is_finite() => {
                    let cap = alloc.beta(from, to) as f64 * bw;
                    gamma = gamma.min(cap / a);
                }
                Some(_) => {}
                None => gamma = 0.0,
            }
        }
    }

    let gamma = gamma.clamp(0.0, 1.0);
    let scaled = Allocation {
        k,
        alpha: alloc.alpha.iter().map(|a| a * gamma).collect(),
        beta: alloc.beta.clone(),
    };
    (scaled, gamma)
}

/// Runs the drift experiment: returns one [`EpochResult`] per epoch.
pub fn run_adaptive(
    base: &ProblemInstance,
    heuristic: &dyn Heuristic,
    cfg: &DriftConfig,
) -> Result<Vec<EpochResult>, SolveError> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut platform = base.platform.clone();
    let original = base.platform.clone();
    let initial_alloc = heuristic.solve(base)?;
    let mut results = Vec::with_capacity(cfg.epochs);

    for epoch in 0..cfg.epochs {
        if epoch > 0 {
            // Drift every capacity multiplicatively, clamped to the band.
            for (c, o) in platform.clusters.iter_mut().zip(&original.clusters) {
                c.speed = drift(&mut rng, c.speed, cfg.speed_drift)
                    .clamp(o.speed * cfg.floor_fraction, o.speed * cfg.ceil_fraction);
                c.local_bw = drift(&mut rng, c.local_bw, cfg.local_bw_drift).clamp(
                    o.local_bw * cfg.floor_fraction,
                    o.local_bw * cfg.ceil_fraction,
                );
            }
            for (l, o) in platform.links.iter_mut().zip(&original.links) {
                l.bw_per_connection = drift(&mut rng, l.bw_per_connection, cfg.backbone_bw_drift)
                    .clamp(
                        o.bw_per_connection * cfg.floor_fraction,
                        o.bw_per_connection * cfg.ceil_fraction,
                    );
            }
        }
        let inst = ProblemInstance {
            platform: platform.clone(),
            payoffs: base.payoffs.clone(),
            objective: base.objective,
        };
        let adaptive_alloc = heuristic.solve(&inst)?;
        debug_assert!(adaptive_alloc.validate(&inst).is_ok());
        let (stale_alloc, gamma) = scale_to_fit(&initial_alloc, &inst);
        debug_assert!(stale_alloc.validate(&inst).is_ok());
        results.push(EpochResult {
            epoch,
            adaptive_objective: adaptive_alloc.objective_value(&inst),
            stale_objective: stale_alloc.objective_value(&inst),
            stale_gamma: gamma,
        });
    }
    Ok(results)
}

fn drift(rng: &mut ChaCha8Rng, value: f64, spread: f64) -> f64 {
    if spread <= 0.0 {
        return value;
    }
    value * rng.gen_range(1.0 - spread..1.0 + spread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::{Greedy, Lprg};
    use crate::problem::Objective;
    use dls_platform::{ClusterId, PlatformConfig, PlatformGenerator};

    fn instance(seed: u64) -> ProblemInstance {
        let cfg = PlatformConfig {
            num_clusters: 5,
            connectivity: 0.6,
            ..PlatformConfig::default()
        };
        ProblemInstance::uniform(
            PlatformGenerator::new(seed).generate(&cfg),
            Objective::MaxMin,
        )
    }

    #[test]
    fn scale_to_fit_identity_when_already_valid() {
        let inst = instance(1);
        let alloc = Greedy::default().solve(&inst).unwrap();
        let (scaled, gamma) = scale_to_fit(&alloc, &inst);
        assert!((gamma - 1.0).abs() < 1e-9);
        assert_eq!(scaled, alloc);
    }

    #[test]
    fn scale_to_fit_shrinks_on_slower_platform() {
        let inst = instance(2);
        let alloc = Greedy::default().solve(&inst).unwrap();
        // Halve every speed: allocation must shrink by ≥ 2×.
        let mut slower = inst.clone();
        for c in slower.platform.clusters.iter_mut() {
            c.speed /= 2.0;
        }
        let (scaled, gamma) = scale_to_fit(&alloc, &slower);
        assert!(gamma <= 0.5 + 1e-9, "gamma {gamma}");
        assert!(scaled.validate(&slower).is_ok());
    }

    #[test]
    fn scale_to_fit_zero_when_connections_impossible() {
        let inst = instance(3);
        let mut alloc = Allocation::zeros(inst.num_apps());
        // Fabricate traffic on a pair with no route.
        let (mut from, mut to) = (None, None);
        'outer: for a in inst.platform.cluster_ids() {
            for b in inst.platform.cluster_ids() {
                if a != b && inst.platform.route(a, b).is_none() {
                    from = Some(a);
                    to = Some(b);
                    break 'outer;
                }
            }
        }
        let (Some(a), Some(b)) = (from, to) else {
            return; // fully connected draw; nothing to test
        };
        alloc.add_alpha(a, b, 5.0);
        alloc.add_beta(a, b, 1);
        let (_, gamma) = scale_to_fit(&alloc, &inst);
        assert_eq!(gamma, 0.0);
    }

    #[test]
    fn scale_to_fit_empty_allocation_is_identity() {
        let inst = instance(6);
        let empty = Allocation::zeros(inst.num_apps());
        let (scaled, gamma) = scale_to_fit(&empty, &inst);
        assert_eq!(gamma, 1.0, "nothing to shrink");
        assert_eq!(scaled, empty);
        assert!(scaled.validate(&inst).is_ok());
    }

    #[test]
    fn scale_to_fit_zero_capacity_cluster_after_drift() {
        // A cluster churns out (speed 0, local link 0): any allocation that
        // computed there or shipped through it must shrink to nothing, and
        // the scaled result must still validate.
        let inst = instance(7);
        let alloc = Lprg::default().solve(&inst).unwrap();
        // Pick a cluster the allocation actually uses.
        let victim = inst
            .platform
            .cluster_ids()
            .find(|&c| {
                inst.platform
                    .cluster_ids()
                    .any(|f| alloc.alpha(f, c) > 0.0 || alloc.alpha(c, f) > 0.0)
            })
            .expect("some cluster is used");
        let mut dead = inst.clone();
        dead.platform.clusters[victim.index()].speed = 0.0;
        dead.platform.clusters[victim.index()].local_bw = 0.0;
        let (scaled, gamma) = scale_to_fit(&alloc, &dead);
        assert_eq!(gamma, 0.0, "work on a dead cluster cannot shrink to fit");
        assert!(scaled.validate(&dead).is_ok());
        assert!(scaled.alpha.iter().all(|&a| a == 0.0));
    }

    #[test]
    fn scale_to_fit_drops_beta_when_connection_caps_collapse() {
        // Connection caps are not scalable: when they drop below the stale
        // β usage, the entire allocation is dropped (keeping β would still
        // violate (7d) no matter how small γ gets).
        let inst = instance(8);
        let alloc = Lprg::default().solve(&inst).unwrap();
        if alloc.beta.iter().all(|&b| b == 0) {
            return; // purely local draw; nothing to test
        }
        let mut cut = inst.clone();
        for l in cut.platform.links.iter_mut() {
            l.max_connections = 0;
        }
        let (scaled, gamma) = scale_to_fit(&alloc, &cut);
        assert_eq!(gamma, 0.0);
        assert_eq!(scaled, Allocation::zeros(inst.num_apps()));
        assert!(scaled.validate(&cut).is_ok());
    }

    #[test]
    fn adaptive_beats_stale_on_average() {
        let inst = instance(4);
        let results = run_adaptive(
            &inst,
            &Lprg::default(),
            &DriftConfig {
                epochs: 8,
                seed: 9,
                ..DriftConfig::default()
            },
        )
        .unwrap();
        assert_eq!(results.len(), 8);
        // Epoch 0: no drift yet → stale == adaptive (same platform).
        assert!((results[0].adaptive_objective - results[0].stale_objective).abs() < 1e-6);
        let adaptive: f64 = results.iter().map(|r| r.adaptive_objective).sum();
        let stale: f64 = results.iter().map(|r| r.stale_objective).sum();
        assert!(
            adaptive >= stale - 1e-9,
            "adaptive {adaptive} < stale {stale}"
        );
        // γ stays in [0, 1].
        assert!(results.iter().all(|r| (0.0..=1.0).contains(&r.stale_gamma)));
    }

    #[test]
    fn drift_respects_floor_and_ceiling() {
        let inst = instance(5);
        let cfg = DriftConfig {
            epochs: 30,
            speed_drift: 0.5,
            floor_fraction: 0.5,
            ceil_fraction: 1.5,
            seed: 11,
            ..DriftConfig::default()
        };
        // Run and make sure nothing panics; inspect one epoch's platform via
        // the stale gamma staying positive (speeds never hit zero).
        let results = run_adaptive(&inst, &Greedy::default(), &cfg).unwrap();
        assert!(results.iter().all(|r| r.stale_gamma > 0.0));
        let _ = ClusterId(0);
    }
}
